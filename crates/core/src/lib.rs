//! # twochains
//!
//! The Two-Chains active-message runtime: *Two types of Cooperatively Handled
//! Actively Integrated Natively Shared-objects* — heavyweight **rieds** that set up
//! interfaces and synchronize namespaces between processes, and lightweight **jams**
//! packed into active messages and pushed over the (simulated) RDMA network to run
//! on demand on the receiver.
//!
//! The runtime reproduces the system described in *"Two-Chains: High Performance
//! Framework for Function Injection and Execution"* (IEEE CLUSTER 2021):
//!
//! * **Reactive mailboxes** ([`mailbox`]) — pinned, registered memory a sender
//!   targets with a single one-sided put; the receiver spin-waits (optionally with a
//!   WFE-style sleep) on the final signal byte of the fixed-size frame and executes
//!   the message the moment it lands.
//! * **Message frames** ([`frame`]) — `HDR | GOTP | CODE | ARGS | USR | SIG`, with
//!   the code and patched GOT present only for *Injected Function* invocation; the
//!   *Local Function* variant carries just an element ID and the payload (§IV-B).
//! * **Mailbox banks and flow control** ([`bank`]) — M banks of N mailboxes with
//!   per-bank flags on the sender, exactly the scheme §VI-A2 describes for the
//!   injection-rate benchmark.
//! * **Sharded receive path** ([`runtime`]) — banks are partitioned over receiver
//!   shards (`bank % num_shards`); each shard drains its banks with a one-scan
//!   [`TwoChainsHost::receive_burst`] over per-shard scratch/stats and shared,
//!   segmented-LRU injection caches, so receiver threads scale without contending
//!   on a mailbox.
//! * **Sender fleet** ([`runtime`]) — the initiator side mirrors the split: a
//!   [`SenderFleet`] runs one [`TwoChainsSender`] per stream (stream `s` fills
//!   the banks shard `s` drains), each on its own endpoint with its own
//!   template cache and per-stream completion-window flow control, and can fill
//!   from one OS thread per lane concurrently with shard draining
//!   ([`drive_pipeline`]).
//! * **Remote linking** — jams reference receiver-side functionality only through
//!   symbolic GOT slots; the receiver resolves them against its own loaded rieds
//!   (per-process namespaces from `twochains-linker`) and shares the resolved GOT
//!   image with senders out of band.
//! * **Security policy knobs** ([`security`]) — the §V hardening options: refuse
//!   sender-provided GOT images, read-only argument pages, separated code/data, and
//!   an execute-permission bit on registered memory.
//! * **The paper's benchmark jams** ([`builtin`]) — *Server-Side Sum* and *Indirect
//!   Put*, built from the same definitions into both injectable objects and the
//!   Local Function library.
//!
//! The whole stack runs over the simulated substrates in `twochains-fabric` and
//! `twochains-memsim`; all timing is virtual and deterministic.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bank;
pub mod builtin;
pub mod config;
pub mod error;
pub mod frame;
pub mod mailbox;
pub mod runtime;
pub mod security;
pub mod stats;

pub use bank::{BankFlags, MailboxBank, NackFlags, ShardMask};
pub use builtin::{benchmark_package, benchmark_rieds, BuiltinJam};
pub use config::{
    AggregationPolicy, CreditFlushPolicy, ExecutionPolicy, InvocationMode, RuntimeConfig, SpaceMode,
};
pub use error::{AmError, AmResult};
pub use frame::{
    ChainArgMap, ChainDescriptor, ChainStage, Frame, FrameHeader, CHAIN_MAX_STAGES,
    FRAME_HEADER_SIZE, SIG_MAG,
};
pub use mailbox::ReactiveMailbox;
pub use runtime::{
    drive_pipeline, spec, AmSendOutcome, BurstFrame, BurstOutcome, ClampedFibonacci,
    CreditHandshake, FleetLane, MessageSpec, PipelineFrame, PipelineOutcome, ReceiveOutcome,
    ReceiverShard, SenderFleet, SenderLane, SessionHandshake, ShardDrain, SlotCtx, StreamHandshake,
    StreamTarget, TwoChainsHost, TwoChainsSender,
};
pub use security::SecurityPolicy;
pub use stats::RuntimeStats;
pub use twochains_linker::ElementId;

pub use twochains_fabric as fabric;
pub use twochains_jamvm as jamvm;
pub use twochains_linker as linker;
pub use twochains_memsim as memsim;
