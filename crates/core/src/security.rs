//! Security policy options (§V of the paper).
//!
//! The paper leans on the RKEY mechanism of the IBTA standard for its baseline
//! protection and lists a set of runtime reconfigurations that harden function
//! injection without large performance penalties. Each of them is a switch here, and
//! the runtime enforces them on the receive path:
//!
//! * **Refuse sender GOT** — "Do not accept GOT pointer indirection in the message
//!   from a sender. Have the receiver insert the GOT pointer on message arrival from
//!   a secure read-only location." When enabled, the receiver ignores the GOTP
//!   section and re-resolves the jam's symbolic GOT against its own namespace,
//!   paying a small per-message resolution cost.
//! * **Read-only arguments / separate data pages** — the ARGS and USR sections are
//!   mapped read-only into the jam's address space so injected code cannot use them
//!   as a writable staging area on an executable page.
//! * **Require execute permission** — the registered mailbox region must carry the
//!   proposed IBTA *execute* permission bit before injected code is run from it.

use twochains_memsim::SimTime;

/// The hardening switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecurityPolicy {
    /// Accept the GOT image carried in the message (fast path). When `false`, the
    /// receiver resolves the GOT itself on arrival.
    pub accept_sender_got: bool,
    /// Map ARGS read-only for the executing jam.
    pub read_only_args: bool,
    /// Map the USR payload read-only for the executing jam (separate data handling).
    pub read_only_payload: bool,
    /// Require the mailbox region to have been registered with remote-execute
    /// permission before running injected code out of it.
    pub require_execute_permission: bool,
}

impl SecurityPolicy {
    /// The paper's benchmark configuration: everything in one RWX mailbox, sender GOT
    /// accepted.
    pub fn permissive() -> Self {
        SecurityPolicy {
            accept_sender_got: true,
            read_only_args: false,
            read_only_payload: false,
            require_execute_permission: false,
        }
    }

    /// All hardening options from §V enabled.
    pub fn hardened() -> Self {
        SecurityPolicy {
            accept_sender_got: false,
            read_only_args: true,
            read_only_payload: true,
            require_execute_permission: true,
        }
    }

    /// Extra receiver-side cost this policy adds per injected message: GOT
    /// re-resolution when the sender's image is refused (a handful of hash lookups).
    pub fn per_message_overhead(&self, got_slots: usize) -> SimTime {
        if self.accept_sender_got {
            SimTime::ZERO
        } else {
            SimTime::from_ns((20 + 12 * got_slots as u64).min(400))
        }
    }
}

impl Default for SecurityPolicy {
    fn default() -> Self {
        Self::permissive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let p = SecurityPolicy::permissive();
        assert!(p.accept_sender_got && !p.read_only_args && !p.require_execute_permission);
        let h = SecurityPolicy::hardened();
        assert!(!h.accept_sender_got && h.read_only_args && h.read_only_payload);
        assert_eq!(SecurityPolicy::default(), SecurityPolicy::permissive());
    }

    #[test]
    fn hardened_pays_resolution_cost() {
        assert_eq!(
            SecurityPolicy::permissive().per_message_overhead(4),
            SimTime::ZERO
        );
        let cost = SecurityPolicy::hardened().per_message_overhead(4);
        assert!(cost > SimTime::ZERO && cost < SimTime::from_ns(500));
        // Cost grows with GOT size but is capped.
        assert!(SecurityPolicy::hardened().per_message_overhead(100) <= SimTime::from_ns(400));
    }
}
