//! Reactive mailboxes (§III-A, Fig. 1).
//!
//! A mailbox is a slice of a registered, remotely writable (and, in the permissive
//! configuration, executable) memory region. The sender deposits a whole frame with
//! one one-sided put; the receiver waits on the frame's final byte (`SIG_MAG`).
//! For fixed-size frames the signal position is known up front; for variable frames
//! the receiver first waits on the header magic (`MAG`), reads the frame length, and
//! then waits on the final byte — exactly the two-step protocol of Fig. 1.

use std::sync::Arc;

use twochains_fabric::{MemoryRegion, RegionDescriptor};

use crate::error::{AmError, AmResult};
use crate::frame::{FRAME_HEADER_SIZE, HDR_MAG, SIG_MAG};

/// Where a sender should aim a frame: the mailbox's region descriptor plus the
/// mailbox's offset within it. This is what travels over the out-of-band bootstrap
/// channel during connection setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MailboxTarget {
    /// Descriptor of the registered region holding the mailbox.
    pub region: RegionDescriptor,
    /// Byte offset of the mailbox within the region.
    pub offset: usize,
    /// Capacity of the mailbox in bytes.
    pub capacity: usize,
}

/// A receiver-side reactive mailbox.
#[derive(Debug, Clone)]
pub struct ReactiveMailbox {
    region: Arc<MemoryRegion>,
    offset: usize,
    capacity: usize,
}

impl ReactiveMailbox {
    /// Create a mailbox over `capacity` bytes of `region` starting at `offset`.
    pub fn new(region: Arc<MemoryRegion>, offset: usize, capacity: usize) -> AmResult<Self> {
        // checked_add: an adversarial (offset, capacity) pair must error instead of
        // wrapping past the region bound in release builds.
        let end = offset.checked_add(capacity).ok_or_else(|| {
            AmError::InvalidConfig(format!(
                "mailbox bounds overflow: offset {offset} + capacity {capacity}"
            ))
        })?;
        if end > region.len() {
            return Err(AmError::InvalidConfig(format!(
                "mailbox [{offset}, {end}) exceeds region of {} bytes",
                region.len()
            )));
        }
        if capacity < FRAME_HEADER_SIZE + 8 {
            return Err(AmError::InvalidConfig("mailbox capacity too small".into()));
        }
        Ok(ReactiveMailbox {
            region,
            offset,
            capacity,
        })
    }

    /// The sender-facing target description.
    pub fn target(&self) -> MailboxTarget {
        MailboxTarget {
            region: self.region.descriptor(),
            offset: self.offset,
            capacity: self.capacity,
        }
    }

    /// Simulated virtual address of the start of the mailbox (used to charge the
    /// receiver's reads against the cache hierarchy — the same lines the NIC stashed).
    pub fn base_addr(&self) -> u64 {
        self.region.addr_of(self.offset)
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Check for a complete fixed-size frame of `frame_len` bytes: a single acquire
    /// load of the signal byte.
    pub fn poll_fixed(&self, frame_len: usize) -> AmResult<bool> {
        if frame_len > self.capacity {
            return Err(AmError::FrameTooLarge {
                needed: frame_len,
                capacity: self.capacity,
            });
        }
        Ok(self.region.load_acquire_u8(self.offset + frame_len - 1)? == SIG_MAG)
    }

    /// Check for a variable-size frame: wait on the header magic, read the length,
    /// then check the final byte. Returns the frame length if a complete frame is
    /// present.
    pub fn poll_variable(&self) -> AmResult<Option<usize>> {
        if self
            .region
            .load_acquire_u8(self.offset + FRAME_HEADER_SIZE - 1)?
            != HDR_MAG
        {
            return Ok(None);
        }
        let frame_len = self.region.load_u32(self.offset + 8)? as usize;
        if frame_len < FRAME_HEADER_SIZE || frame_len > self.capacity {
            return Err(AmError::BadFrame(format!(
                "frame length {frame_len} out of range"
            )));
        }
        if self.region.load_acquire_u8(self.offset + frame_len - 1)? == SIG_MAG {
            Ok(Some(frame_len))
        } else {
            Ok(None)
        }
    }

    /// Read the first `frame_len` bytes of the mailbox (the complete frame).
    pub fn read_frame(&self, frame_len: usize) -> AmResult<Vec<u8>> {
        Ok(self.region.read(self.offset, frame_len)?)
    }

    /// Read the first `frame_len` bytes of the mailbox into `out` (resized to
    /// exactly `frame_len`), reusing its capacity. The receiver's hot path keeps one
    /// scratch buffer alive across messages, so steady-state receives neither
    /// allocate nor zero-fill: `read_into` overwrites the whole range.
    pub fn read_frame_into(&self, frame_len: usize, out: &mut Vec<u8>) -> AmResult<()> {
        out.resize(frame_len, 0);
        self.region.read_into(self.offset, out)?;
        Ok(())
    }

    /// Reset the mailbox after processing a frame of `frame_len` bytes: clear the
    /// header magic and the signal byte so the slot can be reused.
    pub fn clear(&self, frame_len: usize) -> AmResult<()> {
        self.region
            .store_release_u8(self.offset + FRAME_HEADER_SIZE - 1, 0)?;
        self.region
            .store_release_u8(self.offset + frame_len - 1, 0)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use twochains_fabric::AccessFlags;

    fn region() -> Arc<MemoryRegion> {
        MemoryRegion::new(1, 0x2000_0000, 64 * 1024, AccessFlags::rwx(), 9).unwrap()
    }

    #[test]
    fn construction_validates_bounds() {
        let r = region();
        assert!(ReactiveMailbox::new(Arc::clone(&r), 0, 4096).is_ok());
        assert!(ReactiveMailbox::new(Arc::clone(&r), 60 * 1024, 8 * 1024).is_err());
        assert!(ReactiveMailbox::new(r, 0, 8).is_err());
    }

    #[test]
    fn fixed_polling_sees_frame_after_signal_lands() {
        let r = region();
        let mb = ReactiveMailbox::new(Arc::clone(&r), 1024, 8192).unwrap();
        let frame = Frame::local(1, 0, vec![0; 20], vec![5; 64]);
        let bytes = frame.encode();
        assert!(!mb.poll_fixed(bytes.len()).unwrap());
        // Simulate the NIC's write: payload then release of the final byte.
        r.write(1024, &bytes).unwrap();
        r.store_release_u8(1024 + bytes.len() - 1, SIG_MAG).unwrap();
        assert!(mb.poll_fixed(bytes.len()).unwrap());
        let back = Frame::decode(&mb.read_frame(bytes.len()).unwrap()).unwrap();
        assert_eq!(back, frame);
        mb.clear(bytes.len()).unwrap();
        assert!(!mb.poll_fixed(bytes.len()).unwrap());
    }

    #[test]
    fn variable_polling_reads_length_from_header() {
        let r = region();
        let mb = ReactiveMailbox::new(Arc::clone(&r), 0, 16 * 1024).unwrap();
        assert_eq!(mb.poll_variable().unwrap(), None);
        let frame = Frame::injected(2, 1, vec![0; 16], vec![0; 256], vec![0; 20], vec![1; 128]);
        let bytes = frame.encode();
        r.write(0, &bytes).unwrap();
        r.store_release_u8(bytes.len() - 1, SIG_MAG).unwrap();
        assert_eq!(mb.poll_variable().unwrap(), Some(bytes.len()));
        mb.clear(bytes.len()).unwrap();
        assert_eq!(mb.poll_variable().unwrap(), None);
    }

    #[test]
    fn variable_polling_rejects_absurd_lengths() {
        let r = region();
        let mb = ReactiveMailbox::new(Arc::clone(&r), 0, 4096).unwrap();
        // Craft a header that claims a gigantic frame.
        let mut bytes = Frame::local(1, 0, vec![0; 20], vec![0; 4]).encode();
        bytes[8..12].copy_from_slice(&(1_000_000u32).to_le_bytes());
        r.write(0, &bytes).unwrap();
        r.store_release_u8(crate::frame::FRAME_HEADER_SIZE - 1, HDR_MAG)
            .unwrap();
        assert!(matches!(mb.poll_variable(), Err(AmError::BadFrame(_))));
    }

    #[test]
    fn oversized_fixed_poll_is_rejected() {
        let r = region();
        let mb = ReactiveMailbox::new(r, 0, 4096).unwrap();
        assert!(matches!(
            mb.poll_fixed(8192),
            Err(AmError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn overflowing_bounds_are_rejected_not_wrapped() {
        let r = region();
        // usize::MAX + capacity would wrap to a small value without checked_add.
        assert!(ReactiveMailbox::new(Arc::clone(&r), usize::MAX - 64, 4096).is_err());
        assert!(ReactiveMailbox::new(r, usize::MAX, usize::MAX).is_err());
    }

    #[test]
    fn read_frame_into_reuses_buffer_and_matches_read_frame() {
        let r = region();
        let mb = ReactiveMailbox::new(Arc::clone(&r), 0, 8192).unwrap();
        let bytes = Frame::local(3, 0, vec![1; 20], vec![9; 40]).encode();
        r.write(0, &bytes).unwrap();
        let mut scratch = Vec::new();
        mb.read_frame_into(bytes.len(), &mut scratch).unwrap();
        assert_eq!(scratch, mb.read_frame(bytes.len()).unwrap());
        let cap = scratch.capacity();
        mb.read_frame_into(bytes.len(), &mut scratch).unwrap();
        assert_eq!(scratch.capacity(), cap, "second read must not reallocate");
    }

    #[test]
    fn base_addr_reflects_offset() {
        let r = region();
        let mb = ReactiveMailbox::new(Arc::clone(&r), 512, 4096).unwrap();
        assert_eq!(mb.base_addr(), r.base_addr() + 512);
        assert_eq!(mb.capacity(), 4096);
        assert_eq!(mb.target().offset, 512);
    }
}
