//! Runtime configuration.

use twochains_memsim::cycles::WaitModel;
use twochains_memsim::WaitMode;

use crate::security::SecurityPolicy;

/// How an active message is invoked on the receiver (§IV-B of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvocationMode {
    /// The function's binary code travels in the message and is executed on arrival
    /// (GOT patched from the message or by the receiver, per the security policy).
    Injected,
    /// Only the element ID travels; the receiver calls the matching function from the
    /// locally loaded Local Function library built from the same package source.
    Local,
}

impl InvocationMode {
    /// Both modes, in the order the paper's figures list them.
    pub const ALL: [InvocationMode; 2] = [InvocationMode::Local, InvocationMode::Injected];

    /// Label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            InvocationMode::Injected => "Injected Function",
            InvocationMode::Local => "Local Function",
        }
    }
}

/// How jam executions share (or don't share) the receiver's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SpaceMode {
    /// One process-wide address space behind a mutex; every execution holds the
    /// lock for its whole map → execute → unmap window. Semantically the
    /// simplest mode (all messages observe one copy of every ried object) and
    /// the default.
    #[default]
    Exclusive,
    /// Read-mostly split: read-only ried objects live in an `Arc`-shared base
    /// every shard reads without locks, writable ried objects get one private
    /// instance per shard, and per-message ARGS/USR map into the owning
    /// shard's local space — so read-only and shard-local handlers execute
    /// with **no** address-space lock. Jams that declare cross-shard writes
    /// ([`twochains_linker::JamObject::cross_shard_writes`]) still fall back
    /// to the exclusive lock and the canonical instances. A GOT *data*
    /// reference to a writable object bakes in the canonical address, which
    /// only the exclusive path maps — so installing such a jam without the
    /// declaration is rejected at install time.
    ShardLocal,
}

/// When the receiver's drain shards flush accumulated credit tokens back to
/// the sender as one-sided puts (§VI-A2 batching).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CreditFlushPolicy {
    /// Flush after every retired frame: one 1-byte put per credit, the
    /// pre-coalescing behaviour. Useful as a latency baseline and for
    /// equivalence tests.
    PerFrame,
    /// Batch tokens per bank row and flush one multi-byte span put when a row
    /// fills, when the withheld total reaches the headroom watermark
    /// ([`RuntimeConfig::credit_flush_watermark`]), or when the shard goes
    /// idle at the end of a burst scan. The default: it takes the per-put
    /// fixed cost off the drain hot path without letting a lightly loaded
    /// sender starve for credits.
    #[default]
    Adaptive,
}

/// Whether sender lanes aggregate data-path frames into multi-frame batch
/// containers (one NIC put covering N frames) — the data-path mirror of
/// [`CreditFlushPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AggregationPolicy {
    /// One put per frame: byte-identical to the pre-aggregation wire
    /// behaviour. Useful as a latency baseline and for equivalence tests.
    PerFrame,
    /// Accumulate spec-built frames per (stream, bank) and post one contiguous
    /// put covering the whole batch. A batch flushes when it fills
    /// ([`RuntimeConfig::batch_max_frames`] frames or the carrier mailbox's
    /// byte capacity), when the oldest accumulated frame has waited past the
    /// latency watermark ([`RuntimeConfig::batch_latency_watermark_ns`]), and
    /// unconditionally at every burst boundary — so aggregation never
    /// withholds a built frame across an idle gap.
    #[default]
    Adaptive,
}

/// How the receiver executes injected (and locally installed) programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecutionPolicy {
    /// Always run the interpreter over the decoded `Arc<[Instr]>`. Pins the
    /// pre-resolution behaviour exactly — the parity baseline the
    /// differential tests compare [`ExecutionPolicy::Resolved`] against.
    Interpret,
    /// Execute through the resolved IR: at cache-insert time the decoded
    /// program is lowered (operands flattened, GOT calls resolved direct,
    /// adjacent pairs fused into superinstructions, instruction fetch charged
    /// per straight-line block), and warm dispatches run the lowered image
    /// without re-reading the code section — the NIC's delivery digest keys
    /// the resolved cache instead. The default.
    #[default]
    Resolved,
}

/// Configuration of a Two-Chains host runtime.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Mailbox frame capacity in bytes (fixed-size frames; a frame larger than this
    /// is rejected at pack time).
    pub frame_capacity: usize,
    /// Number of mailbox banks (M in §VI-A2).
    pub banks: usize,
    /// Mailboxes per bank (N in §VI-A2).
    pub mailboxes_per_bank: usize,
    /// Number of receiver shards draining the banks. Bank `b` is owned by shard
    /// `b % num_shards`, so shards never contend on a mailbox; each shard keeps its
    /// own scratch buffer and statistics over the shared injection caches.
    pub num_shards: usize,
    /// How executions share the jam address space (see [`SpaceMode`]).
    pub space_mode: SpaceMode,
    /// Number of initiator-side sender streams a
    /// [`SenderFleet`](crate::runtime::SenderFleet) driving this host should
    /// run. Stream `s` of `S` fills exactly the banks with `bank % S == s` —
    /// the same deterministic map the receiver shards drain by — so pairing
    /// `sender_streams == num_shards` gives each drain shard a dedicated
    /// initiator and the fill/drain pipeline never crosses streams.
    pub sender_streams: usize,
    /// Per-stream completion-queue depth (the transmit window): a sender lane
    /// with this many puts outstanding must harvest completions before posting
    /// more. Back-pressure is per stream — one saturated stream never stalls
    /// its siblings.
    pub completion_window: usize,
    /// When drain shards flush accumulated credit tokens back to the sender
    /// (see [`CreditFlushPolicy`]).
    pub credit_flush_policy: CreditFlushPolicy,
    /// Headroom watermark for [`CreditFlushPolicy::Adaptive`]: when the
    /// tokens a shard is withholding leave the sender at most this many
    /// credits of headroom under the completion window, the shard flushes
    /// immediately instead of waiting for a row to fill — so batching never
    /// turns into a light-load latency stall. Must be at least 1.
    pub credit_flush_watermark: usize,
    /// Whether the headroom watermark adapts at runtime: each drain shard
    /// tracks an EWMA of the interval at which the sender's frames retire (the
    /// observable proxy for the sender's credit-acquire latency) and sizes the
    /// watermark so tokens are never withheld longer than a fixed horizon.
    /// Defaults to true; calling
    /// [`RuntimeConfig::with_credit_flush_watermark`] pins the static knob
    /// as an explicit override instead.
    pub adaptive_credit_watermark: bool,
    /// How sender lanes batch the data path (see [`AggregationPolicy`]).
    pub aggregation_policy: AggregationPolicy,
    /// Batch-fill bound for [`AggregationPolicy::Adaptive`]: a lane flushes
    /// its accumulated batch once it holds this many frames. Must be between
    /// 1 and [`crate::frame::BATCH_MAX_FRAMES`]; 1 degenerates to per-frame
    /// puts that still ride the container format.
    pub batch_max_frames: usize,
    /// Latency watermark for [`AggregationPolicy::Adaptive`]: when the oldest
    /// frame in a lane's accumulating batch has waited this long (virtual
    /// nanoseconds), the batch flushes before accepting the next frame. Must
    /// be positive and finite.
    pub batch_latency_watermark_ns: f64,
    /// Which core the receiver thread runs on. With `n` shards, shard `s`
    /// drains on core `(receiver_core + s) % num_cores`, each with its own
    /// private L1/L2 over the host's shared cache levels.
    pub receiver_core: usize,
    /// How the receiver waits for the signal byte.
    pub wait_mode: WaitMode,
    /// Wait-model constants (poll interval, WFE wake latency, ...).
    pub wait_model: WaitModel,
    /// Security policy applied to inbound messages.
    pub security: SecurityPolicy,
    /// Upper bound on entries per injection cache (decoded programs, sender GOT
    /// images, re-resolved GOTs). Keys derive from sender-controlled content, so
    /// the bound caps what a churning sender can pin in receiver memory; past it
    /// the segmented-LRU policy evicts the coldest probationary entry.
    pub injection_cache_entries: usize,
    /// If true, messages are delivered and signalled but the function invocation is
    /// skipped — the paper's "without-execution configuration" used for Figs. 5–6.
    pub skip_execution: bool,
    /// Fixed receiver-side dispatch overhead for an Injected Function (frame parse +
    /// jump through the mailbox code pointer).
    pub injected_dispatch_ns: f64,
    /// Fixed receiver-side dispatch overhead for a Local Function (frame parse +
    /// function-pointer table lookup by element ID).
    pub local_dispatch_ns: f64,
    /// How programs are executed (see [`ExecutionPolicy`]).
    pub execution_policy: ExecutionPolicy,
}

impl RuntimeConfig {
    /// The configuration used throughout the paper's evaluation: 32 KiB-capable
    /// mailboxes, 4 banks × 16 mailboxes, polling wait on core 0.
    pub fn paper_default() -> Self {
        RuntimeConfig {
            frame_capacity: 128 * 1024,
            banks: 4,
            mailboxes_per_bank: 16,
            num_shards: 1,
            space_mode: SpaceMode::Exclusive,
            sender_streams: 1,
            completion_window: 256,
            credit_flush_policy: CreditFlushPolicy::Adaptive,
            credit_flush_watermark: 4,
            adaptive_credit_watermark: true,
            aggregation_policy: AggregationPolicy::Adaptive,
            batch_max_frames: 8,
            batch_latency_watermark_ns: 2_000.0,
            receiver_core: 0,
            wait_mode: WaitMode::Polling,
            wait_model: WaitModel::cluster2021(),
            security: SecurityPolicy::permissive(),
            injection_cache_entries: crate::runtime::MAX_INJECTION_CACHE_ENTRIES,
            skip_execution: false,
            injected_dispatch_ns: 28.0,
            local_dispatch_ns: 18.0,
            execution_policy: ExecutionPolicy::Resolved,
        }
    }

    /// Same configuration but with WFE-assisted waiting (Figs. 13–14).
    pub fn with_wfe(mut self) -> Self {
        self.wait_mode = WaitMode::Wfe;
        self
    }

    /// Same configuration but skipping execution (Figs. 5–6).
    pub fn without_execution(mut self) -> Self {
        self.skip_execution = true;
        self
    }

    /// Same configuration but with `n` receiver shards draining the banks in
    /// parallel (bank `b` owned by shard `b % n`).
    pub fn with_shards(mut self, n: usize) -> Self {
        self.num_shards = n;
        self
    }

    /// Same configuration but with `n` sender streams (one
    /// [`TwoChainsSender`](crate::runtime::TwoChainsSender) per stream in a
    /// [`SenderFleet`](crate::runtime::SenderFleet); stream `s` fills the banks
    /// with `bank % n == s`).
    pub fn with_sender_streams(mut self, n: usize) -> Self {
        self.sender_streams = n;
        self
    }

    /// Same configuration but flushing one credit put per retired frame
    /// ([`CreditFlushPolicy::PerFrame`]) — the pre-coalescing wire behaviour.
    pub fn with_per_frame_credits(mut self) -> Self {
        self.credit_flush_policy = CreditFlushPolicy::PerFrame;
        self
    }

    /// Same configuration but with an explicit adaptive-flush headroom
    /// watermark (see [`RuntimeConfig::credit_flush_watermark`]). Pinning the
    /// knob disables the runtime EWMA adaptation — the static value becomes
    /// an override.
    pub fn with_credit_flush_watermark(mut self, n: usize) -> Self {
        self.credit_flush_watermark = n;
        self.adaptive_credit_watermark = false;
        self
    }

    /// Same configuration but posting one put per frame
    /// ([`AggregationPolicy::PerFrame`]) — the pre-aggregation wire
    /// behaviour, byte-identical on the fabric.
    pub fn with_per_frame_aggregation(mut self) -> Self {
        self.aggregation_policy = AggregationPolicy::PerFrame;
        self
    }

    /// Same configuration but with an explicit batch-fill bound for
    /// [`AggregationPolicy::Adaptive`] (see
    /// [`RuntimeConfig::batch_max_frames`]).
    pub fn with_batch_max_frames(mut self, n: usize) -> Self {
        self.batch_max_frames = n;
        self
    }

    /// Same configuration but with the read-mostly per-shard address-space
    /// split ([`SpaceMode::ShardLocal`]): executions of jams that do not
    /// declare cross-shard writes take no address-space lock.
    pub fn with_shard_local_space(mut self) -> Self {
        self.space_mode = SpaceMode::ShardLocal;
        self
    }

    /// Same configuration but pinning the interpreter
    /// ([`ExecutionPolicy::Interpret`]) — the pre-resolution execution path,
    /// kept for parity testing against the resolved default.
    pub fn with_interpreted_execution(mut self) -> Self {
        self.execution_policy = ExecutionPolicy::Interpret;
        self
    }

    /// The shard that owns mailbox bank `bank` under this configuration's
    /// `bank % num_shards` map — a convenience for callers aiming traffic at a
    /// particular shard. The runtime itself routes through the shard count fixed
    /// at host construction (`ShardMask`), so mutating `num_shards` after the
    /// host exists changes this helper's answer but not the host's routing.
    pub fn owning_shard(&self, bank: usize) -> usize {
        crate::bank::ShardMask::owner_of(bank, self.num_shards)
    }

    /// Total number of mailboxes.
    pub fn total_mailboxes(&self) -> usize {
        self.banks * self.mailboxes_per_bank
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.frame_capacity < crate::frame::FRAME_HEADER_SIZE + 1 {
            return Err("frame capacity smaller than header".into());
        }
        if self.banks == 0 || self.mailboxes_per_bank == 0 {
            return Err("need at least one bank and one mailbox".into());
        }
        if self.num_shards == 0 {
            return Err("need at least one receiver shard".into());
        }
        if self.injection_cache_entries == 0 {
            return Err("injection caches need at least one entry".into());
        }
        if self.num_shards > self.banks {
            return Err(format!(
                "{} shards but only {} banks: a shard would own no bank",
                self.num_shards, self.banks
            ));
        }
        if self.sender_streams == 0 {
            return Err("need at least one sender stream".into());
        }
        if self.sender_streams > self.banks {
            return Err(format!(
                "{} sender streams but only {} banks: a stream would own no bank",
                self.sender_streams, self.banks
            ));
        }
        if self.completion_window == 0 {
            return Err("completion window needs at least one entry".into());
        }
        if self.credit_flush_watermark == 0 {
            // A zero watermark would only flush on row-fill or idle: a sender
            // down to its last credit could sit unrefilled for a whole scan.
            return Err("credit flush watermark must be at least 1".into());
        }
        if self.batch_max_frames == 0 || self.batch_max_frames > crate::frame::BATCH_MAX_FRAMES {
            return Err(format!(
                "batch_max_frames must be in 1..={}, got {}",
                crate::frame::BATCH_MAX_FRAMES,
                self.batch_max_frames
            ));
        }
        if !self.batch_latency_watermark_ns.is_finite() || self.batch_latency_watermark_ns <= 0.0 {
            return Err(format!(
                "batch latency watermark must be positive and finite, got {}",
                self.batch_latency_watermark_ns
            ));
        }
        Ok(())
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        let c = RuntimeConfig::paper_default();
        assert!(c.validate().is_ok());
        assert_eq!(c.total_mailboxes(), 64);
        assert_eq!(c.frame_capacity, 128 * 1024);
        assert_eq!(c.wait_mode, WaitMode::Polling);
        assert!(!c.skip_execution);
    }

    #[test]
    fn builders_flip_knobs() {
        assert_eq!(
            RuntimeConfig::paper_default().with_wfe().wait_mode,
            WaitMode::Wfe
        );
        assert!(
            RuntimeConfig::paper_default()
                .without_execution()
                .skip_execution
        );
        assert_eq!(
            RuntimeConfig::paper_default().execution_policy,
            ExecutionPolicy::Resolved,
            "resolved execution is the default"
        );
        assert_eq!(
            RuntimeConfig::paper_default()
                .with_interpreted_execution()
                .execution_policy,
            ExecutionPolicy::Interpret
        );
    }

    #[test]
    fn invalid_configs_detected() {
        let mut c = RuntimeConfig::paper_default();
        c.banks = 0;
        assert!(c.validate().is_err());
        let mut c = RuntimeConfig::paper_default();
        c.frame_capacity = 4;
        assert!(c.validate().is_err());
        let mut c = RuntimeConfig::paper_default();
        c.num_shards = 0;
        assert!(c.validate().is_err());
        let c = RuntimeConfig::paper_default().with_shards(5);
        assert!(c.validate().is_err(), "more shards than banks");
        let c = RuntimeConfig::paper_default().with_sender_streams(0);
        assert!(c.validate().is_err(), "zero sender streams");
        let c = RuntimeConfig::paper_default().with_sender_streams(5);
        assert!(c.validate().is_err(), "more streams than banks");
        let mut c = RuntimeConfig::paper_default();
        c.completion_window = 0;
        assert!(c.validate().is_err(), "zero completion window");
        let c = RuntimeConfig::paper_default().with_credit_flush_watermark(0);
        assert!(c.validate().is_err(), "zero credit flush watermark");
        let c = RuntimeConfig::paper_default().with_batch_max_frames(0);
        assert!(c.validate().is_err(), "zero batch fill bound");
        let c = RuntimeConfig::paper_default()
            .with_batch_max_frames(crate::frame::BATCH_MAX_FRAMES + 1);
        assert!(
            c.validate().is_err(),
            "batch fill bound past the wire count field"
        );
        let mut c = RuntimeConfig::paper_default();
        c.batch_latency_watermark_ns = 0.0;
        assert!(c.validate().is_err(), "zero batch latency watermark");
    }

    #[test]
    fn aggregation_defaults_are_adaptive() {
        let c = RuntimeConfig::paper_default();
        assert_eq!(c.aggregation_policy, AggregationPolicy::Adaptive);
        assert_eq!(c.batch_max_frames, 8);
        assert!(c.batch_latency_watermark_ns > 0.0);
        assert!(c.validate().is_ok());
        let c = c.with_per_frame_aggregation().with_batch_max_frames(3);
        assert_eq!(c.aggregation_policy, AggregationPolicy::PerFrame);
        assert_eq!(c.batch_max_frames, 3);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn pinning_the_credit_watermark_disables_runtime_adaptation() {
        let c = RuntimeConfig::paper_default();
        assert!(
            c.adaptive_credit_watermark,
            "EWMA adaptation is the default"
        );
        let c = c.with_credit_flush_watermark(7);
        assert!(!c.adaptive_credit_watermark, "explicit knob is an override");
        assert_eq!(c.credit_flush_watermark, 7);
    }

    #[test]
    fn credit_flush_defaults_are_adaptive() {
        let c = RuntimeConfig::paper_default();
        assert_eq!(c.credit_flush_policy, CreditFlushPolicy::Adaptive);
        assert_eq!(c.credit_flush_watermark, 4);
        assert!(c.validate().is_ok());
        let c = c.with_per_frame_credits().with_credit_flush_watermark(9);
        assert_eq!(c.credit_flush_policy, CreditFlushPolicy::PerFrame);
        assert_eq!(c.credit_flush_watermark, 9);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn sender_stream_defaults_are_single_stream() {
        let c = RuntimeConfig::paper_default();
        assert_eq!(c.sender_streams, 1);
        assert_eq!(c.completion_window, 256);
        assert_eq!(
            RuntimeConfig::paper_default()
                .with_sender_streams(4)
                .sender_streams,
            4
        );
    }

    #[test]
    fn shard_ownership_is_bank_modulo() {
        let c = RuntimeConfig::paper_default().with_shards(4);
        assert!(c.validate().is_ok());
        assert_eq!(c.owning_shard(0), 0);
        assert_eq!(c.owning_shard(3), 3);
        let c2 = RuntimeConfig::paper_default().with_shards(2);
        assert_eq!(c2.owning_shard(3), 1);
        // Default is the single-shard (PR-1 compatible) configuration.
        assert_eq!(RuntimeConfig::paper_default().num_shards, 1);
    }

    #[test]
    fn invocation_labels() {
        assert_eq!(InvocationMode::Injected.label(), "Injected Function");
        assert_eq!(InvocationMode::Local.label(), "Local Function");
        assert_eq!(InvocationMode::ALL.len(), 2);
    }
}
