//! Active-message frame layout.
//!
//! A frame is what one one-sided put deposits into a reactive mailbox (Figs. 1–3 of
//! the paper):
//!
//! ```text
//! | HDR (36 B) | GOTP | CODE | ARGS | USR | TRAILER (4 B, ends in SIG_MAG) |
//! ```
//!
//! *Injected Function* frames carry the patched GOT image (`GOTP`) and the function
//! bytecode (`CODE`); *Local Function* frames set both lengths to zero and carry only
//! the element ID that indexes the receiver's Local Function library. The final byte
//! of the frame is the signal magic the receiver spins on: because the fabric
//! delivers the put in order (or the sender fences before a separate signal put), a
//! receiver that observes `SIG_MAG` is guaranteed to observe the whole frame.
//!
//! With the paper's Indirect Put jam (1392 B of code + 16 B GOT image) and its 20-byte
//! ARGS block, the one-integer frame is 64 bytes in Local mode and 1472 bytes in
//! Injected mode — the exact sizes §VII-A quotes.
//!
//! ## Chain descriptors
//!
//! A frame may additionally carry a **chain descriptor**: an ordered list of up to
//! [`CHAIN_MAX_STAGES`] continuation stages the receiver runs after the header's
//! primary element, each an `(elem_id, arg-mapping)` pair resolved through the Local
//! Function library. The descriptor rides in two previously reserved header bytes
//! (byte 30: chain version, byte 31: continuation-stage count) plus one 8-byte record
//! per stage between the header and the GOT image. Version 0 is the legacy layout —
//! both bytes were always written as zero, so every pre-chain frame decodes as a
//! chain-free version-0 frame and every version-0 frame claiming stages is rejected
//! as corrupt.

use crate::error::{AmError, AmResult};

/// Frame magic ("TCAM").
pub const FRAME_MAGIC: u32 = 0x4D41_4354;
/// Size of the fixed header.
pub const FRAME_HEADER_SIZE: usize = 36;
/// Size of the trailer (sequence echo + signal magic).
pub const FRAME_TRAILER_SIZE: usize = 4;
/// Magic byte marking the end of the header (the paper's `MAG`).
pub const HDR_MAG: u8 = 0xC3;
/// Signal magic byte at the end of the frame (the paper's `SIG MAG`).
pub const SIG_MAG: u8 = 0xA5;
/// Current chain-descriptor wire version (header byte 30). Version 0 is the
/// legacy chain-free layout.
pub const CHAIN_VERSION: u8 = 1;
/// Maximum number of continuation stages one frame can carry after its primary
/// element.
pub const CHAIN_MAX_STAGES: usize = 8;
/// Wire size of one chain-stage record: elem_id (u32 LE), arg-map byte, 3
/// reserved zero bytes.
pub const CHAIN_STAGE_WIRE_SIZE: usize = 8;

/// How a continuation stage receives its operand (its entry registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ChainArgMap {
    /// The stage's first entry register points at the 8-byte per-chain context
    /// holding the previous stage's result — jam *k*'s result registers feed
    /// jam *k+1*'s entry registers. The default, and the paper-shaped pipeline
    /// behaviour.
    #[default]
    Result = 0,
    /// The stage re-reads the frame's original ARGS block (its second entry
    /// register still points at the chain context, so the stage can consult
    /// the running result too).
    KeepArgs = 1,
}

impl ChainArgMap {
    fn from_wire(b: u8) -> Option<ChainArgMap> {
        match b {
            0 => Some(ChainArgMap::Result),
            1 => Some(ChainArgMap::KeepArgs),
            _ => None,
        }
    }
}

/// One continuation stage of a chain: which element runs and how its operand
/// is mapped from the stage before it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ChainStage {
    /// Package element ID, resolved through the receiver's Local Function
    /// library.
    pub elem_id: u32,
    /// Entry-register mapping for this stage.
    pub map: ChainArgMap,
}

/// Ordered continuation stages a frame carries after its primary element.
///
/// A `Some(descriptor)` with zero stages is a *version-1* frame that happens to
/// chain nothing — it round-trips distinctly from a legacy (version-0) frame,
/// which carries `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChainDescriptor {
    len: u8,
    stages: [ChainStage; CHAIN_MAX_STAGES],
}

impl ChainDescriptor {
    /// An empty (zero-stage) version-1 descriptor.
    pub fn new() -> ChainDescriptor {
        ChainDescriptor {
            len: 0,
            stages: [ChainStage {
                elem_id: 0,
                map: ChainArgMap::Result,
            }; CHAIN_MAX_STAGES],
        }
    }

    /// Append a continuation stage. Errors once the frame-format ceiling of
    /// [`CHAIN_MAX_STAGES`] stages is reached.
    pub fn push(&mut self, stage: ChainStage) -> AmResult<()> {
        if usize::from(self.len) >= CHAIN_MAX_STAGES {
            return Err(AmError::BadFrame(format!(
                "chain descriptor full: the wire format carries at most {CHAIN_MAX_STAGES} continuation stages"
            )));
        }
        self.stages[usize::from(self.len)] = stage;
        self.len += 1;
        Ok(())
    }

    /// The continuation stages, in execution order.
    pub fn stages(&self) -> &[ChainStage] {
        &self.stages[..usize::from(self.len)]
    }

    /// Number of continuation stages.
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// True when the descriptor chains nothing after the primary element.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes this descriptor occupies on the wire (between header and GOT).
    pub fn wire_len(&self) -> usize {
        self.len() * CHAIN_STAGE_WIRE_SIZE
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        for stage in self.stages() {
            out.extend_from_slice(&stage.elem_id.to_le_bytes());
            out.push(stage.map as u8);
            out.extend_from_slice(&[0u8; 3]);
        }
    }
}

/// Wire length of an optional chain descriptor.
fn chain_wire_len(chain: Option<&ChainDescriptor>) -> usize {
    chain.map_or(0, ChainDescriptor::wire_len)
}

/// Decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Sequence number assigned by the sender.
    pub sn: u32,
    /// Total frame length in bytes including header and trailer.
    pub frame_len: u32,
    /// Package element ID of the active message.
    pub elem_id: u32,
    /// Whether the frame carries code (Injected Function).
    pub injected: bool,
    /// GOT image length in bytes.
    pub got_len: u16,
    /// Code length in bytes.
    pub code_len: u32,
    /// ARGS block length in bytes.
    pub args_len: u16,
    /// USR payload length in bytes.
    pub usr_len: u32,
}

/// A complete frame, section by section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Header fields.
    pub header: FrameHeader,
    /// Continuation stages after the primary element (`None` for a legacy
    /// version-0 frame).
    pub chain: Option<ChainDescriptor>,
    /// Patched GOT image bytes (empty for Local frames).
    pub got: Vec<u8>,
    /// Encoded function bytecode (empty for Local frames).
    pub code: Vec<u8>,
    /// Fixed argument block.
    pub args: Vec<u8>,
    /// User payload.
    pub usr: Vec<u8>,
}

impl Frame {
    /// Build a Local Function frame.
    pub fn local(sn: u32, elem_id: u32, args: Vec<u8>, usr: Vec<u8>) -> Frame {
        Self::build(sn, elem_id, false, Vec::new(), Vec::new(), args, usr)
    }

    /// Build an Injected Function frame.
    pub fn injected(
        sn: u32,
        elem_id: u32,
        got: Vec<u8>,
        code: Vec<u8>,
        args: Vec<u8>,
        usr: Vec<u8>,
    ) -> Frame {
        Self::build(sn, elem_id, true, got, code, args, usr)
    }

    fn build(
        sn: u32,
        elem_id: u32,
        injected: bool,
        got: Vec<u8>,
        code: Vec<u8>,
        args: Vec<u8>,
        usr: Vec<u8>,
    ) -> Frame {
        let frame_len = (FRAME_HEADER_SIZE
            + got.len()
            + code.len()
            + args.len()
            + usr.len()
            + FRAME_TRAILER_SIZE) as u32;
        Frame {
            header: FrameHeader {
                sn,
                frame_len,
                elem_id,
                injected,
                got_len: got.len() as u16,
                code_len: code.len() as u32,
                args_len: args.len() as u16,
                usr_len: usr.len() as u32,
            },
            chain: None,
            got,
            code,
            args,
            usr,
        }
    }

    /// Attach a chain descriptor, upgrading the frame to the version-1 layout
    /// and growing `frame_len` by the descriptor's wire size.
    pub fn with_chain(mut self, chain: ChainDescriptor) -> Frame {
        let old = chain_wire_len(self.chain.as_ref());
        self.header.frame_len = self.header.frame_len - old as u32 + chain.wire_len() as u32;
        self.chain = Some(chain);
        self
    }

    /// Total size of the frame on the wire.
    pub fn wire_size(&self) -> usize {
        self.header.frame_len as usize
    }

    /// Byte offset of the GOT image within the frame.
    pub fn got_offset(&self) -> usize {
        FRAME_HEADER_SIZE + chain_wire_len(self.chain.as_ref())
    }

    /// Byte offset of the code section within the frame.
    pub fn code_offset(&self) -> usize {
        self.got_offset() + self.got.len()
    }

    /// Byte offset of the ARGS block within the frame.
    pub fn args_offset(&self) -> usize {
        self.code_offset() + self.code.len()
    }

    /// Byte offset of the USR payload within the frame.
    pub fn usr_offset(&self) -> usize {
        self.args_offset() + self.args.len()
    }

    /// Byte offset of the signal byte (the last byte of the frame).
    pub fn signal_offset(&self) -> usize {
        self.wire_size() - 1
    }

    /// Encode the frame into wire bytes, ending with `SIG_MAG`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_size());
        self.encode_into(&mut out);
        out
    }

    /// Encode the frame into `out` (cleared first), reusing its capacity. This is the
    /// steady-state path: a sender that keeps one scratch buffer alive performs zero
    /// heap allocations per send once the buffer has grown to the frame size.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        encode_wire_into(
            self.header.sn,
            self.header.elem_id,
            self.header.injected,
            self.chain.as_ref(),
            &self.got,
            &self.code,
            &self.args,
            &self.usr,
            out,
        );
        debug_assert_eq!(out.len(), self.wire_size());
    }

    /// Decode wire bytes back into an owned frame, validating magics and lengths.
    pub fn decode(bytes: &[u8]) -> AmResult<Frame> {
        Ok(FrameView::parse(bytes)?.to_frame())
    }
}

/// Validate that section lengths fit the wire header's fixed-width fields (GOT and
/// ARGS ride in `u16` fields, code and USR in `u32`). The sender calls this before
/// encoding so an oversized section is a sender-side error instead of a silently
/// truncated header the receiver would misattribute to a malformed wire frame.
pub(crate) fn validate_section_lens(
    got: &[u8],
    code: &[u8],
    args: &[u8],
    usr: &[u8],
) -> AmResult<()> {
    if got.len() > u16::MAX as usize {
        return Err(AmError::BadFrame(format!(
            "GOT image of {} bytes exceeds the u16 wire field",
            got.len()
        )));
    }
    if args.len() > u16::MAX as usize {
        return Err(AmError::BadFrame(format!(
            "ARGS block of {} bytes exceeds the u16 wire field",
            args.len()
        )));
    }
    if code.len() > u32::MAX as usize {
        return Err(AmError::BadFrame(format!(
            "code section of {} bytes exceeds the u32 wire field",
            code.len()
        )));
    }
    if usr.len() > u32::MAX as usize {
        return Err(AmError::BadFrame(format!(
            "USR payload of {} bytes exceeds the u32 wire field",
            usr.len()
        )));
    }
    Ok(())
}

/// Encode one frame directly from its constituent sections into `out` (cleared
/// first). [`Frame::encode_into`] and the sender's template fast path both funnel
/// through this, so the wire bytes are identical whether a frame was materialised as
/// a [`Frame`] or streamed from cached GOT/code slices.
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_wire_into(
    sn: u32,
    elem_id: u32,
    injected: bool,
    chain: Option<&ChainDescriptor>,
    got: &[u8],
    code: &[u8],
    args: &[u8],
    usr: &[u8],
    out: &mut Vec<u8>,
) {
    let frame_len = (FRAME_HEADER_SIZE
        + chain_wire_len(chain)
        + got.len()
        + code.len()
        + args.len()
        + usr.len()
        + FRAME_TRAILER_SIZE) as u32;
    out.clear();
    out.reserve(frame_len as usize);
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&sn.to_le_bytes());
    out.extend_from_slice(&frame_len.to_le_bytes());
    out.extend_from_slice(&elem_id.to_le_bytes());
    out.extend_from_slice(&(injected as u16).to_le_bytes());
    out.extend_from_slice(&(got.len() as u16).to_le_bytes());
    out.extend_from_slice(&(code.len() as u32).to_le_bytes());
    out.extend_from_slice(&(args.len() as u16).to_le_bytes());
    out.extend_from_slice(&(usr.len() as u32).to_le_bytes());
    match chain {
        Some(c) => {
            out.push(CHAIN_VERSION);
            out.push(c.len() as u8);
        }
        None => out.extend_from_slice(&[0u8; 2]),
    }
    out.extend_from_slice(&[0u8; 3]);
    out.push(HDR_MAG);
    debug_assert_eq!(out.len(), FRAME_HEADER_SIZE);
    if let Some(c) = chain {
        c.encode_into(out);
    }
    out.extend_from_slice(got);
    out.extend_from_slice(code);
    out.extend_from_slice(args);
    out.extend_from_slice(usr);
    // Trailer: low 3 bytes of the sequence number, then the signal magic.
    out.extend_from_slice(&sn.to_le_bytes()[..3]);
    out.push(SIG_MAG);
    debug_assert_eq!(out.len(), frame_len as usize);
}

/// A validated frame whose sections borrow the receive buffer — the zero-copy
/// counterpart of [`Frame::decode`].
///
/// The receiver's hot path parses arrived bytes into a `FrameView`, hashes the
/// borrowed `code`/`got` slices to probe the injected-code cache, and copies only
/// the `args`/`usr` sections (which the jam may mutate) into its address space. The
/// GOT and code sections are never copied out of the receive buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameView<'a> {
    /// Decoded header fields.
    pub header: FrameHeader,
    /// Continuation stages after the primary element (`None` for a legacy
    /// version-0 frame).
    pub chain: Option<ChainDescriptor>,
    /// Patched GOT image bytes (empty for Local frames).
    pub got: &'a [u8],
    /// Encoded function bytecode (empty for Local frames).
    pub code: &'a [u8],
    /// Fixed argument block.
    pub args: &'a [u8],
    /// User payload.
    pub usr: &'a [u8],
}

impl<'a> FrameView<'a> {
    /// Parse and validate wire bytes without copying any section.
    pub fn parse(bytes: &'a [u8]) -> AmResult<FrameView<'a>> {
        if bytes.len() < FRAME_HEADER_SIZE + FRAME_TRAILER_SIZE {
            return Err(AmError::BadFrame(format!(
                "frame too short: {} bytes",
                bytes.len()
            )));
        }
        let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        if magic != FRAME_MAGIC {
            return Err(AmError::BadFrame(format!("bad magic {magic:#010x}")));
        }
        if bytes[FRAME_HEADER_SIZE - 1] != HDR_MAG {
            return Err(AmError::BadFrame("missing header magic byte".into()));
        }
        let sn = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        let frame_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let elem_id = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let injected = u16::from_le_bytes(bytes[16..18].try_into().unwrap()) != 0;
        let got_len = u16::from_le_bytes(bytes[18..20].try_into().unwrap()) as usize;
        let code_len = u32::from_le_bytes(bytes[20..24].try_into().unwrap()) as usize;
        let args_len = u16::from_le_bytes(bytes[24..26].try_into().unwrap()) as usize;
        let usr_len = u32::from_le_bytes(bytes[26..30].try_into().unwrap()) as usize;
        let chain_version = bytes[30];
        let chain_stage_count = bytes[31] as usize;
        let chain_len = match chain_version {
            // Legacy layout: both bytes were always written zero, so a
            // version-0 frame claiming stages is corrupt, not old.
            0 if chain_stage_count != 0 => {
                return Err(AmError::BadFrame(format!(
                    "version-0 frame claims {chain_stage_count} chain stages"
                )));
            }
            0 => 0,
            CHAIN_VERSION => {
                if chain_stage_count > CHAIN_MAX_STAGES {
                    return Err(AmError::BadFrame(format!(
                        "chain descriptor claims {chain_stage_count} stages, wire maximum is {CHAIN_MAX_STAGES}"
                    )));
                }
                chain_stage_count * CHAIN_STAGE_WIRE_SIZE
            }
            v => {
                return Err(AmError::BadFrame(format!(
                    "unknown chain version {v} (this receiver speaks up to {CHAIN_VERSION})"
                )));
            }
        };
        let expected = FRAME_HEADER_SIZE
            .checked_add(chain_len)
            .and_then(|n| n.checked_add(got_len))
            .and_then(|n| n.checked_add(code_len))
            .and_then(|n| n.checked_add(args_len))
            .and_then(|n| n.checked_add(usr_len))
            .and_then(|n| n.checked_add(FRAME_TRAILER_SIZE))
            .ok_or_else(|| AmError::BadFrame("section lengths overflow".into()))?;
        if frame_len != expected || bytes.len() < frame_len {
            return Err(AmError::BadFrame(format!(
                "inconsistent lengths: header says {frame_len}, sections say {expected}, buffer {}",
                bytes.len()
            )));
        }
        if bytes[frame_len - 1] != SIG_MAG {
            return Err(AmError::BadFrame("missing signal magic".into()));
        }
        if bytes[frame_len - 4..frame_len - 1] != sn.to_le_bytes()[..3] {
            // The echo is the primary forensic signal once reorder faults
            // exist: carry both sides so a log line pinpoints which frame
            // overwrote which.
            let observed = u32::from_le_bytes([
                bytes[frame_len - 4],
                bytes[frame_len - 3],
                bytes[frame_len - 2],
                0,
            ]);
            return Err(AmError::BadFrame(format!(
                "sequence echo mismatch: header sn {sn} expects echo {:#08x}, trailer carries {observed:#08x}",
                sn & 0x00FF_FFFF
            )));
        }
        let chain = if chain_version == 0 {
            None
        } else {
            let mut c = ChainDescriptor::new();
            for i in 0..chain_stage_count {
                let off = FRAME_HEADER_SIZE + i * CHAIN_STAGE_WIRE_SIZE;
                let stage_elem = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
                let map = ChainArgMap::from_wire(bytes[off + 4]).ok_or_else(|| {
                    AmError::BadFrame(format!(
                        "chain stage {i} carries unknown arg-map byte {:#04x}",
                        bytes[off + 4]
                    ))
                })?;
                c.push(ChainStage {
                    elem_id: stage_elem,
                    map,
                })
                .expect("stage count already bounded by CHAIN_MAX_STAGES");
            }
            Some(c)
        };
        let mut pos = FRAME_HEADER_SIZE + chain_len;
        let mut take = |n: usize| {
            let s = &bytes[pos..pos + n];
            pos += n;
            s
        };
        Ok(FrameView {
            header: FrameHeader {
                sn,
                frame_len: frame_len as u32,
                elem_id,
                injected,
                got_len: got_len as u16,
                code_len: code_len as u32,
                args_len: args_len as u16,
                usr_len: usr_len as u32,
            },
            chain,
            got: take(got_len),
            code: take(code_len),
            args: take(args_len),
            usr: take(usr_len),
        })
    }

    /// Materialise an owned [`Frame`] (copies every section).
    pub fn to_frame(&self) -> Frame {
        Frame {
            header: self.header,
            chain: self.chain,
            got: self.got.to_vec(),
            code: self.code.to_vec(),
            args: self.args.to_vec(),
            usr: self.usr.to_vec(),
        }
    }

    /// Byte offset of the GOT image within the frame.
    pub fn got_offset(&self) -> usize {
        FRAME_HEADER_SIZE + chain_wire_len(self.chain.as_ref())
    }

    /// Byte offset of the code section within the frame.
    pub fn code_offset(&self) -> usize {
        self.got_offset() + self.got.len()
    }

    /// Byte offset of the ARGS block within the frame.
    pub fn args_offset(&self) -> usize {
        self.code_offset() + self.code.len()
    }

    /// Byte offset of the USR payload within the frame.
    pub fn usr_offset(&self) -> usize {
        self.args_offset() + self.args.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_frame_size_matches_paper_one_integer_case() {
        // 20-byte ARGS block + one 4-byte integer payload -> exactly 64 bytes.
        let f = Frame::local(1, 2, vec![0; 20], vec![0; 4]);
        assert_eq!(f.wire_size(), 64);
        assert!(!f.header.injected);
    }

    #[test]
    fn injected_frame_size_matches_paper_one_integer_case() {
        // The Indirect Put jam ships 1392 B of code + 16 B of GOT image = 1408 B of
        // "code" on top of the Local frame -> 1472 bytes.
        let f = Frame::injected(1, 2, vec![0; 16], vec![0; 1392], vec![0; 20], vec![0; 4]);
        assert_eq!(f.wire_size(), 1472);
        assert!(f.header.injected);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let f = Frame::injected(
            7,
            3,
            vec![1; 24],
            vec![2; 100],
            vec![3; 20],
            (0u32..50).flat_map(|v| v.to_le_bytes()).collect(),
        );
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.wire_size());
        assert_eq!(bytes[bytes.len() - 1], SIG_MAG);
        assert_eq!(bytes[FRAME_HEADER_SIZE - 1], HDR_MAG);
        let back = Frame::decode(&bytes).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn section_offsets_partition_the_frame() {
        let f = Frame::injected(1, 1, vec![0; 16], vec![0; 64], vec![0; 20], vec![0; 8]);
        assert_eq!(f.got_offset(), 36);
        assert_eq!(f.code_offset(), 52);
        assert_eq!(f.args_offset(), 116);
        assert_eq!(f.usr_offset(), 136);
        assert_eq!(f.signal_offset(), f.wire_size() - 1);
        assert_eq!(
            f.usr_offset() + f.usr.len() + FRAME_TRAILER_SIZE,
            f.wire_size()
        );
    }

    #[test]
    fn corrupted_frames_are_rejected() {
        let f = Frame::local(5, 1, vec![0; 20], vec![9; 16]);
        let good = f.encode();

        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(
            matches!(Frame::decode(&bad), Err(AmError::BadFrame(_))),
            "magic"
        );

        let mut bad = good.clone();
        bad[FRAME_HEADER_SIZE - 1] = 0;
        assert!(
            matches!(Frame::decode(&bad), Err(AmError::BadFrame(_))),
            "hdr mag"
        );

        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] = 0;
        assert!(
            matches!(Frame::decode(&bad), Err(AmError::BadFrame(_))),
            "sig mag"
        );

        let mut bad = good.clone();
        bad[8] = 0xFF; // frame_len
        assert!(
            matches!(Frame::decode(&bad), Err(AmError::BadFrame(_))),
            "length"
        );

        let mut bad = good.clone();
        bad[4] ^= 0xFF; // sn no longer matches trailer echo
        match Frame::decode(&bad) {
            Err(AmError::BadFrame(msg)) => {
                // The corrupted header reads sn 5 ^ 0xFF = 0xFA; the trailer
                // still echoes the original sn 5. Both values must be in the
                // message — they are the debugging signal under reorder faults.
                assert!(msg.contains("sequence echo mismatch"), "{msg}");
                assert!(
                    msg.contains("header sn 250"),
                    "expected value missing: {msg}"
                );
                assert!(msg.contains("0x000005"), "observed echo missing: {msg}");
            }
            other => panic!("sn echo corruption not caught: {other:?}"),
        }

        assert!(Frame::decode(&good[..10]).is_err(), "short buffer");
    }

    #[test]
    fn encode_into_matches_encode_and_reuses_capacity() {
        let frames = [
            Frame::local(3, 1, vec![1; 20], vec![2; 48]),
            Frame::injected(4, 2, vec![5; 16], vec![6; 200], vec![7; 20], vec![8; 12]),
        ];
        let mut scratch = Vec::new();
        for f in &frames {
            f.encode_into(&mut scratch);
            assert_eq!(
                scratch,
                f.encode(),
                "encode_into must be byte-identical to encode"
            );
        }
        // The scratch buffer only ever grows; a second pass over the same frames
        // performs no further allocation.
        let cap = scratch.capacity();
        for f in &frames {
            f.encode_into(&mut scratch);
        }
        assert_eq!(scratch.capacity(), cap);
    }

    #[test]
    fn frame_view_borrows_sections_and_roundtrips() {
        let f = Frame::injected(9, 5, vec![1; 16], vec![2; 64], vec![3; 20], vec![4; 32]);
        let bytes = f.encode();
        let view = FrameView::parse(&bytes).unwrap();
        assert_eq!(view.header, f.header);
        assert_eq!(view.got, &f.got[..]);
        assert_eq!(view.code, &f.code[..]);
        assert_eq!(view.args, &f.args[..]);
        assert_eq!(view.usr, &f.usr[..]);
        assert_eq!(view.got_offset(), f.got_offset());
        assert_eq!(view.code_offset(), f.code_offset());
        assert_eq!(view.args_offset(), f.args_offset());
        assert_eq!(view.usr_offset(), f.usr_offset());
        assert_eq!(view.to_frame(), f);
    }

    #[test]
    fn local_and_injected_differ_only_by_code_sections() {
        let args = vec![7u8; 20];
        let usr = vec![9u8; 256];
        let local = Frame::local(1, 4, args.clone(), usr.clone());
        let injected = Frame::injected(1, 4, vec![0; 16], vec![0; 1392], args, usr);
        assert_eq!(injected.wire_size() - local.wire_size(), 1408);
        assert_eq!(local.header.elem_id, injected.header.elem_id);
    }

    fn chain_of(ids: &[u32]) -> ChainDescriptor {
        let mut c = ChainDescriptor::new();
        for &id in ids {
            c.push(ChainStage {
                elem_id: id,
                map: ChainArgMap::Result,
            })
            .unwrap();
        }
        c
    }

    #[test]
    fn chained_frame_roundtrips_and_shifts_sections() {
        let chain = chain_of(&[11, 12, 13]);
        let f = Frame::injected(9, 10, vec![1; 16], vec![2; 64], vec![3; 20], vec![4; 8])
            .with_chain(chain);
        assert_eq!(
            f.got_offset(),
            FRAME_HEADER_SIZE + 3 * CHAIN_STAGE_WIRE_SIZE
        );
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.wire_size());
        assert_eq!(bytes[30], CHAIN_VERSION);
        assert_eq!(bytes[31], 3);
        let view = FrameView::parse(&bytes).unwrap();
        assert_eq!(view.chain, Some(chain));
        assert_eq!(view.got, &f.got[..]);
        assert_eq!(view.args, &f.args[..]);
        assert_eq!(view.usr, &f.usr[..]);
        assert_eq!(view.got_offset(), f.got_offset());
        assert_eq!(view.to_frame(), f);
    }

    #[test]
    fn zero_stage_chain_is_distinct_from_legacy() {
        let base = Frame::local(5, 6, vec![0; 20], vec![0; 4]);
        let v1 = base.clone().with_chain(ChainDescriptor::new());
        // Same wire size — a zero-stage descriptor occupies no section bytes —
        // but the version byte distinguishes the layouts and round-trips.
        assert_eq!(v1.wire_size(), base.wire_size());
        let legacy_bytes = base.encode();
        let v1_bytes = v1.encode();
        assert_eq!(legacy_bytes[30], 0);
        assert_eq!(v1_bytes[30], CHAIN_VERSION);
        assert_eq!(FrameView::parse(&legacy_bytes).unwrap().chain, None);
        assert_eq!(
            FrameView::parse(&v1_bytes).unwrap().chain,
            Some(ChainDescriptor::new())
        );
    }

    #[test]
    fn max_stage_chain_roundtrips_and_overflow_is_rejected() {
        let ids: Vec<u32> = (100..100 + CHAIN_MAX_STAGES as u32).collect();
        let mut chain = chain_of(&ids);
        assert_eq!(chain.len(), CHAIN_MAX_STAGES);
        assert!(
            chain
                .push(ChainStage {
                    elem_id: 999,
                    map: ChainArgMap::KeepArgs,
                })
                .is_err(),
            "ninth stage must be refused"
        );
        let f = Frame::local(1, 2, vec![0; 20], vec![0; 4]).with_chain(chain);
        let wire = f.encode();
        let view = FrameView::parse(&wire).unwrap();
        let got: Vec<u32> = view
            .chain
            .unwrap()
            .stages()
            .iter()
            .map(|s| s.elem_id)
            .collect();
        assert_eq!(got, ids);
    }

    #[test]
    fn corrupted_chain_fields_are_rejected() {
        let f = Frame::local(1, 2, vec![0; 20], vec![0; 4]).with_chain(chain_of(&[7]));
        let good = f.encode();

        // Version-0 frame claiming stages.
        let mut bad = good.clone();
        bad[30] = 0;
        assert!(
            matches!(Frame::decode(&bad), Err(AmError::BadFrame(_))),
            "v0 with stages"
        );

        // Unknown future version.
        let mut bad = good.clone();
        bad[30] = 9;
        assert!(
            matches!(Frame::decode(&bad), Err(AmError::BadFrame(_))),
            "unknown version"
        );

        // Stage count past the wire ceiling.
        let mut bad = good.clone();
        bad[31] = CHAIN_MAX_STAGES as u8 + 1;
        assert!(
            matches!(Frame::decode(&bad), Err(AmError::BadFrame(_))),
            "too many stages"
        );

        // Invalid arg-map byte inside the stage record.
        let mut bad = good.clone();
        bad[FRAME_HEADER_SIZE + 4] = 0x7F;
        match Frame::decode(&bad) {
            Err(AmError::BadFrame(msg)) => {
                assert!(msg.contains("arg-map"), "{msg}")
            }
            other => panic!("bad arg-map byte not caught: {other:?}"),
        }

        // Stage count that disagrees with frame_len.
        let mut bad = good.clone();
        bad[31] = 2;
        assert!(
            matches!(Frame::decode(&bad), Err(AmError::BadFrame(_))),
            "length mismatch"
        );
    }
}
