//! Active-message frame layout.
//!
//! A frame is what one one-sided put deposits into a reactive mailbox (Figs. 1–3 of
//! the paper):
//!
//! ```text
//! | HDR (36 B) | GOTP | CODE | ARGS | USR | TRAILER (4 B, ends in SIG_MAG) |
//! ```
//!
//! *Injected Function* frames carry the patched GOT image (`GOTP`) and the function
//! bytecode (`CODE`); *Local Function* frames set both lengths to zero and carry only
//! the element ID that indexes the receiver's Local Function library. The final byte
//! of the frame is the signal magic the receiver spins on: because the fabric
//! delivers the put in order (or the sender fences before a separate signal put), a
//! receiver that observes `SIG_MAG` is guaranteed to observe the whole frame.
//!
//! With the paper's Indirect Put jam (1392 B of code + 16 B GOT image) and its 20-byte
//! ARGS block, the one-integer frame is 64 bytes in Local mode and 1472 bytes in
//! Injected mode — the exact sizes §VII-A quotes.
//!
//! ## Chain descriptors
//!
//! A frame may additionally carry a **chain descriptor**: an ordered list of up to
//! [`CHAIN_MAX_STAGES`] continuation stages the receiver runs after the header's
//! primary element, each an `(elem_id, arg-mapping)` pair resolved through the Local
//! Function library. The descriptor rides in two previously reserved header bytes
//! (byte 30: chain version, byte 31: continuation-stage count) plus one 8-byte record
//! per stage between the header and the GOT image. Version 0 is the legacy layout —
//! both bytes were always written as zero, so every pre-chain frame decodes as a
//! chain-free version-0 frame and every version-0 frame claiming stages is rejected
//! as corrupt.
//!
//! ## Multi-frame batch containers
//!
//! A sender aggregating its data path posts a **batch container** instead of N
//! individual frames: one put whose payload is
//!
//! ```text
//! | OUTER HDR (36 B) | prefix + frame | prefix + frame | ... | TRAILER (4 B) |
//! ```
//!
//! The outer header reuses the single-frame header shape so the receiver's mailbox
//! readiness protocol ([`HDR_MAG`] at byte 35, total length at bytes 8–11, [`SIG_MAG`]
//! as the final release-published byte) applies to a batch without modification. The
//! three previously reserved header bytes disambiguate: byte 32 carries the batch
//! format version ([`BATCH_VERSION`]; single frames always write 0 there), byte 33
//! the inner-frame count, byte 34 stays reserved-zero. Each inner frame is a
//! complete, independently valid wire frame — own header, own sequence number, own
//! trailer — preceded by an 8-byte prefix (u32 LE frame length, u16 LE destination
//! mailbox slot, 2 reserved zero bytes). The outer sequence number (bytes 4–7)
//! echoes the *first* inner frame's, so one release header publishes the whole
//! batch while per-inner-frame sequence numbers are preserved for the receiver's
//! gap detection, replay suppression and per-frame credit retirement.

use crate::error::{AmError, AmResult};

/// Frame magic ("TCAM").
pub const FRAME_MAGIC: u32 = 0x4D41_4354;
/// Size of the fixed header.
pub const FRAME_HEADER_SIZE: usize = 36;
/// Size of the trailer (sequence echo + signal magic).
pub const FRAME_TRAILER_SIZE: usize = 4;
/// Magic byte marking the end of the header (the paper's `MAG`).
pub const HDR_MAG: u8 = 0xC3;
/// Signal magic byte at the end of the frame (the paper's `SIG MAG`).
pub const SIG_MAG: u8 = 0xA5;
/// Current chain-descriptor wire version (header byte 30). Version 0 is the
/// legacy chain-free layout.
pub const CHAIN_VERSION: u8 = 1;
/// Maximum number of continuation stages one frame can carry after its primary
/// element.
pub const CHAIN_MAX_STAGES: usize = 8;
/// Wire size of one chain-stage record: elem_id (u32 LE), arg-map byte, 3
/// reserved zero bytes.
pub const CHAIN_STAGE_WIRE_SIZE: usize = 8;
/// Current multi-frame batch-container version (header byte 32). Single frames
/// always write 0 there, so a nonzero byte 32 unambiguously marks a container.
pub const BATCH_VERSION: u8 = 1;
/// Wire size of the per-inner-frame prefix inside a batch container: frame
/// length (u32 LE), destination mailbox slot (u16 LE), 2 reserved zero bytes.
pub const BATCH_PREFIX_SIZE: usize = 8;
/// Maximum number of inner frames one batch container can carry (the count
/// rides in the one-byte header field 33).
pub const BATCH_MAX_FRAMES: usize = 255;
/// Fixed wire overhead of a batch container beyond its inner frames' own bytes:
/// the outer header plus the trailer (each inner frame additionally pays one
/// [`BATCH_PREFIX_SIZE`] prefix).
pub const BATCH_OVERHEAD: usize = FRAME_HEADER_SIZE + FRAME_TRAILER_SIZE;

/// How a continuation stage receives its operand (its entry registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ChainArgMap {
    /// The stage's first entry register points at the 8-byte per-chain context
    /// holding the previous stage's result — jam *k*'s result registers feed
    /// jam *k+1*'s entry registers. The default, and the paper-shaped pipeline
    /// behaviour.
    #[default]
    Result = 0,
    /// The stage re-reads the frame's original ARGS block (its second entry
    /// register still points at the chain context, so the stage can consult
    /// the running result too).
    KeepArgs = 1,
}

impl ChainArgMap {
    fn from_wire(b: u8) -> Option<ChainArgMap> {
        match b {
            0 => Some(ChainArgMap::Result),
            1 => Some(ChainArgMap::KeepArgs),
            _ => None,
        }
    }
}

/// One continuation stage of a chain: which element runs and how its operand
/// is mapped from the stage before it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ChainStage {
    /// Package element ID, resolved through the receiver's Local Function
    /// library.
    pub elem_id: u32,
    /// Entry-register mapping for this stage.
    pub map: ChainArgMap,
}

/// Ordered continuation stages a frame carries after its primary element.
///
/// A `Some(descriptor)` with zero stages is a *version-1* frame that happens to
/// chain nothing — it round-trips distinctly from a legacy (version-0) frame,
/// which carries `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChainDescriptor {
    len: u8,
    stages: [ChainStage; CHAIN_MAX_STAGES],
}

impl ChainDescriptor {
    /// An empty (zero-stage) version-1 descriptor.
    pub fn new() -> ChainDescriptor {
        ChainDescriptor {
            len: 0,
            stages: [ChainStage {
                elem_id: 0,
                map: ChainArgMap::Result,
            }; CHAIN_MAX_STAGES],
        }
    }

    /// Append a continuation stage. Errors once the frame-format ceiling of
    /// [`CHAIN_MAX_STAGES`] stages is reached.
    pub fn push(&mut self, stage: ChainStage) -> AmResult<()> {
        if usize::from(self.len) >= CHAIN_MAX_STAGES {
            return Err(AmError::BadFrame(format!(
                "chain descriptor full: the wire format carries at most {CHAIN_MAX_STAGES} continuation stages"
            )));
        }
        self.stages[usize::from(self.len)] = stage;
        self.len += 1;
        Ok(())
    }

    /// The continuation stages, in execution order.
    pub fn stages(&self) -> &[ChainStage] {
        &self.stages[..usize::from(self.len)]
    }

    /// Number of continuation stages.
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// True when the descriptor chains nothing after the primary element.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes this descriptor occupies on the wire (between header and GOT).
    pub fn wire_len(&self) -> usize {
        self.len() * CHAIN_STAGE_WIRE_SIZE
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        for stage in self.stages() {
            out.extend_from_slice(&stage.elem_id.to_le_bytes());
            out.push(stage.map as u8);
            out.extend_from_slice(&[0u8; 3]);
        }
    }
}

/// Wire length of an optional chain descriptor.
fn chain_wire_len(chain: Option<&ChainDescriptor>) -> usize {
    chain.map_or(0, ChainDescriptor::wire_len)
}

/// Decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Sequence number assigned by the sender.
    pub sn: u32,
    /// Total frame length in bytes including header and trailer.
    pub frame_len: u32,
    /// Package element ID of the active message.
    pub elem_id: u32,
    /// Whether the frame carries code (Injected Function).
    pub injected: bool,
    /// GOT image length in bytes.
    pub got_len: u16,
    /// Code length in bytes.
    pub code_len: u32,
    /// ARGS block length in bytes.
    pub args_len: u16,
    /// USR payload length in bytes.
    pub usr_len: u32,
}

/// A complete frame, section by section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Header fields.
    pub header: FrameHeader,
    /// Continuation stages after the primary element (`None` for a legacy
    /// version-0 frame).
    pub chain: Option<ChainDescriptor>,
    /// Patched GOT image bytes (empty for Local frames).
    pub got: Vec<u8>,
    /// Encoded function bytecode (empty for Local frames).
    pub code: Vec<u8>,
    /// Fixed argument block.
    pub args: Vec<u8>,
    /// User payload.
    pub usr: Vec<u8>,
}

impl Frame {
    /// Build a Local Function frame.
    pub fn local(sn: u32, elem_id: u32, args: Vec<u8>, usr: Vec<u8>) -> Frame {
        Self::build(sn, elem_id, false, Vec::new(), Vec::new(), args, usr)
    }

    /// Build an Injected Function frame.
    pub fn injected(
        sn: u32,
        elem_id: u32,
        got: Vec<u8>,
        code: Vec<u8>,
        args: Vec<u8>,
        usr: Vec<u8>,
    ) -> Frame {
        Self::build(sn, elem_id, true, got, code, args, usr)
    }

    fn build(
        sn: u32,
        elem_id: u32,
        injected: bool,
        got: Vec<u8>,
        code: Vec<u8>,
        args: Vec<u8>,
        usr: Vec<u8>,
    ) -> Frame {
        let frame_len = (FRAME_HEADER_SIZE
            + got.len()
            + code.len()
            + args.len()
            + usr.len()
            + FRAME_TRAILER_SIZE) as u32;
        Frame {
            header: FrameHeader {
                sn,
                frame_len,
                elem_id,
                injected,
                got_len: got.len() as u16,
                code_len: code.len() as u32,
                args_len: args.len() as u16,
                usr_len: usr.len() as u32,
            },
            chain: None,
            got,
            code,
            args,
            usr,
        }
    }

    /// Attach a chain descriptor, upgrading the frame to the version-1 layout
    /// and growing `frame_len` by the descriptor's wire size.
    pub fn with_chain(mut self, chain: ChainDescriptor) -> Frame {
        let old = chain_wire_len(self.chain.as_ref());
        self.header.frame_len = self.header.frame_len - old as u32 + chain.wire_len() as u32;
        self.chain = Some(chain);
        self
    }

    /// Total size of the frame on the wire.
    pub fn wire_size(&self) -> usize {
        self.header.frame_len as usize
    }

    /// Byte offset of the GOT image within the frame.
    pub fn got_offset(&self) -> usize {
        FRAME_HEADER_SIZE + chain_wire_len(self.chain.as_ref())
    }

    /// Byte offset of the code section within the frame.
    pub fn code_offset(&self) -> usize {
        self.got_offset() + self.got.len()
    }

    /// Byte offset of the ARGS block within the frame.
    pub fn args_offset(&self) -> usize {
        self.code_offset() + self.code.len()
    }

    /// Byte offset of the USR payload within the frame.
    pub fn usr_offset(&self) -> usize {
        self.args_offset() + self.args.len()
    }

    /// Byte offset of the signal byte (the last byte of the frame).
    pub fn signal_offset(&self) -> usize {
        self.wire_size() - 1
    }

    /// Encode the frame into wire bytes, ending with `SIG_MAG`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_size());
        self.encode_into(&mut out);
        out
    }

    /// Encode the frame into `out` (cleared first), reusing its capacity. This is the
    /// steady-state path: a sender that keeps one scratch buffer alive performs zero
    /// heap allocations per send once the buffer has grown to the frame size.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        encode_wire_into(
            self.header.sn,
            self.header.elem_id,
            self.header.injected,
            self.chain.as_ref(),
            &self.got,
            &self.code,
            &self.args,
            &self.usr,
            out,
        );
        debug_assert_eq!(out.len(), self.wire_size());
    }

    /// Decode wire bytes back into an owned frame, validating magics and lengths.
    pub fn decode(bytes: &[u8]) -> AmResult<Frame> {
        Ok(FrameView::parse(bytes)?.to_frame())
    }
}

/// Validate that section lengths fit the wire header's fixed-width fields (GOT and
/// ARGS ride in `u16` fields, code and USR in `u32`). The sender calls this before
/// encoding so an oversized section is a sender-side error instead of a silently
/// truncated header the receiver would misattribute to a malformed wire frame.
pub(crate) fn validate_section_lens(
    got: &[u8],
    code: &[u8],
    args: &[u8],
    usr: &[u8],
) -> AmResult<()> {
    if got.len() > u16::MAX as usize {
        return Err(AmError::BadFrame(format!(
            "GOT image of {} bytes exceeds the u16 wire field",
            got.len()
        )));
    }
    if args.len() > u16::MAX as usize {
        return Err(AmError::BadFrame(format!(
            "ARGS block of {} bytes exceeds the u16 wire field",
            args.len()
        )));
    }
    if code.len() > u32::MAX as usize {
        return Err(AmError::BadFrame(format!(
            "code section of {} bytes exceeds the u32 wire field",
            code.len()
        )));
    }
    if usr.len() > u32::MAX as usize {
        return Err(AmError::BadFrame(format!(
            "USR payload of {} bytes exceeds the u32 wire field",
            usr.len()
        )));
    }
    Ok(())
}

/// Encode one frame directly from its constituent sections into `out` (cleared
/// first). [`Frame::encode_into`] and the sender's template fast path both funnel
/// through this, so the wire bytes are identical whether a frame was materialised as
/// a [`Frame`] or streamed from cached GOT/code slices.
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_wire_into(
    sn: u32,
    elem_id: u32,
    injected: bool,
    chain: Option<&ChainDescriptor>,
    got: &[u8],
    code: &[u8],
    args: &[u8],
    usr: &[u8],
    out: &mut Vec<u8>,
) {
    let frame_len = (FRAME_HEADER_SIZE
        + chain_wire_len(chain)
        + got.len()
        + code.len()
        + args.len()
        + usr.len()
        + FRAME_TRAILER_SIZE) as u32;
    out.clear();
    out.reserve(frame_len as usize);
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&sn.to_le_bytes());
    out.extend_from_slice(&frame_len.to_le_bytes());
    out.extend_from_slice(&elem_id.to_le_bytes());
    out.extend_from_slice(&(injected as u16).to_le_bytes());
    out.extend_from_slice(&(got.len() as u16).to_le_bytes());
    out.extend_from_slice(&(code.len() as u32).to_le_bytes());
    out.extend_from_slice(&(args.len() as u16).to_le_bytes());
    out.extend_from_slice(&(usr.len() as u32).to_le_bytes());
    match chain {
        Some(c) => {
            out.push(CHAIN_VERSION);
            out.push(c.len() as u8);
        }
        None => out.extend_from_slice(&[0u8; 2]),
    }
    out.extend_from_slice(&[0u8; 3]);
    out.push(HDR_MAG);
    debug_assert_eq!(out.len(), FRAME_HEADER_SIZE);
    if let Some(c) = chain {
        c.encode_into(out);
    }
    out.extend_from_slice(got);
    out.extend_from_slice(code);
    out.extend_from_slice(args);
    out.extend_from_slice(usr);
    // Trailer: low 3 bytes of the sequence number, then the signal magic.
    out.extend_from_slice(&sn.to_le_bytes()[..3]);
    out.push(SIG_MAG);
    debug_assert_eq!(out.len(), frame_len as usize);
}

/// A validated frame whose sections borrow the receive buffer — the zero-copy
/// counterpart of [`Frame::decode`].
///
/// The receiver's hot path parses arrived bytes into a `FrameView`, hashes the
/// borrowed `code`/`got` slices to probe the injected-code cache, and copies only
/// the `args`/`usr` sections (which the jam may mutate) into its address space. The
/// GOT and code sections are never copied out of the receive buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameView<'a> {
    /// Decoded header fields.
    pub header: FrameHeader,
    /// Continuation stages after the primary element (`None` for a legacy
    /// version-0 frame).
    pub chain: Option<ChainDescriptor>,
    /// Patched GOT image bytes (empty for Local frames).
    pub got: &'a [u8],
    /// Encoded function bytecode (empty for Local frames).
    pub code: &'a [u8],
    /// Fixed argument block.
    pub args: &'a [u8],
    /// User payload.
    pub usr: &'a [u8],
}

impl<'a> FrameView<'a> {
    /// Parse and validate wire bytes without copying any section.
    pub fn parse(bytes: &'a [u8]) -> AmResult<FrameView<'a>> {
        if bytes.len() < FRAME_HEADER_SIZE + FRAME_TRAILER_SIZE {
            return Err(AmError::BadFrame(format!(
                "frame too short: {} bytes",
                bytes.len()
            )));
        }
        let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        if magic != FRAME_MAGIC {
            return Err(AmError::BadFrame(format!("bad magic {magic:#010x}")));
        }
        if bytes[FRAME_HEADER_SIZE - 1] != HDR_MAG {
            return Err(AmError::BadFrame("missing header magic byte".into()));
        }
        if bytes[32] != 0 {
            return Err(AmError::BadFrame(format!(
                "multi-frame batch container (version {}) passed to the single-frame parser",
                bytes[32]
            )));
        }
        let sn = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        let frame_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let elem_id = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let injected = u16::from_le_bytes(bytes[16..18].try_into().unwrap()) != 0;
        let got_len = u16::from_le_bytes(bytes[18..20].try_into().unwrap()) as usize;
        let code_len = u32::from_le_bytes(bytes[20..24].try_into().unwrap()) as usize;
        let args_len = u16::from_le_bytes(bytes[24..26].try_into().unwrap()) as usize;
        let usr_len = u32::from_le_bytes(bytes[26..30].try_into().unwrap()) as usize;
        let chain_version = bytes[30];
        let chain_stage_count = bytes[31] as usize;
        let chain_len = match chain_version {
            // Legacy layout: both bytes were always written zero, so a
            // version-0 frame claiming stages is corrupt, not old.
            0 if chain_stage_count != 0 => {
                return Err(AmError::BadFrame(format!(
                    "version-0 frame claims {chain_stage_count} chain stages"
                )));
            }
            0 => 0,
            CHAIN_VERSION => {
                if chain_stage_count > CHAIN_MAX_STAGES {
                    return Err(AmError::BadFrame(format!(
                        "chain descriptor claims {chain_stage_count} stages, wire maximum is {CHAIN_MAX_STAGES}"
                    )));
                }
                chain_stage_count * CHAIN_STAGE_WIRE_SIZE
            }
            v => {
                return Err(AmError::BadFrame(format!(
                    "unknown chain version {v} (this receiver speaks up to {CHAIN_VERSION})"
                )));
            }
        };
        let expected = FRAME_HEADER_SIZE
            .checked_add(chain_len)
            .and_then(|n| n.checked_add(got_len))
            .and_then(|n| n.checked_add(code_len))
            .and_then(|n| n.checked_add(args_len))
            .and_then(|n| n.checked_add(usr_len))
            .and_then(|n| n.checked_add(FRAME_TRAILER_SIZE))
            .ok_or_else(|| AmError::BadFrame("section lengths overflow".into()))?;
        if frame_len != expected || bytes.len() < frame_len {
            return Err(AmError::BadFrame(format!(
                "inconsistent lengths: header says {frame_len}, sections say {expected}, buffer {}",
                bytes.len()
            )));
        }
        if bytes[frame_len - 1] != SIG_MAG {
            return Err(AmError::BadFrame("missing signal magic".into()));
        }
        if bytes[frame_len - 4..frame_len - 1] != sn.to_le_bytes()[..3] {
            // The echo is the primary forensic signal once reorder faults
            // exist: carry both sides so a log line pinpoints which frame
            // overwrote which.
            let observed = u32::from_le_bytes([
                bytes[frame_len - 4],
                bytes[frame_len - 3],
                bytes[frame_len - 2],
                0,
            ]);
            return Err(AmError::BadFrame(format!(
                "sequence echo mismatch: header sn {sn} expects echo {:#08x}, trailer carries {observed:#08x}",
                sn & 0x00FF_FFFF
            )));
        }
        let chain = if chain_version == 0 {
            None
        } else {
            let mut c = ChainDescriptor::new();
            for i in 0..chain_stage_count {
                let off = FRAME_HEADER_SIZE + i * CHAIN_STAGE_WIRE_SIZE;
                let stage_elem = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
                let map = ChainArgMap::from_wire(bytes[off + 4]).ok_or_else(|| {
                    AmError::BadFrame(format!(
                        "chain stage {i} carries unknown arg-map byte {:#04x}",
                        bytes[off + 4]
                    ))
                })?;
                c.push(ChainStage {
                    elem_id: stage_elem,
                    map,
                })
                .expect("stage count already bounded by CHAIN_MAX_STAGES");
            }
            Some(c)
        };
        let mut pos = FRAME_HEADER_SIZE + chain_len;
        let mut take = |n: usize| {
            let s = &bytes[pos..pos + n];
            pos += n;
            s
        };
        Ok(FrameView {
            header: FrameHeader {
                sn,
                frame_len: frame_len as u32,
                elem_id,
                injected,
                got_len: got_len as u16,
                code_len: code_len as u32,
                args_len: args_len as u16,
                usr_len: usr_len as u32,
            },
            chain,
            got: take(got_len),
            code: take(code_len),
            args: take(args_len),
            usr: take(usr_len),
        })
    }

    /// Materialise an owned [`Frame`] (copies every section).
    pub fn to_frame(&self) -> Frame {
        Frame {
            header: self.header,
            chain: self.chain,
            got: self.got.to_vec(),
            code: self.code.to_vec(),
            args: self.args.to_vec(),
            usr: self.usr.to_vec(),
        }
    }

    /// Byte offset of the GOT image within the frame.
    pub fn got_offset(&self) -> usize {
        FRAME_HEADER_SIZE + chain_wire_len(self.chain.as_ref())
    }

    /// Byte offset of the code section within the frame.
    pub fn code_offset(&self) -> usize {
        self.got_offset() + self.got.len()
    }

    /// Byte offset of the ARGS block within the frame.
    pub fn args_offset(&self) -> usize {
        self.code_offset() + self.code.len()
    }

    /// Byte offset of the USR payload within the frame.
    pub fn usr_offset(&self) -> usize {
        self.args_offset() + self.args.len()
    }
}

/// Whether `bytes` begin with a batch-container header: the outer shape of a
/// frame header (magic + `HDR_MAG`) with a nonzero batch-version byte 32.
/// Single frames always write byte 32 as zero, so detection is unambiguous.
pub fn is_batch(bytes: &[u8]) -> bool {
    bytes.len() >= FRAME_HEADER_SIZE
        && u32::from_le_bytes(bytes[0..4].try_into().unwrap()) == FRAME_MAGIC
        && bytes[FRAME_HEADER_SIZE - 1] == HDR_MAG
        && bytes[32] != 0
}

/// Incremental builder for a multi-frame batch container.
///
/// A sender lane pushes complete encoded wire frames (each with its destination
/// mailbox slot) and finishes the container into one buffer whose final byte is
/// the release-published [`SIG_MAG`] — one put covers the whole batch.
#[derive(Debug, Default)]
pub struct FrameBatch {
    /// Prefixed inner-frame bytes (everything between outer header and trailer).
    body: Vec<u8>,
    count: usize,
    first_sn: Option<u32>,
}

impl FrameBatch {
    /// An empty builder.
    pub fn new() -> FrameBatch {
        FrameBatch::default()
    }

    /// Number of inner frames pushed so far.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no frame has been pushed since the last [`FrameBatch::clear`].
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The batch sequence number: the first inner frame's.
    pub fn first_sn(&self) -> Option<u32> {
        self.first_sn
    }

    /// Total container size on the wire if finished now.
    pub fn wire_size(&self) -> usize {
        BATCH_OVERHEAD + self.body.len()
    }

    /// Container size if a frame of `frame_len` bytes were pushed next.
    pub fn wire_size_with(&self, frame_len: usize) -> usize {
        self.wire_size() + BATCH_PREFIX_SIZE + frame_len
    }

    /// Append one complete encoded wire frame destined for mailbox `slot`.
    /// The frame must carry its own valid header and trailer — the builder
    /// checks the cheap invariants (length, magic, signal byte) so a corrupt
    /// buffer is a sender-side error, not a wire frame the receiver rejects.
    pub fn push(&mut self, slot: u16, frame: &[u8]) -> AmResult<()> {
        if self.count >= BATCH_MAX_FRAMES {
            return Err(AmError::BadFrame(format!(
                "batch container full: the one-byte count field carries at most {BATCH_MAX_FRAMES} frames"
            )));
        }
        if frame.len() < FRAME_HEADER_SIZE + FRAME_TRAILER_SIZE {
            return Err(AmError::BadFrame(format!(
                "inner frame of {} bytes is shorter than header + trailer",
                frame.len()
            )));
        }
        let magic = u32::from_le_bytes(frame[0..4].try_into().unwrap());
        if magic != FRAME_MAGIC || frame[frame.len() - 1] != SIG_MAG {
            return Err(AmError::BadFrame(
                "inner frame is not a complete encoded wire frame".into(),
            ));
        }
        let sn = u32::from_le_bytes(frame[4..8].try_into().unwrap());
        self.first_sn.get_or_insert(sn);
        self.body
            .extend_from_slice(&(frame.len() as u32).to_le_bytes());
        self.body.extend_from_slice(&slot.to_le_bytes());
        self.body.extend_from_slice(&[0u8; 2]);
        self.body.extend_from_slice(frame);
        self.count += 1;
        Ok(())
    }

    /// Encode the finished container into `out` (cleared first), reusing its
    /// capacity. Errors on an empty batch — a container must publish at least
    /// one frame.
    pub fn finish_into(&self, out: &mut Vec<u8>) -> AmResult<()> {
        let sn = self
            .first_sn
            .ok_or_else(|| AmError::BadFrame("batch container holds no frames".into()))?;
        let total = self.wire_size() as u32;
        out.clear();
        out.reserve(total as usize);
        out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        out.extend_from_slice(&sn.to_le_bytes());
        out.extend_from_slice(&total.to_le_bytes());
        // elem_id / injected / section lengths / chain bytes: all zero — the
        // outer header routes nothing itself, it only publishes the batch.
        out.extend_from_slice(&[0u8; 20]);
        out.push(BATCH_VERSION);
        out.push(self.count as u8);
        out.push(0);
        out.push(HDR_MAG);
        debug_assert_eq!(out.len(), FRAME_HEADER_SIZE);
        out.extend_from_slice(&self.body);
        out.extend_from_slice(&sn.to_le_bytes()[..3]);
        out.push(SIG_MAG);
        debug_assert_eq!(out.len(), total as usize);
        Ok(())
    }

    /// Reset the builder for the next batch, keeping the allocation.
    pub fn clear(&mut self) {
        self.body.clear();
        self.count = 0;
        self.first_sn = None;
    }
}

/// A validated batch container whose inner frames borrow the receive buffer —
/// the container-level counterpart of [`FrameView`]. Each inner frame still
/// goes through [`FrameView::parse`] individually when dispatched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchView<'a> {
    /// The batch sequence number (echoes the first inner frame's).
    pub sn: u32,
    /// Total container length on the wire.
    pub wire_len: usize,
    frames: Vec<(u16, &'a [u8])>,
}

impl<'a> BatchView<'a> {
    /// Parse and validate a batch container without copying any inner frame.
    /// A container truncated mid-frame is rejected with the offending inner
    /// frame's sequence number in the error — the forensic signal that names
    /// which message the cut landed on.
    pub fn parse(bytes: &'a [u8]) -> AmResult<BatchView<'a>> {
        if bytes.len() < BATCH_OVERHEAD {
            return Err(AmError::BadFrame(format!(
                "batch container too short: {} bytes",
                bytes.len()
            )));
        }
        let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        if magic != FRAME_MAGIC {
            return Err(AmError::BadFrame(format!("bad batch magic {magic:#010x}")));
        }
        if bytes[FRAME_HEADER_SIZE - 1] != HDR_MAG {
            return Err(AmError::BadFrame(
                "batch container missing header magic byte".into(),
            ));
        }
        match bytes[32] {
            0 => {
                return Err(AmError::BadFrame(
                    "single frame passed to the batch-container parser".into(),
                ));
            }
            BATCH_VERSION => {}
            v => {
                return Err(AmError::BadFrame(format!(
                    "unknown batch version {v} (this receiver speaks up to {BATCH_VERSION})"
                )));
            }
        }
        let count = bytes[33] as usize;
        if count == 0 {
            return Err(AmError::BadFrame(
                "batch container claims zero inner frames".into(),
            ));
        }
        if bytes[34] != 0 {
            return Err(AmError::BadFrame(format!(
                "batch header reserved byte carries {:#04x}",
                bytes[34]
            )));
        }
        let sn = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        let wire_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        if wire_len < BATCH_OVERHEAD {
            return Err(AmError::BadFrame(format!(
                "batch header claims {wire_len} bytes, below the container minimum"
            )));
        }
        // Walk the inner frames against what actually arrived, not just the
        // declared length: a truncated container must name the frame the cut
        // landed on, and the declared length is validated by the walk itself.
        let body_end = wire_len - FRAME_TRAILER_SIZE;
        let avail = bytes.len();
        let mut frames = Vec::with_capacity(count);
        let mut pos = FRAME_HEADER_SIZE;
        for i in 0..count {
            let start = pos + BATCH_PREFIX_SIZE;
            if start > body_end || start > avail {
                return Err(AmError::BadFrame(format!(
                    "batch container truncated before inner frame {i}'s length prefix \
                     ({} of {wire_len} bytes present)",
                    avail.min(body_end)
                )));
            }
            let flen = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            let slot = u16::from_le_bytes(bytes[pos + 4..pos + 6].try_into().unwrap());
            if bytes[pos + 6] != 0 || bytes[pos + 7] != 0 {
                return Err(AmError::BadFrame(format!(
                    "inner frame {i}'s prefix reserved bytes are nonzero"
                )));
            }
            if flen < FRAME_HEADER_SIZE + FRAME_TRAILER_SIZE {
                return Err(AmError::BadFrame(format!(
                    "inner frame {i} claims {flen} bytes, shorter than header + trailer"
                )));
            }
            let end = start
                .checked_add(flen)
                .ok_or_else(|| AmError::BadFrame(format!("inner frame {i}'s length overflows")))?;
            if end > body_end || end > avail {
                // The cut landed inside this frame. Echo its sequence number
                // when its header made it across — that is the number the
                // sender's retransmit machinery keys on.
                let echo = (start + 8 <= avail)
                    .then(|| u32::from_le_bytes(bytes[start + 4..start + 8].try_into().unwrap()));
                return Err(AmError::BadFrame(match echo {
                    Some(inner_sn) => format!(
                        "batch container truncated inside inner frame {i} (sn {inner_sn}): \
                         frame needs {flen} bytes, {} remain",
                        avail.min(body_end).saturating_sub(start)
                    ),
                    None => format!("batch container truncated inside inner frame {i}'s header"),
                }));
            }
            let inner = &bytes[start..end];
            let imagic = u32::from_le_bytes(inner[0..4].try_into().unwrap());
            if imagic != FRAME_MAGIC {
                return Err(AmError::BadFrame(format!(
                    "inner frame {i} has bad magic {imagic:#010x}"
                )));
            }
            frames.push((slot, inner));
            pos = end;
        }
        if pos != body_end {
            return Err(AmError::BadFrame(format!(
                "batch length mismatch: header says {wire_len}, inner frames end at {pos}",
            )));
        }
        if wire_len > avail {
            return Err(AmError::BadFrame(format!(
                "batch container truncated before its trailer ({avail} of {wire_len} bytes)"
            )));
        }
        if bytes[wire_len - 1] != SIG_MAG {
            return Err(AmError::BadFrame("batch missing signal magic".into()));
        }
        if bytes[wire_len - 4..wire_len - 1] != sn.to_le_bytes()[..3] {
            return Err(AmError::BadFrame(format!(
                "batch sequence echo mismatch for sn {sn}"
            )));
        }
        let first_sn = u32::from_le_bytes(frames[0].1[4..8].try_into().unwrap());
        if first_sn != sn {
            return Err(AmError::BadFrame(format!(
                "batch header sn {sn} disagrees with first inner frame sn {first_sn}"
            )));
        }
        Ok(BatchView {
            sn,
            wire_len,
            frames,
        })
    }

    /// The inner frames in wire order: `(destination slot, frame bytes)`.
    pub fn frames(&self) -> &[(u16, &'a [u8])] {
        &self.frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_frame_size_matches_paper_one_integer_case() {
        // 20-byte ARGS block + one 4-byte integer payload -> exactly 64 bytes.
        let f = Frame::local(1, 2, vec![0; 20], vec![0; 4]);
        assert_eq!(f.wire_size(), 64);
        assert!(!f.header.injected);
    }

    #[test]
    fn injected_frame_size_matches_paper_one_integer_case() {
        // The Indirect Put jam ships 1392 B of code + 16 B of GOT image = 1408 B of
        // "code" on top of the Local frame -> 1472 bytes.
        let f = Frame::injected(1, 2, vec![0; 16], vec![0; 1392], vec![0; 20], vec![0; 4]);
        assert_eq!(f.wire_size(), 1472);
        assert!(f.header.injected);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let f = Frame::injected(
            7,
            3,
            vec![1; 24],
            vec![2; 100],
            vec![3; 20],
            (0u32..50).flat_map(|v| v.to_le_bytes()).collect(),
        );
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.wire_size());
        assert_eq!(bytes[bytes.len() - 1], SIG_MAG);
        assert_eq!(bytes[FRAME_HEADER_SIZE - 1], HDR_MAG);
        let back = Frame::decode(&bytes).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn section_offsets_partition_the_frame() {
        let f = Frame::injected(1, 1, vec![0; 16], vec![0; 64], vec![0; 20], vec![0; 8]);
        assert_eq!(f.got_offset(), 36);
        assert_eq!(f.code_offset(), 52);
        assert_eq!(f.args_offset(), 116);
        assert_eq!(f.usr_offset(), 136);
        assert_eq!(f.signal_offset(), f.wire_size() - 1);
        assert_eq!(
            f.usr_offset() + f.usr.len() + FRAME_TRAILER_SIZE,
            f.wire_size()
        );
    }

    #[test]
    fn corrupted_frames_are_rejected() {
        let f = Frame::local(5, 1, vec![0; 20], vec![9; 16]);
        let good = f.encode();

        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(
            matches!(Frame::decode(&bad), Err(AmError::BadFrame(_))),
            "magic"
        );

        let mut bad = good.clone();
        bad[FRAME_HEADER_SIZE - 1] = 0;
        assert!(
            matches!(Frame::decode(&bad), Err(AmError::BadFrame(_))),
            "hdr mag"
        );

        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] = 0;
        assert!(
            matches!(Frame::decode(&bad), Err(AmError::BadFrame(_))),
            "sig mag"
        );

        let mut bad = good.clone();
        bad[8] = 0xFF; // frame_len
        assert!(
            matches!(Frame::decode(&bad), Err(AmError::BadFrame(_))),
            "length"
        );

        let mut bad = good.clone();
        bad[4] ^= 0xFF; // sn no longer matches trailer echo
        match Frame::decode(&bad) {
            Err(AmError::BadFrame(msg)) => {
                // The corrupted header reads sn 5 ^ 0xFF = 0xFA; the trailer
                // still echoes the original sn 5. Both values must be in the
                // message — they are the debugging signal under reorder faults.
                assert!(msg.contains("sequence echo mismatch"), "{msg}");
                assert!(
                    msg.contains("header sn 250"),
                    "expected value missing: {msg}"
                );
                assert!(msg.contains("0x000005"), "observed echo missing: {msg}");
            }
            other => panic!("sn echo corruption not caught: {other:?}"),
        }

        assert!(Frame::decode(&good[..10]).is_err(), "short buffer");
    }

    #[test]
    fn encode_into_matches_encode_and_reuses_capacity() {
        let frames = [
            Frame::local(3, 1, vec![1; 20], vec![2; 48]),
            Frame::injected(4, 2, vec![5; 16], vec![6; 200], vec![7; 20], vec![8; 12]),
        ];
        let mut scratch = Vec::new();
        for f in &frames {
            f.encode_into(&mut scratch);
            assert_eq!(
                scratch,
                f.encode(),
                "encode_into must be byte-identical to encode"
            );
        }
        // The scratch buffer only ever grows; a second pass over the same frames
        // performs no further allocation.
        let cap = scratch.capacity();
        for f in &frames {
            f.encode_into(&mut scratch);
        }
        assert_eq!(scratch.capacity(), cap);
    }

    #[test]
    fn frame_view_borrows_sections_and_roundtrips() {
        let f = Frame::injected(9, 5, vec![1; 16], vec![2; 64], vec![3; 20], vec![4; 32]);
        let bytes = f.encode();
        let view = FrameView::parse(&bytes).unwrap();
        assert_eq!(view.header, f.header);
        assert_eq!(view.got, &f.got[..]);
        assert_eq!(view.code, &f.code[..]);
        assert_eq!(view.args, &f.args[..]);
        assert_eq!(view.usr, &f.usr[..]);
        assert_eq!(view.got_offset(), f.got_offset());
        assert_eq!(view.code_offset(), f.code_offset());
        assert_eq!(view.args_offset(), f.args_offset());
        assert_eq!(view.usr_offset(), f.usr_offset());
        assert_eq!(view.to_frame(), f);
    }

    #[test]
    fn local_and_injected_differ_only_by_code_sections() {
        let args = vec![7u8; 20];
        let usr = vec![9u8; 256];
        let local = Frame::local(1, 4, args.clone(), usr.clone());
        let injected = Frame::injected(1, 4, vec![0; 16], vec![0; 1392], args, usr);
        assert_eq!(injected.wire_size() - local.wire_size(), 1408);
        assert_eq!(local.header.elem_id, injected.header.elem_id);
    }

    fn chain_of(ids: &[u32]) -> ChainDescriptor {
        let mut c = ChainDescriptor::new();
        for &id in ids {
            c.push(ChainStage {
                elem_id: id,
                map: ChainArgMap::Result,
            })
            .unwrap();
        }
        c
    }

    #[test]
    fn chained_frame_roundtrips_and_shifts_sections() {
        let chain = chain_of(&[11, 12, 13]);
        let f = Frame::injected(9, 10, vec![1; 16], vec![2; 64], vec![3; 20], vec![4; 8])
            .with_chain(chain);
        assert_eq!(
            f.got_offset(),
            FRAME_HEADER_SIZE + 3 * CHAIN_STAGE_WIRE_SIZE
        );
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.wire_size());
        assert_eq!(bytes[30], CHAIN_VERSION);
        assert_eq!(bytes[31], 3);
        let view = FrameView::parse(&bytes).unwrap();
        assert_eq!(view.chain, Some(chain));
        assert_eq!(view.got, &f.got[..]);
        assert_eq!(view.args, &f.args[..]);
        assert_eq!(view.usr, &f.usr[..]);
        assert_eq!(view.got_offset(), f.got_offset());
        assert_eq!(view.to_frame(), f);
    }

    #[test]
    fn zero_stage_chain_is_distinct_from_legacy() {
        let base = Frame::local(5, 6, vec![0; 20], vec![0; 4]);
        let v1 = base.clone().with_chain(ChainDescriptor::new());
        // Same wire size — a zero-stage descriptor occupies no section bytes —
        // but the version byte distinguishes the layouts and round-trips.
        assert_eq!(v1.wire_size(), base.wire_size());
        let legacy_bytes = base.encode();
        let v1_bytes = v1.encode();
        assert_eq!(legacy_bytes[30], 0);
        assert_eq!(v1_bytes[30], CHAIN_VERSION);
        assert_eq!(FrameView::parse(&legacy_bytes).unwrap().chain, None);
        assert_eq!(
            FrameView::parse(&v1_bytes).unwrap().chain,
            Some(ChainDescriptor::new())
        );
    }

    #[test]
    fn max_stage_chain_roundtrips_and_overflow_is_rejected() {
        let ids: Vec<u32> = (100..100 + CHAIN_MAX_STAGES as u32).collect();
        let mut chain = chain_of(&ids);
        assert_eq!(chain.len(), CHAIN_MAX_STAGES);
        assert!(
            chain
                .push(ChainStage {
                    elem_id: 999,
                    map: ChainArgMap::KeepArgs,
                })
                .is_err(),
            "ninth stage must be refused"
        );
        let f = Frame::local(1, 2, vec![0; 20], vec![0; 4]).with_chain(chain);
        let wire = f.encode();
        let view = FrameView::parse(&wire).unwrap();
        let got: Vec<u32> = view
            .chain
            .unwrap()
            .stages()
            .iter()
            .map(|s| s.elem_id)
            .collect();
        assert_eq!(got, ids);
    }

    #[test]
    fn corrupted_chain_fields_are_rejected() {
        let f = Frame::local(1, 2, vec![0; 20], vec![0; 4]).with_chain(chain_of(&[7]));
        let good = f.encode();

        // Version-0 frame claiming stages.
        let mut bad = good.clone();
        bad[30] = 0;
        assert!(
            matches!(Frame::decode(&bad), Err(AmError::BadFrame(_))),
            "v0 with stages"
        );

        // Unknown future version.
        let mut bad = good.clone();
        bad[30] = 9;
        assert!(
            matches!(Frame::decode(&bad), Err(AmError::BadFrame(_))),
            "unknown version"
        );

        // Stage count past the wire ceiling.
        let mut bad = good.clone();
        bad[31] = CHAIN_MAX_STAGES as u8 + 1;
        assert!(
            matches!(Frame::decode(&bad), Err(AmError::BadFrame(_))),
            "too many stages"
        );

        // Invalid arg-map byte inside the stage record.
        let mut bad = good.clone();
        bad[FRAME_HEADER_SIZE + 4] = 0x7F;
        match Frame::decode(&bad) {
            Err(AmError::BadFrame(msg)) => {
                assert!(msg.contains("arg-map"), "{msg}")
            }
            other => panic!("bad arg-map byte not caught: {other:?}"),
        }

        // Stage count that disagrees with frame_len.
        let mut bad = good.clone();
        bad[31] = 2;
        assert!(
            matches!(Frame::decode(&bad), Err(AmError::BadFrame(_))),
            "length mismatch"
        );
    }

    fn sample_batch(sns: &[u32]) -> (Vec<u8>, Vec<Vec<u8>>) {
        let mut batch = FrameBatch::new();
        let mut inners = Vec::new();
        for (i, &sn) in sns.iter().enumerate() {
            let f = Frame::local(sn, 7, vec![i as u8; 20], vec![0xAB; 4 + i]);
            let wire = f.encode();
            batch.push(i as u16, &wire).unwrap();
            inners.push(wire);
        }
        let mut out = Vec::new();
        batch.finish_into(&mut out).unwrap();
        (out, inners)
    }

    #[test]
    fn batch_container_roundtrips_inner_frames_and_slots() {
        let sns = [40u32, 41, 42, 43];
        let (wire, inners) = sample_batch(&sns);
        assert!(is_batch(&wire));
        assert_eq!(wire[32], BATCH_VERSION);
        assert_eq!(wire[33], 4);
        assert_eq!(wire[FRAME_HEADER_SIZE - 1], HDR_MAG);
        assert_eq!(wire[wire.len() - 1], SIG_MAG);
        // The outer header satisfies the mailbox readiness protocol: length at
        // bytes 8-11 covers the whole container.
        let total = u32::from_le_bytes(wire[8..12].try_into().unwrap()) as usize;
        assert_eq!(total, wire.len());
        let view = BatchView::parse(&wire).unwrap();
        assert_eq!(view.sn, 40);
        assert_eq!(view.frames().len(), 4);
        for (i, (slot, bytes)) in view.frames().iter().enumerate() {
            assert_eq!(usize::from(*slot), i);
            assert_eq!(*bytes, &inners[i][..]);
            let inner = FrameView::parse(bytes).unwrap();
            assert_eq!(inner.header.sn, sns[i]);
        }
    }

    #[test]
    fn single_frames_are_never_mistaken_for_batches() {
        let single = Frame::local(9, 1, vec![0; 20], vec![0; 4]).encode();
        assert!(!is_batch(&single));
        assert!(matches!(
            BatchView::parse(&single),
            Err(AmError::BadFrame(_))
        ));
        // And a container fed to the single-frame parser is loudly refused.
        let (batch, _) = sample_batch(&[1, 2]);
        match FrameView::parse(&batch) {
            Err(AmError::BadFrame(msg)) => {
                assert!(msg.contains("batch container"), "{msg}")
            }
            other => panic!("container accepted as a frame: {other:?}"),
        }
    }

    #[test]
    fn truncated_batch_echoes_the_offending_inner_sequence_number() {
        let (wire, inners) = sample_batch(&[70, 71, 72]);
        // Cut inside the third inner frame, past its header.
        let third_start =
            FRAME_HEADER_SIZE + 2 * BATCH_PREFIX_SIZE + inners[0].len() + inners[1].len();
        let cut = third_start + BATCH_PREFIX_SIZE + 12;
        match BatchView::parse(&wire[..cut]) {
            Err(AmError::BadFrame(msg)) => {
                assert!(msg.contains("truncated"), "{msg}");
                assert!(msg.contains("sn 72"), "offending sn missing: {msg}");
            }
            other => panic!("truncated batch accepted: {other:?}"),
        }
    }

    #[test]
    fn corrupted_batch_containers_are_rejected() {
        let (good, _) = sample_batch(&[5, 6]);

        let mut bad = good.clone();
        bad[32] = BATCH_VERSION + 1;
        assert!(matches!(BatchView::parse(&bad), Err(AmError::BadFrame(_))));

        let mut bad = good.clone();
        bad[33] = 0; // zero frames
        assert!(matches!(BatchView::parse(&bad), Err(AmError::BadFrame(_))));

        let mut bad = good.clone();
        bad[33] = 3; // count disagrees with the body
        assert!(matches!(BatchView::parse(&bad), Err(AmError::BadFrame(_))));

        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] = 0; // signal magic
        assert!(matches!(BatchView::parse(&bad), Err(AmError::BadFrame(_))));

        let mut bad = good.clone();
        bad[4] ^= 0xFF; // outer sn no longer matches trailer echo / first inner
        assert!(matches!(BatchView::parse(&bad), Err(AmError::BadFrame(_))));
    }

    #[test]
    fn batch_builder_enforces_its_invariants() {
        let mut b = FrameBatch::new();
        let mut out = Vec::new();
        assert!(b.finish_into(&mut out).is_err(), "empty batch");
        assert!(b.push(0, &[0u8; 10]).is_err(), "short inner frame");
        let f = Frame::local(1, 2, vec![0; 20], vec![0; 4]).encode();
        b.push(3, &f).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(b.first_sn(), Some(1));
        assert_eq!(b.wire_size(), BATCH_OVERHEAD + BATCH_PREFIX_SIZE + f.len());
        assert_eq!(
            b.wire_size_with(f.len()),
            b.wire_size() + BATCH_PREFIX_SIZE + f.len()
        );
        b.clear();
        assert!(b.is_empty());
        assert!(b.finish_into(&mut out).is_err(), "cleared batch is empty");
    }
}
