//! Runtime error types.

use std::fmt;

/// Result alias for runtime operations.
pub type AmResult<T> = Result<T, AmError>;

/// Errors surfaced by the Two-Chains runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AmError {
    /// A fabric operation failed.
    Fabric(String),
    /// Linking / package handling failed.
    Link(String),
    /// The frame does not fit in the configured mailbox size.
    FrameTooLarge {
        /// Bytes required.
        needed: usize,
        /// Mailbox capacity.
        capacity: usize,
    },
    /// A received frame is malformed (bad magic, inconsistent lengths).
    BadFrame(String),
    /// Execution of the jam failed.
    Exec(String),
    /// No message is pending in the polled mailbox.
    Empty,
    /// The element is unknown at the receiver (Local Function id lookup failed).
    UnknownElement(u32),
    /// A symbolic element name resolved to no element in the installed package
    /// (the name-keyed counterpart of [`AmError::UnknownElement`], carrying the
    /// name that failed so the caller can see *what* was missing).
    UnknownElementName(String),
    /// A continuation stage of a chained frame failed to dispatch or execute.
    /// The frame is retired as a whole (one rejection, one credit) — `stage`
    /// reports which continuation stage (0-based, counting after the primary
    /// element) broke the chain.
    ChainStageFailed {
        /// 0-based index of the failing continuation stage.
        stage: usize,
        /// What went wrong at that stage.
        reason: String,
    },
    /// The security policy rejected the message.
    PolicyViolation(String),
    /// Flow control: the target bank has no free mailboxes.
    BankFull {
        /// Index of the full bank.
        bank: usize,
    },
    /// The runtime was asked to do something it is not configured for.
    InvalidConfig(String),
}

impl fmt::Display for AmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmError::Fabric(m) => write!(f, "fabric error: {m}"),
            AmError::Link(m) => write!(f, "link error: {m}"),
            AmError::FrameTooLarge { needed, capacity } => {
                write!(
                    f,
                    "frame of {needed} bytes exceeds mailbox capacity {capacity}"
                )
            }
            AmError::BadFrame(m) => write!(f, "malformed frame: {m}"),
            AmError::Exec(m) => write!(f, "execution failed: {m}"),
            AmError::Empty => write!(f, "no message pending"),
            AmError::UnknownElement(id) => write!(f, "unknown package element id {id}"),
            AmError::UnknownElementName(name) => {
                write!(f, "no element named {name:?} in the installed package")
            }
            AmError::ChainStageFailed { stage, reason } => {
                write!(f, "chain stage {stage} failed: {reason}")
            }
            AmError::PolicyViolation(m) => write!(f, "security policy violation: {m}"),
            AmError::BankFull { bank } => write!(f, "flow control: bank {bank} is full"),
            AmError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl std::error::Error for AmError {}

impl From<twochains_fabric::FabricError> for AmError {
    fn from(e: twochains_fabric::FabricError) -> Self {
        AmError::Fabric(e.to_string())
    }
}

impl From<twochains_linker::LinkError> for AmError {
    fn from(e: twochains_linker::LinkError) -> Self {
        AmError::Link(e.to_string())
    }
}

impl From<twochains_jamvm::ExecError> for AmError {
    fn from(e: twochains_jamvm::ExecError) -> Self {
        AmError::Exec(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: AmError = twochains_fabric::FabricError::NoSuchHost(3).into();
        assert!(e.to_string().contains("no such host"));
        let e: AmError = twochains_linker::LinkError::UnresolvedSymbol("s".into()).into();
        assert!(e.to_string().contains("unresolved"));
        let e: AmError = twochains_jamvm::ExecError::FuelExhausted.into();
        assert!(e.to_string().contains("budget"));
        assert!(AmError::FrameTooLarge {
            needed: 100,
            capacity: 64
        }
        .to_string()
        .contains("100"));
        assert!(AmError::UnknownElement(7).to_string().contains('7'));
        // The name-keyed variant must surface the missing name, not a sentinel id.
        assert!(AmError::UnknownElementName("indirect_put".into())
            .to_string()
            .contains("indirect_put"));
        assert!(AmError::BankFull { bank: 2 }.to_string().contains("bank 2"));
        // A broken chain must name the stage that broke it.
        let e = AmError::ChainStageFailed {
            stage: 1,
            reason: "unknown package element id 7".into(),
        };
        assert!(e.to_string().contains("chain stage 1"));
        assert!(e.to_string().contains("element id 7"));
    }
}
