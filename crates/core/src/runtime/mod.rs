//! The per-process Two-Chains runtime: host (receiver) side and sender side.
//!
//! A [`TwoChainsHost`] owns everything one process needs to participate: its fabric
//! host handle and registered mailbox region, its linker namespace with loaded rieds,
//! the persistent jam address space holding ried data objects, the Local Function
//! library built from the installed package, and the reactive mailbox banks.
//!
//! A [`TwoChainsSender`] is the initiator-side object: it packs frames (patching in
//! the GOT image the receiver exported during setup), pushes them with one one-sided
//! put, and tracks flow-control credits. A [`SenderFleet`] promotes it to a
//! first-class multi-sender runtime: one sender per *stream* (stream `s` of `S`
//! owns the banks with `bank % S == s`, mirroring the receiver's shard map),
//! each with its own endpoint, sequence space, template cache and statistics,
//! flow-controlled by a per-stream completion window and thread-capable — the
//! fleet can fill banks from one OS thread per lane while the receiver shards
//! drain, up to the fully overlapped fill/drain pipeline of [`drive_pipeline`]
//! (the handshake and flow-control contract are documented on [`SenderFleet`]).
//!
//! All methods take and return virtual [`SimTime`]s so a benchmark harness can drive
//! both ends from a single thread deterministically; the same code paths can also be
//! driven by real threads (the examples and the bench drain driver do), in which
//! case the virtual times are simply accounting.
//!
//! # Layered architecture
//!
//! The receive path is layered so per-message state is small and per-shard while
//! everything heavy is shared read-mostly:
//!
//! ```text
//!   senders ──one-sided puts──▶  MailboxBank: M banks × N reactive mailboxes
//!                                      │
//!                    bank b is owned by shard b % S   (ShardMask)
//!            ┌─────────────────┬───────┴─────────┬─────────────────┐
//!            ▼                 ▼                 ▼                 ▼
//!      ReceiverShard 0   ReceiverShard 1       ...          ReceiverShard S-1
//!      scratch buffer    scratch buffer                     scratch buffer
//!      RuntimeStats      RuntimeStats                       RuntimeStats
//!      CoreBus (L1/L2)   CoreBus (L1/L2)                    CoreBus (L1/L2)
//!      ShardSpace        ShardSpace                         ShardSpace
//!            │   probe / insert (one short lock per operation)    │
//!            └───────────────▶ Arc<InjectionCache> ◀──────────────┘
//!                  decoded programs · sender GOTs · resolved GOTs
//!                  (segmented-LRU eviction, hit/miss/evict counters)
//!            ──────────────────────────────────────────────────────
//!            shared read-mostly: linker namespace, Local Function
//!            library, installed package, runtime config, and the
//!            Arc-shared read-only segment base (lock-free reads)
//!            shared striped: L3/LLC/DRAM simulation (per-stripe locks,
//!            reached only on private L1/L2 misses)
//!            shared mutable (Mutex): the *exclusive* jam AddressSpace —
//!            every execution serialises here in SpaceMode::Exclusive;
//!            in SpaceMode::ShardLocal only jams that declare cross-shard
//!            writes do, and everything else executes lock-free against
//!            the shard's own segments
//! ```
//!
//! * `injection_cache` (crate-internal module) — owns the three content-addressed
//!   caches behind one lock, with the segmented-LRU eviction policy documented in
//!   its header. Invalidation (package reinstall, live update) is a single shared
//!   operation, immediately visible to every shard.
//! * [`ReceiverShard`] — the per-shard context: scratch buffer, statistics, `Arc`
//!   handle to the cache, and its slice of the deterministic `bank % num_shards`
//!   ownership map, so shards never contend on a mailbox.
//! * [`TwoChainsHost::receive_burst`] — drains every ready slot in a shard's banks
//!   in one scan ([`MailboxBank::scan_burst`](crate::bank::MailboxBank::scan_burst)),
//!   amortising the poll: the scan's wait is charged once per burst instead of per
//!   message, and poisoned slots are quarantined in the same pass.
//!   [`TwoChainsHost::receive`] is the single-frame case of the same engine, with
//!   the per-message wait model applied.
//! * [`TwoChainsHost::shard_drains`] — splits the host into independently movable
//!   per-shard drain handles for genuinely parallel (multi-threaded) draining.
//!
//! # Fast-path architecture (zero-copy steady state)
//!
//! The send→receive hot path is allocation-free in steady state. Both sides keep
//! content-addressed caches so the per-message work degenerates to hashing, a lookup
//! and one memcpy:
//!
//! **Receiver.**
//! * *Injected-code cache* — keyed by `(elem_id, hash64_bytes(code))`. The first
//!   message for a key pays `decode_program` + `verify` (and their modelled cost);
//!   every later message hits a decoded `Arc<[Instr]>` and executes it directly.
//!   [`RuntimeStats::injected_code_cache_hits`]/`_misses` count the split.
//! * *GOT cache* — keyed by `(elem_id, hash64_bytes(got_bytes))` when the policy
//!   accepts sender GOT images, or by `elem_id` alone when the hardened policy
//!   re-resolves locally. Hits reuse an `Arc<GotImage>`; no per-message slot vector
//!   is built. [`RuntimeStats::got_cache_hits`]/`_misses` count the split.
//! * *Borrowed frame parsing* — arrived bytes land in the shard's persistent scratch
//!   buffer ([`ReactiveMailbox::read_frame_into`](crate::mailbox::ReactiveMailbox::read_frame_into))
//!   and are parsed as a [`FrameView`](crate::frame::FrameView) whose sections
//!   borrow that buffer. Only ARGS and USR are copied out (the jam may mutate
//!   them); GOT and code bytes are hashed in place and never cloned.
//! * *Register-seeded entry* — the jam entry convention (`r0`=ARGS, `r1`=USR,
//!   `r2`=USR length) is passed through `VmConfig::entry_regs`, so the cached
//!   program runs as-is instead of being re-materialised with a prologue per message.
//!
//! **Sender.**
//! * *Frame-template cache* — per element, the patched GOT image and encoded code
//!   are captured once as `Arc<[u8]>`; later sends memcpy them straight into the
//!   wire buffer. [`RuntimeStats::template_hits`]/`_misses` count the split.
//! * *Scratch encode buffer* — [`TwoChainsSender::send`] and
//!   [`TwoChainsSender::send_spec`] encode into one reusable `Vec<u8>`
//!   ([`Frame::encode_into`](crate::frame::Frame::encode_into)), so a steady-state
//!   send performs a single memcpy into the mailbox put and no heap allocation.
//!
//! # Receiver-side chains (the chain dispatch contract)
//!
//! A [`MessageSpec`] built with [`MessageSpec::then`] names an ordered pipeline
//! of installed package elements; the wire carries it as a versioned chain
//! descriptor between the header and the GOT section (see
//! [`ChainDescriptor`](crate::frame::ChainDescriptor)), so unchained frames are
//! byte-identical to the legacy format and old receivers reject — not
//! misparse — chained ones. Dispatch executes the primary element exactly as
//! an unchained send would, then runs each continuation stage in descriptor
//! order under this contract:
//!
//! * **Result threading.** Stage *k*'s result registers feed stage *k+1*'s
//!   entry registers through a *per-chain context cell* in the executing
//!   core's scratch address range: the running 64-bit result is published
//!   there (one charged 8-byte write), and the next stage's entry registers
//!   point at it. Under the default
//!   [`ChainArgMap::Result`](crate::frame::ChainArgMap) mapping the stage
//!   sees `r0 = context cell` exactly where a standalone send would hand it
//!   the ARGS block — a stage observes bit-identical operands whether it
//!   rides a chain or its own frame. `KeepArgs` instead preserves `r0 = ARGS`
//!   and passes the context cell in `r1`.
//! * **Context lifetime.** The context cell and the stage's private copies of
//!   ARGS/USR are mapped immediately before the stage runs and unmapped
//!   immediately after (with rollback on a partial map), so no chain state
//!   survives the frame: chains communicate *forward* through the cell and
//!   *persistently* only through ried data, never with a later frame. Each
//!   core uses a disjoint context address, so shard-parallel drains never
//!   alias cells.
//! * **One frame, one credit, one verdict.** Continuation stages dispatch
//!   through the Local Function library for the per-stage table-lookup cost —
//!   no new frame, no new mailbox wait, no re-parse; that is the amortization
//!   the fastpath bench's chain row measures. The frame stays in its mailbox
//!   until the whole chain retires: a failing stage (unknown element, VM
//!   fault) aborts the remaining stages and retires the frame through the
//!   ordinary rejection path as
//!   [`AmError::ChainStageFailed`] naming the stage index — exactly one `frames_rejected`, exactly one
//!   returned credit, like every other retirement.
//! * **Counters.** Each stage increments `executions` (and
//!   `local_executions`) as if sent alone; `chain_frames` and
//!   `chain_stages_executed` record the chaining itself, so
//!   `messages_received` is the only counter a chained schedule shrinks.
//!
//! # Frame aggregation (the batch wire format and flush-policy contract)
//!
//! The fleet's data path amortises the per-put NIC posting cost (descriptor
//! build + doorbell — size-independent, so it dominates small-frame rates) by
//! packing consecutive same-bank frames into one *batch container* put.
//! [`RuntimeConfig::aggregation_policy`](crate::config::RuntimeConfig)
//! selects the behaviour:
//!
//! * [`AggregationPolicy::PerFrame`](crate::config::AggregationPolicy) — the
//!   compatibility contract: one tracked put per frame, byte-identical on the
//!   wire to a pre-aggregation [`TwoChainsSender`] (pinned by
//!   `tests/frame_aggregation.rs`).
//! * [`AggregationPolicy::Adaptive`](crate::config::AggregationPolicy) (the
//!   default) — each lane accumulates spec-built frames per `(stream, bank)`
//!   and posts one contiguous put per batch.
//!
//! **Wire format.** A container is a 36-byte outer header (frame magic; `sn` =
//! the first inner frame's sequence number; `frame_len` = total container
//! bytes; byte 32 = batch version, nonzero — the discriminant `is_batch`
//! sniffs, since a plain frame keeps those bytes zero; byte 33 = inner-frame
//! count, 1..=255), then per inner frame an 8-byte prefix (`u32` LE wire
//! length, `u16` LE destination slot, 2 reserved zero bytes) followed by the
//! complete, unmodified inner wire frame, and finally the standard 4-byte
//! trailer (sn echo + signal magic) so the receiver's readiness scan is
//! unchanged. See [`FrameBatch`](crate::frame::FrameBatch) and
//! [`BatchView`](crate::frame::BatchView); a container truncated mid-frame is
//! rejected with an error naming the victim inner frame's sn.
//!
//! **Flush policy.** An adaptive lane flushes its open batch when any of
//! these trips: the batch reaches
//! [`BATCH_MAX_FRAMES`](crate::frame::BATCH_MAX_FRAMES); appending the next
//! frame would exceed the destination mailbox capacity
//! (`frame_capacity`); the next frame targets a *different bank* (a container
//! lands in one contiguous mailbox span, never straddling banks); the oldest
//! buffered frame would exceed the latency watermark; and unconditionally at
//! a burst boundary — `fill_all`/`drive_pipeline` never return with frames
//! still buffered, so aggregation is invisible to the phased schedules.
//!
//! **Reliability contract.** Each inner frame retires individually — its own
//! credit token, its own `SeqWatch` entry — so token conservation holds
//! frame-by-frame, while NACK/retransmit treats the container as the unit of
//! loss: a dropped container is NACKed via its outer sn and retransmitted
//! whole, and replay suppression keeps a duplicated container from
//! double-executing any inner frame (pinned by `tests/chaos_fabric.rs`).
//! `bytes_sent` counts inner-frame bytes only, making the payload ledger
//! policy-invariant; the container envelope shows up solely in the shape
//! counters (`batch_puts`, `batched_frames`, `batches_received`,
//! `batch_frames_received`).
//!
//! **Invalidation.** All receiver caches are dropped on [`TwoChainsHost::install_package`]
//! and [`TwoChainsHost::load_ried`] (package reinstall / live update may rebind
//! symbols or change code), and can be dropped explicitly with
//! [`TwoChainsHost::invalidate_injection_caches`] (cold-path benchmarking). The
//! caches are shared by every shard, so one invalidation covers them all. The
//! sender's template for an element is dropped when [`TwoChainsSender::set_remote_got`]
//! replaces that element's GOT image.
//!
//! [`RuntimeStats::injected_code_cache_hits`]: crate::stats::RuntimeStats::injected_code_cache_hits
//! [`RuntimeStats::got_cache_hits`]: crate::stats::RuntimeStats::got_cache_hits
//! [`RuntimeStats::template_hits`]: crate::stats::RuntimeStats::template_hits

mod credit;
mod fleet;
mod host;
mod injection_cache;
mod retry;
mod sender;
mod shard;
mod spec;
#[cfg(test)]
mod tests;

pub(crate) use injection_cache::MAX_INJECTION_CACHE_ENTRIES;

pub use credit::CreditHandshake;
pub use fleet::{
    drive_pipeline, FleetLane, PipelineFrame, PipelineOutcome, SenderFleet, SenderLane,
    SessionHandshake, SlotCtx, StreamHandshake, StreamTarget,
};
pub use host::TwoChainsHost;
pub use retry::ClampedFibonacci;
pub use sender::TwoChainsSender;
pub use shard::{ReceiverShard, ShardDrain};
pub use spec::{spec, MessageSpec};

use twochains_fabric::PutOutcome;
use twochains_jamvm::ExecStats;
use twochains_memsim::cycles::WaitOutcome;
use twochains_memsim::SimTime;

use crate::error::AmError;

/// Outcome of processing one received active message.
#[derive(Debug, Clone)]
pub struct ReceiveOutcome {
    /// When the receiver observed the signal byte (wait included).
    pub detected_at: SimTime,
    /// When the handler finished (dispatch + execution included).
    pub handler_done: SimTime,
    /// The wait accounting (elapsed time and cycles burned). Zero for frames
    /// drained by a burst, whose single scan observed their readiness.
    pub wait: WaitOutcome,
    /// Execution statistics (absent in the without-execution configuration).
    pub exec: Option<ExecStats>,
    /// The value the jam returned (0 when execution was skipped).
    pub result: u64,
    /// Receiver-side time excluding the wait (header read, dispatch, execution).
    pub handler_time: SimTime,
    /// The dispatch-only portion of `handler_time`: header read, security checks,
    /// cache probes and (on a miss) decode/verify — everything except the jam's own
    /// execution. This is the quantity the fast path shrinks.
    pub dispatch_time: SimTime,
}

/// One frame drained by [`TwoChainsHost::receive_burst`], with the mailbox it came
/// from.
#[derive(Debug, Clone)]
pub struct BurstFrame {
    /// Bank the frame was drained from.
    pub bank: usize,
    /// Slot within the bank.
    pub slot: usize,
    /// The per-message outcome (same shape as the single-slot `receive`).
    pub outcome: ReceiveOutcome,
}

/// Outcome of one [`TwoChainsHost::receive_burst`] call: every frame drained from
/// the shard's banks in one scan, processed back-to-back in shard-virtual time.
#[derive(Debug, Clone)]
pub struct BurstOutcome {
    /// Successfully dispatched frames, in scan order (bank-major).
    pub frames: Vec<BurstFrame>,
    /// Frames the dispatch rejected (malformed code, policy violation, ...) and
    /// poisoned slots quarantined by the scan (header magic present but an
    /// out-of-range declared length). Their slots were cleared — a bad frame must
    /// not wedge its bank — and the error is reported here instead of aborting
    /// the rest of the burst.
    pub rejected: Vec<(usize, usize, AmError)>,
    /// Shard-virtual time when the last frame's handler finished (equals the burst
    /// start plus one poll when nothing was ready).
    pub drained_at: SimTime,
}

impl BurstOutcome {
    /// Number of successfully drained frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the burst drained nothing (and rejected nothing).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty() && self.rejected.is_empty()
    }
}

/// Outcome of sending one active message.
#[derive(Debug, Clone, Copy)]
pub struct AmSendOutcome {
    /// Frame-packing cost on the sending CPU.
    pub pack_cost: SimTime,
    /// The underlying one-sided put timing.
    pub put: PutOutcome,
    /// Total bytes on the wire.
    pub wire_bytes: usize,
}

impl AmSendOutcome {
    /// When the message (including its signal byte) is visible at the receiver.
    pub fn delivered(&self) -> SimTime {
        self.put.delivered
    }

    /// When the sending CPU is free again.
    pub fn sender_free(&self) -> SimTime {
        self.pack_cost + self.put.sender_free
    }
}
