//! The initiator-side runtime: frame packing, template caching and one-sided puts.
//!
//! A [`TwoChainsSender`] packs frames (patching in the GOT image the receiver
//! exported during setup), pushes them with one one-sided put, and tracks
//! statistics. Its steady-state fast path mirrors the receiver's caches: a
//! per-element frame template (pre-patched GOT + encoded code as `Arc<[u8]>`) and
//! one reusable wire-encode buffer make a warm send a pure memcpy.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;

use twochains_fabric::{CompletionQueue, Endpoint};
use twochains_jamvm::GotImage;
use twochains_linker::{ElementId, Package};
use twochains_memsim::SimTime;

use super::spec::MessageSpec;
use super::AmSendOutcome;
use crate::builtin::BuiltinJam;
use crate::config::InvocationMode;
use crate::error::{AmError, AmResult};
use crate::frame::{encode_wire_into, ChainDescriptor, Frame, BATCH_OVERHEAD, BATCH_PREFIX_SIZE};
use crate::mailbox::MailboxTarget;
use crate::stats::RuntimeStats;

/// A sender-side cached frame template for one element: the receiver-patched GOT
/// image and the encoded code, captured once and memcpy'd into every later frame.
#[derive(Debug, Clone)]
struct FrameTemplate {
    got: Arc<[u8]>,
    code: Arc<[u8]>,
}

/// The sender-side runtime object.
pub struct TwoChainsSender {
    endpoint: Endpoint,
    package: Package,
    /// GOT images exported by the receiver, keyed by element id.
    remote_gots: HashMap<u32, Arc<[u8]>>,
    /// Per-element frame templates (pre-patched GOT + encoded code).
    templates: HashMap<u32, FrameTemplate>,
    /// Reusable wire-encode buffer; steady-state sends do not allocate.
    encode_buf: Vec<u8>,
    sn: u32,
    /// Per-byte frame packing cost (the message packing routines of §III-A).
    pack_ns_per_byte: f64,
    /// Fixed packing overhead.
    pack_fixed: SimTime,
    stats: RuntimeStats,
}

impl std::fmt::Debug for TwoChainsSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TwoChainsSender")
            .field("package", &self.package.name())
            .field("sn", &self.sn)
            .field("templates", &self.templates.len())
            .finish()
    }
}

impl TwoChainsSender {
    /// Create a sender over an existing endpoint, with the package it will inject from.
    pub fn new(endpoint: Endpoint, package: Package) -> Self {
        TwoChainsSender {
            endpoint,
            package,
            remote_gots: HashMap::new(),
            templates: HashMap::new(),
            encode_buf: Vec::new(),
            sn: 0,
            pack_ns_per_byte: 0.002,
            pack_fixed: SimTime::from_ns(35),
            stats: RuntimeStats::new(),
        }
    }

    /// Record the GOT image the receiver exported for `elem` (out-of-band exchange
    /// during setup). Replacing an element's GOT drops its frame template; the next
    /// send re-patches once and re-caches.
    pub fn set_remote_got(&mut self, elem: ElementId, got: &GotImage) {
        self.remote_gots.insert(elem.0, got.to_bytes().into());
        self.templates.remove(&elem.0);
    }

    /// Sender statistics.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// The underlying endpoint (for flushes and resets between benchmark phases).
    pub fn endpoint_mut(&mut self) -> &mut Endpoint {
        &mut self.endpoint
    }

    /// The frame template for `elem`, building (and counting) it on first use.
    /// One hash lookup either way: a hit returns the occupied entry directly, a
    /// miss fills the vacant slot it already holds.
    fn template(&mut self, elem: ElementId) -> AmResult<&FrameTemplate> {
        match self.templates.entry(elem.0) {
            Entry::Occupied(entry) => {
                self.stats.template_hits += 1;
                Ok(entry.into_mut())
            }
            Entry::Vacant(slot) => {
                self.stats.template_misses += 1;
                let jam = self.package.jam(elem)?;
                let got = self.remote_gots.get(&elem.0).cloned().ok_or_else(|| {
                    AmError::Link(format!("no remote GOT for element {}", elem.0))
                })?;
                let code: Arc<[u8]> = jam.text.clone().into();
                Ok(slot.insert(FrameTemplate { got, code }))
            }
        }
    }

    /// Pack a frame for element `elem` with the given invocation mode, argument block
    /// and payload. Injected frames require the receiver's GOT image to have been set
    /// with [`TwoChainsSender::set_remote_got`].
    ///
    /// This materialises an owned [`Frame`] (useful for inspection and tests); the
    /// allocation-free path is [`TwoChainsSender::send_spec`].
    pub fn pack(
        &mut self,
        elem: ElementId,
        mode: InvocationMode,
        args: Vec<u8>,
        usr: Vec<u8>,
    ) -> AmResult<Frame> {
        crate::frame::validate_section_lens(&[], &[], &args, &usr)?;
        self.sn = self.sn.wrapping_add(1);
        let sn = self.sn;
        let frame = match mode {
            InvocationMode::Local => Frame::local(sn, elem.0, args, usr),
            InvocationMode::Injected => {
                let tpl = self.template(elem)?;
                crate::frame::validate_section_lens(&tpl.got, &tpl.code, &args, &usr)?;
                Frame::injected(sn, elem.0, tpl.got.to_vec(), tpl.code.to_vec(), args, usr)
            }
        };
        Ok(frame)
    }

    /// Cost of packing `frame` on the sending CPU.
    pub fn pack_cost(&self, frame: &Frame) -> SimTime {
        self.pack_cost_for_len(frame.wire_size())
    }

    /// The §III-A packing cost model for a frame of `len` wire bytes — the single
    /// definition both [`TwoChainsSender::pack_cost`] and the send paths charge.
    fn pack_cost_for_len(&self, len: usize) -> SimTime {
        self.pack_fixed + SimTime::from_ns_f64(len as f64 * self.pack_ns_per_byte)
    }

    /// Send an already-packed frame: encode into the reusable scratch buffer and put.
    pub fn send(
        &mut self,
        now: SimTime,
        frame: &Frame,
        target: &MailboxTarget,
    ) -> AmResult<AmSendOutcome> {
        let mut buf = std::mem::take(&mut self.encode_buf);
        frame.encode_into(&mut buf);
        let result = self.put_frame(now, &buf, target, None);
        self.encode_buf = buf;
        result
    }

    /// The allocation-free send path for a [`MessageSpec`]: encode the spec's
    /// frame (single-element or chained) directly from the template cache and
    /// the spec's borrowed sections into the reusable scratch buffer, then
    /// put. A spec marked [`tracked`](MessageSpec::tracked) is refused —
    /// completion tracking needs a queue, so it must go through
    /// [`TwoChainsSender::send_spec_tracked`].
    ///
    /// The spec is borrowed, not consumed: build it once, send it every
    /// iteration — steady-state sends perform zero heap allocations.
    pub fn send_spec(
        &mut self,
        now: SimTime,
        spec: &MessageSpec,
        target: &MailboxTarget,
    ) -> AmResult<AmSendOutcome> {
        if spec.is_tracked() {
            return Err(AmError::InvalidConfig(
                "spec requests completion tracking: use send_spec_tracked with a \
                 completion queue"
                    .into(),
            ));
        }
        let chain = spec.chain_descriptor()?;
        self.send_raw(
            now,
            spec.elem(),
            spec.invocation(),
            chain.as_ref(),
            spec.args_bytes(),
            spec.usr_bytes(),
            target,
            None,
        )
    }

    /// [`TwoChainsSender::send_spec`] with software completion tracking: the
    /// put's delivery is posted into `cq` ([`Endpoint::put_tracked`]), so the
    /// caller gets transmit-window flow control — a full queue refuses the send
    /// with `CompletionBackpressure` *before* any bytes move, and the caller
    /// must harvest completions (its own queue only) to free the window. This
    /// is the per-stream back-pressure the [`SenderFleet`](super::SenderFleet)
    /// lanes run on.
    pub fn send_spec_tracked(
        &mut self,
        now: SimTime,
        spec: &MessageSpec,
        target: &MailboxTarget,
        cq: &mut CompletionQueue,
    ) -> AmResult<AmSendOutcome> {
        let chain = spec.chain_descriptor()?;
        self.send_raw(
            now,
            spec.elem(),
            spec.invocation(),
            chain.as_ref(),
            spec.args_bytes(),
            spec.usr_bytes(),
            target,
            Some(cq),
        )
    }

    /// Deprecated single-element send. Thin wrapper over the [`MessageSpec`]
    /// path (identical wire bytes, costs and counters).
    #[deprecated(
        note = "construct the message with spec(elem).mode(..).args(..).usr(..) and \
                send it with send_spec (see the migration notes in CHANGES.md)"
    )]
    pub fn send_message(
        &mut self,
        now: SimTime,
        elem: ElementId,
        mode: InvocationMode,
        args: &[u8],
        usr: &[u8],
        target: &MailboxTarget,
    ) -> AmResult<AmSendOutcome> {
        self.send_raw(now, elem, mode, None, args, usr, target, None)
    }

    /// Deprecated tracked single-element send. Thin wrapper over the
    /// [`MessageSpec`] path (identical wire bytes, costs and counters).
    #[deprecated(
        note = "construct the message with spec(elem).mode(..).args(..).usr(..).tracked() \
                and send it with send_spec_tracked (see the migration notes in CHANGES.md)"
    )]
    #[allow(clippy::too_many_arguments)]
    pub fn send_message_tracked(
        &mut self,
        now: SimTime,
        elem: ElementId,
        mode: InvocationMode,
        args: &[u8],
        usr: &[u8],
        target: &MailboxTarget,
        cq: &mut CompletionQueue,
    ) -> AmResult<AmSendOutcome> {
        self.send_raw(now, elem, mode, None, args, usr, target, Some(cq))
    }

    /// The single allocation-free send core every path funnels through:
    /// validate, stamp the next sequence number, encode into the parked
    /// scratch buffer, put (completion-tracked through `cq` when given).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn send_raw(
        &mut self,
        now: SimTime,
        elem: ElementId,
        mode: InvocationMode,
        chain: Option<&ChainDescriptor>,
        args: &[u8],
        usr: &[u8],
        target: &MailboxTarget,
        cq: Option<&mut CompletionQueue>,
    ) -> AmResult<AmSendOutcome> {
        crate::frame::validate_section_lens(&[], &[], args, usr)?;
        self.sn = self.sn.wrapping_add(1);
        let sn = self.sn;
        let mut buf = std::mem::take(&mut self.encode_buf);
        let result = self
            .encode_message(sn, elem, mode, chain, args, usr, &mut buf)
            .and_then(|()| self.put_frame(now, &buf, target, cq));
        self.encode_buf = buf;
        result
    }

    /// Encode one message into `buf` (the fallible half of
    /// [`TwoChainsSender::send_raw`], factored out so `?` can unwind it
    /// while the scratch buffer is parked outside `self`).
    #[allow(clippy::too_many_arguments)]
    fn encode_message(
        &mut self,
        sn: u32,
        elem: ElementId,
        mode: InvocationMode,
        chain: Option<&ChainDescriptor>,
        args: &[u8],
        usr: &[u8],
        buf: &mut Vec<u8>,
    ) -> AmResult<()> {
        match mode {
            InvocationMode::Local => {
                encode_wire_into(sn, elem.0, false, chain, &[], &[], args, usr, buf);
            }
            InvocationMode::Injected => {
                let tpl = self.template(elem)?;
                crate::frame::validate_section_lens(&tpl.got, &tpl.code, args, usr)?;
                encode_wire_into(sn, elem.0, true, chain, &tpl.got, &tpl.code, args, usr, buf);
            }
        }
        Ok(())
    }

    /// Common tail of every send path: capacity check, pack-cost model, one put
    /// (completion-tracked through `cq` when given). `pub(crate)` for the
    /// fleet's aggregation path, which posts an already-encoded frame
    /// standalone when it is too large to share a container.
    pub(crate) fn put_frame(
        &mut self,
        now: SimTime,
        bytes: &[u8],
        target: &MailboxTarget,
        cq: Option<&mut CompletionQueue>,
    ) -> AmResult<AmSendOutcome> {
        if bytes.len() > target.capacity {
            return Err(AmError::FrameTooLarge {
                needed: bytes.len(),
                capacity: target.capacity,
            });
        }
        let pack_cost = self.pack_cost_for_len(bytes.len());
        let issue_at = now + pack_cost;
        let put = match cq {
            Some(cq) => {
                self.endpoint
                    .put_tracked(issue_at, bytes, &target.region, target.offset, cq)?
                    .1
            }
            None => self
                .endpoint
                .put(issue_at, bytes, &target.region, target.offset)?,
        };
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes.len() as u64;
        Ok(AmSendOutcome {
            pack_cost,
            put,
            wire_bytes: bytes.len(),
        })
    }

    /// Encode the next message for `spec` into `buf` without sending it:
    /// validate, stamp the next sequence number, encode. This is the first
    /// half of the aggregation path — the fleet accumulates several encoded
    /// frames into one batch container and posts it with a single
    /// [`TwoChainsSender::put_batch`]. Returns the stamped sequence number
    /// (the container inherits its first frame's).
    pub(crate) fn encode_next(&mut self, spec: &MessageSpec, buf: &mut Vec<u8>) -> AmResult<u32> {
        crate::frame::validate_section_lens(&[], &[], spec.args_bytes(), spec.usr_bytes())?;
        let chain = spec.chain_descriptor()?;
        self.sn = self.sn.wrapping_add(1);
        let sn = self.sn;
        self.encode_message(
            sn,
            spec.elem(),
            spec.invocation(),
            chain.as_ref(),
            spec.args_bytes(),
            spec.usr_bytes(),
            buf,
        )?;
        Ok(sn)
    }

    /// Post one multi-frame batch container (built by the fleet from frames
    /// encoded via [`TwoChainsSender::encode_next`]) with a single put into
    /// the carrier mailbox. The software packing cost stays per message
    /// (`frames` × fixed + container bytes × per-byte — marshalling every
    /// frame is real work the batch cannot skip); what the batch amortizes is
    /// the *posting*: one NIC doorbell, one tx-pipeline serialization, one
    /// completion-queue entry for the whole container. Counters: every inner
    /// frame lands in `messages_sent` exactly as a standalone send would, and
    /// the container shape is recorded in `batch_puts`/`batched_frames`.
    pub(crate) fn put_batch(
        &mut self,
        now: SimTime,
        bytes: &[u8],
        frames: usize,
        target: &MailboxTarget,
        cq: Option<&mut CompletionQueue>,
    ) -> AmResult<AmSendOutcome> {
        if bytes.len() > target.capacity {
            return Err(AmError::FrameTooLarge {
                needed: bytes.len(),
                capacity: target.capacity,
            });
        }
        let pack_cost = SimTime::from_ns_f64(
            self.pack_fixed.as_ns() * frames as f64 + bytes.len() as f64 * self.pack_ns_per_byte,
        );
        let issue_at = now + pack_cost;
        let put = match cq {
            Some(cq) => {
                self.endpoint
                    .put_tracked(issue_at, bytes, &target.region, target.offset, cq)?
                    .1
            }
            None => self
                .endpoint
                .put(issue_at, bytes, &target.region, target.offset)?,
        };
        // `bytes_sent` counts the *frame* bytes (what a per-frame schedule
        // would have counted), so the counter stays schedule-invariant — how
        // frames grouped into containers depends on credit arrival timing.
        // The container envelope (fixed header/trailer + one prefix per
        // frame) is recoverable from `batch_puts`/`batched_frames`.
        let envelope = BATCH_OVERHEAD + frames * BATCH_PREFIX_SIZE;
        self.stats.messages_sent += frames as u64;
        self.stats.bytes_sent += bytes.len().saturating_sub(envelope) as u64;
        self.stats.batch_puts += 1;
        self.stats.batched_frames += frames as u64;
        Ok(AmSendOutcome {
            pack_cost,
            put,
            wire_bytes: bytes.len(),
        })
    }

    /// Element id helper for the builtin benchmark jams. A package without the
    /// jam yields [`AmError::UnknownElementName`] carrying the missing name —
    /// not a sentinel id the caller cannot act on.
    pub fn builtin_id(&self, jam: BuiltinJam) -> AmResult<ElementId> {
        let name = jam.element_name();
        self.package
            .id_of(name)
            .ok_or_else(|| AmError::UnknownElementName(name.to_string()))
    }

    /// Sender-side counters, mutably (the fleet's lanes account their
    /// flow-control events here so a host-wide `merge()` sees them).
    pub(crate) fn stats_mut(&mut self) -> &mut RuntimeStats {
        &mut self.stats
    }

    /// The exact wire bytes of the most recent send: every send path encodes
    /// into (and then restores) the reusable scratch buffer, so after a send
    /// returns, the buffer *is* the frame as it went onto the fabric. The
    /// fleet's reliability layer snapshots this into its per-slot wire cache
    /// so a NACK or watchdog timeout can retransmit byte-identical frames.
    pub(crate) fn last_wire(&self) -> &[u8] {
        &self.encode_buf
    }

    /// Re-put previously sent wire bytes (reliability-layer retransmit). The
    /// frame is byte-identical to the original — same sequence number, same
    /// trailer — so the receiver's replay filter can suppress it if the
    /// original did land. Deliberately *not* counted in `messages_sent` /
    /// `bytes_sent` (the message was already counted once; a lossy run's
    /// steady counters must stay equal to the lossless run's) and charged no
    /// pack cost (the bytes are already encoded): only `frames_retransmitted`
    /// and the put's own fabric time record the recovery.
    pub(crate) fn retransmit_frame(
        &mut self,
        now: SimTime,
        bytes: &[u8],
        target: &MailboxTarget,
    ) -> AmResult<SimTime> {
        let put = self
            .endpoint
            .put(now, bytes, &target.region, target.offset)?;
        self.stats.frames_retransmitted += 1;
        Ok(put.sender_free)
    }
}
