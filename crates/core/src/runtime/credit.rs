//! The receiver's half of the one-sided flow-control path (§VI-A2): credit
//! returns as real fabric traffic.
//!
//! The sender fleet registers one [`BankFlags`] credit table per stream in the
//! *sender's* address space and ships its descriptor back to the receiver as a
//! [`CreditHandshake`] — the reverse half of the connection setup that
//! [`TwoChainsHost::sender_handshake`](super::TwoChainsHost::sender_handshake)
//! started. The receiver installs one [`CreditReturn`] per shard: a
//! reverse-direction endpoint (receiver → sender) plus the cumulative per-slot
//! drain counts that generate the token sequence.
//!
//! Every retired frame (drained, dispatch-rejected or quarantined) produces
//! exactly one credit put: a one-byte [`Endpoint::put`] into the slot's token
//! byte. That put is charged like any other fabric traffic — the drain core
//! pays the posting cost in virtual time, the put contends for the receiver's
//! transmit NIC, and its DMA delivery installs the byte on the sender host,
//! posting invalidations to the sender cores' inboxes exactly like inbound
//! frames do on the receiver. A one-byte put is its own signal: `put`
//! publishes its final (only) byte with release ordering, which is the
//! conservative unordered-fabric protocol (`put_unordered` + fence + signal
//! put) collapsed into a single byte, so the scheme is correct on ordered and
//! unordered links alike.

use twochains_fabric::{Endpoint, RegionDescriptor};
use twochains_memsim::SimTime;

use crate::bank::{BankFlags, NackFlags};
use crate::error::{AmError, AmResult};

/// The sender's half of the credit-path setup for one stream, by value — the
/// mirror image of [`StreamHandshake`](super::StreamHandshake), travelling in
/// the opposite direction over the same out-of-band bootstrap channel.
#[derive(Debug, Clone)]
pub struct CreditHandshake {
    /// The stream this table flow-controls (`0..streams`).
    pub stream: usize,
    /// Total number of sender streams (`bank % streams == stream` ownership —
    /// the same deterministic map the receiver shards drain by).
    pub streams: usize,
    /// Slot tokens per bank row (must match the receiver's mailboxes per
    /// bank).
    pub per_bank: usize,
    /// Descriptor of the stream's [`BankFlags`] region in the *sender's*
    /// address space; the receiver aims its credit puts here.
    pub descriptor: RegionDescriptor,
    /// Descriptor of the stream's [`NackFlags`] region (also in the sender's
    /// address space), when the lane registered one. The receiver aims its
    /// sequence-gap reports here; `None` disables the reliability layer for
    /// this stream (pre-reliability handshakes still work).
    pub nack: Option<RegionDescriptor>,
}

/// One shard's credit-return context: the reverse endpoint, the target table,
/// and the per-slot drain counters that generate the token sequence.
///
/// Owned by the shard (`ReceiverShard`), so drain threads return credits with
/// no shared state: the endpoint serializes on the NIC models exactly like the
/// forward path does. The drain counters deliberately live *outside*
/// [`RuntimeStats`]: a stats reset between benchmark phases must not restart
/// the token sequence, or a token could repeat its predecessor and the sender
/// would never observe the credit.
#[derive(Debug)]
pub(crate) struct CreditReturn {
    endpoint: Endpoint,
    descriptor: RegionDescriptor,
    /// The stream this table belongs to — kept so a misrouted bank is a loud
    /// error instead of a silent credit into the wrong row (which would both
    /// grant a phantom credit and permanently withhold a real one).
    stream: usize,
    streams: usize,
    per_bank: usize,
    /// Cumulative drains per owned slot, indexed `(bank / streams) * per_bank
    /// + slot`.
    drains: Vec<u64>,
    /// The stream's NACK table and the per-row report counters driving its
    /// token sequence, when the handshake carried one. Like `drains`, the
    /// counters live outside [`RuntimeStats`](crate::RuntimeStats) so a stats
    /// reset cannot repeat a token.
    nack: Option<(RegionDescriptor, Vec<u64>)>,
}

/// Timing/traffic outcome of one credit put, for the caller's stats.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CreditPutOutcome {
    /// When the drain core is free again (posting overhead paid).
    pub sender_free: SimTime,
    /// Payload bytes moved (always 1 today; kept explicit so coalesced credit
    /// words could widen it without touching the accounting).
    pub bytes: usize,
}

impl CreditReturn {
    /// Build the return path for the shard owning `handshake.stream`'s banks.
    /// `banks_total` is the receiver's total bank count (rows are allocated
    /// for every bank the stream owns under `bank % streams`).
    pub(crate) fn new(
        endpoint: Endpoint,
        handshake: &CreditHandshake,
        banks_total: usize,
        per_bank: usize,
    ) -> AmResult<Self> {
        if handshake.per_bank != per_bank {
            return Err(AmError::InvalidConfig(format!(
                "credit table has {} slots per bank but the receiver has {per_bank}",
                handshake.per_bank
            )));
        }
        let rows = banks_owned(handshake.stream, handshake.streams, banks_total);
        if rows == 0 {
            return Err(AmError::InvalidConfig(format!(
                "stream {} of {} owns no bank: nothing to flow-control",
                handshake.stream, handshake.streams
            )));
        }
        let needed = BankFlags::table_len(rows, per_bank);
        if handshake.descriptor.len < needed {
            return Err(AmError::InvalidConfig(format!(
                "credit table region holds {} bytes but {rows} bank rows need {needed}",
                handshake.descriptor.len
            )));
        }
        if let Some(nack) = &handshake.nack {
            let nack_needed = NackFlags::table_len(rows);
            if nack.len < nack_needed {
                return Err(AmError::InvalidConfig(format!(
                    "NACK table region holds {} bytes but {rows} rows need {nack_needed}",
                    nack.len
                )));
            }
        }
        Ok(CreditReturn {
            endpoint,
            descriptor: handshake.descriptor,
            stream: handshake.stream,
            streams: handshake.streams,
            per_bank,
            drains: vec![0; rows * per_bank],
            nack: handshake.nack.map(|d| {
                let rows = banks_owned(handshake.stream, handshake.streams, banks_total);
                (d, vec![0; rows])
            }),
        })
    }

    /// The descriptor of the sender-side table this return path targets —
    /// the identity `drive_pipeline` checks to make sure the host's installed
    /// credit path actually points at the fleet being driven.
    pub(crate) fn descriptor(&self) -> RegionDescriptor {
        self.descriptor
    }

    /// Whether this stream's handshake carried a NACK table — i.e. the
    /// receiver side of the reliability layer is armed for it.
    pub(crate) fn nack_armed(&self) -> bool {
        self.nack.is_some()
    }

    /// Return one credit for (`bank`, `slot`) at drain-virtual time `now`:
    /// bump the slot's drain count and put the next token into the sender's
    /// table. The caller must only invoke this *after* the slot's mailbox has
    /// been cleared — the put's release publication is what lets the sender's
    /// acquire load order its refill behind the clear.
    pub(crate) fn put_credit(
        &mut self,
        now: SimTime,
        bank: usize,
        slot: usize,
    ) -> AmResult<CreditPutOutcome> {
        if crate::bank::ShardMask::owner_of(bank, self.streams) != self.stream {
            return Err(AmError::InvalidConfig(format!(
                "bank {bank} is not owned by stream {} of {}: crediting it here \
                 would write another slot's token",
                self.stream, self.streams
            )));
        }
        if slot >= self.per_bank {
            return Err(AmError::InvalidConfig(format!(
                "no credit slot {slot} in a {}-slot bank row",
                self.per_bank
            )));
        }
        let row = bank / self.streams;
        let idx = row * self.per_bank + slot;
        if idx >= self.drains.len() {
            return Err(AmError::InvalidConfig(format!(
                "no credit row for mailbox ({bank}, {slot})"
            )));
        }
        let token = BankFlags::token_for(self.drains[idx]);
        self.drains[idx] += 1;
        let offset = BankFlags::offset_of(row, slot, self.per_bank);
        let out = self
            .endpoint
            .put(now, &[token], &self.descriptor, offset)
            .map_err(|e| AmError::Fabric(e.to_string()))?;
        Ok(CreditPutOutcome {
            sender_free: out.sender_free,
            bytes: out.bytes,
        })
    }

    /// Idempotently re-put the *current* token for (`bank`, `slot`) after a
    /// suppressed replay: the duplicate frame's credit "is returned" by
    /// re-publishing the token its real retirement already wrote, without
    /// advancing the drain count. The sender's `try_acquire` compares tokens,
    /// so re-writing an unchanged byte can never mint an extra credit — which
    /// is exactly what keeps a duplicated frame from letting the lane clobber
    /// an undrained slot. A replay that races ahead of the slot's very first
    /// drain has no token to re-publish and is skipped (0 bytes).
    pub(crate) fn put_credit_replay(
        &mut self,
        now: SimTime,
        bank: usize,
        slot: usize,
    ) -> AmResult<CreditPutOutcome> {
        if crate::bank::ShardMask::owner_of(bank, self.streams) != self.stream {
            return Err(AmError::InvalidConfig(format!(
                "bank {bank} is not owned by stream {} of {}",
                self.stream, self.streams
            )));
        }
        let row = bank / self.streams;
        let idx = row * self.per_bank + slot;
        if slot >= self.per_bank || idx >= self.drains.len() {
            return Err(AmError::InvalidConfig(format!(
                "no credit row for mailbox ({bank}, {slot})"
            )));
        }
        if self.drains[idx] == 0 {
            return Ok(CreditPutOutcome {
                sender_free: now,
                bytes: 0,
            });
        }
        let token = BankFlags::token_for(self.drains[idx] - 1);
        let offset = BankFlags::offset_of(row, slot, self.per_bank);
        let out = self
            .endpoint
            .put(now, &[token], &self.descriptor, offset)
            .map_err(|e| AmError::Fabric(e.to_string()))?;
        Ok(CreditPutOutcome {
            sender_free: out.sender_free,
            bytes: out.bytes,
        })
    }

    /// Post one sequence-gap report into the sender's NACK table: a single
    /// 5-byte put of `missing_sn` plus the row's next token, release-published
    /// token-last so the sender's acquire poll observes a coherent record.
    /// Rows are spread by `missing_sn % rows` — the receiver cannot know which
    /// bank a *lost* frame was destined for, and the sender locates the frame
    /// by sn in its wire cache anyway. Errors if no NACK table was handshaken.
    pub(crate) fn put_nack(&mut self, now: SimTime, missing_sn: u32) -> AmResult<CreditPutOutcome> {
        let (descriptor, seqs) = self.nack.as_mut().ok_or_else(|| {
            AmError::InvalidConfig("stream handshake carried no NACK table".into())
        })?;
        let row = missing_sn as usize % seqs.len();
        let record = NackFlags::record_for(missing_sn, BankFlags::token_for(seqs[row]));
        seqs[row] += 1;
        let out = self
            .endpoint
            .put(now, &record, descriptor, NackFlags::row_offset(row))
            .map_err(|e| AmError::Fabric(e.to_string()))?;
        Ok(CreditPutOutcome {
            sender_free: out.sender_free,
            bytes: out.bytes,
        })
    }
}

/// Number of banks stream `stream` of `streams` owns out of `banks_total`
/// (`bank % streams == stream`).
pub(crate) fn banks_owned(stream: usize, streams: usize, banks_total: usize) -> usize {
    (0..banks_total)
        .filter(|b| crate::bank::ShardMask::owner_of(*b, streams) == stream)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banks_owned_partitions_every_bank_exactly_once() {
        for streams in 1..5 {
            let total: usize = (0..streams).map(|s| banks_owned(s, streams, 7)).sum();
            assert_eq!(total, 7, "{streams} streams must cover all 7 banks");
        }
        assert_eq!(banks_owned(0, 4, 4), 1);
        assert_eq!(banks_owned(3, 4, 3), 0, "stream past the banks owns none");
    }
}
