//! The receiver's half of the one-sided flow-control path (§VI-A2): credit
//! returns as real fabric traffic.
//!
//! The sender fleet registers one [`BankFlags`] credit table per stream in the
//! *sender's* address space and ships its descriptor back to the receiver as a
//! [`CreditHandshake`] — the reverse half of the connection setup that
//! [`TwoChainsHost::sender_handshake`](super::TwoChainsHost::sender_handshake)
//! started. The receiver installs one [`CreditReturn`] per shard: a
//! reverse-direction endpoint (receiver → sender) plus the cumulative per-slot
//! drain counts that generate the token sequence.
//!
//! Every retired frame (drained, dispatch-rejected or quarantined) produces
//! exactly one credit *token*, but tokens no longer travel one put at a time:
//! the shard **accumulates** them in a per-row pending set and **flushes**
//! one multi-byte [`Endpoint::put`] covering the dirty span of each row. The
//! flush put is charged like any other fabric traffic — the drain core pays
//! the posting cost in virtual time, the put contends for the receiver's
//! transmit NIC, and its DMA delivery installs the bytes on the sender host,
//! posting invalidations to the sender cores' inboxes exactly like inbound
//! frames do on the receiver. Batching moves the per-put fixed cost off the
//! drain hot path: N retirements cost one `put(span)` instead of N
//! `put(1 byte)`s.
//!
//! # The flush state machine
//!
//! A slot is *pending* between [`CreditReturn::accumulate`] (its frame
//! retired, its next token minted) and the flush that publishes the token.
//! The host drives four flush triggers:
//!
//! 1. **Per-frame** ([`CreditFlushPolicy::PerFrame`](crate::config::CreditFlushPolicy)):
//!    flush after every accumulate — a 1-byte span per retirement, the
//!    pre-coalescing wire behaviour, kept as the latency baseline.
//! 2. **Row-fill** (adaptive): `accumulate` reports when the slot's whole row
//!    is pending; a full row is the widest span one put can cover, so waiting
//!    longer buys nothing.
//! 3. **Headroom watermark** (adaptive): the tokens a shard withholds are
//!    credits the sender cannot spend; when the withheld total leaves the
//!    sender within [`RuntimeConfig::credit_flush_watermark`](crate::config::RuntimeConfig)
//!    credits of exhausting its window, the host flushes immediately so
//!    batching never becomes a light-load latency stall.
//! 4. **Idle / abort** (unconditional): the end of every burst scan — and
//!    every error exit from one — flushes whatever is pending, so a token
//!    can never be stranded by an empty bank or a failed dispatch.
//!
//! `accumulate` additionally forces a flush if the slot is *already* pending:
//! two unflushed tokens on one slot would collapse into the newest byte and
//! lose a credit, so the backlog is posted first. (A burst scan visits each
//! slot once and ends in a flush, so the guard is unreachable in the normal
//! schedules — it makes correctness unconditional rather than scheduling-
//! dependent.)
//!
//! # Span encoding and ordering
//!
//! A flushed row span runs from its lowest to its highest dirty slot and
//! always **ends on a dirty slot's token**, because `put` publishes its final
//! byte with release ordering. Gap slots inside the span are *rewritten
//! byte-identically* (the slot's current token, or the fresh 0 for a
//! never-drained slot): every token byte is single-writer and the sender's
//! [`BankFlags::try_acquire`] compares values, so an idempotent rewrite can
//! never mint a credit — the same argument that makes replay re-publication
//! ([`CreditReturn::put_credit_replay`]) safe. Interior bytes land before the
//! final byte's release publication (fabric delivery is one ordered unit,
//! the same contract the multi-byte frame put already relies on), and a poll
//! observing an interior token races only with its own slot's refill, which
//! the value-compare protocol tolerates by construction.
//!
//! # Why the flush counters live outside [`RuntimeStats`](crate::RuntimeStats)
//!
//! The per-slot drain counts, the pending set and the lifetime flush totals
//! all live in [`CreditReturn`], not in the resettable stats: a stats reset
//! between benchmark phases must not restart the token sequence (a repeated
//! token is an invisible credit) and must not orphan pending tokens (a
//! zeroed pending set is a lost credit). The resettable
//! `credit_flushes`/`credit_flush_bytes`/`credit_flush_max_span` counters in
//! `RuntimeStats` are the *observability* view, folded in per flush by the
//! host; the engine's own state is deliberately immune to them.

use twochains_fabric::{Endpoint, RegionDescriptor};
use twochains_memsim::SimTime;

use crate::bank::{BankFlags, NackFlags};
use crate::error::{AmError, AmResult};

/// The sender's half of the credit-path setup for one stream, by value — the
/// mirror image of [`StreamHandshake`](super::StreamHandshake), travelling in
/// the opposite direction over the same out-of-band bootstrap channel.
#[derive(Debug, Clone)]
pub struct CreditHandshake {
    /// The stream this table flow-controls (`0..streams`).
    pub stream: usize,
    /// Total number of sender streams (`bank % streams == stream` ownership —
    /// the same deterministic map the receiver shards drain by).
    pub streams: usize,
    /// Slot tokens per bank row (must match the receiver's mailboxes per
    /// bank).
    pub per_bank: usize,
    /// Descriptor of the stream's [`BankFlags`] region in the *sender's*
    /// address space; the receiver aims its credit puts here.
    pub descriptor: RegionDescriptor,
    /// Descriptor of the stream's [`NackFlags`] region (also in the sender's
    /// address space), when the lane registered one. The receiver aims its
    /// sequence-gap reports here; `None` disables the reliability layer for
    /// this stream (pre-reliability handshakes still work).
    pub nack: Option<RegionDescriptor>,
}

/// One shard's credit-return context: the reverse endpoint, the target table,
/// and the per-slot drain counters that generate the token sequence.
///
/// Owned by the shard (`ReceiverShard`), so drain threads return credits with
/// no shared state: the endpoint serializes on the NIC models exactly like the
/// forward path does. The drain counters deliberately live *outside*
/// [`RuntimeStats`]: a stats reset between benchmark phases must not restart
/// the token sequence, or a token could repeat its predecessor and the sender
/// would never observe the credit.
#[derive(Debug)]
pub(crate) struct CreditReturn {
    endpoint: Endpoint,
    descriptor: RegionDescriptor,
    /// The stream this table belongs to — kept so a misrouted bank is a loud
    /// error instead of a silent credit into the wrong row (which would both
    /// grant a phantom credit and permanently withhold a real one).
    stream: usize,
    streams: usize,
    per_bank: usize,
    /// Cumulative drains per owned slot, indexed `(bank / streams) * per_bank
    /// + slot`.
    drains: Vec<u64>,
    /// Slots whose newest token is minted but not yet flushed (same indexing
    /// as `drains`). Outside [`RuntimeStats`](crate::RuntimeStats) resets for
    /// the same reason `drains` is: zeroing it mid-phase would lose credits.
    pending: Vec<bool>,
    /// How many slots are pending across all rows — the withheld-credit total
    /// the host's watermark trigger compares against the completion window.
    pending_total: usize,
    /// Lifetime flush totals (flush puts, wire bytes, largest span), outside
    /// the resettable stats — see the module docs. The per-flush deltas the
    /// host folds into `RuntimeStats` come from [`FlushOutcome`].
    lifetime_flushes: u64,
    lifetime_flush_bytes: u64,
    lifetime_flush_max_span: u64,
    /// EWMA of the virtual-time interval between token mints, in nanoseconds
    /// (0.0 until the second mint). In the closed fill/drain loop the retire
    /// interval *is* the observable proxy for the sender's credit-acquire
    /// latency: the sender reacquires a slot one refill after it retires, so
    /// the rate tokens are minted here is the rate credits turn around there.
    /// Drives the runtime-adaptive headroom watermark.
    ewma_retire_gap_ns: f64,
    /// Virtual time of the most recent mint, the EWMA's sample anchor.
    last_mint: Option<SimTime>,
    /// The stream's NACK table state, when the handshake carried one. Like
    /// `drains`, the counters live outside
    /// [`RuntimeStats`](crate::RuntimeStats) so a stats reset cannot repeat a
    /// token.
    nack: Option<NackReturn>,
}

/// NACK-table state for one stream (receiver side).
#[derive(Debug)]
struct NackReturn {
    descriptor: RegionDescriptor,
    /// Per-row report counters driving the row token sequence.
    seqs: Vec<u64>,
    /// Last record published per row, cached so a coalesced span put can
    /// rewrite interior rows byte-identically (a value-compared token that
    /// does not change cannot re-fire a report).
    records: Vec<[u8; 5]>,
}

/// Timing/traffic outcome of one credit-path put (replay re-publication or a
/// coalesced NACK span), for the caller's stats.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CreditPutOutcome {
    /// When the drain core is free again (posting overhead paid).
    pub sender_free: SimTime,
    /// Payload bytes moved on the wire.
    pub bytes: usize,
}

/// Traffic one [`CreditReturn::flush`] posted: the per-flush delta the host
/// folds into the resettable `RuntimeStats` counters.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlushOutcome {
    /// When the drain core is free again (every span put's posting paid).
    pub sender_free: SimTime,
    /// Wire bytes across all span puts in this flush (gap-fill included).
    pub bytes: u64,
    /// Span puts posted (one per dirty row).
    pub puts: u64,
    /// Largest single span in bytes.
    pub max_span: u64,
}

/// What [`CreditReturn::accumulate`] observed.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AccumulateOutcome {
    /// A flush forced by a same-slot collision (the slot already held an
    /// unflushed token); `None` in the normal schedules.
    pub forced: Option<FlushOutcome>,
    /// The slot's whole row is now pending — the widest span one put can
    /// cover, so the adaptive policy flushes here.
    pub row_full: bool,
}

impl CreditReturn {
    /// Build the return path for the shard owning `handshake.stream`'s banks.
    /// `banks_total` is the receiver's total bank count (rows are allocated
    /// for every bank the stream owns under `bank % streams`).
    pub(crate) fn new(
        endpoint: Endpoint,
        handshake: &CreditHandshake,
        banks_total: usize,
        per_bank: usize,
    ) -> AmResult<Self> {
        if handshake.per_bank != per_bank {
            return Err(AmError::InvalidConfig(format!(
                "credit table has {} slots per bank but the receiver has {per_bank}",
                handshake.per_bank
            )));
        }
        let rows = banks_owned(handshake.stream, handshake.streams, banks_total);
        if rows == 0 {
            return Err(AmError::InvalidConfig(format!(
                "stream {} of {} owns no bank: nothing to flow-control",
                handshake.stream, handshake.streams
            )));
        }
        let needed = BankFlags::table_len(rows, per_bank);
        if handshake.descriptor.len < needed {
            return Err(AmError::InvalidConfig(format!(
                "credit table region holds {} bytes but {rows} bank rows need {needed}",
                handshake.descriptor.len
            )));
        }
        if let Some(nack) = &handshake.nack {
            let nack_needed = NackFlags::table_len(rows);
            if nack.len < nack_needed {
                return Err(AmError::InvalidConfig(format!(
                    "NACK table region holds {} bytes but {rows} rows need {nack_needed}",
                    nack.len
                )));
            }
        }
        Ok(CreditReturn {
            endpoint,
            descriptor: handshake.descriptor,
            stream: handshake.stream,
            streams: handshake.streams,
            per_bank,
            drains: vec![0; rows * per_bank],
            pending: vec![false; rows * per_bank],
            pending_total: 0,
            lifetime_flushes: 0,
            lifetime_flush_bytes: 0,
            lifetime_flush_max_span: 0,
            ewma_retire_gap_ns: 0.0,
            last_mint: None,
            nack: handshake.nack.map(|d| NackReturn {
                descriptor: d,
                seqs: vec![0; rows],
                records: vec![[0u8; 5]; rows],
            }),
        })
    }

    /// The descriptor of the sender-side table this return path targets —
    /// the identity `drive_pipeline` checks to make sure the host's installed
    /// credit path actually points at the fleet being driven.
    pub(crate) fn descriptor(&self) -> RegionDescriptor {
        self.descriptor
    }

    /// Whether this stream's handshake carried a NACK table — i.e. the
    /// receiver side of the reliability layer is armed for it.
    pub(crate) fn nack_armed(&self) -> bool {
        self.nack.is_some()
    }

    /// Tokens minted but not yet flushed — the withheld-credit total the
    /// host's watermark trigger compares against the completion window.
    pub(crate) fn pending_total(&self) -> usize {
        self.pending_total
    }

    /// Lifetime flush totals `(flush puts, wire bytes, largest span)` —
    /// cumulative since construction, immune to stats resets (module docs).
    pub(crate) fn lifetime_flush_totals(&self) -> (u64, u64, u64) {
        (
            self.lifetime_flushes,
            self.lifetime_flush_bytes,
            self.lifetime_flush_max_span,
        )
    }

    /// Mint the next credit token for (`bank`, `slot`) at drain-virtual time
    /// `now` and mark the slot pending; the token travels on the next
    /// [`CreditReturn::flush`]. The caller must only invoke this *after* the
    /// slot's mailbox has been cleared — the flush put's release publication
    /// is what lets the sender's acquire load order its refill behind the
    /// clear. If the slot already holds an unflushed token, the backlog is
    /// flushed first (two pending tokens on one byte would collapse into the
    /// newest and lose a credit) and the forced flush is reported back for
    /// the caller's accounting.
    pub(crate) fn accumulate(
        &mut self,
        now: SimTime,
        bank: usize,
        slot: usize,
    ) -> AmResult<AccumulateOutcome> {
        if crate::bank::ShardMask::owner_of(bank, self.streams) != self.stream {
            return Err(AmError::InvalidConfig(format!(
                "bank {bank} is not owned by stream {} of {}: crediting it here \
                 would write another slot's token",
                self.stream, self.streams
            )));
        }
        if slot >= self.per_bank {
            return Err(AmError::InvalidConfig(format!(
                "no credit slot {slot} in a {}-slot bank row",
                self.per_bank
            )));
        }
        let row = bank / self.streams;
        let idx = row * self.per_bank + slot;
        if idx >= self.drains.len() {
            return Err(AmError::InvalidConfig(format!(
                "no credit row for mailbox ({bank}, {slot})"
            )));
        }
        let forced = if self.pending[idx] {
            self.flush(now)?
        } else {
            None
        };
        if let Some(prev) = self.last_mint {
            let gap = now.as_ns() - prev.as_ns();
            if gap > 0.0 {
                self.ewma_retire_gap_ns = if self.ewma_retire_gap_ns == 0.0 {
                    gap
                } else {
                    0.875 * self.ewma_retire_gap_ns + 0.125 * gap
                };
            }
        }
        self.last_mint = Some(now);
        self.drains[idx] += 1;
        self.pending[idx] = true;
        self.pending_total += 1;
        let base = row * self.per_bank;
        let row_full = self.pending[base..base + self.per_bank].iter().all(|&p| p);
        Ok(AccumulateOutcome { forced, row_full })
    }

    /// Runtime-adaptive flush watermark: how much completion-window headroom
    /// to keep before forcing a credit flush. Derived from the EWMA of the
    /// retire interval — the receiver-side proxy for the sender's observed
    /// acquire latency (the faster tokens mint, the hotter the sender is
    /// spinning on credits, the earlier we should publish). Falls back to
    /// `fallback` (the static config knob) until the EWMA has a sample.
    pub(crate) fn adaptive_watermark(&self, window: usize, fallback: usize) -> usize {
        adaptive_watermark_for(self.ewma_retire_gap_ns, window, fallback)
    }

    /// Publish every pending token: one multi-byte put per dirty row,
    /// covering the span from its lowest to its highest dirty slot (gap
    /// slots rewritten byte-identically — see the module docs). Returns
    /// `None` when nothing was pending. The row puts serialize on the drain
    /// core's posting path, so `sender_free` accumulates across rows exactly
    /// like back-to-back puts did before coalescing.
    pub(crate) fn flush(&mut self, now: SimTime) -> AmResult<Option<FlushOutcome>> {
        if self.pending_total == 0 {
            return Ok(None);
        }
        let rows = self.drains.len() / self.per_bank;
        let mut clock = now;
        let mut bytes = 0u64;
        let mut puts = 0u64;
        let mut max_span = 0u64;
        let mut buf: Vec<u8> = Vec::with_capacity(self.per_bank);
        for row in 0..rows {
            let base = row * self.per_bank;
            let Some(first) = (0..self.per_bank).find(|&s| self.pending[base + s]) else {
                continue;
            };
            let last = (0..self.per_bank)
                .rfind(|&s| self.pending[base + s])
                .expect("a row with a first dirty slot has a last one");
            buf.clear();
            for slot in first..=last {
                let idx = base + slot;
                let token = if self.pending[idx] {
                    self.pending[idx] = false;
                    self.pending_total -= 1;
                    BankFlags::token_for(self.drains[idx] - 1)
                } else if self.drains[idx] > 0 {
                    // Gap-fill: the slot's current token, byte-identical.
                    BankFlags::token_for(self.drains[idx] - 1)
                } else {
                    // Never drained: 0 is the fresh value the table holds.
                    0
                };
                buf.push(token);
            }
            // The span ends on `last`, a dirty slot, so the put's release
            // byte is a freshly minted token.
            let offset = BankFlags::offset_of(row, first, self.per_bank);
            let out = self
                .endpoint
                .put(clock, &buf, &self.descriptor, offset)
                .map_err(|e| AmError::Fabric(e.to_string()))?;
            clock = out.sender_free;
            bytes += out.bytes as u64;
            puts += 1;
            max_span = max_span.max(buf.len() as u64);
        }
        debug_assert_eq!(self.pending_total, 0, "flush must drain every row");
        self.lifetime_flushes += puts;
        self.lifetime_flush_bytes += bytes;
        self.lifetime_flush_max_span = self.lifetime_flush_max_span.max(max_span);
        Ok(Some(FlushOutcome {
            sender_free: clock,
            bytes,
            puts,
            max_span,
        }))
    }

    /// Idempotently re-put the *current* token for (`bank`, `slot`) after a
    /// suppressed replay: the duplicate frame's credit "is returned" by
    /// re-publishing the token its real retirement already wrote, without
    /// advancing the drain count. The sender's `try_acquire` compares tokens,
    /// so re-writing an unchanged byte can never mint an extra credit — which
    /// is exactly what keeps a duplicated frame from letting the lane clobber
    /// an undrained slot. A replay that races ahead of the slot's very first
    /// drain has no token to re-publish and is skipped (0 bytes). If the
    /// slot's newest token is still pending, this publishes it early — the
    /// credit is genuinely owed, and the later flush rewrites the same byte
    /// idempotently, so the retirement still yields exactly one observable
    /// token.
    pub(crate) fn put_credit_replay(
        &mut self,
        now: SimTime,
        bank: usize,
        slot: usize,
    ) -> AmResult<CreditPutOutcome> {
        if crate::bank::ShardMask::owner_of(bank, self.streams) != self.stream {
            return Err(AmError::InvalidConfig(format!(
                "bank {bank} is not owned by stream {} of {}",
                self.stream, self.streams
            )));
        }
        let row = bank / self.streams;
        let idx = row * self.per_bank + slot;
        if slot >= self.per_bank || idx >= self.drains.len() {
            return Err(AmError::InvalidConfig(format!(
                "no credit row for mailbox ({bank}, {slot})"
            )));
        }
        if self.drains[idx] == 0 {
            return Ok(CreditPutOutcome {
                sender_free: now,
                bytes: 0,
            });
        }
        let token = BankFlags::token_for(self.drains[idx] - 1);
        let offset = BankFlags::offset_of(row, slot, self.per_bank);
        let out = self
            .endpoint
            .put(now, &[token], &self.descriptor, offset)
            .map_err(|e| AmError::Fabric(e.to_string()))?;
        Ok(CreditPutOutcome {
            sender_free: out.sender_free,
            bytes: out.bytes,
        })
    }

    /// Post every due sequence-gap report of one scan into the sender's NACK
    /// table as **one** coalesced put: each missing sn's 5-byte record
    /// (`missing_sn` LE + the row's next token) is staged into its row
    /// (`missing_sn % rows` — the receiver cannot know which bank a *lost*
    /// frame was destined for, and the sender locates the frame by sn in its
    /// wire cache anyway), then a single span put covers the lowest through
    /// the highest staged row, ending on the highest row's token byte so the
    /// release publication covers the whole span. Interior rows not staged
    /// this scan are rewritten byte-identically from the record cache —
    /// value-compared tokens cannot re-fire a report. Two sns colliding on
    /// one row in the same scan keep only the newest record, exactly the
    /// overwrite behaviour the per-gap puts had (the sender's watchdog
    /// backstops any report lost this way). No-op on an empty scan; errors if
    /// no NACK table was handshaken.
    pub(crate) fn put_nacks(
        &mut self,
        now: SimTime,
        missing: &[u32],
    ) -> AmResult<CreditPutOutcome> {
        let nack = self.nack.as_mut().ok_or_else(|| {
            AmError::InvalidConfig("stream handshake carried no NACK table".into())
        })?;
        if missing.is_empty() {
            return Ok(CreditPutOutcome {
                sender_free: now,
                bytes: 0,
            });
        }
        let rows = nack.seqs.len();
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        for &sn in missing {
            let row = sn as usize % rows;
            nack.records[row] = NackFlags::record_for(sn, BankFlags::token_for(nack.seqs[row]));
            nack.seqs[row] += 1;
            lo = lo.min(row);
            hi = hi.max(row);
        }
        // Span from lo's record start to hi's token byte (offset +4 within
        // the row): the final byte is the newest token, release-published.
        let base = NackFlags::row_offset(lo);
        let mut buf = vec![0u8; NackFlags::row_offset(hi) + 5 - base];
        for row in lo..=hi {
            let off = NackFlags::row_offset(row) - base;
            buf[off..off + 5].copy_from_slice(&nack.records[row]);
        }
        let out = self
            .endpoint
            .put(now, &buf, &nack.descriptor, base)
            .map_err(|e| AmError::Fabric(e.to_string()))?;
        Ok(CreditPutOutcome {
            sender_free: out.sender_free,
            bytes: out.bytes,
        })
    }
}

/// How far into the future (virtual nanoseconds) a pending-but-unpublished
/// credit is allowed to age before the headroom math forces a flush. At the
/// observed retire rate, `HORIZON / gap` tokens mint inside this horizon;
/// the watermark keeps the window from shrinking by more than that before
/// the sender sees fresh credits.
const ADAPTIVE_WATERMARK_HORIZON_NS: f64 = 32_768.0;

/// Pure watermark math, split out so the policy is testable without a
/// [`CreditReturn`]. With no EWMA sample yet (`ewma_gap_ns == 0`), returns
/// the static `fallback` knob. Otherwise: tokens expected to mint within the
/// horizon bound how many we may hold back (`allowed`, clamped to
/// `1..=window-1`), and the watermark is the rest of the window — fast
/// retiring (small gap) allows a large backlog and a low watermark; slow
/// retiring pushes the watermark up so the starved sender is refilled early.
pub(crate) fn adaptive_watermark_for(ewma_gap_ns: f64, window: usize, fallback: usize) -> usize {
    if ewma_gap_ns <= 0.0 || window == 0 {
        return fallback;
    }
    let allowed = (ADAPTIVE_WATERMARK_HORIZON_NS / ewma_gap_ns) as usize;
    let allowed = allowed.clamp(1, window.saturating_sub(1).max(1));
    (window - allowed.min(window)).max(1)
}

/// Number of banks stream `stream` of `streams` owns out of `banks_total`
/// (`bank % streams == stream`).
pub(crate) fn banks_owned(stream: usize, streams: usize, banks_total: usize) -> usize {
    (0..banks_total)
        .filter(|b| crate::bank::ShardMask::owner_of(*b, streams) == stream)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banks_owned_partitions_every_bank_exactly_once() {
        for streams in 1..5 {
            let total: usize = (0..streams).map(|s| banks_owned(s, streams, 7)).sum();
            assert_eq!(total, 7, "{streams} streams must cover all 7 banks");
        }
        assert_eq!(banks_owned(0, 4, 4), 1);
        assert_eq!(banks_owned(3, 4, 3), 0, "stream past the banks owns none");
    }

    #[test]
    fn adaptive_watermark_tracks_the_retire_rate() {
        // No sample yet: the static knob stands.
        assert_eq!(adaptive_watermark_for(0.0, 64, 5), 5);
        // Fast retiring (small gap): many tokens mint inside the horizon,
        // so the backlog may grow and the watermark drops to the floor.
        assert_eq!(adaptive_watermark_for(100.0, 64, 5), 1);
        // Slow retiring (gap beyond the horizon): at most one token may be
        // held back, so the watermark covers nearly the whole window.
        assert_eq!(adaptive_watermark_for(100_000.0, 64, 5), 63);
        // Mid-rate: horizon/gap = 4 tokens allowed, watermark = 64 - 4.
        assert_eq!(adaptive_watermark_for(8_192.0, 64, 5), 60);
        // Degenerate windows never underflow and never return zero.
        assert_eq!(adaptive_watermark_for(100.0, 1, 5), 1);
        assert_eq!(adaptive_watermark_for(100.0, 0, 5), 5);
    }
}
