//! The receiver-side host: shared state, the dispatch engine, and the public
//! [`TwoChainsHost`] facade over the sharded receive path.
//!
//! The dispatch engine lives on [`HostCore`] and takes `&self` plus one
//! `&mut ReceiverShard`: everything shared is either read-mostly (namespace,
//! Local Function library, banks, config, the `Arc`-shared read-only segment
//! base) or behind its own fine-grained synchronisation (striped cache levels,
//! the injection caches, the exclusive jam space), so any number of shards can
//! run the engine concurrently. Simulated memory is charged through the shard's
//! own per-core bus (private L1/L2, no lock on a private hit), and execution
//! takes the exclusive address-space lock only in
//! [`SpaceMode::Exclusive`] or for jams that declare cross-shard writes — in
//! [`SpaceMode::ShardLocal`] everything else runs against the shard's private
//! segments and the lock-free read-only base.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use twochains_fabric::{AccessFlags, HostHandle, HostId, MemoryRegion, SimFabric};
use twochains_jamvm::{
    decode_program, hash64, hash64_bytes, resolve, verify, AddressSpace, ExecError, ExecStats,
    ExternTable, GotImage, Instr, JamSpace, ResolvedProgram, Segment, SegmentKind, ShardSpace, Vm,
    VmConfig,
};
use twochains_linker::{ElementId, LinkerNamespace, Package, Ried};
use twochains_memsim::cycles::WaitOutcome;
use twochains_memsim::{
    AccessKind, CoreBus, CoreCacheStats, HierarchyStats, MemoryBus, MemoryStressor,
    SharedHierarchy, SimTime,
};

use super::credit::{CreditHandshake, CreditReturn, FlushOutcome};
use super::injection_cache::{CachedGot, CachedProgram, CachedResolved, InjectionCache};
use super::shard::{ReceiverShard, ShardDrain};
use super::{BurstFrame, BurstOutcome, ReceiveOutcome};
use crate::bank::MailboxBank;
use crate::builtin::BuiltinJam;
use crate::config::{CreditFlushPolicy, ExecutionPolicy, InvocationMode, RuntimeConfig, SpaceMode};
use crate::error::{AmError, AmResult};
use crate::frame::{is_batch, BatchView, ChainArgMap, FrameView, FRAME_HEADER_SIZE};
use crate::mailbox::MailboxTarget;
use crate::stats::RuntimeStats;

/// Software cost models for the receiver's injected-dispatch path, in ns per byte.
///
/// The content hash is charged on every injected message — it is the cache-key
/// computation, streaming the arrived bytes at near line rate. Decode, verify and
/// GOT-image parsing are charged only on a cache miss; on a hit the receiver jumps
/// straight to the cached decoded program, which is the point of the fast path.
const HASH_NS_PER_BYTE: f64 = 0.01;
/// Bytecode decode cost on a cache miss (~2 GB/s: byte-at-a-time opcode dispatch
/// building the instruction vector).
const DECODE_NS_PER_BYTE: f64 = 0.6;
/// Verifier cost on a cache miss (~4 GB/s: register/branch/GOT-slot bound checks
/// over the decoded program).
const VERIFY_NS_PER_BYTE: f64 = 0.25;
/// GOT image parse cost on a GOT-cache miss.
const GOT_PARSE_NS_PER_BYTE: f64 = 0.05;
/// Lowering cost on a resolved-cache miss (walking the decoded program once to
/// flatten operands, resolve GOT call sites, fuse pairs and lay out blocks —
/// cheaper than the byte-at-a-time decode it follows).
const RESOLVE_NS_PER_BYTE: f64 = 0.15;

/// Base simulated address of the receiver's resolved-image slab area (the
/// software code cache the threaded executor fetches from). Distinct from the
/// Local Function code area, the chain-context cells and the shard data
/// windows, so resolved-image fetch traffic never aliases hot runtime lines.
const RESOLVED_CODE_BASE: u64 = 0xD000_0000;
/// Bytes reserved per resolved-image slab (a lowered image larger than this
/// simply charges across slab boundaries — harmless, the slabs exist only to
/// give each image a stable, reusable line range).
const RESOLVED_SLAB_STRIDE: u64 = 32 * 1024;
/// Number of slabs; keys hash onto one deterministically, so a warm image is
/// re-executed from the same (cache-hot) lines every time.
const RESOLVED_SLAB_COUNT: u64 = 1024;

/// Simulated install address for the resolved image of cache key `key`.
fn resolved_slab_base(key: (u32, u64, usize)) -> u64 {
    let mix = hash64(key.1 ^ (key.0 as u64).rotate_left(32) ^ (key.2 as u64).rotate_left(48));
    RESOLVED_CODE_BASE + (mix % RESOLVED_SLAB_COUNT) * RESOLVED_SLAB_STRIDE
}

/// Base simulated address of the per-chain context cells: one 8-byte cell per
/// drain core holding the running result a chain threads from stage to stage.
/// The cell lives in shard scratch address space (each shard owns its core, so
/// cores never share a cell) and is remapped fresh for every stage — its
/// lifetime is exactly one frame's chain.
const CHAIN_CTX_BASE: u64 = 0x9E00_0000;
/// Address stride between consecutive cores' chain-context cells.
const CHAIN_CTX_STRIDE: u64 = 0x100;

/// What the dispatch engine did with one occupied slot (internal: the public
/// burst/single-slot wrappers translate it).
#[derive(Debug)]
enum SlotOutcome {
    /// The frame was dispatched (and executed, unless execution is skipped).
    Executed {
        /// The frame's header sequence number, for the shard's gap watcher.
        sn: u32,
        outcome: ReceiveOutcome,
    },
    /// The frame was a duplicate or stale replay of a sequence number this
    /// slot already executed: silently retired (slot cleared, credit
    /// re-published idempotently, nothing executed). Only produced when the
    /// shard's reliability layer is armed.
    Replayed { sn: u32 },
    /// The slot held a multi-frame batch container: every inner frame was
    /// processed in order (executed, replay-suppressed, or rejected — each
    /// against its *declared* destination slot) and the carrier mailbox was
    /// cleared once. The caller folds each inner entry through the same
    /// sequence-watch and credit bookkeeping a standalone frame gets. (The
    /// container's own sequence number — its first inner frame's — needs no
    /// slot here: every inner outcome carries its declared sn.)
    Batch { frames: Vec<InnerOutcome> },
}

/// What the dispatch engine did with one inner frame of a batch container.
/// Mirrors the single-slot outcomes, tagged with the frame's declared
/// destination slot — the slot whose flow-control credit it retires.
#[derive(Debug)]
enum InnerOutcome {
    Executed {
        slot: usize,
        sn: u32,
        outcome: ReceiveOutcome,
    },
    Replayed {
        slot: usize,
        sn: u32,
    },
    Rejected {
        slot: usize,
        err: AmError,
    },
}

/// The dispatch core's answer for one parsed frame (single or batched):
/// everything `receive_frame`/the batch loop needs to account the frame and
/// build its [`ReceiveOutcome`].
#[derive(Debug)]
struct DispatchedFrame {
    handler_time: SimTime,
    exec_time: SimTime,
    result: u64,
    exec_stats: Option<ExecStats>,
}

/// How the wait preceding a frame's processing is charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaitCharge {
    /// The receiver waited on this mailbox's signal byte (the single-slot
    /// `receive` path): charge the full wait model for `arrival - ready_since`.
    Signal,
    /// Readiness was observed by a burst scan that already charged its (single)
    /// poll: charge no per-frame wait.
    Scanned,
}

/// One entry of the Local Function library: the program as loaded from the package,
/// its GOT resolved against this process's namespace, and the address at which the
/// resident code lives (kept warm in the receiver's caches). Program and GOT are
/// reference-counted so dispatch shares them instead of deep-cloning per message.
#[derive(Debug, Clone)]
struct LocalEntry {
    program: Arc<[Instr]>,
    got: Arc<GotImage>,
    /// The program pre-lowered against its resolved GOT at install time, so
    /// Local Function dispatch (and every chain continuation stage) runs the
    /// threaded executor without a per-message lowering step.
    resolved: Arc<ResolvedProgram>,
    code_base: u64,
}

/// Which executable form a dispatch resolved to: the decoded program for the
/// interpreter, or a lowered image for the threaded executor.
enum ExecImage {
    Interpreted(Arc<[Instr]>),
    Resolved(Arc<ResolvedProgram>),
}

/// Run an execution image against the chosen space/bus — the single seam where
/// the [`ExecutionPolicy`] split reaches the VM.
fn run_image(
    image: &ExecImage,
    got: &GotImage,
    externs: &ExternTable,
    space: &mut dyn JamSpace,
    bus: &mut dyn MemoryBus,
    cfg: &VmConfig,
) -> Result<ExecStats, ExecError> {
    match image {
        ExecImage::Interpreted(program) => Vm::execute(program, got, externs, space, bus, cfg),
        ExecImage::Resolved(resolved) => Vm::execute_resolved(resolved, externs, space, bus, cfg),
    }
}

/// Everything the receive path shares between shards. Split out of
/// [`TwoChainsHost`] so a `&HostCore` can coexist with disjoint
/// `&mut ReceiverShard` borrows (that split is what [`ShardDrain`] packages).
#[derive(Debug)]
pub(crate) struct HostCore {
    handle: HostHandle,
    /// The host's shared cache levels (striped L3/LLC/DRAM); per-core private
    /// L1/L2 live on each shard's [`CoreBus`].
    hierarchy: Arc<SharedHierarchy>,
    config: RuntimeConfig,
    namespace: LinkerNamespace,
    /// The *exclusive* jam address space: the canonical instance of every ried
    /// object. In [`SpaceMode::Exclusive`] every execution maps and runs here
    /// under the mutex; in [`SpaceMode::ShardLocal`] only jams declaring
    /// cross-shard writes do.
    space: Mutex<AddressSpace>,
    /// `Arc`-shared read-only segments (rodata, read-only data exports), read
    /// by every shard without any lock. Rebuilt on package install/live update.
    shared_ro: Arc<AddressSpace>,
    /// Canonical `[start, end)` address ranges of *writable* ried objects.
    /// A resolved GOT that points into one of these ranges addresses
    /// process-global mutable state by canonical address, which only the
    /// exclusive space maps — the dispatch engine routes such messages to the
    /// exclusive path even in shard-local mode (the runtime backstop behind
    /// the install-time `cross_shard_writes` contract check).
    writable_ranges: Vec<(u64, u64)>,
    package: Option<Package>,
    local_lib: HashMap<u32, LocalEntry>,
    mailbox_region: Arc<MemoryRegion>,
    banks: MailboxBank,
    local_code_cursor: u64,
}

/// The receiver-side (and library-owner) runtime for one process.
pub struct TwoChainsHost {
    core: HostCore,
    cache: Arc<InjectionCache>,
    shards: Vec<ReceiverShard>,
}

impl std::fmt::Debug for TwoChainsHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TwoChainsHost")
            .field("host", &self.core.handle.id())
            .field("mailboxes", &self.core.banks.total())
            .field("local_lib", &self.core.local_lib.len())
            .field("shards", &self.shards.len())
            .field("injected_cache", &self.cache.programs_len())
            .finish()
    }
}

impl TwoChainsHost {
    /// Base simulated address at which Local Function library code is laid out.
    const LOCAL_CODE_BASE: u64 = 0x7000_0000;
    /// Base simulated address of shard 0's private writable ried instances
    /// (shard-local space mode); shard `s` starts at
    /// `SHARD_DATA_BASE + s * SHARD_DATA_STRIDE`.
    const SHARD_DATA_BASE: u64 = 0xA000_0000;
    /// Address stride between consecutive shards' private data ranges.
    const SHARD_DATA_STRIDE: u64 = 0x0400_0000;

    /// Create a host runtime on fabric host `id`.
    pub fn new(fabric: &SimFabric, id: HostId, config: RuntimeConfig) -> AmResult<Self> {
        config.validate().map_err(AmError::InvalidConfig)?;
        let handle = fabric.host(id)?;
        let hierarchy = handle.hierarchy();
        let num_cores = hierarchy.num_cores();
        // One live CoreBus per core is a SharedHierarchy invariant (two buses
        // would drain the same invalidation inbox and one could serve stale
        // private lines), so a shard count beyond the core count is rejected
        // rather than silently aliasing cores.
        if config.num_shards > num_cores {
            return Err(AmError::InvalidConfig(format!(
                "{} shards but the testbed has {num_cores} cores: each shard needs its own core",
                config.num_shards
            )));
        }
        let flags = AccessFlags::rwx();
        let region_len = config
            .total_mailboxes()
            .checked_mul(config.frame_capacity)
            .ok_or_else(|| AmError::InvalidConfig("mailbox region size overflows".into()))?;
        let mailbox_region = handle.register(region_len, flags)?;
        let banks = MailboxBank::new(
            Arc::clone(&mailbox_region),
            config.banks,
            config.mailboxes_per_bank,
            config.frame_capacity,
        )?;
        let cache = Arc::new(InjectionCache::with_capacity(
            config.injection_cache_entries,
        ));
        let shared_ro = Arc::new(AddressSpace::new());
        let shards = (0..config.num_shards)
            .map(|i| {
                // Shard i drains on its own core, with that core's private
                // L1/L2 bus (shard count <= core count was checked above, so
                // no two shards alias a core's bus or invalidation inbox).
                let core = (config.receiver_core + i) % num_cores;
                let space = ShardSpace::new(Arc::clone(&shared_ro))
                    .map_err(|e| AmError::InvalidConfig(e.to_string()))?;
                Ok(ReceiverShard::new(
                    i,
                    config.num_shards,
                    core,
                    hierarchy.core_bus(core),
                    space,
                    Arc::clone(&cache),
                ))
            })
            .collect::<AmResult<Vec<_>>>()?;
        Ok(TwoChainsHost {
            core: HostCore {
                handle,
                hierarchy,
                config,
                namespace: LinkerNamespace::new(),
                space: Mutex::new(AddressSpace::new()),
                shared_ro,
                package: None,
                local_lib: HashMap::new(),
                mailbox_region,
                banks,
                local_code_cursor: Self::LOCAL_CODE_BASE,
                writable_ranges: Vec::new(),
            },
            cache,
            shards,
        })
    }

    /// This host's fabric id.
    pub fn host_id(&self) -> HostId {
        self.core.handle.id()
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.core.config
    }

    /// Mutable access to the configuration (wait mode, skip-execution, security) —
    /// used by benchmarks to flip knobs between runs. The shard count is fixed at
    /// construction: changing `num_shards` here does not re-shard the receiver.
    pub fn config_mut(&mut self) -> &mut RuntimeConfig {
        &mut self.core.config
    }

    /// Number of receiver shards (fixed at construction from
    /// [`RuntimeConfig::num_shards`]).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Accumulated statistics, aggregated over every shard. Each call merges the
    /// per-shard counters (O(num_shards)); bind the result once when reading
    /// several fields.
    pub fn stats(&self) -> RuntimeStats {
        let mut total = RuntimeStats::new();
        for shard in &self.shards {
            total.merge(&shard.stats);
        }
        total
    }

    /// Per-shard statistics (introspection for the scaling benchmarks).
    pub fn shard_stats(&self, shard: usize) -> Option<&RuntimeStats> {
        self.shards.get(shard).map(|s| &s.stats)
    }

    /// One shard's private-cache (L1/L2) counters.
    pub fn shard_cache_stats(&self, shard: usize) -> Option<CoreCacheStats> {
        self.shards.get(shard).map(|s| s.bus.stats())
    }

    /// The global simulated-cache view: shared-level counters (L3/LLC/DRAM/DMA)
    /// merged with every shard's private L1/L2 counters.
    pub fn hierarchy_stats(&self) -> HierarchyStats {
        let mut stats = self.core.hierarchy.stats();
        for shard in &self.shards {
            stats.absorb_core(&shard.bus.stats());
        }
        stats
    }

    /// Reset statistics on every shard (runtime counters and the private-cache
    /// counters) and the shared hierarchy levels, so
    /// [`TwoChainsHost::hierarchy_stats`] never mixes pre- and post-reset
    /// epochs. Cache *contents* are preserved everywhere.
    pub fn reset_stats(&mut self) {
        for shard in &mut self.shards {
            shard.stats.reset();
            shard.bus.reset_stats();
        }
        self.core.hierarchy.reset_stats();
    }

    /// The underlying fabric host handle (stashing/prefetcher/stressor toggles).
    pub fn fabric_host(&self) -> &HostHandle {
        &self.core.handle
    }

    /// Toggle LLC stashing for traffic arriving at this host.
    pub fn set_stashing(&self, enabled: bool) {
        self.core.handle.set_stashing(enabled);
    }

    /// Attach or remove a memory stressor (tail-latency experiments).
    pub fn set_stressor(&self, stressor: Option<MemoryStressor>) {
        self.core.handle.set_stressor(stressor);
    }

    /// Drop every cached decoded program and GOT image. Called automatically when a
    /// package is (re)installed or a ried is loaded (live update may rebind symbols
    /// or change code); exposed publicly so benchmarks can measure the cold path.
    /// The caches are shared, so the invalidation is visible to every shard at its
    /// very next probe.
    pub fn invalidate_injection_caches(&mut self) {
        self.cache.invalidate_all();
    }

    /// Number of decoded programs currently cached (introspection for tests and
    /// benchmarks).
    pub fn injected_cache_len(&self) -> usize {
        self.cache.programs_len()
    }

    /// Load a ried into this process's namespace and map its data objects.
    ///
    /// Loading a ried is a live update: symbolic names may now resolve differently,
    /// so every cached GOT resolution (and, conservatively, cached programs) is
    /// invalidated. The next message per element repopulates the caches.
    pub fn load_ried(&mut self, ried: &Ried, replace: bool) -> AmResult<()> {
        self.core.namespace.load_ried(ried, replace)?;
        self.sync_spaces()?;
        self.invalidate_injection_caches();
        Ok(())
    }

    /// Propagate the namespace's data objects into every execution view: the
    /// exclusive space (canonical instances, live contents preserved), the
    /// `Arc`-shared read-only base (rebuilt from scratch — its contents never
    /// change after publication), and each shard's private instances of the
    /// writable objects (created on first sight, existing shard state kept
    /// across live updates, mirroring the exclusive space's reload semantics).
    fn sync_spaces(&mut self) -> AmResult<()> {
        self.core
            .namespace
            .map_data_segments(self.core.space.get_mut())?;
        let objects = self.core.namespace.data_objects();
        self.core.writable_ranges = objects
            .iter()
            .filter(|o| o.writable)
            .map(|o| (o.addr, o.addr + o.init.len() as u64))
            .collect();
        let mut ro = AddressSpace::new();
        for o in objects.iter().filter(|o| !o.writable) {
            ro.map(Segment::new(&o.name, o.addr, o.init.clone(), false, o.kind))
                .map_err(|e| AmError::Exec(e.to_string()))?;
        }
        let ro = Arc::new(ro);
        self.core.shared_ro = Arc::clone(&ro);
        for shard in &mut self.shards {
            shard
                .space
                .set_shared_ro(Arc::clone(&ro))
                .map_err(|e| AmError::Exec(e.to_string()))?;
            for o in objects.iter().filter(|o| o.writable) {
                if shard.space.local.segment(&o.name).is_some() {
                    continue;
                }
                let offset = o.addr - LinkerNamespace::DATA_BASE;
                if offset + o.init.len() as u64 > Self::SHARD_DATA_STRIDE {
                    return Err(AmError::InvalidConfig(format!(
                        "data object {} does not fit a shard's private data range",
                        o.name
                    )));
                }
                let base = Self::SHARD_DATA_BASE
                    + shard.shard_id as u64 * Self::SHARD_DATA_STRIDE
                    + offset;
                shard
                    .space
                    .local
                    .map(Segment::new(&o.name, base, o.init.clone(), true, o.kind))
                    .map_err(|e| AmError::Exec(e.to_string()))?;
            }
        }
        Ok(())
    }

    /// Install a package: load its rieds, then build the Local Function library from
    /// its jams (resolving each jam's GOT against this process's namespace and
    /// keeping the resident code warm in the receiver's caches).
    ///
    /// Reinstalling invalidates the injection caches: element ids may now name
    /// different code, so cached decodes keyed by the old content must not survive —
    /// on any shard; the shared-cache invalidation covers all of them atomically.
    pub fn install_package(&mut self, package: Package) -> AmResult<()> {
        for (_, ried) in package.rieds() {
            self.core.namespace.load_ried(ried, true)?;
        }
        self.sync_spaces()?;
        // In shard-local mode a GOT *data* reference resolves to the canonical
        // address of the object — which, for a writable object, is mapped only
        // in the exclusive space. A jam that takes such a reference without
        // declaring cross-shard writes would fault Unmapped at its first
        // dereference on the lock-free path, so the contradiction is rejected
        // here, at install time, with an actionable message.
        if self.core.config.space_mode == SpaceMode::ShardLocal {
            let writable: std::collections::HashSet<String> = self
                .core
                .namespace
                .data_objects()
                .into_iter()
                .filter(|o| o.writable)
                .map(|o| o.name)
                .collect();
            for (_, jam) in package.jams() {
                if jam.cross_shard_writes {
                    continue;
                }
                if let Some(sym) = jam.got.iter().find(|s| {
                    s.kind == twochains_linker::SymbolKind::Data && writable.contains(&s.name)
                }) {
                    return Err(AmError::InvalidConfig(format!(
                        "jam {} holds a GOT data reference to writable object {} \
                         without declaring cross-shard writes; shard-local mode \
                         requires with_cross_shard_writes() for canonical-address \
                         access to writable state",
                        jam.name, sym.name
                    )));
                }
            }
        }
        for (id, jam) in package.jams() {
            let program: Arc<[Instr]> = jam.program()?.into();
            let got = Arc::new(self.core.namespace.resolve_got(&jam.got)?);
            // Pre-lower at install time: resident functions never pay a
            // per-message lowering, and chain continuation stages run the
            // threaded executor from their first invocation.
            let resolved = Arc::new(resolve(&program, &got));
            let code_len = jam.code_size().max(resolved.image_bytes());
            let code_base = self.core.local_code_cursor;
            self.core.local_code_cursor += (code_len.div_ceil(4096) * 4096) as u64 + 4096;
            // The Local Function library is resident: it has been executed before (or
            // at least loaded and touched), so keep it warm in every drain core's
            // private L1/L2 (any shard may run the local jam); `CoreBus::warm`
            // stashes the range into the shared LLC as well. The warmed span
            // covers whichever image (encoded or resolved) is larger, so both
            // execution policies fetch from warm lines.
            for shard in &mut self.shards {
                shard.bus.warm(code_base, code_len);
            }
            self.core.local_lib.insert(
                id.0,
                LocalEntry {
                    program,
                    got,
                    resolved,
                    code_base,
                },
            );
        }
        self.core.package = Some(package);
        self.invalidate_injection_caches();
        Ok(())
    }

    /// The installed package.
    pub fn package(&self) -> Option<&Package> {
        self.core.package.as_ref()
    }

    /// Element id of a builtin benchmark jam in the installed package. Fails
    /// with [`AmError::UnknownElementName`] carrying the missing name when no
    /// package is installed or the package lacks the jam.
    pub fn builtin_id(&self, jam: BuiltinJam) -> AmResult<ElementId> {
        let name = jam.element_name();
        self.core
            .package
            .as_ref()
            .and_then(|p| p.id_of(name))
            .ok_or_else(|| AmError::UnknownElementName(name.to_string()))
    }

    /// The GOT image for `elem`, resolved against *this* process's namespace. A
    /// receiver exports this to senders during connection setup; senders embed it in
    /// Injected Function frames (the paper's "GOT redirect ... is set by the sender
    /// after an exchange with the receiver").
    pub fn export_got(&self, elem: ElementId) -> AmResult<GotImage> {
        let pkg = self
            .core
            .package
            .as_ref()
            .ok_or(AmError::UnknownElement(elem.0))?;
        let jam = pkg.jam(elem)?;
        Ok(self.core.namespace.resolve_got(&jam.got)?)
    }

    /// The mailbox target a sender should aim at for (`bank`, `slot`).
    pub fn mailbox_target(&self, bank: usize, slot: usize) -> AmResult<MailboxTarget> {
        Ok(self.core.banks.mailbox(bank, slot)?.target())
    }

    /// The receiver's complete half of a fleet session, bundled so the wiring
    /// cannot be partial: one [`StreamHandshake`](super::StreamHandshake) per
    /// receiver shard (stream targets + GOT images) plus the shard count the
    /// credit and NACK tables must pair with. Consumed whole by
    /// [`SenderFleet::connect_fleet`](super::SenderFleet::connect_fleet),
    /// which answers with the reverse half (credit/NACK table registration)
    /// in the same exchange.
    ///
    /// The closed `stream == shard` pairing is a *construction invariant*
    /// here: a handshake only exists for `sender_streams == num_shards`.
    /// Anything that would leave the session half-wired — no installed
    /// package, a stream/shard mismatch — is collected and reported in one
    /// loud error listing everything that is missing, instead of surfacing
    /// piecemeal at first use.
    pub fn session_handshake(&self) -> AmResult<super::SessionHandshake> {
        let shards = self.num_shards();
        let mut missing: Vec<String> = Vec::new();
        if self.core.package.is_none() {
            missing.push(
                "no package installed (install_package on the receiver before connecting)"
                    .to_string(),
            );
        }
        if self.core.config.sender_streams != shards {
            missing.push(format!(
                "sender_streams ({}) != num_shards ({shards}): the session's one-sided \
                 credit and NACK paths need the closed stream<->shard pairing \
                 (configure with with_sender_streams({shards}) or connect with the \
                 deprecated partial-wiring paths)",
                self.core.config.sender_streams
            ));
        }
        if !missing.is_empty() {
            return Err(AmError::InvalidConfig(format!(
                "connect_fleet cannot wire the session: {}",
                missing.join("; ")
            )));
        }
        Ok(super::SessionHandshake {
            streams: self.stream_handshakes(shards)?,
            shards,
        })
    }

    /// The forward half of the exchange on its own: one
    /// [`StreamHandshake`](super::StreamHandshake) per sender stream, each
    /// carrying the mailbox targets of the banks that stream owns
    /// (`bank % streams == stream`, the same deterministic map the receiver
    /// shards drain by) plus the GOT image of every element in the installed
    /// package, resolved against *this* process's namespace. Everything in it
    /// travels by value, so it could cross a real bootstrap channel unchanged.
    pub(crate) fn stream_handshakes(
        &self,
        streams: usize,
    ) -> AmResult<Vec<super::StreamHandshake>> {
        if streams == 0 {
            return Err(AmError::InvalidConfig(
                "need at least one sender stream".into(),
            ));
        }
        if streams > self.core.config.banks {
            return Err(AmError::InvalidConfig(format!(
                "{streams} sender streams but only {} banks: a stream would own no bank",
                self.core.config.banks
            )));
        }
        let pkg = self
            .core
            .package
            .as_ref()
            .ok_or_else(|| AmError::InvalidConfig("no package installed to hand out".into()))?;
        let gots = pkg
            .jams()
            .map(|(id, jam)| Ok((id, self.core.namespace.resolve_got(&jam.got)?)))
            .collect::<AmResult<Vec<_>>>()?;
        (0..streams)
            .map(|stream| {
                let targets = self
                    .core
                    .banks
                    .iter()
                    .filter(|(bank, _, _)| {
                        crate::bank::ShardMask::owner_of(*bank, streams) == stream
                    })
                    .map(|(bank, slot, mailbox)| super::StreamTarget {
                        bank,
                        slot,
                        target: mailbox.target(),
                    })
                    .collect();
                Ok(super::StreamHandshake {
                    stream,
                    streams,
                    per_bank: self.core.config.mailboxes_per_bank,
                    targets,
                    gots: gots.clone(),
                })
            })
            .collect()
    }

    /// Deprecated spelling of the forward half-exchange.
    #[deprecated(
        since = "0.2.0",
        note = "export the whole session with session_handshake() and connect with \
                SenderFleet::connect_fleet — the split handshake can leave the \
                session partially wired (see the migration notes in CHANGES.md)"
    )]
    pub fn sender_handshake(&self, streams: usize) -> AmResult<Vec<super::StreamHandshake>> {
        self.stream_handshakes(streams)
    }

    /// Install the reverse half of the fleet connection: the one-sided
    /// credit-return path (§VI-A2). Each [`CreditHandshake`] carries the
    /// descriptor of one stream's [`BankFlags`](crate::bank::BankFlags) credit
    /// table, registered in the *sender's* address space; this host opens a
    /// reverse-direction endpoint per shard and, from then on, every retired
    /// frame (drained, dispatch-rejected or quarantined) mints a credit token
    /// into the paired stream's table, coalesced into per-row span puts by
    /// the configured [`CreditFlushPolicy`] — flow control riding the fabric
    /// and charged in virtual time, not a host-side side channel.
    ///
    /// Requires one handshake per shard with `streams == num_shards`: bank
    /// ownership is `bank % n` on both sides, so only the closed pairing gives
    /// every drain shard exactly one stream to credit.
    /// [`SenderFleet::connect_fleet`](super::SenderFleet::connect_fleet) calls
    /// this as the reverse half of its exchange.
    pub(crate) fn install_credit_returns_inner(
        &mut self,
        fabric: &SimFabric,
        handshakes: Vec<CreditHandshake>,
    ) -> AmResult<()> {
        let shards = self.shards.len();
        if handshakes.len() != shards {
            return Err(AmError::InvalidConfig(format!(
                "{} credit handshakes for {shards} shards: the one-sided credit \
                 path needs the closed stream<->shard pairing (sender_streams == \
                 num_shards)",
                handshakes.len()
            )));
        }
        let mut returns: Vec<Option<CreditReturn>> = (0..shards).map(|_| None).collect();
        let mut claimed: Vec<(usize, u64, u64)> = Vec::with_capacity(shards);
        for h in handshakes {
            if h.streams != shards || h.stream >= shards {
                return Err(AmError::InvalidConfig(format!(
                    "credit handshake for stream {} of {} does not match the \
                     {shards}-shard receiver",
                    h.stream, h.streams
                )));
            }
            // Vet the table at install time, so a drain-time credit put can
            // only fail on a genuine invariant break (e.g. a region
            // deregistered mid-flight), never on geometry agreed here.
            if !h.descriptor.flags.remote_write {
                return Err(AmError::InvalidConfig(format!(
                    "stream {}'s credit table region is not remote-writable: \
                     every credit put to it would fail at drain time",
                    h.stream
                )));
            }
            // Distinct streams must hand over disjoint regions: two streams
            // sharing (an overlap of) one table would write each other's
            // token bytes — a phantom credit for one lane and a permanently
            // withheld one for the other, with no error anywhere.
            let (start, end) = (
                h.descriptor.base_addr,
                h.descriptor.base_addr + h.descriptor.len as u64,
            );
            if claimed
                .iter()
                .any(|&(host, s, e)| host == h.descriptor.host && start < e && s < end)
            {
                return Err(AmError::InvalidConfig(format!(
                    "stream {}'s credit table overlaps another stream's: \
                     each stream needs its own region",
                    h.stream
                )));
            }
            claimed.push((h.descriptor.host, start, end));
            let endpoint = fabric.endpoint(self.host_id(), HostId(h.descriptor.host))?;
            let credit = CreditReturn::new(
                endpoint,
                &h,
                self.core.config.banks,
                self.core.config.mailboxes_per_bank,
            )?;
            if returns[h.stream].replace(credit).is_some() {
                return Err(AmError::InvalidConfig(format!(
                    "duplicate credit handshake for stream {}",
                    h.stream
                )));
            }
        }
        for (shard, credit) in self.shards.iter_mut().zip(returns) {
            shard.credit = credit;
            // A new handshake means a new sender sequence space (a freshly
            // connected fleet's lanes count from 1 again): stale replay
            // watermarks or suspected gaps from the previous pairing would
            // silently suppress — or spuriously NACK — the new lanes' frames.
            shard.replay.clear();
            shard.watch = super::shard::SeqWatch::default();
        }
        Ok(())
    }

    /// Deprecated spelling of the reverse half-exchange.
    #[deprecated(
        since = "0.2.0",
        note = "connect with SenderFleet::connect_fleet, which installs the credit \
                returns as part of the one session exchange (see the migration \
                notes in CHANGES.md)"
    )]
    pub fn install_credit_returns(
        &mut self,
        fabric: &SimFabric,
        handshakes: Vec<CreditHandshake>,
    ) -> AmResult<()> {
        self.install_credit_returns_inner(fabric, handshakes)
    }

    /// Whether every shard has its one-sided credit-return path installed
    /// (the precondition for [`drive_pipeline`](super::drive_pipeline)).
    pub fn credit_path_installed(&self) -> bool {
        self.shards.iter().all(|s| s.credit.is_some())
    }

    /// The sender-side table descriptor shard `shard`'s credit return targets
    /// (`None` when not installed). `drive_pipeline` checks these against the
    /// fleet it was handed: a later `connect` replaces the credit returns, so
    /// driving an *earlier* fleet would put every token into another fleet's
    /// tables and spin forever — the identity check turns that into an error.
    pub(crate) fn credit_descriptor(
        &self,
        shard: usize,
    ) -> Option<twochains_fabric::RegionDescriptor> {
        self.shards
            .get(shard)
            .and_then(|s| s.credit.as_ref().map(|c| c.descriptor()))
    }

    /// Shard `shard`'s lifetime credit-flush totals `(flush puts, wire bytes,
    /// largest span)` — cumulative since the credit path was installed and
    /// deliberately immune to [`TwoChainsHost::reset_stats`] (the flush
    /// engine's state must survive benchmark-phase resets; see
    /// `CreditReturn::lifetime_flush_totals`). `None` when the credit path
    /// is not installed.
    pub fn credit_flush_lifetime(&self, shard: usize) -> Option<(u64, u64, u64)> {
        self.shards
            .get(shard)
            .and_then(|s| s.credit.as_ref().map(CreditReturn::lifetime_flush_totals))
    }

    /// The receiver's mailbox banks.
    pub fn banks(&self) -> &MailboxBank {
        &self.core.banks
    }

    /// Read a ried-exported data object (for tests and examples that verify
    /// server-side effects, e.g. the Server-Side Sum result array). This reads
    /// the *canonical* instance — the exclusive space — which is the one every
    /// execution mutates in [`SpaceMode::Exclusive`] but only cross-shard jams
    /// mutate in [`SpaceMode::ShardLocal`]; use
    /// [`TwoChainsHost::read_shard_data`] for a shard's private instance.
    pub fn read_data(&self, symbol: &str, offset: usize, len: usize) -> AmResult<Vec<u8>> {
        let addr = self
            .core
            .namespace
            .data_addr(symbol)
            .ok_or_else(|| AmError::Link(format!("no data symbol {symbol}")))?;
        Ok(self
            .core
            .space
            .lock()
            .read(addr + offset as u64, len)
            .map_err(|e| AmError::Exec(e.to_string()))?
            .to_vec())
    }

    /// Read `shard`'s private instance of a writable ried object (shard-local
    /// space mode), falling back to the shared read-only base for non-writable
    /// symbols.
    pub fn read_shard_data(
        &self,
        shard: usize,
        symbol: &str,
        offset: usize,
        len: usize,
    ) -> AmResult<Vec<u8>> {
        let s = self
            .shards
            .get(shard)
            .ok_or_else(|| AmError::InvalidConfig(format!("no shard {shard}")))?;
        let seg = s
            .space
            .local
            .segment(symbol)
            .or_else(|| s.space.shared_ro().segment(symbol))
            .ok_or_else(|| AmError::Link(format!("no data symbol {symbol} in shard {shard}")))?;
        seg.data
            .get(offset..offset + len)
            .map(<[u8]>::to_vec)
            .ok_or_else(|| AmError::Exec(format!("read past the end of {symbol}")))
    }

    /// Process the message sitting in mailbox (`bank`, `slot`).
    ///
    /// This is the single-frame case of the burst engine: the frame is waited for
    /// under the configured wait model, then dispatched through exactly the same
    /// per-shard path [`TwoChainsHost::receive_burst`] uses (the request is routed
    /// to the shard owning `bank`, so its counters land in that shard's stats).
    ///
    /// * `arrival` — when the frame's signal byte became visible (from the sender's
    ///   [`AmSendOutcome::delivered`](super::AmSendOutcome::delivered)).
    /// * `ready_since` — when the receiver thread started waiting on this mailbox.
    /// * `frame_len` — the fixed frame size, or `None` to use the variable-frame
    ///   two-step protocol.
    pub fn receive(
        &mut self,
        bank: usize,
        slot: usize,
        frame_len: Option<usize>,
        arrival: SimTime,
        ready_since: SimTime,
    ) -> AmResult<ReceiveOutcome> {
        let shard_idx = crate::bank::ShardMask::owner_of(bank, self.shards.len());
        self.core.receive_owned(
            &mut self.shards[shard_idx],
            bank,
            slot,
            frame_len,
            arrival,
            ready_since,
        )
    }

    /// Drain up to `max_frames` frames that are ready in the banks owned by shard
    /// `shard`, in one scan ([`MailboxBank::scan_burst`]). The scan's poll is
    /// charged once for the whole burst; the drained frames are then processed
    /// back-to-back in shard-virtual time starting at `now`. Frames that fail
    /// dispatch (malformed code, policy rejection, ...) are dropped — their slot is
    /// cleared so the bank cannot wedge — and reported in
    /// [`BurstOutcome::rejected`].
    pub fn receive_burst(
        &mut self,
        shard: usize,
        max_frames: usize,
        now: SimTime,
    ) -> AmResult<BurstOutcome> {
        if shard >= self.shards.len() {
            return Err(AmError::InvalidConfig(format!(
                "no shard {shard} (host has {})",
                self.shards.len()
            )));
        }
        self.core
            .receive_burst(&mut self.shards[shard], max_frames, now)
    }

    /// Split the host into one [`ShardDrain`] per shard. Each handle owns its
    /// shard's mutable context and shares the host internals, so the returned
    /// handles can be moved to OS threads (e.g. with `std::thread::scope`) and
    /// drained in parallel.
    pub fn shard_drains(&mut self) -> Vec<ShardDrain<'_>> {
        let core = &self.core;
        self.shards
            .iter_mut()
            .map(|shard| ShardDrain { core, shard })
            .collect()
    }
}

impl HostCore {
    /// Return the flow-control credit for a just-retired slot: mint its next
    /// token into the shard's pending row ([`CreditReturn::accumulate`]) and
    /// flush per the configured [`CreditFlushPolicy`] — immediately under
    /// `PerFrame`, on row-fill or the headroom watermark under `Adaptive`
    /// (the idle/abort flush at the end of every scan is the caller's job).
    /// No-op when the credit path is not installed. Must be called *after*
    /// the slot's mailbox was cleared — the flush put's release publication
    /// is what orders the sender's refill behind the clear.
    ///
    /// The token is counted (`credits_returned`, one wire byte in
    /// `credit_put_bytes`) at mint time — token accounting, one per retired
    /// frame regardless of how flushes batch them — while the posting cost
    /// (`credit_put_time`) and the flush-shape counters (`credit_flushes`,
    /// `credit_flush_bytes`, `credit_flush_max_span`) land when a flush
    /// actually posts, advancing `clock` to the puts' `sender_free`.
    ///
    /// A failure here is an invariant break, not a routine condition:
    /// [`TwoChainsHost::install_credit_returns`] vets the table's geometry,
    /// writability and disjointness up front, so the only ways a drain-time
    /// credit put can fail are things like a region deregistered mid-flight.
    /// Callers propagate it (even at the cost of dropping a burst's
    /// already-executed outcomes) — losing a credit silently would wedge the
    /// paired lane with no trace, which is strictly worse.
    fn return_credit(
        &self,
        shard: &mut ReceiverShard,
        clock: &mut SimTime,
        bank: usize,
        slot: usize,
    ) -> AmResult<()> {
        let Some(credit) = shard.credit.as_mut() else {
            return Ok(());
        };
        let out = credit.accumulate(*clock, bank, slot)?;
        shard.stats.credits_returned += 1;
        shard.stats.credit_put_bytes += 1;
        if let Some(flush) = out.forced {
            Self::fold_flush(&mut shard.stats, clock, flush);
        }
        let flush_now = match self.config.credit_flush_policy {
            CreditFlushPolicy::PerFrame => true,
            CreditFlushPolicy::Adaptive => {
                // Row-fill: the widest span one put can cover. Watermark:
                // the withheld tokens leave the sender within `watermark`
                // credits of exhausting its completion window, so batching
                // must yield to latency. The watermark itself follows the
                // observed retire rate (EWMA in `CreditReturn`) unless the
                // config pinned the static knob as an override.
                let credit = shard.credit.as_ref().expect("accumulate ran above");
                let watermark = if self.config.adaptive_credit_watermark {
                    credit.adaptive_watermark(
                        self.config.completion_window,
                        self.config.credit_flush_watermark,
                    )
                } else {
                    self.config.credit_flush_watermark
                };
                out.row_full
                    || credit.pending_total()
                        >= self.config.completion_window.saturating_sub(watermark)
            }
        };
        if flush_now {
            Self::flush_credits(shard, clock)?;
        }
        Ok(())
    }

    /// Post every pending credit token of `shard` now (no-op when nothing is
    /// pending or no credit path is installed), folding the flush traffic
    /// into the shard's stats and advancing `clock` past the posting cost.
    /// This is the idle/abort trigger of the flush state machine: the host
    /// calls it at the end of every scan and on every error exit, so a token
    /// can never be stranded by an empty bank or a failed dispatch.
    fn flush_credits(shard: &mut ReceiverShard, clock: &mut SimTime) -> AmResult<()> {
        if let Some(credit) = shard.credit.as_mut() {
            if let Some(flush) = credit.flush(*clock)? {
                Self::fold_flush(&mut shard.stats, clock, flush);
            }
        }
        Ok(())
    }

    /// Fold one flush's traffic into the resettable stats: the posting cost
    /// charged to the drain core's clock, plus the flush-shape counters
    /// (`credit_flush_max_span` merges with `max`, like the host-wide merge).
    fn fold_flush(stats: &mut RuntimeStats, clock: &mut SimTime, flush: FlushOutcome) {
        stats.credit_flushes += flush.puts;
        stats.credit_flush_bytes += flush.bytes;
        stats.credit_flush_max_span = stats.credit_flush_max_span.max(flush.max_span);
        stats.credit_put_time += flush.sender_free - *clock;
        *clock = flush.sender_free;
    }

    /// Return the credit for a slot retired as a suppressed *replay*: the
    /// slot's current token is re-published without advancing the drain count
    /// ([`CreditReturn::put_credit_replay`]), so the duplicate can neither
    /// leak the slot (the sender still sees it free) nor mint an extra credit
    /// (the token byte is unchanged). Not counted in `credits_returned` — the
    /// put carries no *new* credit — but its traffic and posting cost are
    /// charged like any other put.
    fn return_replay_credit(
        shard: &mut ReceiverShard,
        clock: &mut SimTime,
        bank: usize,
        slot: usize,
    ) -> AmResult<()> {
        if let Some(credit) = shard.credit.as_mut() {
            let out = credit.put_credit_replay(*clock, bank, slot)?;
            shard.stats.credit_put_bytes += out.bytes as u64;
            shard.stats.credit_put_time += out.sender_free - *clock;
            *clock = out.sender_free;
        }
        Ok(())
    }

    /// Feed one processed sequence number (executed or suppressed) to the
    /// shard's gap watcher, when the reliability layer is armed.
    fn note_sequence(shard: &mut ReceiverShard, sn: u32) {
        if shard.credit.as_ref().is_some_and(|c| c.nack_armed()) {
            shard.watch.note(sn);
        }
    }

    /// Close one full bank scan for the gap watcher and post every suspected
    /// loss that outlived the scan-jumble horizon as **one** coalesced NACK
    /// put ([`CreditReturn::put_nacks`]) — `nacks_posted` counts flushes, not
    /// gaps, since the coalescing. On a lossless fabric the watcher never
    /// ages anything out, so this posts nothing.
    fn post_due_nacks(shard: &mut ReceiverShard, clock: &mut SimTime) -> AmResult<()> {
        if !shard.credit.as_ref().is_some_and(|c| c.nack_armed()) {
            return Ok(());
        }
        let due = shard.watch.end_scan();
        if due.is_empty() {
            return Ok(());
        }
        let credit = shard.credit.as_mut().expect("armed implies credit");
        let out = credit.put_nacks(*clock, &due)?;
        shard.stats.nacks_posted += 1;
        shard.stats.credit_put_bytes += out.bytes as u64;
        shard.stats.credit_put_time += out.sender_free - *clock;
        *clock = out.sender_free;
        Ok(())
    }

    /// Single-slot receive through `shard`, charging the wait model. The
    /// slot's credit is returned once the frame retired (see
    /// [`HostCore::return_credit`]) and the pending set is flushed before the
    /// call returns — a single-slot receive is a scan of one, so its token is
    /// never left withheld. The credit posting cost is charged to the shard's
    /// counters but not folded into the returned outcome's handler time — it
    /// belongs to the drain core's next activity, exactly like the burst
    /// path's clock advance.
    ///
    /// Like the burst engine (this is its single-frame case), a frame the
    /// dispatch *rejects* is still retired: the slot is cleared, counted in
    /// `frames_rejected`, and its credit returned — then the error surfaces.
    /// An [`AmError::Empty`] poll (no frame present) retires nothing.
    pub(crate) fn receive_owned(
        &self,
        shard: &mut ReceiverShard,
        bank: usize,
        slot: usize,
        frame_len: Option<usize>,
        arrival: SimTime,
        ready_since: SimTime,
    ) -> AmResult<ReceiveOutcome> {
        let outcome = match self.receive_slot(
            shard,
            bank,
            slot,
            frame_len,
            arrival,
            ready_since,
            WaitCharge::Signal,
        ) {
            Ok(SlotOutcome::Executed { sn, outcome }) => {
                Self::note_sequence(shard, sn);
                outcome
            }
            Ok(SlotOutcome::Replayed { sn }) => {
                // A suppressed replay retires silently: its slot was cleared,
                // its credit is re-published idempotently, and the caller sees
                // the same `Empty` an unoccupied slot produces — a duplicate
                // must be observationally invisible.
                Self::note_sequence(shard, sn);
                let mut clock = arrival;
                Self::return_replay_credit(shard, &mut clock, bank, slot)?;
                return Err(AmError::Empty);
            }
            Ok(SlotOutcome::Batch { frames }) => {
                // A container retires every inner frame in one call. The
                // single-outcome contract hands back the *last executed*
                // frame's outcome — its `handler_done` is when the whole
                // batch finished on the drain core. If nothing executed the
                // caller sees the first inner rejection, or `Empty` when the
                // container was a pure replay.
                let mut clock = arrival;
                let mut last_outcome = None;
                let mut first_err = None;
                for entry in frames {
                    match entry {
                        InnerOutcome::Executed { slot, sn, outcome } => {
                            Self::note_sequence(shard, sn);
                            clock = outcome.handler_done;
                            self.return_credit(shard, &mut clock, bank, slot)?;
                            last_outcome = Some(outcome);
                        }
                        InnerOutcome::Replayed { slot, sn } => {
                            Self::note_sequence(shard, sn);
                            Self::return_replay_credit(shard, &mut clock, bank, slot)?;
                        }
                        InnerOutcome::Rejected { slot, err } => {
                            shard.stats.frames_rejected += 1;
                            if first_err.is_none() {
                                first_err = Some(err);
                            }
                            self.return_credit(shard, &mut clock, bank, slot)?;
                        }
                    }
                }
                Self::flush_credits(shard, &mut clock)?;
                return match last_outcome {
                    Some(outcome) => Ok(outcome),
                    None => Err(first_err.unwrap_or(AmError::Empty)),
                };
            }
            Err(AmError::Empty) => return Err(AmError::Empty),
            Err(err) => {
                // The slot held something the dispatch rejected (malformed
                // header, policy violation, unknown element, ...): free it so
                // the bank cannot wedge. Without a trustworthy length,
                // clearing the header magic alone makes the slot poll empty
                // again (the same gate the quarantine path clears).
                if let Ok(mailbox) = self.banks.mailbox(bank, slot) {
                    let _ = mailbox.clear(frame_len.unwrap_or(FRAME_HEADER_SIZE));
                    shard.stats.frames_rejected += 1;
                    let mut clock = arrival;
                    // The dispatch error is the caller's answer; a credit-put
                    // failure on top of it would only mask the root cause.
                    // The abort-safe flush still runs — the rejected frame's
                    // token must not stay withheld behind the error.
                    let _ = self.return_credit(shard, &mut clock, bank, slot);
                    let _ = Self::flush_credits(shard, &mut clock);
                }
                return Err(err);
            }
        };
        let mut clock = outcome.handler_done;
        self.return_credit(shard, &mut clock, bank, slot)?;
        Self::flush_credits(shard, &mut clock)?;
        Ok(outcome)
    }

    /// One-scan burst drain of the banks `shard` owns (see
    /// [`TwoChainsHost::receive_burst`]).
    ///
    /// Every exit — drained, empty scan, or a propagated dispatch/credit
    /// error — runs the idle/abort credit flush, so a token accumulated for
    /// any retired frame is published before control leaves the burst engine:
    /// an aborted burst may drop its already-executed outcomes, but never a
    /// credit. On an error the original error takes precedence over any
    /// flush failure.
    pub(crate) fn receive_burst(
        &self,
        shard: &mut ReceiverShard,
        max_frames: usize,
        now: SimTime,
    ) -> AmResult<BurstOutcome> {
        let mut clock = now;
        let result = self.receive_burst_inner(shard, max_frames, &mut clock);
        let flushed = Self::flush_credits(shard, &mut clock);
        let mut outcome = result?;
        flushed?;
        outcome.drained_at = clock;
        Ok(outcome)
    }

    /// The burst scan proper: poll, quarantine, dispatch, retire. `clock`
    /// tracks drain-virtual time even across an error return, so the caller's
    /// abort-safe flush charges its posting at the right instant.
    fn receive_burst_inner(
        &self,
        shard: &mut ReceiverShard,
        max_frames: usize,
        clock: &mut SimTime,
    ) -> AmResult<BurstOutcome> {
        // A single poll pass over the shard's banks: ready frames to drain, plus
        // poisoned slots (header magic set but an out-of-range declared length)
        // quarantined on the spot — a burst-only receiver would otherwise never
        // reclaim them.
        let (ready, mut rejected) = self.banks.scan_burst(shard.mask(), max_frames);
        // Quarantined poisoned slots are counted in the shard's stats (and so
        // survive the host-wide merge) as well as reported per burst.
        shard.stats.poisoned_quarantined += rejected.len() as u64;
        // That one scan observes readiness for every frame at once: charge a
        // single zero-length wait (one poll boundary) instead of the per-message
        // wait the single-slot path pays.
        let scan = self
            .config
            .wait_model
            .wait(self.config.wait_mode, SimTime::ZERO);
        shard.stats.wait_time += scan.elapsed;
        shard.stats.cycles.add_wait(scan.cycles);
        *clock += scan.elapsed;
        // A quarantined slot was cleared by the scan, so its credit goes back
        // right away: the paired lane must be able to reuse the slot even
        // though no frame was ever dispatched from it — otherwise a single
        // poisoning put would wedge the lane forever.
        for (bank, slot, _) in &rejected {
            self.return_credit(shard, clock, *bank, *slot)?;
        }
        let mut frames = Vec::with_capacity(ready.len());
        for (bank, slot, frame_len) in ready {
            match self.receive_slot(
                shard,
                bank,
                slot,
                Some(frame_len),
                *clock,
                *clock,
                WaitCharge::Scanned,
            ) {
                Ok(SlotOutcome::Executed { sn, outcome }) => {
                    Self::note_sequence(shard, sn);
                    *clock = outcome.handler_done;
                    frames.push(BurstFrame {
                        bank,
                        slot,
                        outcome,
                    });
                    // One credit token per retired frame, minted the moment
                    // the slot is clear again, on the drain core's clock.
                    self.return_credit(shard, clock, bank, slot)?;
                }
                Ok(SlotOutcome::Replayed { sn }) => {
                    // A suppressed replay is invisible to the burst outcome
                    // (neither drained nor rejected): the duplicate's slot was
                    // cleared and its credit re-published idempotently, so it
                    // cannot leak a slot or double-execute.
                    Self::note_sequence(shard, sn);
                    Self::return_replay_credit(shard, clock, bank, slot)?;
                }
                Ok(SlotOutcome::Batch { frames: inner }) => {
                    // One container, N frames: each inner entry runs the exact
                    // per-frame bookkeeping a standalone slot gets — its own
                    // gap-watch note, its own credit token, its own rejection
                    // record — against its declared destination slot. The
                    // carrier mailbox was already cleared by the unbatcher.
                    for entry in inner {
                        match entry {
                            InnerOutcome::Executed { slot, sn, outcome } => {
                                Self::note_sequence(shard, sn);
                                *clock = outcome.handler_done;
                                frames.push(BurstFrame {
                                    bank,
                                    slot,
                                    outcome,
                                });
                                self.return_credit(shard, clock, bank, slot)?;
                            }
                            InnerOutcome::Replayed { slot, sn } => {
                                Self::note_sequence(shard, sn);
                                Self::return_replay_credit(shard, clock, bank, slot)?;
                            }
                            InnerOutcome::Rejected { slot, err } => {
                                shard.stats.frames_rejected += 1;
                                rejected.push((bank, slot, err));
                                self.return_credit(shard, clock, bank, slot)?;
                            }
                        }
                    }
                }
                Err(err) => {
                    // A frame the dispatch rejects must still free its slot, or the
                    // bank would never earn its flow-control credit back.
                    if let Ok(mailbox) = self.banks.mailbox(bank, slot) {
                        let _ = mailbox.clear(frame_len);
                    }
                    shard.stats.frames_rejected += 1;
                    rejected.push((bank, slot, err));
                    self.return_credit(shard, clock, bank, slot)?;
                }
            }
        }
        // The scan is complete: age the gap watcher and report anything that
        // has now outlived the scan-jumble horizon.
        Self::post_due_nacks(shard, clock)?;
        Ok(BurstOutcome {
            frames,
            rejected,
            drained_at: *clock,
        })
    }

    /// The dispatch engine: wait (per `charge`), poll, parse, resolve through the
    /// shared caches, execute, clear the slot, account.
    #[allow(clippy::too_many_arguments)]
    fn receive_slot(
        &self,
        shard: &mut ReceiverShard,
        bank: usize,
        slot: usize,
        frame_len: Option<usize>,
        arrival: SimTime,
        ready_since: SimTime,
        charge: WaitCharge,
    ) -> AmResult<SlotOutcome> {
        // Disjoint field borrows: the shared cache, the stats, the scratch
        // buffer (which the FrameView borrows), the per-core bus, the
        // shard-local space and the replay filter are separate fields of the
        // shard.
        let ReceiverShard {
            core,
            bus,
            space: shard_space,
            cache,
            scratch,
            stats,
            credit,
            replay,
            num_shards,
            ..
        } = shard;
        // The replay filter is armed only when this shard's stream handshake
        // carried a NACK table: legacy flows (no reliability layer) keep their
        // exact pre-reliability semantics, including re-executing a slot a
        // test refills with the same sequence number. The whole filter is
        // handed down (not one slot's entry): a batch container retires inner
        // frames against several declared slots of the bank.
        let replay = if credit.as_ref().is_some_and(|c| c.nack_armed()) {
            Some((&mut *replay, *num_shards))
        } else {
            None
        };
        self.receive_frame(
            cache,
            stats,
            scratch,
            *core,
            bus,
            shard_space,
            replay,
            bank,
            slot,
            frame_len,
            arrival,
            ready_since,
            charge,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn receive_frame(
        &self,
        cache: &InjectionCache,
        stats: &mut RuntimeStats,
        scratch: &mut Vec<u8>,
        core: usize,
        bus: &mut CoreBus,
        shard_space: &mut ShardSpace,
        replay: Option<(&mut Vec<u32>, usize)>,
        bank: usize,
        slot: usize,
        frame_len: Option<usize>,
        arrival: SimTime,
        ready_since: SimTime,
        charge: WaitCharge,
    ) -> AmResult<SlotOutcome> {
        let mailbox = self.banks.mailbox(bank, slot)?.clone();

        // 1. Wait for the signal byte (or inherit the burst scan's observation).
        let wait = match charge {
            WaitCharge::Signal => {
                let wait_dur = arrival.saturating_sub(ready_since);
                self.config.wait_model.wait(self.config.wait_mode, wait_dur)
            }
            WaitCharge::Scanned => WaitOutcome {
                elapsed: SimTime::ZERO,
                cycles: 0,
            },
        };
        // `stressed()` is one atomic load; the stressor lock is only taken when
        // a stressor is actually attached.
        let jitter = self.hierarchy.scheduler_jitter();
        let detected_at = ready_since + wait.elapsed + jitter;

        // Functional check + frame length discovery.
        let frame_len = match frame_len {
            Some(len) => {
                if !mailbox.poll_fixed(len)? {
                    return Err(AmError::Empty);
                }
                len
            }
            None => mailbox.poll_variable()?.ok_or(AmError::Empty)?,
        };
        mailbox.read_frame_into(frame_len, scratch)?;
        if is_batch(scratch) {
            return self.receive_batch(
                cache,
                stats,
                scratch,
                core,
                bus,
                shard_space,
                replay,
                bank,
                &mailbox,
                frame_len,
                detected_at,
                wait,
            );
        }
        let frame = FrameView::parse(scratch)?;

        // Idempotent replay suppression (armed flows only): a frame whose
        // sequence number is not strictly newer than the last one executed
        // from this slot is a duplicate delivery or a stale retransmit — the
        // original already executed and was credited, so the copy is retired
        // silently (slot cleared, no dispatch, no stats that would diverge
        // from the lossless run). `0` is the never-executed sentinel; the
        // sender's sequence space starts at 1, so it cannot collide.
        let sn = frame.header.sn;
        let last_sn = replay.map(|(filter, num_shards)| {
            Self::replay_entry(
                filter,
                num_shards,
                self.config.mailboxes_per_bank,
                bank,
                slot,
            )
        });
        if let Some(last) = &last_sn {
            if **last != 0 && !super::shard::sn_newer(sn, **last) {
                mailbox.clear(frame_len)?;
                stats.replays_suppressed += 1;
                return Ok(SlotOutcome::Replayed { sn });
            }
        }

        let dispatched = self.dispatch_frame(
            cache,
            stats,
            core,
            bus,
            shard_space,
            &frame,
            mailbox.base_addr(),
        )?;

        // 6. Reset the mailbox for reuse.
        mailbox.clear(frame_len)?;

        let handler_done = detected_at + dispatched.handler_time;
        stats.messages_received += 1;
        stats.wait_time += wait.elapsed;
        stats.exec_time += dispatched.handler_time;
        stats.cycles.add_wait(wait.cycles);
        stats.cycles.add_work_time(
            dispatched.handler_time,
            self.config.wait_model.core_freq_ghz,
        );

        if let Some(last) = last_sn {
            *last = sn;
        }
        Ok(SlotOutcome::Executed {
            sn,
            outcome: ReceiveOutcome {
                detected_at,
                handler_done,
                wait,
                exec: dispatched.exec_stats,
                result: dispatched.result,
                handler_time: dispatched.handler_time,
                dispatch_time: dispatched.handler_time - dispatched.exec_time,
            },
        })
    }

    /// The replay-filter entry guarding mailbox (`bank`, `slot`), growing the
    /// filter on first touch. Rows are indexed like [`CreditReturn`]'s: the
    /// shard sees every `num_shards`-th bank, so `bank / num_shards` is its
    /// local row.
    fn replay_entry(
        filter: &mut Vec<u32>,
        num_shards: usize,
        per_bank: usize,
        bank: usize,
        slot: usize,
    ) -> &mut u32 {
        let idx = (bank / num_shards) * per_bank + slot;
        if filter.len() <= idx {
            filter.resize(idx + 1, 0);
        }
        &mut filter[idx]
    }

    /// Unbatch one multi-frame container sitting in the carrier mailbox of
    /// `bank`: one readiness check and one parse prologue amortized over all
    /// inner frames, then each inner frame dispatched back-to-back through
    /// the same engine a standalone frame uses — replay-filtered, executed,
    /// and accounted against its *declared* destination slot (the slot whose
    /// flow-control credit the sender consumed for it). Only the carrier
    /// mailbox is cleared: the declared slots were never written, their
    /// tokens simply come back through the per-inner credit returns the
    /// caller folds in. A retransmitted container re-executes nothing — every
    /// inner frame hits its slot's replay filter and retires as `Replayed`.
    #[allow(clippy::too_many_arguments)]
    fn receive_batch(
        &self,
        cache: &InjectionCache,
        stats: &mut RuntimeStats,
        container: &[u8],
        core: usize,
        bus: &mut CoreBus,
        shard_space: &mut ShardSpace,
        mut replay: Option<(&mut Vec<u32>, usize)>,
        bank: usize,
        mailbox: &crate::mailbox::ReactiveMailbox,
        frame_len: usize,
        detected_at: SimTime,
        wait: WaitOutcome,
    ) -> AmResult<SlotOutcome> {
        let view = BatchView::parse(container)?;
        let base = mailbox.base_addr();
        // One container-header read is the whole prologue: inner headers are
        // still read per frame below (that work is real), but readiness was
        // checked once and the outer parse validated the whole envelope.
        let prologue = bus.access(core, base, FRAME_HEADER_SIZE, AccessKind::Read);
        stats.exec_time += prologue;
        stats.wait_time += wait.elapsed;
        stats.cycles.add_wait(wait.cycles);
        stats
            .cycles
            .add_work_time(prologue, self.config.wait_model.core_freq_ghz);
        let mut clock = detected_at + prologue;
        let mut frames = Vec::with_capacity(view.frames().len());
        for (ix, &(dest, bytes)) in view.frames().iter().enumerate() {
            let dest = dest as usize;
            // The inner frame's bytes live inside the carrier slot's memory,
            // so its charged addresses are carrier-relative.
            let offset = bytes.as_ptr() as usize - container.as_ptr() as usize;
            let inner_base = base + offset as u64;
            let frame = match FrameView::parse(bytes) {
                Ok(frame) => frame,
                Err(err) => {
                    frames.push(InnerOutcome::Rejected {
                        slot: dest,
                        err: AmError::BadFrame(format!("batch inner frame {ix}: {err}")),
                    });
                    continue;
                }
            };
            let sn = frame.header.sn;
            let last_sn = replay.as_mut().map(|(filter, num_shards)| {
                Self::replay_entry(
                    filter,
                    *num_shards,
                    self.config.mailboxes_per_bank,
                    bank,
                    dest,
                )
            });
            if let Some(last) = &last_sn {
                if **last != 0 && !super::shard::sn_newer(sn, **last) {
                    stats.replays_suppressed += 1;
                    frames.push(InnerOutcome::Replayed { slot: dest, sn });
                    continue;
                }
            }
            match self.dispatch_frame(cache, stats, core, bus, shard_space, &frame, inner_base) {
                Ok(dispatched) => {
                    let handler_done = clock + dispatched.handler_time;
                    stats.messages_received += 1;
                    stats.batch_frames_received += 1;
                    stats.exec_time += dispatched.handler_time;
                    stats.cycles.add_work_time(
                        dispatched.handler_time,
                        self.config.wait_model.core_freq_ghz,
                    );
                    if let Some(last) = last_sn {
                        *last = sn;
                    }
                    frames.push(InnerOutcome::Executed {
                        slot: dest,
                        sn,
                        outcome: ReceiveOutcome {
                            detected_at: clock,
                            handler_done,
                            wait: WaitOutcome {
                                elapsed: SimTime::ZERO,
                                cycles: 0,
                            },
                            exec: dispatched.exec_stats,
                            result: dispatched.result,
                            handler_time: dispatched.handler_time,
                            dispatch_time: dispatched.handler_time - dispatched.exec_time,
                        },
                    });
                    clock = handler_done;
                }
                Err(err) => {
                    frames.push(InnerOutcome::Rejected { slot: dest, err });
                }
            }
        }
        // One clear retires the whole container: the release header the
        // sender published covers every inner frame.
        mailbox.clear(frame_len)?;
        stats.batches_received += 1;
        Ok(SlotOutcome::Batch { frames })
    }

    /// The dispatch core shared by the single-frame and batch paths: header
    /// read, mode split, policy check, cache resolution, execution and
    /// continuation stages for one parsed frame whose wire bytes live at
    /// `base_addr`. Charges everything to `stats` except the per-frame
    /// retirement bookkeeping (`messages_received`, wait, mailbox clear),
    /// which stays with the caller — the batch path amortizes those.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_frame(
        &self,
        cache: &InjectionCache,
        stats: &mut RuntimeStats,
        core: usize,
        bus: &mut CoreBus,
        shard_space: &mut ShardSpace,
        frame: &FrameView<'_>,
        base_addr: u64,
    ) -> AmResult<DispatchedFrame> {
        // 2. Read the header, charged through this shard's own core bus —
        // private L1/L2 lookups take no lock; only misses touch the striped
        // shared levels.
        let mut handler_time = SimTime::ZERO;
        handler_time += bus.access(core, base_addr, FRAME_HEADER_SIZE, AccessKind::Read);

        let mode = if frame.header.injected {
            InvocationMode::Injected
        } else {
            InvocationMode::Local
        };
        handler_time += SimTime::from_ns_f64(match mode {
            InvocationMode::Injected => self.config.injected_dispatch_ns,
            InvocationMode::Local => self.config.local_dispatch_ns,
        });

        let mut exec_stats = None;
        let mut result = 0u64;
        let mut exec_time = SimTime::ZERO;

        if !self.config.skip_execution {
            // 3. Security policy.
            if mode == InvocationMode::Injected
                && self.config.security.require_execute_permission
                && !self.mailbox_region.flags().remote_execute
            {
                return Err(AmError::PolicyViolation(
                    "mailbox region lacks remote-execute permission".into(),
                ));
            }

            // 4. Resolve the GOT and the executable image, through the shared
            // injection caches for Injected mode and by Arc-shared Local
            // Function entries otherwise. Under the resolved policy the warm
            // injected path is keyed by the *NIC delivery digest*: the DMA
            // engine hashes the code section as the bytes stream through at
            // delivery (receive-side hash offload — the same cut-through
            // install engine that keeps up with line rate), so a warm dispatch
            // never reads the code section on the receiver core at all. The
            // digest is receiver-computed (by the receiver's own NIC), so
            // trusting it is security-equivalent to hashing on the core; the
            // GOT section is still read and hashed per message as before.
            let (image, got, code_base) = match mode {
                InvocationMode::Injected => {
                    let got = self.injected_got(
                        cache,
                        stats,
                        bus,
                        core,
                        frame,
                        base_addr,
                        &mut handler_time,
                    )?;
                    match self.config.execution_policy {
                        ExecutionPolicy::Resolved => {
                            let rkey = (
                                frame.header.elem_id,
                                hash64_bytes(frame.code),
                                frame.code.len(),
                            );
                            if let Some(entry) = cache.lookup_resolved(rkey, &got) {
                                // The GOT is pointer-identical to the one the
                                // image was lowered against, but the verifier
                                // floor is re-checked for parity with the
                                // interpreted warm path.
                                if got.len() < entry.min_got_slots {
                                    return Err(AmError::BadFrame(format!(
                                        "cached program references GOT slot {} but the \
                                         message GOT has only {} slots",
                                        entry.min_got_slots - 1,
                                        got.len()
                                    )));
                                }
                                stats.resolved_cache_hits += 1;
                                // The resolved image subsumes the decoded
                                // program: a resolved hit is a code-cache hit.
                                stats.injected_code_cache_hits += 1;
                                (ExecImage::Resolved(entry.image), got, entry.code_base)
                            } else {
                                stats.resolved_cache_misses += 1;
                                let (program, min_got_slots) = self.injected_program(
                                    cache,
                                    stats,
                                    bus,
                                    core,
                                    frame,
                                    got.len(),
                                    base_addr,
                                    &mut handler_time,
                                )?;
                                let image = Arc::new(resolve(&program, &got));
                                let slab = resolved_slab_base(rkey);
                                // Lowering walks the decoded program once, then
                                // the image is written into its slab (which
                                // installs its lines hot for the execution that
                                // follows and every warm re-run).
                                handler_time += SimTime::from_ns_f64(
                                    frame.code.len() as f64 * RESOLVE_NS_PER_BYTE,
                                );
                                handler_time += bus.access(
                                    core,
                                    slab,
                                    image.image_bytes().max(1),
                                    AccessKind::Write,
                                );
                                cache.store_resolved(
                                    rkey,
                                    CachedResolved {
                                        got: Arc::clone(&got),
                                        image: Arc::clone(&image),
                                        code_base: slab,
                                        min_got_slots,
                                    },
                                );
                                (ExecImage::Resolved(image), got, slab)
                            }
                        }
                        ExecutionPolicy::Interpret => {
                            let (program, _) = self.injected_program(
                                cache,
                                stats,
                                bus,
                                core,
                                frame,
                                got.len(),
                                base_addr,
                                &mut handler_time,
                            )?;
                            let code_base = base_addr + frame.code_offset() as u64;
                            (ExecImage::Interpreted(program), got, code_base)
                        }
                    }
                }
                InvocationMode::Local => {
                    let entry = self
                        .local_lib
                        .get(&frame.header.elem_id)
                        .ok_or(AmError::UnknownElement(frame.header.elem_id))?;
                    let image = match self.config.execution_policy {
                        ExecutionPolicy::Resolved => {
                            ExecImage::Resolved(Arc::clone(&entry.resolved))
                        }
                        ExecutionPolicy::Interpret => {
                            ExecImage::Interpreted(Arc::clone(&entry.program))
                        }
                    };
                    (image, Arc::clone(&entry.got), entry.code_base)
                }
            };

            // 5. Map the message's ARGS and USR sections at their mailbox addresses
            // so every access is charged against the lines the NIC delivered. These
            // are the only sections copied out of the receive buffer — the jam may
            // write to them (subject to policy), so they need their own backing
            // store. Which space they map into is the mode split: the exclusive
            // space under its mutex, or the shard's own local space with no lock
            // at all.
            let args_base = base_addr + frame.args_offset() as u64;
            let usr_base = base_addr + frame.usr_offset() as u64;
            let args_writable = !self.config.security.read_only_args;
            let usr_writable = !self.config.security.read_only_payload;
            let args_seg = Segment::new(
                "msg.args",
                args_base,
                frame.args.to_vec(),
                args_writable,
                SegmentKind::Args,
            );
            let usr_seg = Segment::new(
                "msg.usr",
                usr_base,
                frame.usr.to_vec(),
                usr_writable,
                SegmentKind::Payload,
            );

            let vm_cfg = VmConfig {
                core,
                code_base,
                fuel: 50_000_000,
                freq_ghz: self.config.wait_model.core_freq_ghz,
                ipc: 2.0,
                extern_call_overhead: SimTime::from_ns(6),
                entry_regs: [args_base, usr_base, frame.usr.len() as u64],
            };

            // A jam that declares cross-shard writes must see the canonical
            // (exclusive) instances even in shard-local mode. The GOT scan is
            // the runtime backstop for messages the install-time contract
            // check cannot see (injected frames for elements outside the
            // installed package, rieds loaded without a package): a resolved
            // Data reference into a writable object's canonical range only
            // works on the exclusive path, so such messages are routed there
            // instead of faulting Unmapped on the lock-free one.
            let use_exclusive = match self.config.space_mode {
                SpaceMode::Exclusive => true,
                SpaceMode::ShardLocal => {
                    self.package
                        .as_ref()
                        .and_then(|p| p.jam(ElementId(frame.header.elem_id)).ok())
                        .is_some_and(|j| j.cross_shard_writes)
                        || self.got_addresses_writable_data(&got)
                }
            };

            let exec = if use_exclusive {
                // Exclusive path: the whole map → execute → unmap window holds
                // the process-wide space lock (the PR-2 behaviour).
                let mut space = self.space.lock();
                space
                    .map(args_seg)
                    .map_err(|e| AmError::Exec(e.to_string()))?;
                if let Err(e) = space.map(usr_seg) {
                    space.unmap("msg.args");
                    return Err(AmError::Exec(e.to_string()));
                }
                let exec_result = run_image(
                    &image,
                    &got,
                    self.namespace.externs(),
                    &mut *space,
                    bus,
                    &vm_cfg,
                );
                space.unmap("msg.args");
                space.unmap("msg.usr");
                drop(space);
                exec_result?
            } else {
                // Shard-local path: per-message sections map into the shard's
                // own space; reads of ried rodata go through the Arc-shared
                // read-only base; writes land in the shard's private heap
                // instances. No lock anywhere on this path.
                shard_space
                    .local
                    .map(args_seg)
                    .map_err(|e| AmError::Exec(e.to_string()))?;
                if let Err(e) = shard_space.local.map(usr_seg) {
                    shard_space.local.unmap("msg.args");
                    return Err(AmError::Exec(e.to_string()));
                }
                let exec_result = run_image(
                    &image,
                    &got,
                    self.namespace.externs(),
                    shard_space,
                    bus,
                    &vm_cfg,
                );
                shard_space.local.unmap("msg.args");
                shard_space.local.unmap("msg.usr");
                exec_result?
            };
            exec_time = exec.total_time();
            handler_time += exec_time;
            result = exec.result;
            stats.superinstructions_executed += exec.superinstructions;
            exec_stats = Some(exec);
            stats.executions += 1;
            match mode {
                InvocationMode::Injected => stats.injected_executions += 1,
                InvocationMode::Local => stats.local_executions += 1,
            }

            // 5b. Continuation stages. Jam k's result registers feed jam k+1's
            // entry registers through the per-chain context cell: the running
            // result is stored there (one charged 8-byte write), the next stage
            // is resolved through the Local Function library and dispatched for
            // the per-stage table-lookup cost — no new frame, no new wait, no
            // re-parse. The frame stays in its mailbox until the whole chain
            // retires, so a failing stage propagates ChainStageFailed into the
            // ordinary rejection path: the frame is retired as a whole, one
            // `frames_rejected`, one credit.
            if let Some(chain) = frame.chain.filter(|c| !c.is_empty()) {
                let ctx_base = CHAIN_CTX_BASE + core as u64 * CHAIN_CTX_STRIDE;
                for (idx, stage) in chain.stages().iter().enumerate() {
                    let fail = |reason: String| AmError::ChainStageFailed { stage: idx, reason };
                    let entry = self
                        .local_lib
                        .get(&stage.elem_id)
                        .ok_or_else(|| fail(AmError::UnknownElement(stage.elem_id).to_string()))?;
                    // Per-stage dispatch: a function-pointer table lookup by
                    // element id, exactly the Local Function dispatch cost.
                    handler_time += SimTime::from_ns_f64(self.config.local_dispatch_ns);
                    // Publish the running result into the chain context cell.
                    handler_time += bus.access(core, ctx_base, 8, AccessKind::Write);
                    // Entry-register contract (see `runtime` module docs): the
                    // default Result map hands the stage the context cell where
                    // a standalone send would hand it the ARGS block, so a
                    // stage observes bit-identical operands either way.
                    let entry_regs = match stage.map {
                        ChainArgMap::Result => [ctx_base, usr_base, frame.usr.len() as u64],
                        ChainArgMap::KeepArgs => [args_base, ctx_base, 8],
                    };
                    let ctx_seg = Segment::new(
                        "chain.ctx",
                        ctx_base,
                        result.to_le_bytes().to_vec(),
                        true,
                        SegmentKind::Args,
                    );
                    let stage_args = Segment::new(
                        "chain.args",
                        args_base,
                        frame.args.to_vec(),
                        args_writable,
                        SegmentKind::Args,
                    );
                    let stage_usr = Segment::new(
                        "chain.usr",
                        usr_base,
                        frame.usr.to_vec(),
                        usr_writable,
                        SegmentKind::Payload,
                    );
                    let exec = self
                        .execute_chain_stage(
                            shard_space,
                            bus,
                            core,
                            stage.elem_id,
                            entry,
                            [ctx_seg, stage_args, stage_usr],
                            entry_regs,
                        )
                        .map_err(|e| fail(e.to_string()))?;
                    exec_time += exec.total_time();
                    handler_time += exec.total_time();
                    result = exec.result;
                    stats.superinstructions_executed += exec.superinstructions;
                    stats.executions += 1;
                    stats.local_executions += 1;
                    stats.chain_stages_executed += 1;
                }
                stats.chain_frames += 1;
            }
        }

        Ok(DispatchedFrame {
            handler_time,
            exec_time,
            result,
            exec_stats,
        })
    }

    /// Whether a resolved GOT image holds a `Data` reference into the
    /// canonical address range of a writable ried object (only the exclusive
    /// space maps those addresses; see `writable_ranges`).
    fn got_addresses_writable_data(&self, got: &GotImage) -> bool {
        if self.writable_ranges.is_empty() {
            return false;
        }
        (0..got.len()).any(|slot| match got.get(slot) {
            twochains_jamvm::ExternRef::Data(addr) => self
                .writable_ranges
                .iter()
                .any(|&(start, end)| addr >= start && addr < end),
            _ => false,
        })
    }

    /// Execute one continuation stage of a chain: map the stage's view of the
    /// frame (`chain.ctx`, `chain.args`, `chain.usr` — fresh copies, so stages
    /// cannot corrupt the primary's retired sections) into the same space the
    /// primary's routing rules pick, run the Local Function entry, and unmap.
    /// The space split mirrors the primary dispatch exactly: exclusive mode
    /// (or a stage declaring cross-shard writes, or a GOT addressing writable
    /// canonical state) takes the process-wide lock for its whole
    /// map → execute → unmap window; everything else runs lock-free against
    /// the shard's own space.
    #[allow(clippy::too_many_arguments)]
    fn execute_chain_stage(
        &self,
        shard_space: &mut ShardSpace,
        bus: &mut CoreBus,
        core: usize,
        elem_id: u32,
        entry: &LocalEntry,
        segs: [Segment; 3],
        entry_regs: [u64; 3],
    ) -> AmResult<ExecStats> {
        const NAMES: [&str; 3] = ["chain.ctx", "chain.args", "chain.usr"];
        let vm_cfg = VmConfig {
            core,
            code_base: entry.code_base,
            fuel: 50_000_000,
            freq_ghz: self.config.wait_model.core_freq_ghz,
            ipc: 2.0,
            extern_call_overhead: SimTime::from_ns(6),
            entry_regs,
        };
        // Continuation stages are Local Function entries, pre-lowered at
        // install time — the policy split costs no per-stage work either way.
        let image = match self.config.execution_policy {
            ExecutionPolicy::Resolved => ExecImage::Resolved(Arc::clone(&entry.resolved)),
            ExecutionPolicy::Interpret => ExecImage::Interpreted(Arc::clone(&entry.program)),
        };
        let use_exclusive = match self.config.space_mode {
            SpaceMode::Exclusive => true,
            SpaceMode::ShardLocal => {
                self.package
                    .as_ref()
                    .and_then(|p| p.jam(ElementId(elem_id)).ok())
                    .is_some_and(|j| j.cross_shard_writes)
                    || self.got_addresses_writable_data(&entry.got)
            }
        };
        // Map with rollback: a partial mapping must never outlive the stage.
        fn map_all(space: &mut AddressSpace, segs: [Segment; 3]) -> AmResult<()> {
            for (i, seg) in segs.into_iter().enumerate() {
                if let Err(e) = space.map(seg) {
                    for name in &NAMES[..i] {
                        space.unmap(name);
                    }
                    return Err(AmError::Exec(e.to_string()));
                }
            }
            Ok(())
        }
        if use_exclusive {
            let mut space = self.space.lock();
            map_all(&mut space, segs)?;
            let exec_result = run_image(
                &image,
                &entry.got,
                self.namespace.externs(),
                &mut *space,
                bus,
                &vm_cfg,
            );
            for name in NAMES {
                space.unmap(name);
            }
            Ok(exec_result?)
        } else {
            map_all(&mut shard_space.local, segs)?;
            let exec_result = run_image(
                &image,
                &entry.got,
                self.namespace.externs(),
                shard_space,
                bus,
                &vm_cfg,
            );
            for name in NAMES {
                shard_space.local.unmap(name);
            }
            Ok(exec_result?)
        }
    }

    /// Resolve the GOT image of an injected frame, through the shared GOT caches.
    #[allow(clippy::too_many_arguments)]
    fn injected_got(
        &self,
        cache: &InjectionCache,
        stats: &mut RuntimeStats,
        bus: &mut CoreBus,
        core: usize,
        frame: &FrameView<'_>,
        mailbox_base: u64,
        handler_time: &mut SimTime,
    ) -> AmResult<Arc<GotImage>> {
        let elem_id = frame.header.elem_id;
        if self.config.security.accept_sender_got {
            // Hash (and, on a candidate hit, compare) the sender-provided image in
            // place; like the code hash this streams the arrived bytes, so it is
            // charged as a read of the section wherever the frame landed.
            *handler_time += SimTime::from_ns_f64(frame.got.len() as f64 * HASH_NS_PER_BYTE);
            *handler_time += bus.access(
                core,
                mailbox_base + frame.got_offset() as u64,
                frame.got.len().max(1),
                AccessKind::Read,
            );
            let key = (elem_id, hash64_bytes(frame.got));
            if let Some(image) = cache.lookup_sender_got(key, frame.got) {
                stats.got_cache_hits += 1;
                return Ok(image);
            }
            // Miss, or a 64-bit hash collision with different bytes: re-parse and
            // (re)place the entry.
            stats.got_cache_misses += 1;
            let image = Arc::new(
                GotImage::from_bytes(frame.got)
                    .ok_or_else(|| AmError::BadFrame("bad GOT image".into()))?,
            );
            *handler_time += SimTime::from_ns_f64(frame.got.len() as f64 * GOT_PARSE_NS_PER_BYTE);
            stats.got_cache_evictions += cache.store_sender_got(
                key,
                CachedGot {
                    bytes: frame.got.into(),
                    image: Arc::clone(&image),
                },
            );
            Ok(image)
        } else {
            // Hardened mode: ignore the sender's GOT, re-resolve locally. The cache
            // amortises the resolution *work* (building the slot vector), but the
            // policy's modelled per-message cost is charged on every message — the
            // hardening of §V is a per-message check, and the cost model must keep
            // saying so whether or not the host reuses the resolved image.
            if let Some(got) = cache.lookup_resolved_got(elem_id) {
                stats.got_cache_hits += 1;
                *handler_time += self.config.security.per_message_overhead(got.len());
                return Ok(got);
            }
            stats.got_cache_misses += 1;
            let pkg = self
                .package
                .as_ref()
                .ok_or(AmError::UnknownElement(elem_id))?;
            let jam = pkg.jam(ElementId(elem_id))?;
            *handler_time += self.config.security.per_message_overhead(jam.got.len());
            let got = Arc::new(self.namespace.resolve_got(&jam.got)?);
            stats.got_cache_evictions += cache.store_resolved_got(elem_id, Arc::clone(&got));
            Ok(got)
        }
    }

    /// Resolve the decoded program of an injected frame, through the shared code
    /// cache. Returns the program and its verifier floor (smallest GOT slot
    /// count it verifies against).
    #[allow(clippy::too_many_arguments)]
    fn injected_program(
        &self,
        cache: &InjectionCache,
        stats: &mut RuntimeStats,
        bus: &mut CoreBus,
        core: usize,
        frame: &FrameView<'_>,
        got_slots: usize,
        mailbox_base: u64,
        handler_time: &mut SimTime,
    ) -> AmResult<(Arc<[Instr]>, usize)> {
        let code_base = mailbox_base + frame.code_offset() as u64;
        // Content hash over the arrived code: the cache-key computation. The hash
        // streams every code byte through the receiver core, so it is charged as a
        // full read of the section — these reads hit the LLC when the frame was
        // stashed and go to DRAM otherwise, which keeps the stash benefit visible on
        // the warm path too (and leaves the lines hot for the VM's fetches).
        *handler_time += SimTime::from_ns_f64(frame.code.len() as f64 * HASH_NS_PER_BYTE);
        *handler_time += bus.access(core, code_base, frame.code.len().max(1), AccessKind::Read);
        let key = (frame.header.elem_id, hash64_bytes(frame.code));
        if let Some((program, min_got_slots)) = cache.lookup_program(key, frame.code) {
            // Verification depends on the GOT size, which varies per message: the
            // cached program must still fit inside *this* message's GOT, or a warm
            // hit would execute a program the cold path rejects.
            if got_slots < min_got_slots {
                return Err(AmError::BadFrame(format!(
                    "cached program references GOT slot {} but the message GOT has only {} slots",
                    min_got_slots - 1,
                    got_slots
                )));
            }
            stats.injected_code_cache_hits += 1;
            return Ok((program, min_got_slots));
        }
        // Miss, or a 64-bit hash collision with different bytes: re-decode and
        // (re)place the entry.
        stats.injected_code_cache_misses += 1;

        // Cold miss: the receiver walks the freshly arrived code (relocation check +
        // landing-pad setup), then decodes and verifies the bytecode before caching
        // the result. Together with the hash stream above, these reads are the
        // dominant term of the stash benefit for Injected Function messages
        // (Figs. 9–10).
        *handler_time += bus.access(core, code_base, frame.code.len().max(1), AccessKind::Fetch);
        let program = decode_program(frame.code).map_err(|e| AmError::BadFrame(e.to_string()))?;
        verify(&program, got_slots).map_err(|e| AmError::BadFrame(e.to_string()))?;
        *handler_time += SimTime::from_ns_f64(
            frame.code.len() as f64 * (DECODE_NS_PER_BYTE + VERIFY_NS_PER_BYTE),
        );
        // The smallest GOT this program verifies against: later hits re-check it
        // against their own message's GOT size in O(1).
        let min_got_slots = program
            .iter()
            .filter_map(|i| match *i {
                Instr::CallExtern { slot, .. } => Some(slot as usize + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let program: Arc<[Instr]> = program.into();
        stats.injected_code_cache_evictions += cache.store_program(
            key,
            CachedProgram {
                code: frame.code.into(),
                program: Arc::clone(&program),
                min_got_slots,
            },
        );
        Ok((program, min_got_slots))
    }
}
