//! The receiver-side host: shared state, the dispatch engine, and the public
//! [`TwoChainsHost`] facade over the sharded receive path.
//!
//! The dispatch engine lives on [`HostCore`] and takes `&self` plus one
//! `&mut ReceiverShard`: everything shared is either read-mostly (namespace,
//! Local Function library, banks, config) or behind a lock (the jam address
//! space, the injection caches), so any number of shards can run the engine
//! concurrently. Execution itself serialises on the address-space lock — the jams
//! mutate receiver-resident state, so that is a correctness requirement, not an
//! implementation accident — while the dispatch work around it (poll, hash, cache
//! probes, decode/verify on a miss) runs shard-parallel.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use twochains_fabric::{AccessFlags, HostHandle, HostId, MemoryRegion, SimFabric};
use twochains_jamvm::{
    decode_program, hash64_bytes, verify, AddressSpace, GotImage, Instr, Segment, SegmentKind, Vm,
    VmConfig,
};
use twochains_linker::{ElementId, LinkerNamespace, Package, Ried};
use twochains_memsim::cycles::WaitOutcome;
use twochains_memsim::{AccessKind, MemoryBus, MemoryStressor, SimTime};

use super::injection_cache::{CachedGot, CachedProgram, InjectionCache};
use super::shard::{ReceiverShard, ShardDrain};
use super::{BurstFrame, BurstOutcome, ReceiveOutcome};
use crate::bank::MailboxBank;
use crate::builtin::BuiltinJam;
use crate::config::{InvocationMode, RuntimeConfig};
use crate::error::{AmError, AmResult};
use crate::frame::{FrameView, FRAME_HEADER_SIZE};
use crate::mailbox::MailboxTarget;
use crate::stats::RuntimeStats;

/// Software cost models for the receiver's injected-dispatch path, in ns per byte.
///
/// The content hash is charged on every injected message — it is the cache-key
/// computation, streaming the arrived bytes at near line rate. Decode, verify and
/// GOT-image parsing are charged only on a cache miss; on a hit the receiver jumps
/// straight to the cached decoded program, which is the point of the fast path.
const HASH_NS_PER_BYTE: f64 = 0.01;
/// Bytecode decode cost on a cache miss (~2 GB/s: byte-at-a-time opcode dispatch
/// building the instruction vector).
const DECODE_NS_PER_BYTE: f64 = 0.6;
/// Verifier cost on a cache miss (~4 GB/s: register/branch/GOT-slot bound checks
/// over the decoded program).
const VERIFY_NS_PER_BYTE: f64 = 0.25;
/// GOT image parse cost on a GOT-cache miss.
const GOT_PARSE_NS_PER_BYTE: f64 = 0.05;

/// How the wait preceding a frame's processing is charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaitCharge {
    /// The receiver waited on this mailbox's signal byte (the single-slot
    /// `receive` path): charge the full wait model for `arrival - ready_since`.
    Signal,
    /// Readiness was observed by a burst scan that already charged its (single)
    /// poll: charge no per-frame wait.
    Scanned,
}

/// One entry of the Local Function library: the program as loaded from the package,
/// its GOT resolved against this process's namespace, and the address at which the
/// resident code lives (kept warm in the receiver's caches). Program and GOT are
/// reference-counted so dispatch shares them instead of deep-cloning per message.
#[derive(Debug, Clone)]
struct LocalEntry {
    program: Arc<[Instr]>,
    got: Arc<GotImage>,
    code_base: u64,
}

/// Everything the receive path shares between shards. Split out of
/// [`TwoChainsHost`] so a `&HostCore` can coexist with disjoint
/// `&mut ReceiverShard` borrows (that split is what [`ShardDrain`] packages).
#[derive(Debug)]
pub(crate) struct HostCore {
    handle: HostHandle,
    config: RuntimeConfig,
    namespace: LinkerNamespace,
    /// The jam address space. Mutated per message (ARGS/USR segments come and go)
    /// and by the jams themselves, so shards serialise on it for the duration of
    /// map → execute → unmap. Lock order: `space` before the cache hierarchy.
    space: Mutex<AddressSpace>,
    package: Option<Package>,
    local_lib: HashMap<u32, LocalEntry>,
    mailbox_region: Arc<MemoryRegion>,
    banks: MailboxBank,
    local_code_cursor: u64,
}

/// The receiver-side (and library-owner) runtime for one process.
pub struct TwoChainsHost {
    core: HostCore,
    cache: Arc<InjectionCache>,
    shards: Vec<ReceiverShard>,
}

impl std::fmt::Debug for TwoChainsHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TwoChainsHost")
            .field("host", &self.core.handle.id())
            .field("mailboxes", &self.core.banks.total())
            .field("local_lib", &self.core.local_lib.len())
            .field("shards", &self.shards.len())
            .field("injected_cache", &self.cache.programs_len())
            .finish()
    }
}

impl TwoChainsHost {
    /// Base simulated address at which Local Function library code is laid out.
    const LOCAL_CODE_BASE: u64 = 0x7000_0000;

    /// Create a host runtime on fabric host `id`.
    pub fn new(fabric: &SimFabric, id: HostId, config: RuntimeConfig) -> AmResult<Self> {
        config.validate().map_err(AmError::InvalidConfig)?;
        let handle = fabric.host(id)?;
        let flags = AccessFlags::rwx();
        let region_len = config
            .total_mailboxes()
            .checked_mul(config.frame_capacity)
            .ok_or_else(|| AmError::InvalidConfig("mailbox region size overflows".into()))?;
        let mailbox_region = handle.register(region_len, flags)?;
        let banks = MailboxBank::new(
            Arc::clone(&mailbox_region),
            config.banks,
            config.mailboxes_per_bank,
            config.frame_capacity,
        )?;
        let cache = Arc::new(InjectionCache::with_capacity(
            config.injection_cache_entries,
        ));
        let shards = (0..config.num_shards)
            .map(|i| ReceiverShard::new(i, config.num_shards, Arc::clone(&cache)))
            .collect();
        Ok(TwoChainsHost {
            core: HostCore {
                handle,
                config,
                namespace: LinkerNamespace::new(),
                space: Mutex::new(AddressSpace::new()),
                package: None,
                local_lib: HashMap::new(),
                mailbox_region,
                banks,
                local_code_cursor: Self::LOCAL_CODE_BASE,
            },
            cache,
            shards,
        })
    }

    /// This host's fabric id.
    pub fn host_id(&self) -> HostId {
        self.core.handle.id()
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.core.config
    }

    /// Mutable access to the configuration (wait mode, skip-execution, security) —
    /// used by benchmarks to flip knobs between runs. The shard count is fixed at
    /// construction: changing `num_shards` here does not re-shard the receiver.
    pub fn config_mut(&mut self) -> &mut RuntimeConfig {
        &mut self.core.config
    }

    /// Number of receiver shards (fixed at construction from
    /// [`RuntimeConfig::num_shards`]).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Accumulated statistics, aggregated over every shard. Each call merges the
    /// per-shard counters (O(num_shards)); bind the result once when reading
    /// several fields.
    pub fn stats(&self) -> RuntimeStats {
        let mut total = RuntimeStats::new();
        for shard in &self.shards {
            total.merge(&shard.stats);
        }
        total
    }

    /// Per-shard statistics (introspection for the scaling benchmarks).
    pub fn shard_stats(&self, shard: usize) -> Option<&RuntimeStats> {
        self.shards.get(shard).map(|s| &s.stats)
    }

    /// Reset statistics on every shard.
    pub fn reset_stats(&mut self) {
        for shard in &mut self.shards {
            shard.stats.reset();
        }
    }

    /// The underlying fabric host handle (stashing/prefetcher/stressor toggles).
    pub fn fabric_host(&self) -> &HostHandle {
        &self.core.handle
    }

    /// Toggle LLC stashing for traffic arriving at this host.
    pub fn set_stashing(&self, enabled: bool) {
        self.core.handle.set_stashing(enabled);
    }

    /// Attach or remove a memory stressor (tail-latency experiments).
    pub fn set_stressor(&self, stressor: Option<MemoryStressor>) {
        self.core.handle.set_stressor(stressor);
    }

    /// Drop every cached decoded program and GOT image. Called automatically when a
    /// package is (re)installed or a ried is loaded (live update may rebind symbols
    /// or change code); exposed publicly so benchmarks can measure the cold path.
    /// The caches are shared, so the invalidation is visible to every shard at its
    /// very next probe.
    pub fn invalidate_injection_caches(&mut self) {
        self.cache.invalidate_all();
    }

    /// Number of decoded programs currently cached (introspection for tests and
    /// benchmarks).
    pub fn injected_cache_len(&self) -> usize {
        self.cache.programs_len()
    }

    /// Load a ried into this process's namespace and map its data objects.
    ///
    /// Loading a ried is a live update: symbolic names may now resolve differently,
    /// so every cached GOT resolution (and, conservatively, cached programs) is
    /// invalidated. The next message per element repopulates the caches.
    pub fn load_ried(&mut self, ried: &Ried, replace: bool) -> AmResult<()> {
        self.core.namespace.load_ried(ried, replace)?;
        self.core
            .namespace
            .map_data_segments(self.core.space.get_mut())?;
        self.invalidate_injection_caches();
        Ok(())
    }

    /// Install a package: load its rieds, then build the Local Function library from
    /// its jams (resolving each jam's GOT against this process's namespace and
    /// keeping the resident code warm in the receiver's caches).
    ///
    /// Reinstalling invalidates the injection caches: element ids may now name
    /// different code, so cached decodes keyed by the old content must not survive —
    /// on any shard; the shared-cache invalidation covers all of them atomically.
    pub fn install_package(&mut self, package: Package) -> AmResult<()> {
        for (_, ried) in package.rieds() {
            self.core.namespace.load_ried(ried, true)?;
        }
        self.core
            .namespace
            .map_data_segments(self.core.space.get_mut())?;
        for (id, jam) in package.jams() {
            let program: Arc<[Instr]> = jam.program()?.into();
            let got = Arc::new(self.core.namespace.resolve_got(&jam.got)?);
            let code_len = jam.code_size();
            let code_base = self.core.local_code_cursor;
            self.core.local_code_cursor += (code_len.div_ceil(4096) * 4096) as u64 + 4096;
            // The Local Function library is resident: it has been executed before (or
            // at least loaded and touched), so keep it warm in the receiver's L2/LLC.
            self.core.handle.hierarchy().lock().warm_l2(
                self.core.config.receiver_core,
                code_base,
                code_len,
            );
            self.core.local_lib.insert(
                id.0,
                LocalEntry {
                    program,
                    got,
                    code_base,
                },
            );
        }
        self.core.package = Some(package);
        self.invalidate_injection_caches();
        Ok(())
    }

    /// The installed package.
    pub fn package(&self) -> Option<&Package> {
        self.core.package.as_ref()
    }

    /// Element id of a builtin benchmark jam in the installed package.
    pub fn builtin_id(&self, jam: BuiltinJam) -> AmResult<ElementId> {
        self.core
            .package
            .as_ref()
            .and_then(|p| p.id_of(jam.element_name()))
            .ok_or(AmError::UnknownElement(u32::MAX))
    }

    /// The GOT image for `elem`, resolved against *this* process's namespace. A
    /// receiver exports this to senders during connection setup; senders embed it in
    /// Injected Function frames (the paper's "GOT redirect ... is set by the sender
    /// after an exchange with the receiver").
    pub fn export_got(&self, elem: ElementId) -> AmResult<GotImage> {
        let pkg = self
            .core
            .package
            .as_ref()
            .ok_or(AmError::UnknownElement(elem.0))?;
        let jam = pkg.jam(elem)?;
        Ok(self.core.namespace.resolve_got(&jam.got)?)
    }

    /// The mailbox target a sender should aim at for (`bank`, `slot`).
    pub fn mailbox_target(&self, bank: usize, slot: usize) -> AmResult<MailboxTarget> {
        Ok(self.core.banks.mailbox(bank, slot)?.target())
    }

    /// The receiver's mailbox banks.
    pub fn banks(&self) -> &MailboxBank {
        &self.core.banks
    }

    /// Read a ried-exported data object (for tests and examples that verify
    /// server-side effects, e.g. the Server-Side Sum result array).
    pub fn read_data(&self, symbol: &str, offset: usize, len: usize) -> AmResult<Vec<u8>> {
        let addr = self
            .core
            .namespace
            .data_addr(symbol)
            .ok_or_else(|| AmError::Link(format!("no data symbol {symbol}")))?;
        Ok(self
            .core
            .space
            .lock()
            .read(addr + offset as u64, len)
            .map_err(|e| AmError::Exec(e.to_string()))?
            .to_vec())
    }

    /// Process the message sitting in mailbox (`bank`, `slot`).
    ///
    /// This is the single-frame case of the burst engine: the frame is waited for
    /// under the configured wait model, then dispatched through exactly the same
    /// per-shard path [`TwoChainsHost::receive_burst`] uses (the request is routed
    /// to the shard owning `bank`, so its counters land in that shard's stats).
    ///
    /// * `arrival` — when the frame's signal byte became visible (from the sender's
    ///   [`AmSendOutcome::delivered`](super::AmSendOutcome::delivered)).
    /// * `ready_since` — when the receiver thread started waiting on this mailbox.
    /// * `frame_len` — the fixed frame size, or `None` to use the variable-frame
    ///   two-step protocol.
    pub fn receive(
        &mut self,
        bank: usize,
        slot: usize,
        frame_len: Option<usize>,
        arrival: SimTime,
        ready_since: SimTime,
    ) -> AmResult<ReceiveOutcome> {
        let shard_idx = crate::bank::ShardMask::owner_of(bank, self.shards.len());
        self.core.receive_owned(
            &mut self.shards[shard_idx],
            bank,
            slot,
            frame_len,
            arrival,
            ready_since,
        )
    }

    /// Drain up to `max_frames` frames that are ready in the banks owned by shard
    /// `shard`, in one scan ([`MailboxBank::scan_burst`]). The scan's poll is
    /// charged once for the whole burst; the drained frames are then processed
    /// back-to-back in shard-virtual time starting at `now`. Frames that fail
    /// dispatch (malformed code, policy rejection, ...) are dropped — their slot is
    /// cleared so the bank cannot wedge — and reported in
    /// [`BurstOutcome::rejected`].
    pub fn receive_burst(
        &mut self,
        shard: usize,
        max_frames: usize,
        now: SimTime,
    ) -> AmResult<BurstOutcome> {
        if shard >= self.shards.len() {
            return Err(AmError::InvalidConfig(format!(
                "no shard {shard} (host has {})",
                self.shards.len()
            )));
        }
        self.core
            .receive_burst(&mut self.shards[shard], max_frames, now)
    }

    /// Split the host into one [`ShardDrain`] per shard. Each handle owns its
    /// shard's mutable context and shares the host internals, so the returned
    /// handles can be moved to OS threads (e.g. with `std::thread::scope`) and
    /// drained in parallel.
    pub fn shard_drains(&mut self) -> Vec<ShardDrain<'_>> {
        let core = &self.core;
        self.shards
            .iter_mut()
            .map(|shard| ShardDrain { core, shard })
            .collect()
    }
}

impl HostCore {
    /// Single-slot receive through `shard`, charging the wait model.
    pub(crate) fn receive_owned(
        &self,
        shard: &mut ReceiverShard,
        bank: usize,
        slot: usize,
        frame_len: Option<usize>,
        arrival: SimTime,
        ready_since: SimTime,
    ) -> AmResult<ReceiveOutcome> {
        self.receive_slot(
            shard,
            bank,
            slot,
            frame_len,
            arrival,
            ready_since,
            WaitCharge::Signal,
        )
    }

    /// One-scan burst drain of the banks `shard` owns (see
    /// [`TwoChainsHost::receive_burst`]).
    pub(crate) fn receive_burst(
        &self,
        shard: &mut ReceiverShard,
        max_frames: usize,
        now: SimTime,
    ) -> AmResult<BurstOutcome> {
        // A single poll pass over the shard's banks: ready frames to drain, plus
        // poisoned slots (header magic set but an out-of-range declared length)
        // quarantined on the spot — a burst-only receiver would otherwise never
        // reclaim them.
        let (ready, mut rejected) = self.banks.scan_burst(shard.mask(), max_frames);
        // That one scan observes readiness for every frame at once: charge a
        // single zero-length wait (one poll boundary) instead of the per-message
        // wait the single-slot path pays.
        let scan = self
            .config
            .wait_model
            .wait(self.config.wait_mode, SimTime::ZERO);
        shard.stats.wait_time += scan.elapsed;
        shard.stats.cycles.add_wait(scan.cycles);
        let mut clock = now + scan.elapsed;
        let mut frames = Vec::with_capacity(ready.len());
        for (bank, slot, frame_len) in ready {
            match self.receive_slot(
                shard,
                bank,
                slot,
                Some(frame_len),
                clock,
                clock,
                WaitCharge::Scanned,
            ) {
                Ok(outcome) => {
                    clock = outcome.handler_done;
                    frames.push(BurstFrame {
                        bank,
                        slot,
                        outcome,
                    });
                }
                Err(err) => {
                    // A frame the dispatch rejects must still free its slot, or the
                    // bank would never earn its flow-control credit back.
                    if let Ok(mailbox) = self.banks.mailbox(bank, slot) {
                        let _ = mailbox.clear(frame_len);
                    }
                    rejected.push((bank, slot, err));
                }
            }
        }
        Ok(BurstOutcome {
            frames,
            rejected,
            drained_at: clock,
        })
    }

    /// The dispatch engine: wait (per `charge`), poll, parse, resolve through the
    /// shared caches, execute, clear the slot, account.
    #[allow(clippy::too_many_arguments)]
    fn receive_slot(
        &self,
        shard: &mut ReceiverShard,
        bank: usize,
        slot: usize,
        frame_len: Option<usize>,
        arrival: SimTime,
        ready_since: SimTime,
        charge: WaitCharge,
    ) -> AmResult<ReceiveOutcome> {
        // Disjoint field borrows: the shared cache, the stats and the scratch
        // buffer (which the FrameView borrows) are separate fields of the shard.
        self.receive_frame(
            &shard.cache,
            &mut shard.stats,
            &mut shard.scratch,
            bank,
            slot,
            frame_len,
            arrival,
            ready_since,
            charge,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn receive_frame(
        &self,
        cache: &InjectionCache,
        stats: &mut RuntimeStats,
        scratch: &mut Vec<u8>,
        bank: usize,
        slot: usize,
        frame_len: Option<usize>,
        arrival: SimTime,
        ready_since: SimTime,
        charge: WaitCharge,
    ) -> AmResult<ReceiveOutcome> {
        let mailbox = self.banks.mailbox(bank, slot)?.clone();
        let core = self.config.receiver_core;

        // 1. Wait for the signal byte (or inherit the burst scan's observation).
        let wait = match charge {
            WaitCharge::Signal => {
                let wait_dur = arrival.saturating_sub(ready_since);
                self.config.wait_model.wait(self.config.wait_mode, wait_dur)
            }
            WaitCharge::Scanned => WaitOutcome {
                elapsed: SimTime::ZERO,
                cycles: 0,
            },
        };
        let mut jitter = SimTime::ZERO;
        {
            let hierarchy = self.handle.hierarchy();
            let mut h = hierarchy.lock();
            if h.stressed() {
                jitter = h.scheduler_jitter();
            }
        }
        let detected_at = ready_since + wait.elapsed + jitter;

        // Functional check + frame length discovery.
        let frame_len = match frame_len {
            Some(len) => {
                if !mailbox.poll_fixed(len)? {
                    return Err(AmError::Empty);
                }
                len
            }
            None => mailbox.poll_variable()?.ok_or(AmError::Empty)?,
        };
        mailbox.read_frame_into(frame_len, scratch)?;
        let frame = FrameView::parse(scratch)?;

        // 2. Read the header (charged against wherever the frame landed).
        let mut handler_time = SimTime::ZERO;
        {
            let hierarchy = self.handle.hierarchy();
            let mut h = hierarchy.lock();
            handler_time += h.access(
                core,
                mailbox.base_addr(),
                FRAME_HEADER_SIZE,
                AccessKind::Read,
            );
        }

        let mode = if frame.header.injected {
            InvocationMode::Injected
        } else {
            InvocationMode::Local
        };
        handler_time += SimTime::from_ns_f64(match mode {
            InvocationMode::Injected => self.config.injected_dispatch_ns,
            InvocationMode::Local => self.config.local_dispatch_ns,
        });

        let mut exec_stats = None;
        let mut result = 0u64;
        let mut exec_time = SimTime::ZERO;

        if !self.config.skip_execution {
            // 3. Security policy.
            if mode == InvocationMode::Injected
                && self.config.security.require_execute_permission
                && !self.mailbox_region.flags().remote_execute
            {
                return Err(AmError::PolicyViolation(
                    "mailbox region lacks remote-execute permission".into(),
                ));
            }

            // 4. Resolve the GOT and the program, through the shared injection
            // caches for Injected mode and by Arc-shared Local Function entries
            // otherwise.
            let (program, got, code_base) = match mode {
                InvocationMode::Injected => {
                    let got = self.injected_got(
                        cache,
                        stats,
                        &frame,
                        mailbox.base_addr(),
                        &mut handler_time,
                    )?;
                    let program = self.injected_program(
                        cache,
                        stats,
                        &frame,
                        got.len(),
                        mailbox.base_addr(),
                        &mut handler_time,
                    )?;
                    let code_base = mailbox.base_addr() + frame.code_offset() as u64;
                    (program, got, code_base)
                }
                InvocationMode::Local => {
                    let entry = self
                        .local_lib
                        .get(&frame.header.elem_id)
                        .ok_or(AmError::UnknownElement(frame.header.elem_id))?;
                    (
                        Arc::clone(&entry.program),
                        Arc::clone(&entry.got),
                        entry.code_base,
                    )
                }
            };

            // 5. Map the message's ARGS and USR sections at their mailbox addresses
            // so every access is charged against the lines the NIC delivered. These
            // are the only sections copied out of the receive buffer — the jam may
            // write to them (subject to policy), so they need their own backing
            // store. The address space is shared between shards, so the whole
            // map → execute → unmap sequence holds its lock.
            let args_base = mailbox.base_addr() + frame.args_offset() as u64;
            let usr_base = mailbox.base_addr() + frame.usr_offset() as u64;
            let args_writable = !self.config.security.read_only_args;
            let usr_writable = !self.config.security.read_only_payload;
            let mut space = self.space.lock();
            space
                .map(Segment::new(
                    "msg.args",
                    args_base,
                    frame.args.to_vec(),
                    args_writable,
                    SegmentKind::Args,
                ))
                .map_err(|e| AmError::Exec(e.to_string()))?;
            if let Err(e) = space.map(Segment::new(
                "msg.usr",
                usr_base,
                frame.usr.to_vec(),
                usr_writable,
                SegmentKind::Payload,
            )) {
                space.unmap("msg.args");
                return Err(AmError::Exec(e.to_string()));
            }

            let vm_cfg = VmConfig {
                core,
                code_base,
                fuel: 50_000_000,
                freq_ghz: self.config.wait_model.core_freq_ghz,
                ipc: 2.0,
                extern_call_overhead: SimTime::from_ns(6),
                entry_regs: [args_base, usr_base, frame.usr.len() as u64],
            };
            let exec_result = {
                let hierarchy = self.handle.hierarchy();
                let mut guard = hierarchy.lock();
                Vm::execute(
                    &program,
                    &got,
                    self.namespace.externs(),
                    &mut space,
                    &mut *guard,
                    &vm_cfg,
                )
            };
            space.unmap("msg.args");
            space.unmap("msg.usr");
            drop(space);
            let exec = exec_result?;
            exec_time = exec.total_time();
            handler_time += exec_time;
            result = exec.result;
            exec_stats = Some(exec);
            stats.executions += 1;
            match mode {
                InvocationMode::Injected => stats.injected_executions += 1,
                InvocationMode::Local => stats.local_executions += 1,
            }
        }

        // 6. Reset the mailbox for reuse.
        mailbox.clear(frame_len)?;

        let handler_done = detected_at + handler_time;
        stats.messages_received += 1;
        stats.wait_time += wait.elapsed;
        stats.exec_time += handler_time;
        stats.cycles.add_wait(wait.cycles);
        stats
            .cycles
            .add_work_time(handler_time, self.config.wait_model.core_freq_ghz);

        Ok(ReceiveOutcome {
            detected_at,
            handler_done,
            wait,
            exec: exec_stats,
            result,
            handler_time,
            dispatch_time: handler_time - exec_time,
        })
    }

    /// Resolve the GOT image of an injected frame, through the shared GOT caches.
    fn injected_got(
        &self,
        cache: &InjectionCache,
        stats: &mut RuntimeStats,
        frame: &FrameView<'_>,
        mailbox_base: u64,
        handler_time: &mut SimTime,
    ) -> AmResult<Arc<GotImage>> {
        let elem_id = frame.header.elem_id;
        if self.config.security.accept_sender_got {
            // Hash (and, on a candidate hit, compare) the sender-provided image in
            // place; like the code hash this streams the arrived bytes, so it is
            // charged as a read of the section wherever the frame landed.
            *handler_time += SimTime::from_ns_f64(frame.got.len() as f64 * HASH_NS_PER_BYTE);
            {
                let core = self.config.receiver_core;
                let hierarchy = self.handle.hierarchy();
                let mut h = hierarchy.lock();
                *handler_time += h.access(
                    core,
                    mailbox_base + frame.got_offset() as u64,
                    frame.got.len().max(1),
                    AccessKind::Read,
                );
            }
            let key = (elem_id, hash64_bytes(frame.got));
            if let Some(image) = cache.lookup_sender_got(key, frame.got) {
                stats.got_cache_hits += 1;
                return Ok(image);
            }
            // Miss, or a 64-bit hash collision with different bytes: re-parse and
            // (re)place the entry.
            stats.got_cache_misses += 1;
            let image = Arc::new(
                GotImage::from_bytes(frame.got)
                    .ok_or_else(|| AmError::BadFrame("bad GOT image".into()))?,
            );
            *handler_time += SimTime::from_ns_f64(frame.got.len() as f64 * GOT_PARSE_NS_PER_BYTE);
            stats.got_cache_evictions += cache.store_sender_got(
                key,
                CachedGot {
                    bytes: frame.got.into(),
                    image: Arc::clone(&image),
                },
            );
            Ok(image)
        } else {
            // Hardened mode: ignore the sender's GOT, re-resolve locally. The cache
            // amortises the resolution *work* (building the slot vector), but the
            // policy's modelled per-message cost is charged on every message — the
            // hardening of §V is a per-message check, and the cost model must keep
            // saying so whether or not the host reuses the resolved image.
            if let Some(got) = cache.lookup_resolved_got(elem_id) {
                stats.got_cache_hits += 1;
                *handler_time += self.config.security.per_message_overhead(got.len());
                return Ok(got);
            }
            stats.got_cache_misses += 1;
            let pkg = self
                .package
                .as_ref()
                .ok_or(AmError::UnknownElement(elem_id))?;
            let jam = pkg.jam(ElementId(elem_id))?;
            *handler_time += self.config.security.per_message_overhead(jam.got.len());
            let got = Arc::new(self.namespace.resolve_got(&jam.got)?);
            stats.got_cache_evictions += cache.store_resolved_got(elem_id, Arc::clone(&got));
            Ok(got)
        }
    }

    /// Resolve the decoded program of an injected frame, through the shared code
    /// cache.
    fn injected_program(
        &self,
        cache: &InjectionCache,
        stats: &mut RuntimeStats,
        frame: &FrameView<'_>,
        got_slots: usize,
        mailbox_base: u64,
        handler_time: &mut SimTime,
    ) -> AmResult<Arc<[Instr]>> {
        let core = self.config.receiver_core;
        let code_base = mailbox_base + frame.code_offset() as u64;
        // Content hash over the arrived code: the cache-key computation. The hash
        // streams every code byte through the receiver core, so it is charged as a
        // full read of the section — these reads hit the LLC when the frame was
        // stashed and go to DRAM otherwise, which keeps the stash benefit visible on
        // the warm path too (and leaves the lines hot for the VM's fetches).
        *handler_time += SimTime::from_ns_f64(frame.code.len() as f64 * HASH_NS_PER_BYTE);
        {
            let hierarchy = self.handle.hierarchy();
            let mut h = hierarchy.lock();
            *handler_time += h.access(core, code_base, frame.code.len().max(1), AccessKind::Read);
        }
        let key = (frame.header.elem_id, hash64_bytes(frame.code));
        if let Some((program, min_got_slots)) = cache.lookup_program(key, frame.code) {
            // Verification depends on the GOT size, which varies per message: the
            // cached program must still fit inside *this* message's GOT, or a warm
            // hit would execute a program the cold path rejects.
            if got_slots < min_got_slots {
                return Err(AmError::BadFrame(format!(
                    "cached program references GOT slot {} but the message GOT has only {} slots",
                    min_got_slots - 1,
                    got_slots
                )));
            }
            stats.injected_code_cache_hits += 1;
            return Ok(program);
        }
        // Miss, or a 64-bit hash collision with different bytes: re-decode and
        // (re)place the entry.
        stats.injected_code_cache_misses += 1;

        // Cold miss: the receiver walks the freshly arrived code (relocation check +
        // landing-pad setup), then decodes and verifies the bytecode before caching
        // the result. Together with the hash stream above, these reads are the
        // dominant term of the stash benefit for Injected Function messages
        // (Figs. 9–10).
        {
            let hierarchy = self.handle.hierarchy();
            let mut h = hierarchy.lock();
            *handler_time += h.access(core, code_base, frame.code.len().max(1), AccessKind::Fetch);
        }
        let program = decode_program(frame.code).map_err(|e| AmError::BadFrame(e.to_string()))?;
        verify(&program, got_slots).map_err(|e| AmError::BadFrame(e.to_string()))?;
        *handler_time += SimTime::from_ns_f64(
            frame.code.len() as f64 * (DECODE_NS_PER_BYTE + VERIFY_NS_PER_BYTE),
        );
        // The smallest GOT this program verifies against: later hits re-check it
        // against their own message's GOT size in O(1).
        let min_got_slots = program
            .iter()
            .filter_map(|i| match *i {
                Instr::CallExtern { slot, .. } => Some(slot as usize + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let program: Arc<[Instr]> = program.into();
        stats.injected_code_cache_evictions += cache.store_program(
            key,
            CachedProgram {
                code: frame.code.into(),
                program: Arc::clone(&program),
                min_got_slots,
            },
        );
        Ok(program)
    }
}
