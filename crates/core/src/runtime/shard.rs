//! Per-shard receive contexts.
//!
//! A [`ReceiverShard`] is the per-invocation-stream state of the sharded receive
//! path: its own scratch buffer (frames are parsed by borrow, never copied), its
//! own [`RuntimeStats`], its own **per-core cache bus** (the private L1/L2 the
//! shard's drain thread charges through, lock-free), its own **shard-local
//! address space** (per-message ARGS/USR plus private instances of writable
//! ried objects, used in [`SpaceMode::ShardLocal`](crate::config::SpaceMode)),
//! and an `Arc` handle to the shared
//! [`InjectionCache`](super::injection_cache::InjectionCache). Everything heavy —
//! the linker namespace, the Local Function library, the mailbox banks, the
//! exclusive jam address space — stays in the host and is reached read-mostly
//! (or through a lock, for the exclusive space), so shards never contend on
//! per-message state.
//!
//! Bank ownership is deterministic: shard `s` of `S` owns exactly the banks with
//! `bank % S == s` ([`ShardMask`]), so two shards never poll the same mailbox.
//!
//! [`ShardDrain`] is the borrowed form handed out by
//! [`TwoChainsHost::shard_drains`](super::TwoChainsHost::shard_drains): one
//! `&mut ReceiverShard` plus a shared `&` to the host internals. The borrows are
//! disjoint per shard and every shared structure is sync (atomics-backed mailbox
//! region, striped cache levels, `Mutex`ed exclusive space and caches), so the
//! drains can be moved to OS threads and drained in parallel — the bench
//! crate's multi-threaded drain driver does exactly that with
//! `std::thread::scope`.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use twochains_jamvm::ShardSpace;
use twochains_memsim::{CoreBus, CoreCacheStats, SimTime};

use super::credit::CreditReturn;
use super::host::HostCore;
use super::injection_cache::InjectionCache;
use super::{BurstOutcome, ReceiveOutcome};
use crate::bank::ShardMask;
use crate::error::AmResult;
use crate::stats::RuntimeStats;

/// The per-shard receive context: scratch buffer, statistics, per-core cache
/// bus, shard-local address space, shared-cache handle and the shard's slice of
/// the bank ownership map.
#[derive(Debug)]
pub struct ReceiverShard {
    pub(crate) shard_id: usize,
    pub(crate) num_shards: usize,
    /// The core this shard drains on (`(receiver_core + shard_id) % num_cores`).
    pub(crate) core: usize,
    /// This core's private L1/L2 over the host's shared cache levels. Owned
    /// outright: a private-cache hit charges zero locks.
    pub(crate) bus: CoreBus,
    /// Shard-local execution view: per-message ARGS/USR and per-shard writable
    /// ried instances over the `Arc`-shared read-only base.
    pub(crate) space: ShardSpace,
    pub(crate) cache: Arc<InjectionCache>,
    /// Persistent receive buffer: frames are read into it and parsed by borrow.
    pub(crate) scratch: Vec<u8>,
    pub(crate) stats: RuntimeStats,
    /// The one-sided credit-return path for this shard's paired sender stream
    /// (§VI-A2): installed by
    /// [`TwoChainsHost::install_credit_returns`](super::TwoChainsHost::install_credit_returns)
    /// when the fleet's stream count matches the shard count; `None` until
    /// then (pre-fleet drains and raw-sender benchmarks pay no credit
    /// traffic). Owned by the shard so drain threads return credits without a
    /// lock — the endpoint serializes on the NIC models like any other put.
    pub(crate) credit: Option<CreditReturn>,
    /// Per-slot last-executed sequence number, indexed `bank_row * per_bank +
    /// slot` and lazily sized on first use (idempotent replay suppression).
    /// `0` means "nothing executed yet" — the sender's sequence space starts
    /// at 1, so the sentinel can never collide with a real frame. Like the
    /// credit drain counters, this state persists across stats resets: a
    /// benchmark-phase reset must not re-open the window to a stale replay.
    pub(crate) replay: Vec<u32>,
    /// Sequence-gap watcher for this shard's paired sender stream (armed only
    /// when the stream's handshake carried a NACK table). Persists across
    /// stats resets for the same reason `replay` does.
    pub(crate) watch: SeqWatch,
}

/// Receiver-side sequence-gap detection for one shard's paired sender stream.
///
/// Sequence numbers are observed in *scan* order, not send order: one full
/// bank scan can legitimately process sn 7 before sn 5 when both landed
/// between polls. A gap is therefore only *suspected* when first seen, and
/// only *reported* (NACKed) after it survives two further full scans — by
/// then, any frame that had landed before the gap was noticed would have been
/// drained (a scan visits every owned bank), so the frame is genuinely
/// missing, not merely jumbled. On a lossless fabric this watcher never posts
/// a NACK.
#[derive(Debug, Default)]
pub(crate) struct SeqWatch {
    /// Highest sequence number processed so far (executed or suppressed).
    hi: u32,
    /// Suspected-missing sns → the scan generation that first recorded them.
    pending: HashMap<u32, u64>,
    /// Sns already reported; kept so one loss produces one NACK (the sender's
    /// watchdog, not repeated NACKs, backstops a lost NACK put).
    nacked: HashSet<u32>,
    /// Completed full scans (bumped by `end_scan`).
    generation: u64,
}

impl SeqWatch {
    /// A frame must outlive this many completed scans as a suspected gap
    /// before it is reported. One scan absorbs scan-order jumbles (anything
    /// delivered before the gap was noticed drains in the very next full
    /// scan); the second is margin for a frame that landed mid-scan after its
    /// bank was already polled.
    const NACK_AGE: u64 = 2;
    /// Largest believable gap. The in-flight window is bounded by the lane's
    /// slot count, so a jump beyond this indicates a foreign sequence space
    /// (or a hostile header) — recording millions of "missing" sns from one
    /// frame would be a one-put memory DoS, so oversized jumps advance `hi`
    /// without recording.
    const MAX_GAP: u32 = 1 << 16;

    /// Note one processed frame (executed *or* suppressed as a replay): clear
    /// it from the suspect lists and record any new gap it reveals.
    pub(crate) fn note(&mut self, sn: u32) {
        self.pending.remove(&sn);
        self.nacked.remove(&sn);
        if sn_newer(sn, self.hi) {
            // The sender's sequence space starts at 1, so the initial
            // `hi == 0` state records a genuine gap too: seeing sn 3 first
            // means sns 1 and 2 are outstanding (jumbled or lost).
            let gap = sn.wrapping_sub(self.hi).wrapping_sub(1);
            if gap > 0 && gap <= Self::MAX_GAP {
                for d in 1..=gap {
                    let missing = self.hi.wrapping_add(d);
                    self.pending.entry(missing).or_insert(self.generation);
                }
            }
            self.hi = sn;
        }
    }

    /// Close one full bank scan: entries that have now outlived
    /// [`Self::NACK_AGE`] completed scans are returned (sorted, for
    /// deterministic NACK order) and moved to the reported set.
    pub(crate) fn end_scan(&mut self) -> Vec<u32> {
        self.generation += 1;
        let generation = self.generation;
        let mut due: Vec<u32> = self
            .pending
            .iter()
            .filter(|(_, born)| generation - **born >= Self::NACK_AGE)
            .map(|(sn, _)| *sn)
            .collect();
        due.sort_unstable();
        for sn in &due {
            self.pending.remove(sn);
            self.nacked.insert(*sn);
        }
        due
    }
}

/// Whether sequence number `a` is strictly newer than `b` in the wrapping
/// 32-bit sequence space (same half-space rule TCP uses).
pub(crate) fn sn_newer(a: u32, b: u32) -> bool {
    a != b && a.wrapping_sub(b) < u32::MAX / 2
}

impl ReceiverShard {
    pub(crate) fn new(
        shard_id: usize,
        num_shards: usize,
        core: usize,
        bus: CoreBus,
        space: ShardSpace,
        cache: Arc<InjectionCache>,
    ) -> Self {
        ReceiverShard {
            shard_id,
            num_shards,
            core,
            bus,
            space,
            cache,
            scratch: Vec::new(),
            stats: RuntimeStats::new(),
            credit: None,
            replay: Vec::new(),
            watch: SeqWatch::default(),
        }
    }

    /// This shard's index.
    pub fn shard_id(&self) -> usize {
        self.shard_id
    }

    /// The core this shard drains on.
    pub fn core(&self) -> usize {
        self.core
    }

    /// This shard's private-cache (L1/L2) counters.
    pub fn cache_stats(&self) -> CoreCacheStats {
        self.bus.stats()
    }

    /// The bank-ownership mask of this shard (`bank % num_shards == shard_id`).
    pub fn mask(&self) -> ShardMask {
        ShardMask::new(self.shard_id, self.num_shards)
    }

    /// Statistics accumulated by receives routed through this shard.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }
}

/// A borrowed per-shard drain handle: the shard's mutable context plus a shared
/// reference to the host internals. Obtained from
/// [`TwoChainsHost::shard_drains`](super::TwoChainsHost::shard_drains); one handle
/// per shard, each independently movable to its own thread.
#[derive(Debug)]
pub struct ShardDrain<'h> {
    pub(crate) core: &'h HostCore,
    pub(crate) shard: &'h mut ReceiverShard,
}

impl ShardDrain<'_> {
    /// The shard this handle drains.
    pub fn shard_id(&self) -> usize {
        self.shard.shard_id
    }

    /// Drain up to `max_frames` ready frames from this shard's banks in one scan.
    /// Identical semantics to
    /// [`TwoChainsHost::receive_burst`](super::TwoChainsHost::receive_burst) for
    /// this shard.
    pub fn receive_burst(&mut self, max_frames: usize, now: SimTime) -> AmResult<BurstOutcome> {
        self.core.receive_burst(self.shard, max_frames, now)
    }

    /// Process one specific mailbox through this shard (the single-frame case of
    /// the burst engine, with the wait model applied). The mailbox's bank must be
    /// owned by this shard: draining another shard's bank from here could race
    /// that shard on the same slot, so it is rejected.
    pub fn receive(
        &mut self,
        bank: usize,
        slot: usize,
        frame_len: Option<usize>,
        arrival: SimTime,
        ready_since: SimTime,
    ) -> AmResult<ReceiveOutcome> {
        if !self.shard.mask().owns(bank) {
            return Err(crate::error::AmError::InvalidConfig(format!(
                "bank {bank} is not owned by shard {} of {}",
                self.shard.shard_id, self.shard.num_shards
            )));
        }
        self.core
            .receive_owned(self.shard, bank, slot, frame_len, arrival, ready_since)
    }

    /// Statistics accumulated by this shard so far.
    pub fn stats(&self) -> &RuntimeStats {
        &self.shard.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twochains_jamvm::AddressSpace;
    use twochains_memsim::{SharedHierarchy, TestbedConfig};

    /// The whole point of `ShardDrain` is that it can cross a thread boundary:
    /// this does not compile unless every shared host structure is `Sync`.
    #[test]
    fn shard_drain_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ShardDrain<'static>>();
        assert_send::<ReceiverShard>();
    }

    #[test]
    fn shard_mask_matches_ownership_map() {
        let cache = Arc::new(InjectionCache::new());
        let hierarchy = Arc::new(SharedHierarchy::new(TestbedConfig::tiny_for_tests()));
        let space = ShardSpace::new(Arc::new(AddressSpace::new())).unwrap();
        let shard = ReceiverShard::new(1, 4, 1, hierarchy.core_bus(1), space, cache);
        assert_eq!(shard.shard_id(), 1);
        assert_eq!(shard.core(), 1);
        assert!(shard.mask().owns(5));
        assert!(!shard.mask().owns(4));
    }
}
