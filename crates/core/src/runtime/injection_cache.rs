//! The receiver's shared injection caches: decoded programs, parsed sender GOT
//! images and locally re-resolved GOT images, behind one lock so any number of
//! [`ReceiverShard`](super::shard::ReceiverShard)s can share them through an `Arc`.
//!
//! # Eviction policy: segmented LRU
//!
//! Cache keys are derived from sender-controlled content, so an adversarial sender
//! churning its code or GOT image per message must not be able to grow receiver
//! memory without bound. Earlier revisions handled this with clear-on-full (cap
//! 1024, drop everything), which also evicted the hot working set and made the
//! next message per element pay a full decode. The policy is now *segmented
//! LRU-ish*, sized by the same [`MAX_INJECTION_CACHE_ENTRIES`] cap:
//!
//! * Every entry lives in one of two segments: **probation** (where inserts land)
//!   or **protected** (where entries are promoted on their first hit). The
//!   protected segment is capped at 4/5 of the capacity; promoting past that cap
//!   demotes the coldest protected entry back to probation.
//! * A logical tick is bumped on every lookup/insert and stamped on the touched
//!   entry, so "coldest" means least-recently-used in tick order.
//! * When the cache is full, the *coldest probation* entry is evicted first; only
//!   if probation is empty does the coldest protected entry go. One insert evicts
//!   at most one entry — churn traffic cycles through probation while the
//!   steady-state working set (entries that have hit at least once) stays
//!   protected.
//!
//! Evictions are counted per cache and surfaced through
//! [`RuntimeStats::injected_code_cache_evictions`](crate::stats::RuntimeStats::injected_code_cache_evictions)
//! and [`RuntimeStats::got_cache_evictions`](crate::stats::RuntimeStats::got_cache_evictions):
//! a nonzero eviction rate with a high miss rate is the signature of a churning
//! (or adversarial) sender.
//!
//! Hits are still byte-compared against the stored content: the 64-bit content
//! hash in the key is not collision-proof, so a candidate whose bytes differ is
//! treated as a miss and re-decoded (replacing the entry).

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

use parking_lot::Mutex;
use twochains_jamvm::{GotImage, Instr, ResolvedProgram};

/// Upper bound on entries per injection cache (see the module header for the
/// eviction policy applied at this bound).
pub(crate) const MAX_INJECTION_CACHE_ENTRIES: usize = 1024;

/// The small trait-ish API every injection cache is used through: keyed lookup
/// with LRU touch, insert-with-eviction, purge and size. Keeping the surface this
/// narrow is what lets the eviction policy change underneath without the dispatch
/// code noticing.
pub(crate) trait ContentCache<K, V> {
    /// Look `key` up, marking the entry as recently used (and promoting it to the
    /// protected segment on its first hit).
    fn lookup(&mut self, key: &K) -> Option<&V>;
    /// Insert (or replace) `key`, evicting per policy if full. Returns how many
    /// entries were evicted (0 or 1).
    fn store(&mut self, key: K, value: V) -> u64;
    /// Drop every entry (invalidation; not counted as eviction).
    fn purge(&mut self);
    /// Number of live entries.
    fn len(&self) -> usize;
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    last_used: u64,
    protected: bool,
}

/// A segmented-LRU map implementing [`ContentCache`]. Eviction scans are O(n) in
/// the entry count: a working set below capacity never pays them, while a sender
/// churning keys with the cache full pays one bounded scan (≤ cap entries, under
/// the shared lock) per miss-insert — an accepted cost, since that sender is
/// already paying a full decode+verify per message; an O(1) recency list is the
/// upgrade path if churn-resistance ever needs to be cheaper.
#[derive(Debug)]
pub(crate) struct SegmentedCache<K, V> {
    entries: HashMap<K, Entry<V>>,
    cap: usize,
    protected_cap: usize,
    protected_len: usize,
    tick: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> SegmentedCache<K, V> {
    /// An empty cache holding at most `cap` entries.
    pub(crate) fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(1);
        SegmentedCache {
            entries: HashMap::new(),
            cap,
            // Protected holds at most 4/5 of capacity (at least one slot stays
            // probationary so churn always has somewhere to cycle).
            protected_cap: (cap * 4 / 5).max(1).min(cap - 1).max(1),
            protected_len: 0,
            tick: 0,
            evictions: 0,
        }
    }

    /// Total entries evicted over the cache's lifetime.
    #[cfg(test)]
    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }

    fn demote_coldest_protected(&mut self) {
        if let Some(key) = self
            .entries
            .iter()
            .filter(|(_, e)| e.protected)
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())
        {
            if let Some(e) = self.entries.get_mut(&key) {
                e.protected = false;
                self.protected_len -= 1;
            }
        }
    }

    fn evict_one(&mut self) {
        let victim = self
            .entries
            .iter()
            .filter(|(_, e)| !e.protected)
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())
            .or_else(|| {
                self.entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
            });
        if let Some(key) = victim {
            if let Some(e) = self.entries.remove(&key) {
                if e.protected {
                    self.protected_len -= 1;
                }
                self.evictions += 1;
            }
        }
    }
}

impl<K: Eq + Hash + Clone, V> ContentCache<K, V> for SegmentedCache<K, V> {
    fn lookup(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        let needs_demotion = {
            let e = self.entries.get_mut(key)?;
            e.last_used = tick;
            if !e.protected {
                e.protected = true;
                self.protected_len += 1;
                self.protected_len > self.protected_cap
            } else {
                false
            }
        };
        if needs_demotion {
            self.demote_coldest_protected();
        }
        self.entries.get(key).map(|e| &e.value)
    }

    fn store(&mut self, key: K, value: V) -> u64 {
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(&key) {
            // Replacement (hash collision with different bytes): keep the entry's
            // segment, refresh its recency.
            e.value = value;
            e.last_used = self.tick;
            return 0;
        }
        let before = self.evictions;
        if self.entries.len() >= self.cap {
            self.evict_one();
        }
        self.entries.insert(
            key,
            Entry {
                value,
                last_used: self.tick,
                protected: false,
            },
        );
        self.evictions - before
    }

    fn purge(&mut self) {
        self.entries.clear();
        self.protected_len = 0;
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// A cached decoded injected program. The exact code bytes it was decoded from are
/// kept and compared on every hit (see the module header).
#[derive(Debug, Clone)]
pub(crate) struct CachedProgram {
    pub(crate) code: Arc<[u8]>,
    pub(crate) program: Arc<[Instr]>,
    /// Smallest GOT slot count the program verifies against (highest `CallExtern`
    /// slot + 1). Hits are re-checked against the message's GOT size so a warm hit
    /// can never execute a program the cold verifier would reject.
    pub(crate) min_got_slots: usize,
}

/// A cached parsed sender GOT image, with the exact bytes it was parsed from.
#[derive(Debug, Clone)]
pub(crate) struct CachedGot {
    pub(crate) bytes: Arc<[u8]>,
    pub(crate) image: Arc<GotImage>,
}

/// A cached resolved image — the second-level entry the threaded executor runs.
///
/// The image was lowered from `program` against `got`, so it is only valid
/// while the current message resolves to *that same* GOT `Arc`
/// ([`InjectionCache::lookup_resolved`] enforces pointer identity; the
/// first-level GOT caches hand out stable `Arc`s for unchanged content, so a
/// changed GOT image — new bytes, new namespace resolution — yields a
/// different pointer and a resolved miss). Any package reinstall or namespace
/// change purges the cache wholesale via [`InjectionCache::invalidate_all`].
#[derive(Debug, Clone)]
pub(crate) struct CachedResolved {
    /// The exact GOT image baked into the lowering, compared by pointer.
    pub(crate) got: Arc<GotImage>,
    /// The lowered image itself.
    pub(crate) image: Arc<ResolvedProgram>,
    /// Simulated install address of the image (fetches are charged here).
    pub(crate) code_base: u64,
    /// Verifier floor carried over from the first-level entry: smallest GOT
    /// slot count the program verifies against.
    pub(crate) min_got_slots: usize,
}

#[derive(Debug)]
struct CacheInner {
    /// Decoded injected programs, keyed by `(elem_id, hash64_bytes(code))`.
    code: SegmentedCache<(u32, u64), CachedProgram>,
    /// Parsed sender GOT images, keyed by `(elem_id, hash64_bytes(got_bytes))`.
    sender_got: SegmentedCache<(u32, u64), CachedGot>,
    /// Locally re-resolved GOT images (hardened policy), keyed by `elem_id`.
    resolved_got: SegmentedCache<u32, Arc<GotImage>>,
    /// Resolved (lowered) images, keyed by `(elem_id, code_digest, code_len)`.
    /// The length rides in the key to harden the 64-bit content digest a
    /// little; unlike the first-level code cache there is no byte comparison
    /// on hit, because under the NIC-delivery-digest model the receiver never
    /// re-reads the code section on the warm path.
    resolved: SegmentedCache<(u32, u64, usize), CachedResolved>,
}

/// The shared, internally locked bundle of all three receiver-side injection
/// caches. Shards hold it through an `Arc`; every operation takes the lock for the
/// duration of one probe or insert, so invalidation by one shard (or by
/// `install_package`) is immediately visible to all.
#[derive(Debug)]
pub(crate) struct InjectionCache {
    inner: Mutex<CacheInner>,
}

impl InjectionCache {
    /// Empty caches at the standard capacity.
    #[cfg(test)]
    pub(crate) fn new() -> Self {
        Self::with_capacity(MAX_INJECTION_CACHE_ENTRIES)
    }

    /// Empty caches holding at most `cap` entries each.
    pub(crate) fn with_capacity(cap: usize) -> Self {
        InjectionCache {
            inner: Mutex::new(CacheInner {
                code: SegmentedCache::with_capacity(cap),
                sender_got: SegmentedCache::with_capacity(cap),
                resolved_got: SegmentedCache::with_capacity(cap),
                resolved: SegmentedCache::with_capacity(cap),
            }),
        }
    }

    /// Probe the decoded-program cache. A hit requires the stored code bytes to
    /// equal `code` (hash-collision defence); returns the program and its minimum
    /// GOT slot requirement.
    pub(crate) fn lookup_program(
        &self,
        key: (u32, u64),
        code: &[u8],
    ) -> Option<(Arc<[Instr]>, usize)> {
        let mut inner = self.inner.lock();
        let cached = inner.code.lookup(&key)?;
        if &*cached.code == code {
            Some((Arc::clone(&cached.program), cached.min_got_slots))
        } else {
            None
        }
    }

    /// Insert a decoded program; returns the number of entries evicted.
    pub(crate) fn store_program(&self, key: (u32, u64), value: CachedProgram) -> u64 {
        self.inner.lock().code.store(key, value)
    }

    /// Probe the sender-GOT cache (byte-compared, as for programs).
    pub(crate) fn lookup_sender_got(&self, key: (u32, u64), bytes: &[u8]) -> Option<Arc<GotImage>> {
        let mut inner = self.inner.lock();
        let cached = inner.sender_got.lookup(&key)?;
        if &*cached.bytes == bytes {
            Some(Arc::clone(&cached.image))
        } else {
            None
        }
    }

    /// Insert a parsed sender GOT image; returns the number of entries evicted.
    pub(crate) fn store_sender_got(&self, key: (u32, u64), value: CachedGot) -> u64 {
        self.inner.lock().sender_got.store(key, value)
    }

    /// Probe the locally re-resolved GOT cache (hardened policy; keyed by element
    /// alone, no byte comparison needed since the content is receiver-derived).
    pub(crate) fn lookup_resolved_got(&self, elem: u32) -> Option<Arc<GotImage>> {
        self.inner.lock().resolved_got.lookup(&elem).map(Arc::clone)
    }

    /// Insert a locally re-resolved GOT image; returns the number evicted.
    pub(crate) fn store_resolved_got(&self, elem: u32, got: Arc<GotImage>) -> u64 {
        self.inner.lock().resolved_got.store(elem, got)
    }

    /// Probe the resolved-image cache. A hit additionally requires the cached
    /// entry's GOT `Arc` to be pointer-identical to `got` — the image baked
    /// that exact GOT's resolutions into its call sites, so any other image
    /// (even content-equal) forces a re-lower.
    pub(crate) fn lookup_resolved(
        &self,
        key: (u32, u64, usize),
        got: &Arc<GotImage>,
    ) -> Option<CachedResolved> {
        let mut inner = self.inner.lock();
        let cached = inner.resolved.lookup(&key)?;
        if Arc::ptr_eq(&cached.got, got) {
            Some(cached.clone())
        } else {
            None
        }
    }

    /// Insert a resolved image; returns the number of entries evicted.
    pub(crate) fn store_resolved(&self, key: (u32, u64, usize), value: CachedResolved) -> u64 {
        self.inner.lock().resolved.store(key, value)
    }

    /// Drop every cached program and GOT image (package reinstall / live update /
    /// explicit cold-path benchmarking). Not counted as evictions.
    pub(crate) fn invalidate_all(&self) {
        let mut inner = self.inner.lock();
        inner.code.purge();
        inner.sender_got.purge();
        inner.resolved_got.purge();
        inner.resolved.purge();
    }

    /// Number of decoded programs currently cached.
    pub(crate) fn programs_len(&self) -> usize {
        self.inner.lock().code.len()
    }

    /// Lifetime eviction counts `(code, sender_got, resolved_got)` — introspection
    /// for tests; the per-receive deltas flow into `RuntimeStats`.
    #[cfg(test)]
    pub(crate) fn eviction_counts(&self) -> (u64, u64, u64) {
        let inner = self.inner.lock();
        (
            inner.code.evictions(),
            inner.sender_got.evictions(),
            inner.resolved_got.evictions(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_land_in_probation_and_evict_coldest_probation_first() {
        let mut c: SegmentedCache<u32, u32> = SegmentedCache::with_capacity(4);
        for k in 0..4 {
            assert_eq!(c.store(k, k * 10), 0, "no eviction below capacity");
        }
        // Promote 0 and 1 to protected; 2 and 3 stay probationary (2 is coldest).
        assert_eq!(c.lookup(&0), Some(&0));
        assert_eq!(c.lookup(&1), Some(&10));
        assert_eq!(c.store(4, 40), 1, "full cache evicts exactly one");
        assert_eq!(c.lookup(&2), None, "coldest probation entry evicted");
        assert_eq!(c.lookup(&0), Some(&0), "protected entry survives");
        assert_eq!(c.lookup(&1), Some(&10));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn hot_working_set_survives_churn() {
        let mut c: SegmentedCache<u32, u32> = SegmentedCache::with_capacity(8);
        // Two hot keys, hit repeatedly.
        c.store(5000, 1);
        c.store(6000, 2);
        c.lookup(&5000);
        c.lookup(&6000);
        // An adversarial churn of 1000 one-shot keys (disjoint from the hot set).
        let mut evicted = 0;
        for k in 0..1000 {
            evicted += c.store(k, 0);
        }
        assert!(evicted > 900, "churn cycles through probation");
        assert_eq!(c.lookup(&5000), Some(&1), "hot key survives the churn");
        assert_eq!(c.lookup(&6000), Some(&2));
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn replacement_of_existing_key_is_not_an_eviction() {
        let mut c: SegmentedCache<u32, u32> = SegmentedCache::with_capacity(2);
        c.store(1, 10);
        c.store(2, 20);
        assert_eq!(c.store(1, 11), 0, "same-key replace evicts nothing");
        assert_eq!(c.lookup(&1), Some(&11));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn protected_segment_is_capped_by_demotion() {
        let mut c: SegmentedCache<u32, u32> = SegmentedCache::with_capacity(5);
        // protected_cap = 4: promoting a 5th hit entry demotes the coldest.
        for k in 0..5 {
            c.store(k, k);
        }
        for k in 0..5 {
            c.lookup(&k);
        }
        assert!(c.protected_len <= c.protected_cap);
        assert_eq!(
            c.len(),
            5,
            "demotion moves entries between segments, not out"
        );
    }

    #[test]
    fn purge_clears_without_counting_evictions() {
        let mut c: SegmentedCache<u32, u32> = SegmentedCache::with_capacity(4);
        c.store(1, 1);
        c.lookup(&1);
        c.purge();
        assert_eq!(c.len(), 0);
        assert_eq!(c.evictions(), 0);
        // Reusable after a purge.
        c.store(2, 2);
        assert_eq!(c.lookup(&2), Some(&2));
    }

    #[test]
    fn resolved_hits_require_pointer_identical_got() {
        use twochains_jamvm::resolve;

        let cache = InjectionCache::with_capacity(8);
        let program: Arc<[Instr]> = vec![Instr::Ret].into();
        let got = Arc::new(GotImage::with_slots(1));
        let entry = CachedResolved {
            got: Arc::clone(&got),
            image: Arc::new(resolve(&program, &got)),
            code_base: 0xC000_0000,
            min_got_slots: 0,
        };
        let key = (7, 42, 4);
        cache.store_resolved(key, entry);
        assert!(cache.lookup_resolved(key, &got).is_some());
        // A content-equal but distinct GOT image must miss: its resolutions
        // were not the ones baked into the lowering.
        let other = Arc::new(GotImage::with_slots(1));
        assert!(cache.lookup_resolved(key, &other).is_none());
        assert!(cache.lookup_resolved((7, 42, 5), &got).is_none());
        cache.invalidate_all();
        assert!(
            cache.lookup_resolved(key, &got).is_none(),
            "invalidation purges resolved images too"
        );
    }

    #[test]
    fn shared_cache_byte_compares_on_hit() {
        let cache = InjectionCache::with_capacity(8);
        let image = Arc::new(GotImage::with_slots(2));
        cache.store_sender_got(
            (7, 42),
            CachedGot {
                bytes: vec![1, 2, 3].into(),
                image: Arc::clone(&image),
            },
        );
        assert!(cache.lookup_sender_got((7, 42), &[1, 2, 3]).is_some());
        assert!(
            cache.lookup_sender_got((7, 42), &[9, 9, 9]).is_none(),
            "hash collision with different bytes is a miss"
        );
        assert!(cache.lookup_sender_got((7, 43), &[1, 2, 3]).is_none());
        cache.invalidate_all();
        assert!(cache.lookup_sender_got((7, 42), &[1, 2, 3]).is_none());
        assert_eq!(cache.eviction_counts(), (0, 0, 0));
    }
}
