//! The unified message-construction API: [`MessageSpec`] and the [`spec`]
//! entry point.
//!
//! Every send — single-element or chained, fire-and-forget or
//! completion-tracked, through a bare [`TwoChainsSender`](super::TwoChainsSender)
//! or a [`SenderFleet`](super::SenderFleet) lane — is described by one
//! `MessageSpec` built with the same fluent chain:
//!
//! ```
//! use twochains::{spec, ChainArgMap, ElementId};
//!
//! // One element, Injected mode (the default), no payload.
//! let single = spec(ElementId(3)).args(vec![1, 2, 3, 4]);
//!
//! // A three-stage receiver-side chain with completion tracking: the lookup
//! // element runs first, its result feeds the filter, the filter's result
//! // feeds the aggregate — one frame, one dispatch, one round trip.
//! let chained = spec(ElementId(3))
//!     .args(7u64.to_le_bytes().to_vec())
//!     .then(ElementId(4))
//!     .then(ElementId(5))
//!     .map_result(ChainArgMap::Result)
//!     .tracked();
//! assert_eq!(chained.stage_ids(), vec![4, 5]);
//! # let _ = single;
//! ```
//!
//! A spec is a plain value: build it once, send it (by reference) every
//! iteration. The senders encode straight from the borrowed spec into their
//! reusable scratch buffer, so the steady-state send path performs zero heap
//! allocations.

use twochains_linker::ElementId;

use crate::config::InvocationMode;
use crate::error::{AmError, AmResult};
use crate::frame::{ChainArgMap, ChainDescriptor, ChainStage, CHAIN_MAX_STAGES};

/// Start building a message for `elem` — the single construction path for
/// every send. Defaults: [`InvocationMode::Injected`], empty ARGS and USR,
/// no chain, untracked.
pub fn spec(elem: ElementId) -> MessageSpec {
    MessageSpec {
        elem,
        mode: InvocationMode::Injected,
        args: Vec::new(),
        usr: Vec::new(),
        stages: Vec::new(),
        tracked: false,
    }
}

/// A complete description of one active message: the primary element, its
/// invocation mode, the ARGS/USR sections, an optional receiver-side chain of
/// continuation stages, and whether the send wants completion tracking.
///
/// Built with [`spec`]; consumed (by reference) by
/// [`TwoChainsSender::send_spec`](super::TwoChainsSender::send_spec),
/// [`TwoChainsSender::send_spec_tracked`](super::TwoChainsSender::send_spec_tracked)
/// and the fleet lanes' `send_spec` methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageSpec {
    elem: ElementId,
    mode: InvocationMode,
    args: Vec<u8>,
    usr: Vec<u8>,
    stages: Vec<ChainStage>,
    tracked: bool,
}

impl MessageSpec {
    /// Set the invocation mode of the primary element.
    pub fn mode(mut self, mode: InvocationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Shorthand for `.mode(InvocationMode::Local)`.
    pub fn local(self) -> Self {
        self.mode(InvocationMode::Local)
    }

    /// Shorthand for `.mode(InvocationMode::Injected)` (the default).
    pub fn injected(self) -> Self {
        self.mode(InvocationMode::Injected)
    }

    /// Set the fixed argument block.
    pub fn args(mut self, args: impl Into<Vec<u8>>) -> Self {
        self.args = args.into();
        self
    }

    /// Set the user payload.
    pub fn usr(mut self, usr: impl Into<Vec<u8>>) -> Self {
        self.usr = usr.into();
        self
    }

    /// Append a continuation stage: after the previous stage retires on the
    /// receiver, `elem` runs with the default [`ChainArgMap::Result`] mapping
    /// (the previous stage's result registers become its operand). Adjust the
    /// mapping of the stage just appended with [`MessageSpec::map_result`].
    ///
    /// The wire format carries at most [`CHAIN_MAX_STAGES`] stages; the
    /// ceiling is enforced when the spec is sent, so over-building fails the
    /// send loudly instead of panicking mid-chain.
    pub fn then(mut self, elem: ElementId) -> Self {
        self.stages.push(ChainStage {
            elem_id: elem.0,
            map: ChainArgMap::Result,
        });
        self
    }

    /// Set the arg mapping of the most recently appended stage.
    ///
    /// # Panics
    ///
    /// Panics when called before any [`MessageSpec::then`] — there is no
    /// stage to map, which is a builder-usage bug, not a runtime condition.
    pub fn map_result(mut self, map: ChainArgMap) -> Self {
        self.stages
            .last_mut()
            .expect("map_result called before then(): no chain stage to map")
            .map = map;
        self
    }

    /// Request completion tracking: the send must go through a
    /// `send_spec_tracked` path with a completion queue, and
    /// [`TwoChainsSender::send_spec`](super::TwoChainsSender::send_spec)
    /// refuses the spec.
    pub fn tracked(mut self) -> Self {
        self.tracked = true;
        self
    }

    /// The primary element.
    pub fn elem(&self) -> ElementId {
        self.elem
    }

    /// The primary element's invocation mode.
    pub fn invocation(&self) -> InvocationMode {
        self.mode
    }

    /// The fixed argument block.
    pub fn args_bytes(&self) -> &[u8] {
        &self.args
    }

    /// The user payload.
    pub fn usr_bytes(&self) -> &[u8] {
        &self.usr
    }

    /// Whether the spec requests completion tracking.
    pub fn is_tracked(&self) -> bool {
        self.tracked
    }

    /// Whether the spec carries continuation stages.
    pub fn is_chained(&self) -> bool {
        !self.stages.is_empty()
    }

    /// Element ids of the continuation stages, in execution order
    /// (introspection for tests and examples).
    pub fn stage_ids(&self) -> Vec<u32> {
        self.stages.iter().map(|s| s.elem_id).collect()
    }

    /// Validate and materialise the chain descriptor this spec describes:
    /// `None` for an unchained spec, an error past the wire ceiling of
    /// [`CHAIN_MAX_STAGES`] stages.
    pub(crate) fn chain_descriptor(&self) -> AmResult<Option<ChainDescriptor>> {
        if self.stages.is_empty() {
            return Ok(None);
        }
        if self.stages.len() > CHAIN_MAX_STAGES {
            return Err(AmError::BadFrame(format!(
                "spec chains {} continuation stages, the wire format carries at most \
                 {CHAIN_MAX_STAGES}",
                self.stages.len()
            )));
        }
        let mut c = ChainDescriptor::new();
        for stage in &self.stages {
            c.push(*stage).expect("length checked above");
        }
        Ok(Some(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_chaining() {
        let s = spec(ElementId(7));
        assert_eq!(s.elem(), ElementId(7));
        assert_eq!(s.invocation(), InvocationMode::Injected);
        assert!(!s.is_tracked());
        assert!(!s.is_chained());
        assert!(s.chain_descriptor().unwrap().is_none());

        let s = spec(ElementId(1))
            .local()
            .args(vec![1, 2])
            .usr(vec![3])
            .then(ElementId(2))
            .then(ElementId(3))
            .map_result(ChainArgMap::KeepArgs)
            .tracked();
        assert_eq!(s.invocation(), InvocationMode::Local);
        assert_eq!(s.args_bytes(), &[1, 2]);
        assert_eq!(s.usr_bytes(), &[3]);
        assert!(s.is_tracked());
        assert_eq!(s.stage_ids(), vec![2, 3]);
        let desc = s.chain_descriptor().unwrap().unwrap();
        assert_eq!(desc.stages()[0].map, ChainArgMap::Result);
        assert_eq!(desc.stages()[1].map, ChainArgMap::KeepArgs);
    }

    #[test]
    fn over_long_chain_fails_at_descriptor_time() {
        let mut s = spec(ElementId(1));
        for i in 0..CHAIN_MAX_STAGES as u32 + 1 {
            s = s.then(ElementId(10 + i));
        }
        match s.chain_descriptor() {
            Err(AmError::BadFrame(msg)) => assert!(msg.contains("at most"), "{msg}"),
            other => panic!("over-long chain not refused: {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "map_result called before then()")]
    fn map_result_without_stage_panics() {
        let _ = spec(ElementId(1)).map_result(ChainArgMap::Result);
    }
}
