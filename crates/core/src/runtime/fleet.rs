//! The initiator-side multi-sender runtime: a [`SenderFleet`] of per-stream
//! [`TwoChainsSender`]s that fills mailbox banks concurrently with shard
//! draining.
//!
//! # Why a fleet
//!
//! The receiver has been sharded since PR 2 (`bank % num_shards` ownership,
//! per-shard scratch/stats, parallel [`ShardDrain`](super::ShardDrain)s), but
//! the initiator stayed a single [`TwoChainsSender`] filling every bank from
//! one thread — so end-to-end wall measurements serialized the whole send phase
//! in front of the parallel drain. The fleet gives the sender the same
//! per-shard treatment: **stream `s` of `S` owns exactly the banks with
//! `bank % S == s`**, the same deterministic map the receiver shards drain by,
//! so pairing `sender_streams == num_shards` gives every drain shard one
//! dedicated initiator and no stream ever crosses another.
//!
//! Each [`SenderLane`] is a complete, independently movable sender context:
//!
//! * its **own [`Endpoint`](twochains_fabric::Endpoint)** over the shared
//!   fabric (endpoints are `Send`; puts issued concurrently from different
//!   lanes still serialize honestly on the source host's NIC transmit pipeline
//!   in virtual time),
//! * its **own sequence space** and reusable encode buffer,
//! * its **own frame-template cache** (per-lane warm fast path),
//! * its **own [`RuntimeStats`]**, folded into a fleet-wide view by
//!   [`SenderFleet::stats`] via [`RuntimeStats::merge`].
//!
//! # The session handshake
//!
//! Connection setup is one explicit, by-value exchange that cannot be
//! partially wired:
//! [`TwoChainsHost::session_handshake`](super::TwoChainsHost::session_handshake)
//! exports a [`SessionHandshake`] — one [`StreamHandshake`] per receiver
//! shard, each carrying
//!
//! 1. the [`StreamTarget`]s (bank, slot, [`MailboxTarget`]) of every mailbox
//!    the stream owns (plus the bank geometry the credit table mirrors), and
//! 2. the receiver-resolved GOT image of every element in the installed
//!    package (the paper's "GOT redirect ... set by the sender after an
//!    exchange with the receiver").
//!
//! [`SenderFleet::connect_fleet`] consumes the session: one endpoint + sender
//! per stream, GOT images registered, template caches cold until first use —
//! and answers with the *reverse* half in the same call: each lane registers a
//! [`BankFlags`](crate::bank::BankFlags) credit table and a
//! [`NackFlags`](crate::bank::NackFlags) table in its own (sender-side)
//! address space and ships the descriptors back as
//! [`CreditHandshake`](super::CreditHandshake)s, which the host turns into one
//! reverse-direction endpoint per receiver shard. The closed `stream == shard`
//! pairing is a construction invariant of the session: a host whose
//! configuration cannot support it refuses to export the handshake with one
//! error listing everything that is missing, so there is no connected-but-
//! creditless state to discover later.
//!
//! # The credit wire format (§VI-A2: flow control as fabric traffic)
//!
//! Mailbox credits do not travel over a host-side side channel; the receiver
//! *puts* them back into the sender's registered memory, so flow control
//! contends for the NIC and is charged in virtual time like every other byte
//! on the wire.
//!
//! * **Word layout.** Each lane's flag region holds one row per owned bank
//!   (bank `b` of stream `s` of `S` is row `b / S`), each row a word-aligned
//!   run of `per_bank` one-byte slot *tokens*
//!   ([`BankFlags::row_stride`](crate::bank::BankFlags::row_stride) pads rows
//!   to 8-byte words). The token of (`row`, `slot`) lives at byte
//!   `row * row_stride(per_bank) + slot`.
//! * **Token sequence.** The k-th retire of a slot (drained,
//!   dispatch-rejected or quarantined — k counted from 0 on the receiver)
//!   writes token `(k % 255) + 1`: never the fresh-region 0, and adjacent
//!   tokens always differ, so *token ≠ last-consumed* means exactly one new
//!   credit. The sender never writes the region — single-writer bytes cannot
//!   tear or race.
//! * **Release/acquire pairing.** Credits travel as row-span
//!   [`Endpoint::put`](twochains_fabric::Endpoint::put)s — the receiver
//!   batches retired slots per row and flushes one put covering the dirty
//!   span (1..=`per_bank` bytes), issued strictly *after* every covered
//!   slot's mailbox was cleared. `put` publishes its *final* byte with
//!   release ordering and a flushed span always ends on a freshly minted
//!   token, so a lane whose acquire load
//!   ([`BankFlags::try_acquire`](crate::bank::BankFlags::try_acquire))
//!   observes any token in the span also sees its cleared slot before the
//!   refill put. Gap slots inside a span are rewritten byte-identically;
//!   tokens are value-compared, so an idempotent rewrite can never mint a
//!   credit. The span put is still its own signal: on an unordered fabric it
//!   *is* the conservative `put_unordered` + fence + signal-put protocol
//!   collapsed into one transfer, so ordered and unordered links behave
//!   identically here. One flush can refill several of a lane's slots at
//!   once — the wakeup harvests them all and counts the extras in
//!   [`RuntimeStats::credit_refills_coalesced`].
//! * **Ordering vs frame puts.** Credit puts ride the receiver→sender
//!   direction while frame puts ride sender→receiver; the two directions
//!   share no ordering and need none — the only edge that matters is
//!   clear → credit-put (drain thread program order + release) →
//!   credit-acquire → refill-put (lane program order), which the pairing
//!   above provides. On the simulated testbed the credit put's DMA delivery
//!   installs the token on the sender host and posts invalidations to the
//!   sender cores' inboxes (`memsim::sharded`) exactly like inbound frames do
//!   on the receiver, so the lane's next poll of its flag word re-fetches the
//!   freshly stashed line and is charged accordingly.
//!
//! # The flow-control contract
//!
//! Every lane's send posts the put's delivery into that stream's
//! [`CompletionQueue`] — one queue per stream, bundled as a
//! [`ShardedCompletions`] whose `bank % streams` routing mirrors the bank
//! ownership map. The queue depth ([`RuntimeConfig::completion_window`]) is
//! the transmit window: a lane that fills it harvests **its own** completions
//! (charged the per-entry software cost, counted in
//! [`RuntimeStats::sends_backpressured`] /
//! [`RuntimeStats::completions_harvested`]) before posting more. Back-pressure
//! therefore pauses only the affected stream; sibling lanes never observe it.
//!
//! # Pipelined fill + drain
//!
//! [`SenderFleet::fill_parallel`] runs one OS thread per lane (a barrier-style
//! parallel fill), and [`drive_pipeline`] goes further: sender threads and
//! shard-drain threads run *concurrently*, coupled only by the one-sided
//! credit path — no channels, no shared queues. As each frame retires, the
//! drain thread puts the slot's next credit token into the paired lane's flag
//! region; the lane spins/parks on acquire loads of its own region and
//! refills a slot the moment its token changes — fill and drain genuinely
//! overlap in wall clock, bounded by the per-slot credit loop instead of a
//! phase barrier. Results and order-independent runtime counters are
//! observationally equal to the sequential fill-then-drain schedule (pinned
//! by `tests/fleet_pipeline.rs`); *time* counters are not comparable, because
//! the pipelined drain polls its banks repeatedly (each scan charges one
//! poll) where the phased schedule scans once per round.
//!
//! [`RuntimeConfig::completion_window`]: crate::config::RuntimeConfig::completion_window
//! [`RuntimeStats::sends_backpressured`]: crate::stats::RuntimeStats::sends_backpressured
//! [`RuntimeStats::completions_harvested`]: crate::stats::RuntimeStats::completions_harvested

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use twochains_fabric::{AccessFlags, CompletionQueue, HostId, ShardedCompletions, SimFabric};
use twochains_jamvm::GotImage;
use twochains_linker::{ElementId, Package};
use twochains_memsim::{AccessKind, CoreBus, MemoryBus, SimTime};

use super::credit::CreditHandshake;
use super::retry::ClampedFibonacci;
use super::spec::MessageSpec;
use super::{AmSendOutcome, TwoChainsHost, TwoChainsSender};
use crate::bank::{BankFlags, NackFlags};
use crate::config::{AggregationPolicy, InvocationMode, RuntimeConfig};
use crate::error::{AmError, AmResult};
use crate::frame::FrameBatch;
use crate::mailbox::MailboxTarget;
use crate::stats::RuntimeStats;

/// First watchdog delay after a stall with frames in flight begins; the
/// schedule then follows [`ClampedFibonacci`]. Credit round-trips complete in
/// microseconds of wall clock on a healthy link, so a stall this long with no
/// credit and no NACK means the frame (or its NACK) is probably gone.
const WATCHDOG_BASE: Duration = Duration::from_micros(400);
/// Backoff clamp: a persistently lossy link keeps being probed at this rate
/// instead of backing off into effective silence.
const WATCHDOG_CLAMP: Duration = Duration::from_millis(10);
/// Watchdog firings a single stall episode may consume before the lane fails
/// loudly. At the clamp this bounds a wedged episode to a few hundred
/// milliseconds of retries — a link that eats 32 consecutive retransmits of
/// the same frames is broken, not lossy, and spinning forever would just
/// deadlock the pipeline with no diagnosis.
const RETRY_BUDGET: u32 = 32;

/// One mailbox a sender stream owns: its coordinates on the receiver and the
/// target descriptor to aim the one-sided put at.
#[derive(Debug, Clone)]
pub struct StreamTarget {
    /// Bank index on the receiver.
    pub bank: usize,
    /// Slot within the bank.
    pub slot: usize,
    /// The put target (region descriptor + offset + capacity).
    pub target: MailboxTarget,
}

/// The receiver's half of the multi-sender connection setup for one stream:
/// everything an initiator needs to start injecting, by value.
#[derive(Debug, Clone)]
pub struct StreamHandshake {
    /// The stream this handshake is for (`0..streams`).
    pub stream: usize,
    /// Total number of streams the receiver partitioned its banks over.
    pub streams: usize,
    /// Mailboxes per bank on the receiver — the geometry the stream's credit
    /// table ([`BankFlags`]) mirrors row for row.
    pub per_bank: usize,
    /// The mailboxes this stream owns (`bank % streams == stream`).
    pub targets: Vec<StreamTarget>,
    /// Receiver-resolved GOT image per installed package element.
    pub gots: Vec<(ElementId, GotImage)>,
}

/// The receiver's complete half of a fleet session, exported by
/// [`TwoChainsHost::session_handshake`] and consumed whole by
/// [`SenderFleet::connect_fleet`]: every stream's targets and GOT images plus
/// the shard count the credit and NACK tables must pair with. Bundling the
/// pieces makes partial wiring unrepresentable — a session either connects
/// with its one-sided credit returns and NACK arming installed, or it does not
/// connect at all.
#[derive(Debug, Clone)]
pub struct SessionHandshake {
    /// One forward handshake per stream (`streams.len() == shards` — the
    /// closed pairing is a construction invariant).
    pub streams: Vec<StreamHandshake>,
    /// The receiver's shard count, which the sender's credit/NACK geometry
    /// mirrors row for row.
    pub shards: usize,
}

/// Coordinates of one fill: which stream is packing, which mailbox it aims at,
/// and the per-slot round number — everything a payload generator needs to
/// produce a deterministic message for that slot.
#[derive(Debug, Clone, Copy)]
pub struct SlotCtx {
    /// The sending stream.
    pub stream: usize,
    /// Destination bank.
    pub bank: usize,
    /// Destination slot within the bank.
    pub slot: usize,
    /// How many times this slot has been filled before (0 for the first fill).
    pub round: u64,
}

/// One posted batch container an armed lane keeps for retransmission: the
/// exact container wire bytes, the inner sequence numbers it carries (NACK
/// lookup key), and the covered target indices (the entry is dead — and
/// garbage-collected at the next flush — once every member's credit came
/// back). The container is the retransmit unit: re-putting it re-delivers
/// every inner frame, and the receiver's per-slot replay filters retire the
/// already-executed ones silently.
#[derive(Debug, Default)]
struct CachedBatch {
    bytes: Vec<u8>,
    sns: Vec<u32>,
    members: Vec<usize>,
    /// Target index of the carrier mailbox the container was put into.
    carrier: usize,
}

/// One stream's complete sender context: its own [`TwoChainsSender`] (endpoint,
/// sequence space, template cache, statistics), the mailbox targets it owns,
/// its [`BankFlags`] credit table (the flag region the receiver's credit puts
/// land in, registered in this sender's address space), the core bus its
/// credit polls are charged through, and its private virtual clock. `Send`, so
/// a fleet can park one lane per OS thread.
#[derive(Debug)]
pub struct SenderLane {
    stream: usize,
    streams: usize,
    sender: TwoChainsSender,
    targets: Vec<StreamTarget>,
    /// `(bank, slot)` → index into `targets` (single-slot sends and credit
    /// probes arrive as coordinates).
    index: HashMap<(usize, usize), usize>,
    /// The lane's credit table: per-bank rows of per-slot tokens the receiver
    /// writes with one-sided puts (see the module docs for the wire format).
    flags: BankFlags,
    /// The lane's NACK table: one row per owned bank, written by the
    /// receiver's sequence-gap reports ([`NackFlags`]). Registered alongside
    /// the credit table and handed over in the same [`CreditHandshake`].
    nacks: NackFlags,
    /// Exact wire bytes of the most recent send per owned slot, kept so a
    /// NACK or watchdog timeout can retransmit byte-identically. Filled only
    /// while the reliability layer is armed (the lane's endpoint has a fault
    /// plan); lossless runs never copy a byte here.
    wire_cache: Vec<Vec<u8>>,
    /// Whether the most recent frame sent to each owned slot is still
    /// awaiting its credit (armed runs only).
    in_flight: Vec<bool>,
    /// The sender-host core this lane runs on; its private L1/L2 cache the
    /// flag words between credit puts (each put's DMA invalidates the line
    /// through the core's inbox, so the next poll re-fetches honestly).
    bus: CoreBus,
    core: usize,
    clock: SimTime,
    /// Aggregation knobs copied from the host's [`RuntimeConfig`] at connect
    /// time (the lane has no config access afterwards).
    agg_policy: AggregationPolicy,
    batch_max_frames: usize,
    batch_latency_ns: f64,
    /// The open (not yet posted) batch container, its inner sequence numbers
    /// and covered target indices. Frames destined for one bank accumulate
    /// here until a flush trigger posts the whole container with one put.
    batch: FrameBatch,
    batch_sns: Vec<u32>,
    batch_members: Vec<usize>,
    /// Target index of the open container's carrier mailbox (its first
    /// frame's slot); `None` while no container is open.
    batch_carrier: Option<usize>,
    /// Bank the open container's frames are destined for — a frame for a
    /// different bank closes the container first (inner slots are declared
    /// relative to the carrier's bank).
    batch_bank: Option<usize>,
    /// Lane-virtual time the open container's first frame was encoded; the
    /// latency watermark bounds how long the container may stay open.
    batch_opened: SimTime,
    /// Scratch buffers (one encoded inner frame / one finished container),
    /// parked here so steady-state batching never allocates.
    frame_buf: Vec<u8>,
    batch_buf: Vec<u8>,
    /// Posted containers awaiting their members' credits (armed runs only).
    batch_cache: Vec<CachedBatch>,
}

impl SenderLane {
    fn new(
        handshake: StreamHandshake,
        mut sender: TwoChainsSender,
        flags: BankFlags,
        nacks: NackFlags,
        bus: CoreBus,
        core: usize,
        config: &RuntimeConfig,
    ) -> Self {
        for (id, got) in &handshake.gots {
            sender.set_remote_got(*id, got);
        }
        let index = handshake
            .targets
            .iter()
            .enumerate()
            .map(|(i, t)| ((t.bank, t.slot), i))
            .collect();
        let slots = handshake.targets.len();
        SenderLane {
            stream: handshake.stream,
            streams: handshake.streams,
            sender,
            targets: handshake.targets,
            index,
            flags,
            nacks,
            wire_cache: vec![Vec::new(); slots],
            in_flight: vec![false; slots],
            bus,
            core,
            clock: SimTime::ZERO,
            agg_policy: config.aggregation_policy,
            batch_max_frames: config.batch_max_frames,
            batch_latency_ns: config.batch_latency_watermark_ns,
            batch: FrameBatch::new(),
            batch_sns: Vec::new(),
            batch_members: Vec::new(),
            batch_carrier: None,
            batch_bank: None,
            batch_opened: SimTime::ZERO,
            frame_buf: Vec::new(),
            batch_buf: Vec::new(),
            batch_cache: Vec::new(),
        }
    }

    /// Whether this lane aggregates frames into batch containers. `PerFrame`
    /// lanes run the pre-aggregation send paths untouched — byte-identical
    /// wire behaviour, pinned by test.
    fn aggregating(&self) -> bool {
        matches!(self.agg_policy, AggregationPolicy::Adaptive)
    }

    /// The credit-table row of one of this lane's banks (`bank / streams` —
    /// the inverse of the `bank % streams` ownership map).
    fn credit_row(&self, bank: usize) -> usize {
        bank / self.streams.max(1)
    }

    /// Consume one pending credit for the `idx`-th owned slot: an acquire
    /// load of the slot's token byte, charged through this lane's core bus
    /// when a fresh token is observed (after the credit put's DMA invalidated
    /// the cached line, the observing poll is the one that re-fetches it).
    fn try_acquire_slot(&mut self, idx: usize) -> AmResult<bool> {
        let t = &self.targets[idx];
        let row = self.credit_row(t.bank);
        if self.flags.try_acquire(row, t.slot)? {
            let addr = self.flags.slot_addr(row, t.slot)?;
            self.clock += self.bus.access(self.core, addr, 1, AccessKind::Read);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Whether a credit is pending for owned mailbox (`bank`, `slot`), without
    /// consuming it. Rejected when the mailbox is not one of this stream's
    /// targets.
    pub fn credit_pending(&self, bank: usize, slot: usize) -> AmResult<bool> {
        let idx = *self.index.get(&(bank, slot)).ok_or_else(|| {
            AmError::InvalidConfig(format!(
                "mailbox ({bank}, {slot}) is not owned by stream {}",
                self.stream
            ))
        })?;
        let t = &self.targets[idx];
        self.flags.credit_pending(self.credit_row(t.bank), t.slot)
    }

    /// Snapshot the credit table, discarding stale credits ([`BankFlags::sync`]),
    /// and likewise the NACK table (a gap report aimed at an earlier run's
    /// frames must not trigger a retransmit now). A pipeline run starts with
    /// this: credits earned by earlier phased schedules (which consume none)
    /// must not leak in as phantom refill permissions.
    pub fn sync_credits(&mut self) -> AmResult<()> {
        self.flags.sync()?;
        self.nacks.sync()
    }

    /// Whether this lane's endpoint carries an installed fault plan — the
    /// switch that arms the sender half of the reliability layer. On a
    /// pristine link the wire cache, the NACK polls and the watchdog are all
    /// skipped, so the lossless fast path pays nothing for the machinery.
    fn faults_enabled(&mut self) -> bool {
        self.sender.endpoint_mut().faults_enabled()
    }

    /// Snapshot the wire bytes of the send that just completed into the
    /// `idx`-th slot's retransmit cache and mark the frame in flight. The
    /// per-slot buffer is reused, so steady state copies without allocating.
    fn cache_wire(&mut self, idx: usize) {
        let wire = self.sender.last_wire();
        let cached = &mut self.wire_cache[idx];
        cached.clear();
        cached.extend_from_slice(wire);
        self.in_flight[idx] = true;
    }

    /// Append the next message for owned slot `idx` to the open batch
    /// container, posting the container first whenever a flush trigger fires:
    /// bank boundary (inner slots are declared within the carrier's bank),
    /// batch-fill (`batch_max_frames`), the latency watermark (an open
    /// container older than `batch_latency_ns` of lane-virtual time), or
    /// carrier capacity (the container plus this frame would overrun the
    /// carrier mailbox). A frame too large to batch even alone is posted
    /// standalone from the already-encoded bytes — byte-identical to a
    /// per-frame send. Returns the outcome of whichever put this append
    /// performed, `None` when the frame only accumulated.
    fn append_to_batch(
        &mut self,
        cq: &mut CompletionQueue,
        idx: usize,
        spec: &MessageSpec,
    ) -> AmResult<Option<AmSendOutcome>> {
        let bank = self.targets[idx].bank;
        let mut flushed = None;
        if self.batch_carrier.is_some()
            && (self.batch_bank != Some(bank)
                || self.batch.len() >= self.batch_max_frames
                || (self.clock - self.batch_opened).as_ns() >= self.batch_latency_ns)
        {
            flushed = self.flush_batch(cq)?;
        }
        let mut buf = std::mem::take(&mut self.frame_buf);
        buf.clear();
        let encoded = self.sender.encode_next(spec, &mut buf);
        let sn = match encoded {
            Ok(sn) => sn,
            Err(e) => {
                self.frame_buf = buf;
                return Err(e);
            }
        };
        if let Some(carrier) = self.batch_carrier {
            if self.batch.wire_size_with(buf.len()) > self.targets[carrier].target.capacity {
                flushed = self.flush_batch(cq)?;
            }
        }
        if self.batch_carrier.is_none() {
            if FrameBatch::new().wire_size_with(buf.len()) > self.targets[idx].target.capacity {
                // Too large for any container over this carrier: send it
                // standalone (the wire bytes are exactly a per-frame send's).
                self.harvest_if_full(cq);
                let sent =
                    self.sender
                        .put_frame(self.clock, &buf, &self.targets[idx].target, Some(cq));
                let sent = match sent {
                    Ok(sent) => sent,
                    Err(e) => {
                        self.frame_buf = buf;
                        return Err(e);
                    }
                };
                self.clock = sent.sender_free();
                if self.faults_enabled() {
                    let cached = &mut self.wire_cache[idx];
                    cached.clear();
                    cached.extend_from_slice(&buf);
                    self.in_flight[idx] = true;
                }
                self.frame_buf = buf;
                // Keep the later horizon: both puts rode this append.
                return Ok(match flushed {
                    Some(f) if f.delivered() > sent.delivered() => Some(f),
                    _ => Some(sent),
                });
            }
            self.batch_carrier = Some(idx);
            self.batch_bank = Some(bank);
            self.batch_opened = self.clock;
        }
        let pushed = self.batch.push(self.targets[idx].slot as u16, &buf);
        self.frame_buf = buf;
        pushed?;
        self.batch_sns.push(sn);
        self.batch_members.push(idx);
        Ok(flushed)
    }

    /// Post the open batch container with one put into its carrier mailbox
    /// (no-op when no container is open). Armed lanes snapshot the container
    /// bytes, its inner sequence numbers and its covered slots into the
    /// retransmit cache — the container is the retransmit unit — after
    /// garbage-collecting entries whose members have all been credited.
    fn flush_batch(&mut self, cq: &mut CompletionQueue) -> AmResult<Option<AmSendOutcome>> {
        let Some(carrier) = self.batch_carrier.take() else {
            return Ok(None);
        };
        self.batch_bank = None;
        let frames = self.batch.len();
        let mut buf = std::mem::take(&mut self.batch_buf);
        let finished = self.batch.finish_into(&mut buf);
        self.batch.clear();
        if let Err(e) = finished {
            self.batch_sns.clear();
            self.batch_members.clear();
            self.batch_buf = buf;
            return Err(e);
        }
        self.harvest_if_full(cq);
        let sent = self.sender.put_batch(
            self.clock,
            &buf,
            frames,
            &self.targets[carrier].target,
            Some(cq),
        );
        let sent = match sent {
            Ok(sent) => sent,
            Err(e) => {
                self.batch_sns.clear();
                self.batch_members.clear();
                self.batch_buf = buf;
                return Err(e);
            }
        };
        self.clock = sent.sender_free();
        let sns = std::mem::take(&mut self.batch_sns);
        let members = std::mem::take(&mut self.batch_members);
        if self.faults_enabled() {
            let in_flight = &self.in_flight;
            self.batch_cache
                .retain(|e| e.members.iter().any(|&m| in_flight[m]));
            for &m in &members {
                self.in_flight[m] = true;
                // The frame now in flight on this slot lives in the container
                // cache; a stale standalone snapshot must not ride a watchdog.
                self.wire_cache[m].clear();
            }
            self.batch_cache.push(CachedBatch {
                bytes: buf.clone(),
                sns,
                members,
                carrier,
            });
        }
        self.batch_buf = buf;
        Ok(Some(sent))
    }

    /// Drain this lane's NACK table and retransmit every reported frame that
    /// is still in flight, byte-identically from the wire cache. Returns how
    /// many puts were re-posted. A report whose sequence number matches no
    /// in-flight slot is ignored: its frame's credit already arrived (the NACK
    /// raced the recovery), so there is nothing left to repair. A sequence
    /// number that travelled inside a batch container retransmits the whole
    /// cached container — the receiver's replay filters retire the inner
    /// frames that did land.
    fn poll_nacks(&mut self) -> AmResult<usize> {
        let mut retransmitted = 0usize;
        for row in 0..self.nacks.rows() {
            while let Some(missing) = self.nacks.poll(row)? {
                // The observing poll pays the read of the freshly DMA'd row,
                // mirroring the credit-acquire charge.
                let addr = self.nacks.row_addr(row)?;
                self.clock += self.bus.access(self.core, addr, 8, AccessKind::Read);
                let needle = missing.to_le_bytes();
                let hit = (0..self.targets.len()).find(|&i| {
                    self.in_flight[i] && self.wire_cache[i].get(4..8) == Some(&needle[..])
                });
                if let Some(idx) = hit {
                    self.clock = self.sender.retransmit_frame(
                        self.clock,
                        &self.wire_cache[idx],
                        &self.targets[idx].target,
                    )?;
                    retransmitted += 1;
                    continue;
                }
                let batch_hit = self.batch_cache.iter().position(|e| {
                    e.sns.contains(&missing) && e.members.iter().any(|&m| self.in_flight[m])
                });
                if let Some(k) = batch_hit {
                    let entry = &self.batch_cache[k];
                    self.clock = self.sender.retransmit_frame(
                        self.clock,
                        &entry.bytes,
                        &self.targets[entry.carrier].target,
                    )?;
                    retransmitted += 1;
                }
            }
        }
        Ok(retransmitted)
    }

    /// Watchdog action: retransmit every in-flight frame from the wire cache
    /// — standalone frames from their slot's cache, batched frames as their
    /// whole cached container (each container once, however many of its
    /// members are outstanding). Retransmits are byte-identical, so the
    /// receiver's replay filter makes a spuriously early firing harmless (the
    /// duplicate is suppressed and its credit re-published idempotently).
    fn retransmit_in_flight(&mut self) -> AmResult<usize> {
        let mut retransmitted = 0usize;
        for idx in 0..self.targets.len() {
            if self.in_flight[idx] && !self.wire_cache[idx].is_empty() {
                self.clock = self.sender.retransmit_frame(
                    self.clock,
                    &self.wire_cache[idx],
                    &self.targets[idx].target,
                )?;
                retransmitted += 1;
            }
        }
        for k in 0..self.batch_cache.len() {
            let alive = self.batch_cache[k]
                .members
                .iter()
                .any(|&m| self.in_flight[m]);
            if alive && !self.batch_cache[k].bytes.is_empty() {
                let entry = &self.batch_cache[k];
                self.clock = self.sender.retransmit_frame(
                    self.clock,
                    &entry.bytes,
                    &self.targets[entry.carrier].target,
                )?;
                retransmitted += 1;
            }
        }
        Ok(retransmitted)
    }

    /// The stream this lane fills (`bank % streams == stream`).
    pub fn stream_id(&self) -> usize {
        self.stream
    }

    /// Number of mailboxes this lane owns.
    pub fn slots(&self) -> usize {
        self.targets.len()
    }

    /// This lane's virtual clock (advanced by every send's `sender_free`).
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// This lane's sender-side counters (template hits, back-pressure stalls,
    /// bytes sent, ...).
    pub fn stats(&self) -> &RuntimeStats {
        self.sender.stats()
    }

    /// Per-stream flow control shared by every lane send: a full completion
    /// window first harvests this lane's own queue (never a sibling's) at the
    /// earliest completion horizon, charging the harvest cost to this lane's
    /// clock and counting the stall.
    fn harvest_if_full(&mut self, cq: &mut CompletionQueue) {
        if cq.outstanding() >= cq.capacity() {
            let ready_at = cq.earliest_ready(self.clock);
            let (done, cost) = cq.poll(ready_at);
            let stats = self.sender.stats_mut();
            stats.sends_backpressured += 1;
            stats.completions_harvested += done.len() as u64;
            self.clock = ready_at + cost;
        }
    }

    /// Send one message to the `idx`-th owned slot, under the lane's
    /// flow-control window.
    fn send_slot<F>(
        &mut self,
        cq: &mut CompletionQueue,
        elem: ElementId,
        mode: InvocationMode,
        idx: usize,
        round: u64,
        make: &F,
    ) -> AmResult<AmSendOutcome>
    where
        F: Fn(SlotCtx) -> (Vec<u8>, Vec<u8>),
    {
        self.harvest_if_full(cq);
        let t = &self.targets[idx];
        debug_assert_eq!(
            t.bank % self.streams,
            self.stream,
            "lane {} holds a target in bank {} it does not own",
            self.stream,
            t.bank
        );
        let ctx = SlotCtx {
            stream: self.stream,
            bank: t.bank,
            slot: t.slot,
            round,
        };
        let (args, usr) = make(ctx);
        let sent = self.sender.send_raw(
            self.clock,
            elem,
            mode,
            None,
            &args,
            &usr,
            &t.target,
            Some(cq),
        )?;
        self.clock = sent.sender_free();
        Ok(sent)
    }

    /// Send one [`MessageSpec`] — single-element or chained — to a specific
    /// owned mailbox, under the same per-stream flow control as a fill.
    /// Rejected when (`bank`, `slot`) is not one of this stream's targets.
    /// Every fleet send is completion-tracked by the lane's own window, so the
    /// spec's [`tracked`](MessageSpec::tracked) marker is satisfied either way.
    pub fn send_spec(
        &mut self,
        cq: &mut CompletionQueue,
        bank: usize,
        slot: usize,
        spec: &MessageSpec,
    ) -> AmResult<AmSendOutcome> {
        let idx = *self.index.get(&(bank, slot)).ok_or_else(|| {
            AmError::InvalidConfig(format!(
                "mailbox ({bank}, {slot}) is not owned by stream {}",
                self.stream
            ))
        })?;
        self.harvest_if_full(cq);
        let chain = spec.chain_descriptor()?;
        let t = &self.targets[idx];
        let sent = self.sender.send_raw(
            self.clock,
            spec.elem(),
            spec.invocation(),
            chain.as_ref(),
            spec.args_bytes(),
            spec.usr_bytes(),
            &t.target,
            Some(cq),
        )?;
        self.clock = sent.sender_free();
        Ok(sent)
    }

    /// Deprecated loose-argument spelling of [`SenderLane::send_spec`].
    #[deprecated(
        since = "0.2.0",
        note = "construct the message with spec(elem).mode(..).args(..).usr(..) and \
                send it with send_spec (see the migration notes in CHANGES.md)"
    )]
    #[allow(clippy::too_many_arguments)]
    pub fn send_to(
        &mut self,
        cq: &mut CompletionQueue,
        bank: usize,
        slot: usize,
        elem: ElementId,
        mode: InvocationMode,
        args: &[u8],
        usr: &[u8],
    ) -> AmResult<AmSendOutcome> {
        let spec = super::spec::spec(elem)
            .mode(mode)
            .args(args.to_vec())
            .usr(usr.to_vec());
        self.send_spec(cq, bank, slot, &spec)
    }

    /// Fill every owned slot once (round `round`), returning this stream's
    /// delivery horizon — when its last frame became visible at the receiver.
    ///
    /// Under the `Adaptive` aggregation policy the fill accumulates the
    /// bank-major target walk into batch containers — contiguous same-bank
    /// slots share one put, closed on bank boundary, batch-fill, capacity or
    /// the latency watermark, and unconditionally at the end of the round
    /// (the burst boundary). `PerFrame` runs the per-slot sends untouched.
    pub fn fill<F>(
        &mut self,
        cq: &mut CompletionQueue,
        elem: ElementId,
        mode: InvocationMode,
        round: u64,
        make: &F,
    ) -> AmResult<SimTime>
    where
        F: Fn(SlotCtx) -> (Vec<u8>, Vec<u8>),
    {
        let mut horizon = SimTime::ZERO;
        if !self.aggregating() {
            for idx in 0..self.targets.len() {
                let sent = self.send_slot(cq, elem, mode, idx, round, make)?;
                horizon = horizon.max(sent.delivered());
            }
            return Ok(horizon);
        }
        for idx in 0..self.targets.len() {
            let t = &self.targets[idx];
            let ctx = SlotCtx {
                stream: self.stream,
                bank: t.bank,
                slot: t.slot,
                round,
            };
            let (args, usr) = make(ctx);
            let spec = super::spec::spec(elem).mode(mode).args(args).usr(usr);
            if let Some(sent) = self.append_to_batch(cq, idx, &spec)? {
                horizon = horizon.max(sent.delivered());
            }
        }
        if let Some(sent) = self.flush_batch(cq)? {
            horizon = horizon.max(sent.delivered());
        }
        Ok(horizon)
    }
}

/// A borrowed per-stream handle pairing one lane with the `&mut` of its own
/// completion queue — the unit a sender thread owns. Handed out by
/// [`SenderFleet::handles`]; the borrows are disjoint per stream, so the
/// handles can be moved to OS threads.
#[derive(Debug)]
pub struct FleetLane<'a> {
    lane: &'a mut SenderLane,
    completions: &'a mut CompletionQueue,
}

impl FleetLane<'_> {
    /// The stream this handle fills.
    pub fn stream_id(&self) -> usize {
        self.lane.stream
    }

    /// Send one [`MessageSpec`] to a specific owned mailbox; see
    /// [`SenderLane::send_spec`].
    pub fn send_spec(
        &mut self,
        bank: usize,
        slot: usize,
        spec: &MessageSpec,
    ) -> AmResult<AmSendOutcome> {
        self.lane.send_spec(self.completions, bank, slot, spec)
    }

    /// Deprecated loose-argument spelling of [`FleetLane::send_spec`].
    #[deprecated(
        since = "0.2.0",
        note = "construct the message with spec(elem).mode(..).args(..).usr(..) and \
                send it with send_spec (see the migration notes in CHANGES.md)"
    )]
    pub fn send_to(
        &mut self,
        bank: usize,
        slot: usize,
        elem: ElementId,
        mode: InvocationMode,
        args: &[u8],
        usr: &[u8],
    ) -> AmResult<AmSendOutcome> {
        let spec = super::spec::spec(elem)
            .mode(mode)
            .args(args.to_vec())
            .usr(usr.to_vec());
        self.send_spec(bank, slot, &spec)
    }

    /// Fill every owned slot once; see [`SenderLane::fill`].
    pub fn fill<F>(
        &mut self,
        elem: ElementId,
        mode: InvocationMode,
        round: u64,
        make: &F,
    ) -> AmResult<SimTime>
    where
        F: Fn(SlotCtx) -> (Vec<u8>, Vec<u8>),
    {
        self.lane.fill(self.completions, elem, mode, round, make)
    }

    /// This stream's sender-side counters.
    pub fn stats(&self) -> &RuntimeStats {
        self.lane.sender.stats()
    }
}

/// The first-class multi-sender runtime object: one [`SenderLane`] per stream
/// plus the [`ShardedCompletions`] bundle providing per-stream transmit
/// windows. See the module docs for the handshake and flow-control contract.
#[derive(Debug)]
pub struct SenderFleet {
    lanes: Vec<SenderLane>,
    completions: ShardedCompletions,
}

impl SenderFleet {
    /// Connect a fleet to `host` from fabric host `src` in **one session
    /// exchange**: the host exports its [`SessionHandshake`] (stream targets
    /// and GOT images, refused outright with one error listing everything
    /// missing if the session cannot be fully wired), the fleet builds one
    /// lane per stream and registers each lane's [`BankFlags`] credit table
    /// and [`NackFlags`](crate::bank::NackFlags) table sender-side, and the
    /// host installs the reverse-direction credit-return endpoints — all
    /// before this returns. There is no partially wired state: a connected
    /// fleet always has the one-sided credit path and NACK arming installed,
    /// ready for [`drive_pipeline`].
    ///
    /// `package` is the sender-side copy of the package the fleet injects
    /// from (same source the receiver installed). The stream count and
    /// per-stream window come from the host configuration's
    /// [`sender_streams`](crate::config::RuntimeConfig::sender_streams) and
    /// [`completion_window`](crate::config::RuntimeConfig::completion_window)
    /// knobs; `sender_streams` must equal the shard count (the session's
    /// construction invariant).
    pub fn connect_fleet(
        fabric: &SimFabric,
        src: HostId,
        host: &mut TwoChainsHost,
        package: Package,
    ) -> AmResult<Self> {
        let session = host.session_handshake()?;
        let window = host.config().completion_window;
        let (lanes, credit_handshakes) =
            Self::connect_inner(fabric, src, host, package, session.streams, window)?;
        host.install_credit_returns_inner(fabric, credit_handshakes)?;
        // Per-entry harvest cost: the same software bookkeeping constant the
        // UCX-like baseline pays, taken from its single definition so a
        // retuned baseline can never silently diverge from the fleet.
        let harvest_cost = CompletionQueue::ucx_default().harvest_cost();
        Ok(SenderFleet {
            completions: ShardedCompletions::new(lanes.len(), window, harvest_cost),
            lanes,
        })
    }

    /// Deprecated split-wiring spelling of [`SenderFleet::connect_fleet`].
    #[deprecated(
        since = "0.2.0",
        note = "connect with SenderFleet::connect_fleet — one exchange that cannot \
                leave the session partially wired (see the migration notes in \
                CHANGES.md)"
    )]
    #[allow(deprecated)]
    pub fn connect(
        fabric: &SimFabric,
        src: HostId,
        host: &mut TwoChainsHost,
        package: Package,
    ) -> AmResult<Self> {
        let cfg = host.config();
        let (streams, window) = (cfg.sender_streams, cfg.completion_window);
        Self::connect_streams(fabric, src, host, package, streams, window)
    }

    /// Deprecated explicit-geometry connect. The one-sided credit path is
    /// installed only when `streams` equals the host's shard count; other
    /// stream counts connect **partially wired** (phased schedules only) —
    /// the failure mode [`SenderFleet::connect_fleet`] exists to make
    /// unrepresentable.
    #[deprecated(
        since = "0.2.0",
        note = "connect with SenderFleet::connect_fleet — one exchange that cannot \
                leave the session partially wired (see the migration notes in \
                CHANGES.md)"
    )]
    pub fn connect_streams(
        fabric: &SimFabric,
        src: HostId,
        host: &mut TwoChainsHost,
        package: Package,
        streams: usize,
        window: usize,
    ) -> AmResult<Self> {
        let handshakes = host.stream_handshakes(streams)?;
        let (lanes, credit_handshakes) =
            Self::connect_inner(fabric, src, host, package, handshakes, window)?;
        if streams == host.num_shards() {
            host.install_credit_returns_inner(fabric, credit_handshakes)?;
        }
        let harvest_cost = CompletionQueue::ucx_default().harvest_cost();
        Ok(SenderFleet {
            completions: ShardedCompletions::new(lanes.len(), window, harvest_cost),
            lanes,
        })
    }

    /// The lane-construction half of a connect: one endpoint + sender per
    /// forward handshake, each lane's credit and NACK tables registered in the
    /// sender's address space, their descriptors collected for the reverse
    /// half of the exchange.
    fn connect_inner(
        fabric: &SimFabric,
        src: HostId,
        host: &TwoChainsHost,
        package: Package,
        handshakes: Vec<StreamHandshake>,
        window: usize,
    ) -> AmResult<(Vec<SenderLane>, Vec<CreditHandshake>)> {
        if window == 0 {
            return Err(AmError::InvalidConfig(
                "completion window needs at least one entry".into(),
            ));
        }
        let sender_host = fabric.host(src)?;
        let num_cores = sender_host.hierarchy().num_cores();
        let mut credit_handshakes = Vec::with_capacity(handshakes.len());
        let lanes = handshakes
            .into_iter()
            .map(|handshake| {
                let endpoint = fabric.endpoint(src, host.host_id())?;
                // The lane's credit table: one row per owned bank, registered
                // in *this sender's* address space so the receiver can credit
                // it with one-sided puts (the reverse handshake below hands
                // the descriptor over).
                let rows = super::credit::banks_owned(
                    handshake.stream,
                    handshake.streams,
                    host.config().banks,
                );
                let region = sender_host.register(
                    BankFlags::table_len(rows, handshake.per_bank),
                    AccessFlags::rw(),
                )?;
                let flags = BankFlags::new(region, rows, handshake.per_bank)?;
                // The lane's NACK table rides the same reverse handshake: the
                // receiver posts sequence-gap reports here with one-sided
                // puts, arming the reliability layer for this stream.
                let nack_region =
                    sender_host.register(NackFlags::table_len(rows), AccessFlags::rw())?;
                let nacks = NackFlags::new(nack_region, rows)?;
                credit_handshakes.push(CreditHandshake {
                    stream: handshake.stream,
                    streams: handshake.streams,
                    per_bank: handshake.per_bank,
                    descriptor: flags.descriptor(),
                    nack: Some(nacks.descriptor()),
                });
                // Lane `s` polls its flag region on sender core `s % cores`,
                // through that core's own private L1/L2 (with more lanes than
                // cores the surplus lanes alias cores — a cost-model
                // approximation only; credit *values* always come from the
                // region's real atomics).
                let core = handshake.stream % num_cores;
                let bus = sender_host.core_bus(core);
                Ok(SenderLane::new(
                    handshake,
                    TwoChainsSender::new(endpoint, package.clone()),
                    flags,
                    nacks,
                    bus,
                    core,
                    host.config(),
                ))
            })
            .collect::<AmResult<Vec<_>>>()?;
        Ok((lanes, credit_handshakes))
    }

    /// Number of sender lanes (streams).
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// One lane, by stream index.
    pub fn lane(&self, stream: usize) -> Option<&SenderLane> {
        self.lanes.get(stream)
    }

    /// Element id of a builtin benchmark jam (delegates to lane 0's package
    /// copy — every lane injects from the same package source).
    pub fn builtin_id(&self, jam: crate::builtin::BuiltinJam) -> AmResult<ElementId> {
        self.lanes
            .first()
            .ok_or_else(|| AmError::InvalidConfig("fleet has no lanes".into()))?
            .sender
            .builtin_id(jam)
    }

    /// Fleet-wide sender statistics: every lane's counters folded through
    /// [`RuntimeStats::merge`] (per-lane views stay available via
    /// [`SenderFleet::lane`]).
    pub fn stats(&self) -> RuntimeStats {
        let mut total = RuntimeStats::new();
        for lane in &self.lanes {
            total.merge(lane.sender.stats());
        }
        total
    }

    /// Zero every lane's counters (template caches and clocks are preserved).
    pub fn reset_stats(&mut self) {
        for lane in &mut self.lanes {
            lane.sender.stats_mut().reset();
        }
    }

    /// Puts posted but not yet harvested, across all streams.
    pub fn outstanding_completions(&self) -> usize {
        self.completions.outstanding_total()
    }

    /// Harvest every completion on every stream's queue (bench housekeeping
    /// between phases). Each lane's clock waits to each entry's own readiness
    /// horizon and pays the per-entry harvest cost, same as a back-pressure
    /// harvest; the counts land in
    /// [`RuntimeStats::completions_harvested`](crate::stats::RuntimeStats::completions_harvested).
    /// Returns the number harvested across the fleet.
    pub fn harvest_completions(&mut self) -> usize {
        let mut harvested = 0usize;
        for (lane, cq) in self.lanes.iter_mut().zip(self.completions.queues_mut()) {
            while cq.outstanding() > 0 {
                let horizon = cq.earliest_ready(lane.clock);
                let (done, cost) = cq.poll(horizon);
                lane.sender.stats_mut().completions_harvested += done.len() as u64;
                lane.clock = lane.clock.max(horizon) + cost;
                harvested += done.len();
            }
        }
        harvested
    }

    /// Split the fleet into one independently movable [`FleetLane`] per stream
    /// (lane + its own completion queue), for caller-managed threading.
    pub fn handles(&mut self) -> Vec<FleetLane<'_>> {
        self.lanes
            .iter_mut()
            .zip(self.completions.queues_mut())
            .map(|(lane, completions)| FleetLane { lane, completions })
            .collect()
    }

    /// Fill every stream's slots once, lane after lane on the calling thread
    /// (the deterministic schedule the modelled benchmarks use). Returns each
    /// stream's delivery horizon.
    pub fn fill_all<F>(
        &mut self,
        elem: ElementId,
        mode: InvocationMode,
        round: u64,
        make: &F,
    ) -> AmResult<Vec<SimTime>>
    where
        F: Fn(SlotCtx) -> (Vec<u8>, Vec<u8>),
    {
        self.lanes
            .iter_mut()
            .zip(self.completions.queues_mut())
            .map(|(lane, cq)| lane.fill(cq, elem, mode, round, make))
            .collect()
    }

    /// Fill every stream's slots once, one OS thread per lane. Same wire
    /// content and results as [`SenderFleet::fill_all`]; the virtual delivery
    /// horizons may differ (the shared NIC serializes whichever lane reaches
    /// it first), which is why the deterministic benchmarks use the sequential
    /// schedule and the wall-clock ones use this.
    pub fn fill_parallel<F>(
        &mut self,
        elem: ElementId,
        mode: InvocationMode,
        round: u64,
        make: &F,
    ) -> AmResult<Vec<SimTime>>
    where
        F: Fn(SlotCtx) -> (Vec<u8>, Vec<u8>) + Sync,
    {
        let results: Vec<AmResult<SimTime>> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .lanes
                .iter_mut()
                .zip(self.completions.queues_mut())
                .map(|(lane, cq)| s.spawn(move || lane.fill(cq, elem, mode, round, make)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sender lane thread panicked"))
                .collect()
        });
        results.into_iter().collect()
    }
}

/// One frame drained by [`drive_pipeline`], with the mailbox it came from so
/// callers can attribute results (e.g. map a slot back to the key that was
/// written there).
#[derive(Debug, Clone, Copy)]
pub struct PipelineFrame {
    /// Bank the frame was drained from.
    pub bank: usize,
    /// Slot within the bank.
    pub slot: usize,
    /// The value the jam returned.
    pub result: u64,
}

/// Outcome of one [`drive_pipeline`] run.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// Per-message outcomes, in per-shard drain order (shard-major). Order
    /// within a shard depends on the fill/drain interleave; compare results as
    /// a multiset against a sequential schedule.
    pub results: Vec<PipelineFrame>,
    /// Frames successfully drained (equals `results.len()`).
    pub drained: usize,
    /// Frames the dispatch rejected (their slots were credited back, so the
    /// pipeline completes regardless). A rejected frame the NACK path later
    /// redelivers also appears in `results`, so on a faulted link
    /// `drained..=drained + rejected` brackets the offered frame count from
    /// both sides rather than summing to it exactly.
    pub rejected: usize,
}

/// Run `rounds` full fill+drain cycles with fill and drain overlapping in wall
/// clock: one sender thread per lane, one drain thread per receiver shard,
/// coupled *only* by the one-sided credit path — as each frame retires, the
/// drain's burst engine puts the slot's next credit token into the paired
/// lane's flag region ([`BankFlags`]), and the lane spins/parks on acquire
/// loads of its own region until a refillable slot's token changes. No
/// channels, no shared queues: flow control is fabric traffic, charged in
/// virtual time on both the drain core (posting) and the wire/DMA models.
///
/// Requires `fleet.lane_count() == host.num_shards()` *and* the credit path
/// installed — both guaranteed by construction for a fleet connected with
/// [`SenderFleet::connect_fleet`] — so stream `s` and shard `s` form a closed
/// pipeline over the same banks. `make` generates each
/// message's (ARGS, USR) from its [`SlotCtx`]; each slot is filled exactly
/// `rounds` times with rounds `0..rounds`, so a sequential schedule filling
/// with the same generator produces the identical message multiset.
pub fn drive_pipeline<F>(
    host: &mut TwoChainsHost,
    fleet: &mut SenderFleet,
    elem: ElementId,
    mode: InvocationMode,
    rounds: usize,
    make: &F,
) -> AmResult<PipelineOutcome>
where
    F: Fn(SlotCtx) -> (Vec<u8>, Vec<u8>) + Sync,
{
    let shards = host.num_shards();
    if fleet.lane_count() != shards {
        return Err(AmError::InvalidConfig(format!(
            "pipeline needs one sender lane per shard ({} lanes, {shards} shards)",
            fleet.lane_count()
        )));
    }
    if !host.credit_path_installed() {
        return Err(AmError::InvalidConfig(
            "pipeline needs the one-sided credit path: connect the fleet with \
             SenderFleet::connect_fleet so the credit tables are installed"
                .into(),
        ));
    }
    // The installed credit returns must target *this* fleet's tables: a later
    // connect replaces them, and driving an earlier fleet would put every
    // token into the newer fleet's regions while these lanes spin forever.
    for lane in &fleet.lanes {
        if host.credit_descriptor(lane.stream) != Some(lane.flags.descriptor()) {
            return Err(AmError::InvalidConfig(format!(
                "the host's credit path targets another fleet's tables (stream {}): \
                 a later connect replaced the credit returns — drive the most \
                 recently connected fleet, or re-connect this one",
                lane.stream
            )));
        }
    }
    if rounds == 0 {
        return Ok(PipelineOutcome {
            results: Vec::new(),
            drained: 0,
            rejected: 0,
        });
    }
    let lane_slots: Vec<usize> = fleet.lanes.iter().map(|l| l.targets.len()).collect();
    // Raised when either side fails: a dead sender leaves the drains with an
    // unreachable frame quota, a dead drain leaves the lanes spinning on
    // credits that will never be put — whichever side is still alive bails
    // out instead of spinning forever.
    let abort = AtomicBool::new(false);
    let abort = &abort;
    // Arms the abort flag against *unwinding* too: a panic in the payload
    // generator (or anywhere in either loop) must release the other side, or
    // `thread::scope` would block on it forever instead of propagating the
    // panic. Defused with `mem::forget` on clean completion.
    struct AbortOnDrop<'a>(&'a AtomicBool);
    impl Drop for AbortOnDrop<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Relaxed);
        }
    }

    std::thread::scope(|scope| -> AmResult<PipelineOutcome> {
        let drain_handles: Vec<_> = host
            .shard_drains()
            .into_iter()
            .map(|mut drain| {
                let want = rounds * lane_slots[drain.shard_id()];
                scope.spawn(move || -> AmResult<(Vec<PipelineFrame>, usize)> {
                    let guard = AbortOnDrop(abort);
                    let result = (|| -> AmResult<(Vec<PipelineFrame>, usize)> {
                        let mut results = Vec::with_capacity(want);
                        let mut rejected = 0usize;
                        let mut clock = SimTime::ZERO;
                        // The quota counts *executed* frames only. A frame
                        // torn by an in-flight fault is rejected (its credit
                        // returns immediately), then usually comes back: its
                        // sequence gap ages out of the scan-jumble watcher,
                        // the coalesced NACK reaches the paired lane, and the
                        // retransmit drains like any other frame. Counting
                        // the rejection against the quota would end the drain
                        // one retirement early when that recovery lands,
                        // stranding the final round's credits and starving
                        // the lane. When the tear hits the run's tail the
                        // lane may already have exited (no credit is owed),
                        // so once every outstanding frame is accounted for
                        // by a rejection, a bounded run of empty scans
                        // retires the gap as lost instead of spinning.
                        const GIVE_UP_SCANS: usize = 512;
                        let mut idle_scans = 0usize;
                        while results.len() < want {
                            // Credits for everything this burst retires are
                            // put back inside the burst engine itself, the
                            // moment each slot is clear.
                            let out = drain.receive_burst(usize::MAX, clock)?;
                            if out.is_empty() {
                                if abort.load(Ordering::Relaxed) {
                                    return Err(AmError::Exec(
                                        "pipeline aborted: a sender lane failed".into(),
                                    ));
                                }
                                if results.len() + rejected >= want {
                                    idle_scans += 1;
                                    if idle_scans >= GIVE_UP_SCANS {
                                        break;
                                    }
                                }
                                std::thread::yield_now();
                                continue;
                            }
                            idle_scans = 0;
                            clock = out.drained_at;
                            for f in &out.frames {
                                results.push(PipelineFrame {
                                    bank: f.bank,
                                    slot: f.slot,
                                    result: f.outcome.result,
                                });
                            }
                            rejected += out.rejected.len();
                        }
                        Ok((results, rejected))
                    })();
                    if result.is_ok() {
                        // Clean completion: every credit this shard owed is in
                        // the lane's table, so the paired lane can finish on
                        // its own — don't trip the abort.
                        std::mem::forget(guard);
                    }
                    result
                })
            })
            .collect();

        let sender_handles: Vec<_> = fleet
            .lanes
            .iter_mut()
            .zip(fleet.completions.queues_mut())
            .map(|(lane, cq)| {
                scope.spawn(move || -> AmResult<()> {
                    let guard = AbortOnDrop(abort);
                    let result = (|| -> AmResult<()> {
                        let slots = lane.targets.len();
                        let total = rounds * slots;
                        // Discard credits (and NACK records) left over from
                        // earlier phased schedules (they consume none): every
                        // slot starts empty, so round 0 needs no credit and
                        // anything pending in the tables is stale.
                        lane.sync_credits()?;
                        // The sender half of the reliability layer is armed
                        // only when this lane's endpoint carries a fault
                        // plan: on a pristine link no wire bytes are cached,
                        // no NACK row is polled and no watchdog ever fires.
                        let armed = lane.faults_enabled();
                        lane.in_flight.iter_mut().for_each(|f| *f = false);
                        let mut rounds_sent = vec![0u64; slots];
                        let mut free: VecDeque<usize> = (0..slots).collect();
                        let mut sent = 0usize;
                        let mut cursor = 0usize;
                        while sent < total {
                            let idx = match free.pop_front() {
                                Some(idx) => idx,
                                None => {
                                    // Spin, then park, on acquire loads of
                                    // this lane's own flag region:
                                    // round-robin over the slots that still
                                    // owe rounds until one's token changes.
                                    // The first SPIN_SCANS fruitless passes
                                    // only yield (credits normally arrive
                                    // within a burst); after that the lane
                                    // parks briefly between polls so a
                                    // stalled lane on an oversubscribed host
                                    // stops stealing quanta from the very
                                    // drain threads it is waiting on.
                                    const SPIN_SCANS: u32 = 128;
                                    const PARK: std::time::Duration =
                                        std::time::Duration::from_micros(20);
                                    let mut fruitless = 0u32;
                                    // Watchdog state for this stall episode
                                    // (armed lanes only): if neither a credit
                                    // nor a NACK shows up for a clamped-
                                    // Fibonacci backoff interval, every
                                    // in-flight frame is retransmitted from
                                    // the wire cache, on a bounded budget.
                                    let mut backoff =
                                        ClampedFibonacci::new(WATCHDOG_BASE, WATCHDOG_CLAMP);
                                    let mut deadline = Instant::now() + backoff.next_delay();
                                    let mut budget = RETRY_BUDGET;
                                    'wait: loop {
                                        // One coalesced credit flush can
                                        // refill several of this lane's slots
                                        // at once: harvest *every* token the
                                        // scan finds, send on the first and
                                        // queue the rest, so one wakeup never
                                        // costs more spin episodes than the
                                        // flush that caused it.
                                        let mut first: Option<usize> = None;
                                        for step in 0..slots {
                                            let i = (cursor + step) % slots;
                                            if (rounds_sent[i] as usize) < rounds
                                                && lane.try_acquire_slot(i)?
                                            {
                                                // The credit retires the
                                                // frame in flight on this
                                                // slot: the wire cache entry
                                                // is now dead weight, not a
                                                // retransmit candidate.
                                                lane.in_flight[i] = false;
                                                if first.is_none() {
                                                    first = Some(i);
                                                    cursor = (i + 1) % slots;
                                                } else {
                                                    free.push_back(i);
                                                    lane.sender
                                                        .stats_mut()
                                                        .credit_refills_coalesced += 1;
                                                }
                                            }
                                        }
                                        if let Some(i) = first {
                                            break 'wait i;
                                        }
                                        if abort.load(Ordering::Relaxed) {
                                            return Err(AmError::Exec(
                                                "pipeline aborted: a drain shard failed \
                                                 before returning all credits"
                                                    .into(),
                                            ));
                                        }
                                        if armed {
                                            // A NACK names a lost frame
                                            // precisely — retransmit it now
                                            // and push the (coarser) timeout
                                            // watchdog back.
                                            if lane.poll_nacks()? > 0 {
                                                deadline = Instant::now() + backoff.next_delay();
                                            }
                                            if Instant::now() >= deadline {
                                                if budget == 0 {
                                                    return Err(AmError::Exec(format!(
                                                        "lane {} exhausted its {RETRY_BUDGET}\
                                                         -retry reliability budget: frames \
                                                         are being lost faster than the \
                                                         retransmit path can recover them",
                                                        lane.stream
                                                    )));
                                                }
                                                budget -= 1;
                                                lane.retransmit_in_flight()?;
                                                deadline = Instant::now() + backoff.next_delay();
                                            }
                                        }
                                        if fruitless == 0 {
                                            // One stall *episode*, however many
                                            // fruitless polls it takes.
                                            lane.sender.stats_mut().credit_stall_events += 1;
                                        }
                                        fruitless = fruitless.saturating_add(1);
                                        if fruitless < SPIN_SCANS {
                                            std::thread::yield_now();
                                        } else {
                                            std::thread::sleep(PARK);
                                        }
                                    }
                                }
                            };
                            if lane.aggregating() {
                                // Opportunistic grouping: every already-free
                                // slot of the same bank rides this container
                                // (their credits are in hand), up to the
                                // batch-fill bound — one coalesced credit
                                // span refilling a row turns into one put.
                                let bank = lane.targets[idx].bank;
                                let mut group = vec![idx];
                                let mut rest = VecDeque::with_capacity(free.len());
                                while let Some(j) = free.pop_front() {
                                    if group.len() < lane.batch_max_frames
                                        && lane.targets[j].bank == bank
                                    {
                                        group.push(j);
                                    } else {
                                        rest.push_back(j);
                                    }
                                }
                                free = rest;
                                for j in group {
                                    let t = &lane.targets[j];
                                    let ctx = SlotCtx {
                                        stream: lane.stream,
                                        bank: t.bank,
                                        slot: t.slot,
                                        round: rounds_sent[j],
                                    };
                                    let (args, usr) = make(ctx);
                                    let spec =
                                        super::spec::spec(elem).mode(mode).args(args).usr(usr);
                                    lane.append_to_batch(cq, j, &spec)?;
                                    rounds_sent[j] += 1;
                                    sent += 1;
                                }
                                // Burst boundary: the lane goes back to
                                // waiting on credits next — frames must not
                                // sit unpublished across a wait.
                                lane.flush_batch(cq)?;
                            } else {
                                lane.send_slot(cq, elem, mode, idx, rounds_sent[idx], make)?;
                                if armed {
                                    lane.cache_wire(idx);
                                }
                                rounds_sent[idx] += 1;
                                sent += 1;
                            }
                        }
                        if armed {
                            // Every frame is sent, but the last one per slot
                            // may still be in flight — and on a lossy link
                            // "in flight" can mean "gone". A lossless lane
                            // exits after its last put (the drain side owes
                            // it nothing it will act on), but an armed lane
                            // must hold the retransmit machinery open until
                            // every final credit lands, or a dropped final
                            // frame would deadlock the drain with no sender
                            // left to repair it.
                            const PARK: std::time::Duration = std::time::Duration::from_micros(20);
                            let mut fruitless = 0u32;
                            let mut backoff = ClampedFibonacci::new(WATCHDOG_BASE, WATCHDOG_CLAMP);
                            let mut deadline = Instant::now() + backoff.next_delay();
                            let mut budget = RETRY_BUDGET;
                            while lane.in_flight.iter().any(|&f| f) {
                                let mut progressed = false;
                                for i in 0..slots {
                                    if lane.in_flight[i] && lane.try_acquire_slot(i)? {
                                        lane.in_flight[i] = false;
                                        progressed = true;
                                    }
                                }
                                if progressed {
                                    backoff.reset();
                                    deadline = Instant::now() + backoff.next_delay();
                                    budget = RETRY_BUDGET;
                                    fruitless = 0;
                                    continue;
                                }
                                if abort.load(Ordering::Relaxed) {
                                    return Err(AmError::Exec(
                                        "pipeline aborted: a drain shard failed \
                                         before returning all credits"
                                            .into(),
                                    ));
                                }
                                if lane.poll_nacks()? > 0 {
                                    deadline = Instant::now() + backoff.next_delay();
                                }
                                if Instant::now() >= deadline {
                                    if budget == 0 {
                                        return Err(AmError::Exec(format!(
                                            "lane {} exhausted its {RETRY_BUDGET}-retry \
                                             reliability budget waiting for its final \
                                             credits",
                                            lane.stream
                                        )));
                                    }
                                    budget -= 1;
                                    lane.retransmit_in_flight()?;
                                    deadline = Instant::now() + backoff.next_delay();
                                }
                                fruitless = fruitless.saturating_add(1);
                                if fruitless < 128 {
                                    std::thread::yield_now();
                                } else {
                                    std::thread::sleep(PARK);
                                }
                            }
                        }
                        Ok(())
                    })();
                    if result.is_ok() {
                        // Clean completion: every frame this lane owed is in
                        // its mailbox, so the paired drain can finish on its
                        // own — don't trip the abort.
                        std::mem::forget(guard);
                    }
                    result
                })
            })
            .collect();

        // Join *both* sides before reporting: after an abort, one side holds
        // the root-cause error and the other holds only the secondary
        // "pipeline aborted: ..." it raised when released, and either side
        // may be the one that actually failed (a lane's send, or a drain's
        // dispatch/credit put).
        let mut errors: Vec<AmError> = Vec::new();
        for h in sender_handles {
            if let Err(e) = h.join().expect("sender lane thread panicked") {
                errors.push(e);
            }
        }
        let mut results = Vec::new();
        let mut rejected = 0usize;
        for h in drain_handles {
            match h.join().expect("drain thread panicked") {
                Ok((r, rej)) => {
                    results.extend(r);
                    rejected += rej;
                }
                Err(e) => errors.push(e),
            }
        }
        if !errors.is_empty() {
            // Surface the root cause, not a released thread's abort notice
            // (the only errors prefixed "pipeline aborted" are the ones this
            // function itself raises on the released side).
            let root = errors
                .iter()
                .position(|e| !matches!(e, AmError::Exec(m) if m.starts_with("pipeline aborted")))
                .unwrap_or(0);
            return Err(errors.swap_remove(root));
        }
        Ok(PipelineOutcome {
            drained: results.len(),
            results,
            rejected,
        })
    })
}
