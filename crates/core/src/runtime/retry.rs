//! Clamped-Fibonacci retransmit scheduling.
//!
//! The sender lanes' timeout watchdog backs off on a Fibonacci schedule clamped
//! to a maximum delay — the retry discipline of the hermes relayer exemplar
//! cited in ROADMAP. Fibonacci grows gently at first (a transient stall costs
//! one extra base delay, not a doubling) yet still reaches the clamp in a few
//! steps, and the clamp keeps a persistently lossy link probed at a bounded
//! rate instead of backing off into effective silence.

use std::time::Duration;

/// A Fibonacci backoff sequence `base, base, 2·base, 3·base, 5·base, …`,
/// clamped at `clamp`. Wall-clock durations: the watchdog guards against a
/// *real* wedge (a frame that will never arrive), which virtual time cannot
/// observe.
#[derive(Debug, Clone)]
pub struct ClampedFibonacci {
    base: Duration,
    clamp: Duration,
    prev: u32,
    cur: u32,
}

impl ClampedFibonacci {
    /// A schedule starting at `base` and never exceeding `clamp`.
    pub fn new(base: Duration, clamp: Duration) -> Self {
        ClampedFibonacci {
            base,
            clamp,
            prev: 0,
            cur: 1,
        }
    }

    /// The next delay in the schedule, advancing it.
    pub fn next_delay(&mut self) -> Duration {
        let delay = (self.base * self.cur).min(self.clamp);
        // Saturate the multiplier once the clamp is reached: the delay cannot
        // grow further, and saturating also rules out overflow on a
        // pathological number of retries.
        let next = self.prev.saturating_add(self.cur);
        self.prev = self.cur;
        self.cur = next;
        delay
    }

    /// Restart the schedule from `base` (called on progress: the link is
    /// healthy again, so the next stall is a fresh incident).
    pub fn reset(&mut self) {
        self.prev = 0;
        self.cur = 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn follows_the_fibonacci_sequence_until_the_clamp() {
        let base = Duration::from_millis(10);
        let mut f = ClampedFibonacci::new(base, Duration::from_millis(80));
        let delays: Vec<u64> = (0..8).map(|_| f.next_delay().as_millis() as u64).collect();
        assert_eq!(delays, vec![10, 10, 20, 30, 50, 80, 80, 80]);
    }

    #[test]
    fn reset_restarts_from_base() {
        let mut f = ClampedFibonacci::new(Duration::from_millis(5), Duration::from_secs(1));
        for _ in 0..6 {
            f.next_delay();
        }
        f.reset();
        assert_eq!(f.next_delay(), Duration::from_millis(5));
        assert_eq!(f.next_delay(), Duration::from_millis(5));
        assert_eq!(f.next_delay(), Duration::from_millis(10));
    }

    #[test]
    fn never_exceeds_the_clamp_even_after_many_steps() {
        let clamp = Duration::from_millis(100);
        let mut f = ClampedFibonacci::new(Duration::from_millis(7), clamp);
        for _ in 0..10_000 {
            assert!(f.next_delay() <= clamp);
        }
    }
}
