//! Runtime tests: the end-to-end receive/send paths, the fast-path cache
//! behaviour, and the sharded burst-draining layer.
//!
//! The deprecated send/handshake spellings (`send_message`, `sender_handshake`,
//! `install_credit_returns`, `connect`, ...) are exercised here on purpose —
//! they must stay behaviourally pinned for as long as the thin wrappers exist.
//! Everything outside this module constructs messages and sessions through
//! `spec()`/`send_spec`/`connect_fleet`.
#![allow(deprecated)]

use twochains_fabric::SimFabric;
use twochains_jamvm::{encode_program, GotImage, Instr};
use twochains_linker::ElementId;
use twochains_memsim::{SimTime, TestbedConfig};

use super::{ReceiveOutcome, TwoChainsHost, TwoChainsSender};
use crate::builtin::{benchmark_package, indirect_put_args, ssum_args, BuiltinJam};
use crate::config::{InvocationMode, RuntimeConfig};
use crate::error::AmError;
use crate::frame::Frame;
use crate::stats::RuntimeStats;

/// Build the standard two-host testbed with the benchmark package installed on
/// both sides and the receiver's GOT images exported to the sender.
fn testbed(cfg: RuntimeConfig) -> (TwoChainsHost, TwoChainsSender) {
    let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut receiver = TwoChainsHost::new(&fabric, b, cfg).unwrap();
    receiver
        .install_package(benchmark_package().unwrap())
        .unwrap();
    let ep = fabric.endpoint(a, b).unwrap();
    let mut sender = TwoChainsSender::new(ep, benchmark_package().unwrap());
    for jam in [BuiltinJam::ServerSideSum, BuiltinJam::IndirectPut] {
        let id = receiver.builtin_id(jam).unwrap();
        let got = receiver.export_got(id).unwrap();
        sender.set_remote_got(id, &got);
    }
    (receiver, sender)
}

fn payload(n_ints: usize) -> Vec<u8> {
    (0..n_ints as u32)
        .flat_map(|v| (v + 1).to_le_bytes())
        .collect()
}

#[test]
fn injected_server_side_sum_end_to_end() {
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    let frame = tx
        .pack(id, InvocationMode::Injected, ssum_args(8), payload(8))
        .unwrap();
    let target = rx.mailbox_target(0, 0).unwrap();
    let send = tx.send(SimTime::ZERO, &frame, &target).unwrap();
    let out = rx
        .receive(
            0,
            0,
            Some(frame.wire_size()),
            send.delivered(),
            SimTime::ZERO,
        )
        .unwrap();
    assert_eq!(out.result, (1..=8u64).sum::<u64>());
    assert!(out.handler_done > send.delivered());
    assert!(out.exec.is_some());
    // Server-side array holds the sum.
    let arr = rx.read_data("array.base", 8, 8).unwrap();
    assert_eq!(u64::from_le_bytes(arr.try_into().unwrap()), 36);
    assert_eq!(rx.stats().injected_executions, 1);
}

#[test]
fn local_and_injected_produce_identical_results() {
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
    let id = rx.builtin_id(BuiltinJam::IndirectPut).unwrap();
    let target = rx.mailbox_target(0, 0).unwrap();
    let mut results = Vec::new();
    for mode in InvocationMode::ALL {
        let frame = tx
            .pack(id, mode, indirect_put_args(42, 16, 4), payload(16))
            .unwrap();
        let send = tx.send(SimTime::ZERO, &frame, &target).unwrap();
        let out = rx
            .receive(
                0,
                0,
                Some(frame.wire_size()),
                send.delivered(),
                SimTime::ZERO,
            )
            .unwrap();
        results.push(out.result);
    }
    assert_eq!(
        results[0], results[1],
        "same key must land at the same offset"
    );
    assert_eq!(rx.stats().local_executions, 1);
    assert_eq!(rx.stats().injected_executions, 1);
}

#[test]
fn injected_frames_are_larger_but_not_slower_for_big_payloads() {
    let (rx, mut tx) = testbed(RuntimeConfig::paper_default());
    let id = rx.builtin_id(BuiltinJam::IndirectPut).unwrap();
    let target = rx.mailbox_target(0, 0).unwrap();
    let local = tx
        .pack(
            id,
            InvocationMode::Local,
            indirect_put_args(1, 1, 4),
            payload(1),
        )
        .unwrap();
    let injected = tx
        .pack(
            id,
            InvocationMode::Injected,
            indirect_put_args(1, 1, 4),
            payload(1),
        )
        .unwrap();
    assert_eq!(local.wire_size(), 64);
    assert_eq!(injected.wire_size(), 1472);
    let _ = (&rx, &target);
}

#[test]
fn without_execution_skips_the_handler() {
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default().without_execution());
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    let frame = tx
        .pack(id, InvocationMode::Injected, ssum_args(4), payload(4))
        .unwrap();
    let target = rx.mailbox_target(0, 0).unwrap();
    let send = tx.send(SimTime::ZERO, &frame, &target).unwrap();
    let out = rx
        .receive(
            0,
            0,
            Some(frame.wire_size()),
            send.delivered(),
            SimTime::ZERO,
        )
        .unwrap();
    assert!(out.exec.is_none());
    assert_eq!(out.result, 0);
    assert_eq!(rx.stats().executions, 0);
    assert_eq!(rx.stats().messages_received, 1);
}

#[test]
fn hardened_policy_reresolves_got_and_still_works() {
    let mut cfg = RuntimeConfig::paper_default();
    cfg.security = crate::security::SecurityPolicy::hardened();
    let (mut rx, mut tx) = testbed(cfg);
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    // Corrupt the sender's notion of the GOT — the hardened receiver ignores it.
    tx.set_remote_got(id, &GotImage::with_slots(1));
    let frame = tx
        .pack(id, InvocationMode::Injected, ssum_args(4), payload(4))
        .unwrap();
    let target = rx.mailbox_target(0, 0).unwrap();
    let send = tx.send(SimTime::ZERO, &frame, &target).unwrap();
    let out = rx
        .receive(
            0,
            0,
            Some(frame.wire_size()),
            send.delivered(),
            SimTime::ZERO,
        )
        .unwrap();
    assert_eq!(out.result, 10);
}

#[test]
fn unknown_local_element_is_rejected() {
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
    let frame = tx.pack(
        ElementId(999),
        InvocationMode::Local,
        ssum_args(1),
        payload(1),
    );
    // Packing a local frame for an unknown element succeeds (the id is opaque to
    // the sender) but the receiver rejects it.
    let frame = frame.unwrap();
    let target = rx.mailbox_target(0, 0).unwrap();
    let send = tx.send(SimTime::ZERO, &frame, &target).unwrap();
    let err = rx
        .receive(
            0,
            0,
            Some(frame.wire_size()),
            send.delivered(),
            SimTime::ZERO,
        )
        .unwrap_err();
    assert!(matches!(err, AmError::UnknownElement(999)));
}

#[test]
fn empty_mailbox_reports_empty() {
    let (mut rx, _tx) = testbed(RuntimeConfig::paper_default());
    let err = rx
        .receive(0, 0, Some(64), SimTime::ZERO, SimTime::ZERO)
        .unwrap_err();
    assert_eq!(err, AmError::Empty);
    let err = rx
        .receive(0, 1, None, SimTime::ZERO, SimTime::ZERO)
        .unwrap_err();
    assert_eq!(err, AmError::Empty);
}

#[test]
fn oversized_frame_rejected_at_send_time() {
    let mut cfg = RuntimeConfig::paper_default();
    cfg.frame_capacity = 2048;
    let (rx, mut tx) = testbed(cfg);
    let id = rx.builtin_id(BuiltinJam::IndirectPut).unwrap();
    let frame = tx
        .pack(
            id,
            InvocationMode::Injected,
            indirect_put_args(1, 4096, 4),
            payload(4096),
        )
        .unwrap();
    let target = rx.mailbox_target(0, 0).unwrap();
    assert!(matches!(
        tx.send(SimTime::ZERO, &frame, &target),
        Err(AmError::FrameTooLarge { .. })
    ));
}

#[test]
fn injected_without_remote_got_fails_to_pack() {
    let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut rx = TwoChainsHost::new(&fabric, b, RuntimeConfig::paper_default()).unwrap();
    rx.install_package(benchmark_package().unwrap()).unwrap();
    // This sender never received the receiver's exported GOT images.
    let mut tx = TwoChainsSender::new(fabric.endpoint(a, b).unwrap(), benchmark_package().unwrap());
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    let err = tx
        .pack(id, InvocationMode::Injected, ssum_args(1), payload(1))
        .unwrap_err();
    assert!(matches!(err, AmError::Link(_)));
    // Local frames need no GOT exchange.
    assert!(tx
        .pack(id, InvocationMode::Local, ssum_args(1), payload(1))
        .is_ok());
}

#[test]
fn wfe_reduces_wait_cycles_but_not_results() {
    let (mut rx_poll, mut tx1) = testbed(RuntimeConfig::paper_default());
    let (mut rx_wfe, mut tx2) = testbed(RuntimeConfig::paper_default().with_wfe());
    let id = rx_poll.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    for (rx, tx) in [(&mut rx_poll, &mut tx1), (&mut rx_wfe, &mut tx2)] {
        let frame = tx
            .pack(id, InvocationMode::Injected, ssum_args(8), payload(8))
            .unwrap();
        let target = rx.mailbox_target(0, 0).unwrap();
        let send = tx.send(SimTime::ZERO, &frame, &target).unwrap();
        let out = rx
            .receive(
                0,
                0,
                Some(frame.wire_size()),
                send.delivered(),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(out.result, 36);
    }
    assert!(
        rx_wfe.stats().cycles.waiting() < rx_poll.stats().cycles.waiting() / 4,
        "WFE should burn far fewer wait cycles ({} vs {})",
        rx_wfe.stats().cycles.waiting(),
        rx_poll.stats().cycles.waiting()
    );
}

#[test]
fn stashing_speeds_up_the_injected_handler() {
    let (mut rx_stash, mut tx1) = testbed(RuntimeConfig::paper_default());
    let (mut rx_nostash, mut tx2) = testbed(RuntimeConfig::paper_default());
    rx_nostash.set_stashing(false);
    let id = rx_stash.builtin_id(BuiltinJam::IndirectPut).unwrap();
    let mut handler_times = Vec::new();
    for (rx, tx) in [(&mut rx_stash, &mut tx1), (&mut rx_nostash, &mut tx2)] {
        let frame = tx
            .pack(
                id,
                InvocationMode::Injected,
                indirect_put_args(7, 64, 4),
                payload(64),
            )
            .unwrap();
        let target = rx.mailbox_target(0, 0).unwrap();
        let send = tx.send(SimTime::ZERO, &frame, &target).unwrap();
        let out = rx
            .receive(
                0,
                0,
                Some(frame.wire_size()),
                send.delivered(),
                SimTime::ZERO,
            )
            .unwrap();
        handler_times.push(out.handler_time);
    }
    assert!(
        handler_times[0] < handler_times[1],
        "stashed handler ({}) should be faster than non-stashed ({})",
        handler_times[0],
        handler_times[1]
    );
}

// ---- fast-path cache behaviour -------------------------------------------------

/// Drive `n` injected sends+receives of `elem` through the fast path, into
/// mailbox (`bank`, 0).
fn pump_injected_into(
    rx: &mut TwoChainsHost,
    tx: &mut TwoChainsSender,
    elem: ElementId,
    bank: usize,
    n: usize,
) -> Vec<ReceiveOutcome> {
    let target = rx.mailbox_target(bank, 0).unwrap();
    let mut outs = Vec::with_capacity(n);
    for i in 0..n {
        let args = ssum_args(4);
        let usr = payload(4);
        let send = tx
            .send_message(
                SimTime::ZERO,
                elem,
                InvocationMode::Injected,
                &args,
                &usr,
                &target,
            )
            .unwrap();
        let out = rx
            .receive(
                bank,
                0,
                Some(send.wire_bytes),
                send.delivered(),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(out.result, 10, "message {i} result");
        outs.push(out);
    }
    outs
}

/// Drive `n` injected sends+receives of `elem` through the fast path.
fn pump_injected(
    rx: &mut TwoChainsHost,
    tx: &mut TwoChainsSender,
    elem: ElementId,
    n: usize,
) -> Vec<ReceiveOutcome> {
    pump_injected_into(rx, tx, elem, 0, n)
}

#[test]
fn steady_state_injected_dispatch_hits_all_caches() {
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    let outs = pump_injected(&mut rx, &mut tx, id, 5);
    // Exactly one decode+verify and one GOT parse, ever: the acceptance criterion
    // "zero decode_program calls and zero program/GOT clones after the first
    // message for a given element".
    assert_eq!(rx.stats().injected_code_cache_misses, 1);
    assert_eq!(rx.stats().injected_code_cache_hits, 4);
    assert_eq!(rx.stats().got_cache_misses, 1);
    assert_eq!(rx.stats().got_cache_hits, 4);
    assert_eq!(rx.injected_cache_len(), 1);
    // Sender side: one template build, then pure memcpy sends.
    assert_eq!(tx.stats().template_misses, 1);
    assert_eq!(tx.stats().template_hits, 4);
    // The modelled dispatch cost drops once the caches are warm.
    assert!(
        outs[4].dispatch_time < outs[0].dispatch_time,
        "warm dispatch ({}) should be cheaper than cold ({})",
        outs[4].dispatch_time,
        outs[0].dispatch_time
    );
}

#[test]
fn cache_invalidation_restores_the_cold_path() {
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    pump_injected(&mut rx, &mut tx, id, 2);
    assert_eq!(rx.stats().injected_code_cache_misses, 1);
    rx.invalidate_injection_caches();
    assert_eq!(rx.injected_cache_len(), 0);
    pump_injected(&mut rx, &mut tx, id, 1);
    assert_eq!(
        rx.stats().injected_code_cache_misses,
        2,
        "post-invalidation miss"
    );
    // Package reinstall also invalidates (element ids may rebind).
    rx.install_package(benchmark_package().unwrap()).unwrap();
    assert_eq!(rx.injected_cache_len(), 0);
}

#[test]
fn live_update_invalidates_caches() {
    use twochains_linker::RiedBuilder;
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    pump_injected(&mut rx, &mut tx, id, 2);
    assert_eq!(rx.injected_cache_len(), 1);
    // Loading any ried is a live update: cached resolutions must not survive.
    rx.load_ried(&RiedBuilder::new("ried_noop").build(), true)
        .unwrap();
    assert_eq!(rx.injected_cache_len(), 0);
    pump_injected(&mut rx, &mut tx, id, 1);
    assert_eq!(rx.stats().injected_code_cache_misses, 2);
}

#[test]
fn hardened_mode_caches_local_resolution() {
    let mut cfg = RuntimeConfig::paper_default();
    cfg.security = crate::security::SecurityPolicy::hardened();
    let (mut rx, mut tx) = testbed(cfg);
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    pump_injected(&mut rx, &mut tx, id, 3);
    assert_eq!(rx.stats().got_cache_misses, 1, "one local re-resolution");
    assert_eq!(rx.stats().got_cache_hits, 2);
}

#[test]
fn repeat_sends_are_byte_identical_without_repatching() {
    let (rx, mut tx) = testbed(RuntimeConfig::paper_default());
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    let args = ssum_args(4);
    let usr = payload(4);
    // Two sends of the same element land in different mailboxes; capture both
    // wire images before receiving.
    let mut wires = Vec::new();
    for slot in 0..2 {
        let target = rx.mailbox_target(0, slot).unwrap();
        let send = tx
            .send_message(
                SimTime::ZERO,
                id,
                InvocationMode::Injected,
                &args,
                &usr,
                &target,
            )
            .unwrap();
        wires.push(
            rx.banks()
                .mailbox(0, slot)
                .unwrap()
                .read_frame(send.wire_bytes)
                .unwrap(),
        );
    }
    // Only one GOT patch / code capture happened for both sends.
    assert_eq!(tx.stats().template_misses, 1);
    assert_eq!(tx.stats().template_hits, 1);
    // The frames are byte-identical except the sequence number (header bytes 4..8
    // and its 3-byte trailer echo).
    let (a, b) = (&wires[0], &wires[1]);
    assert_eq!(a.len(), b.len());
    let len = a.len();
    for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
        let sn_bytes = (4..8).contains(&i) || (len - 4..len - 1).contains(&i);
        if sn_bytes {
            continue;
        }
        assert_eq!(
            x, y,
            "wire byte {i} differs between two sends of the same element"
        );
    }
}

#[test]
fn send_message_matches_pack_plus_send() {
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    let args = ssum_args(8);
    let usr = payload(8);
    // Fast path into slot 0.
    let t0 = rx.mailbox_target(0, 0).unwrap();
    let fast = tx
        .send_message(
            SimTime::ZERO,
            id,
            InvocationMode::Injected,
            &args,
            &usr,
            &t0,
        )
        .unwrap();
    // pack+send into slot 1.
    let t1 = rx.mailbox_target(0, 1).unwrap();
    let frame = tx
        .pack(id, InvocationMode::Injected, args.clone(), usr.clone())
        .unwrap();
    let slow = tx.send(SimTime::ZERO, &frame, &t1).unwrap();
    assert_eq!(fast.wire_bytes, slow.wire_bytes);
    assert_eq!(fast.pack_cost, slow.pack_cost, "identical pack-cost model");
    let out_fast = rx
        .receive(0, 0, Some(fast.wire_bytes), fast.delivered(), SimTime::ZERO)
        .unwrap();
    let out_slow = rx
        .receive(0, 1, Some(slow.wire_bytes), slow.delivered(), SimTime::ZERO)
        .unwrap();
    assert_eq!(out_fast.result, out_slow.result);
}

#[test]
fn warm_hit_with_too_small_got_is_rejected_before_execution() {
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    // Message 1: well-formed injected frame, populates the code cache.
    pump_injected(&mut rx, &mut tx, id, 1);
    // Message 2: same code, but an empty GOT image. The cold path would reject
    // this at verify time; a warm hit must reject it too, before executing.
    let good = tx
        .pack(id, InvocationMode::Injected, ssum_args(4), payload(4))
        .unwrap();
    let bad = Frame::injected(
        good.header.sn + 1,
        id.0,
        Vec::new(),
        good.code.clone(),
        ssum_args(4),
        payload(4),
    );
    let target = rx.mailbox_target(0, 0).unwrap();
    let send = tx.send(SimTime::ZERO, &bad, &target).unwrap();
    let executions_before = rx.stats().executions;
    let err = rx
        .receive(0, 0, Some(bad.wire_size()), send.delivered(), SimTime::ZERO)
        .unwrap_err();
    assert!(
        matches!(&err, AmError::BadFrame(m) if m.contains("GOT")),
        "expected a pre-execution GOT-size rejection, got {err:?}"
    );
    assert_eq!(
        rx.stats().executions,
        executions_before,
        "nothing must have executed"
    );
}

#[test]
fn hardened_overhead_is_charged_on_every_message() {
    let mut cfg = RuntimeConfig::paper_default();
    cfg.security = crate::security::SecurityPolicy::hardened();
    let (mut rx, mut tx) = testbed(cfg);
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    let outs = pump_injected(&mut rx, &mut tx, id, 3);
    // The resolution work is cached, but the policy's modelled per-message cost
    // must not be: warm hardened dispatch stays flat, and stays above what the
    // overhead-free model would charge.
    assert_eq!(
        outs[1].dispatch_time, outs[2].dispatch_time,
        "warm dispatch is steady"
    );
    let overhead = crate::security::SecurityPolicy::hardened().per_message_overhead(1);
    assert!(overhead > SimTime::ZERO);
    assert!(
        outs[2].dispatch_time > overhead,
        "warm hardened dispatch ({}) must include the per-message overhead ({overhead})",
        outs[2].dispatch_time
    );
}

#[test]
fn oversized_args_rejected_at_the_sender() {
    let (rx, mut tx) = testbed(RuntimeConfig::paper_default());
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    let target = rx.mailbox_target(0, 0).unwrap();
    // 70000 > u16::MAX: the args length does not fit its wire field. Both send
    // paths must error instead of emitting a self-inconsistent header.
    let big = vec![0u8; 70_000];
    let err = tx
        .pack(id, InvocationMode::Local, big.clone(), Vec::new())
        .unwrap_err();
    assert!(matches!(&err, AmError::BadFrame(m) if m.contains("ARGS")));
    let err = tx
        .send_message(SimTime::ZERO, id, InvocationMode::Local, &big, &[], &target)
        .unwrap_err();
    assert!(matches!(&err, AmError::BadFrame(m) if m.contains("ARGS")));
}

#[test]
fn malformed_injected_code_is_rejected_not_cached() {
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    let mut frame = tx
        .pack(id, InvocationMode::Injected, ssum_args(1), payload(1))
        .unwrap();
    // Truncate the code section to garbage of the declared length.
    for b in frame.code.iter_mut() {
        *b = 0xFF;
    }
    let target = rx.mailbox_target(0, 0).unwrap();
    let send = tx.send(SimTime::ZERO, &frame, &target).unwrap();
    let err = rx
        .receive(
            0,
            0,
            Some(frame.wire_size()),
            send.delivered(),
            SimTime::ZERO,
        )
        .unwrap_err();
    assert!(matches!(err, AmError::BadFrame(_)));
    assert_eq!(
        rx.injected_cache_len(),
        0,
        "garbage must not populate the cache"
    );
}

// ---- sharded receive and burst draining ----------------------------------------

#[test]
fn receive_routes_counters_to_the_owning_shard() {
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default().with_shards(2));
    assert_eq!(rx.num_shards(), 2);
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    // Bank 0 -> shard 0, bank 1 -> shard 1.
    pump_injected_into(&mut rx, &mut tx, id, 0, 2);
    pump_injected_into(&mut rx, &mut tx, id, 1, 3);
    assert_eq!(rx.shard_stats(0).unwrap().messages_received, 2);
    assert_eq!(rx.shard_stats(1).unwrap().messages_received, 3);
    assert!(rx.shard_stats(2).is_none());
    // The aggregate view sums the shards; the shared code cache decoded once.
    assert_eq!(rx.stats().messages_received, 5);
    assert_eq!(rx.stats().injected_code_cache_misses, 1);
    assert_eq!(rx.stats().injected_code_cache_hits, 4);
}

#[test]
fn install_package_invalidation_is_visible_to_all_shards() {
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default().with_shards(2));
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    // Warm both shards through their own banks (shared cache: one miss total).
    pump_injected_into(&mut rx, &mut tx, id, 0, 1);
    pump_injected_into(&mut rx, &mut tx, id, 1, 1);
    assert_eq!(rx.stats().injected_code_cache_misses, 1);
    assert_eq!(rx.stats().injected_code_cache_hits, 1);
    // Reinstall: element ids may rebind. The shared-cache invalidation must be
    // visible to *both* shards — each pays a fresh miss on its next message.
    rx.install_package(benchmark_package().unwrap()).unwrap();
    assert_eq!(rx.injected_cache_len(), 0);
    pump_injected_into(&mut rx, &mut tx, id, 0, 1);
    pump_injected_into(&mut rx, &mut tx, id, 1, 1);
    assert_eq!(
        rx.stats().injected_code_cache_misses,
        2,
        "exactly one shard re-decodes after the reinstall; the other hits its entry"
    );
    assert_eq!(rx.shard_stats(0).unwrap().injected_code_cache_misses, 2);
    assert_eq!(rx.shard_stats(1).unwrap().injected_code_cache_hits, 2);
}

#[test]
fn receive_burst_drains_a_shards_banks_in_one_call() {
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default().with_shards(2));
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    // Land frames in banks 0..4 (slot 0 and 1 of each), 8 frames total.
    let mut delivered = SimTime::ZERO;
    for bank in 0..4 {
        for slot in 0..2 {
            let target = rx.mailbox_target(bank, slot).unwrap();
            let send = tx
                .send_message(
                    SimTime::ZERO,
                    id,
                    InvocationMode::Injected,
                    &ssum_args(4),
                    &payload(4),
                    &target,
                )
                .unwrap();
            delivered = delivered.max(send.delivered());
        }
    }
    // Shard 0 owns banks 0 and 2; shard 1 owns banks 1 and 3.
    let out0 = rx.receive_burst(0, usize::MAX, delivered).unwrap();
    assert_eq!(out0.len(), 4);
    assert!(out0.rejected.is_empty());
    assert_eq!(
        out0.frames
            .iter()
            .map(|f| (f.bank, f.slot))
            .collect::<Vec<_>>(),
        vec![(0, 0), (0, 1), (2, 0), (2, 1)],
        "scan order is bank-major over owned banks"
    );
    for f in &out0.frames {
        assert_eq!(f.outcome.result, 10);
    }
    assert!(out0.drained_at > delivered);
    let out1 = rx.receive_burst(1, usize::MAX, delivered).unwrap();
    assert_eq!(out1.len(), 4);
    // Everything drained: a second burst finds nothing.
    assert!(rx
        .receive_burst(0, usize::MAX, delivered)
        .unwrap()
        .is_empty());
    assert_eq!(rx.stats().messages_received, 8);
    assert_eq!(rx.stats().executions, 8);
    // max_frames is respected.
    assert!(rx.receive_burst(5, 1, delivered).is_err(), "no such shard");
}

#[test]
fn receive_burst_respects_max_frames() {
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    for slot in 0..3 {
        let target = rx.mailbox_target(0, slot).unwrap();
        tx.send_message(
            SimTime::ZERO,
            id,
            InvocationMode::Injected,
            &ssum_args(4),
            &payload(4),
            &target,
        )
        .unwrap();
    }
    let first = rx.receive_burst(0, 2, SimTime::from_us(100)).unwrap();
    assert_eq!(first.len(), 2);
    let rest = rx.receive_burst(0, 2, first.drained_at).unwrap();
    assert_eq!(rest.len(), 1);
    assert!(rx.receive_burst(0, 2, rest.drained_at).unwrap().is_empty());
}

#[test]
fn receive_burst_amortises_the_per_message_wait() {
    // Same five frames, drained one-by-one vs in one burst: the burst pays the
    // scan once instead of one wait per message, so its per-message overhead is
    // strictly smaller while results and executions match.
    let (mut rx_seq, mut tx_seq) = testbed(RuntimeConfig::paper_default());
    let (mut rx_burst, mut tx_burst) = testbed(RuntimeConfig::paper_default());
    let id = rx_seq.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    let mut sends = Vec::new();
    for (rx, tx) in [(&rx_seq, &mut tx_seq), (&rx_burst, &mut tx_burst)] {
        for slot in 0..5 {
            let target = rx.mailbox_target(0, slot).unwrap();
            let send = tx
                .send_message(
                    SimTime::ZERO,
                    id,
                    InvocationMode::Injected,
                    &ssum_args(4),
                    &payload(4),
                    &target,
                )
                .unwrap();
            sends.push(send);
        }
    }
    let start = sends
        .iter()
        .map(|s| s.delivered())
        .fold(SimTime::ZERO, SimTime::max);
    let mut ready = start;
    for slot in 0..5 {
        let out = rx_seq.receive(0, slot, None, ready, ready).unwrap();
        ready = out.handler_done;
    }
    let burst = rx_burst.receive_burst(0, usize::MAX, start).unwrap();
    assert_eq!(burst.len(), 5);
    assert_eq!(rx_burst.stats().executions, rx_seq.stats().executions);
    assert!(
        rx_burst.stats().wait_time < rx_seq.stats().wait_time,
        "burst wait ({}) must undercut per-message polling ({})",
        rx_burst.stats().wait_time,
        rx_seq.stats().wait_time
    );
    assert!(
        burst.drained_at < ready,
        "burst completion ({}) should beat sequential draining ({})",
        burst.drained_at,
        ready
    );
}

#[test]
fn receive_burst_drops_malformed_frames_and_frees_their_slots() {
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    // Slot 0: good frame. Slot 1: garbage code of the declared length.
    let t0 = rx.mailbox_target(0, 0).unwrap();
    tx.send_message(
        SimTime::ZERO,
        id,
        InvocationMode::Injected,
        &ssum_args(4),
        &payload(4),
        &t0,
    )
    .unwrap();
    let mut bad = tx
        .pack(id, InvocationMode::Injected, ssum_args(4), payload(4))
        .unwrap();
    for b in bad.code.iter_mut() {
        *b = 0xFF;
    }
    let t1 = rx.mailbox_target(0, 1).unwrap();
    tx.send(SimTime::ZERO, &bad, &t1).unwrap();

    let out = rx
        .receive_burst(0, usize::MAX, SimTime::from_us(100))
        .unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out.frames[0].outcome.result, 10);
    assert_eq!(out.rejected.len(), 1);
    assert_eq!((out.rejected[0].0, out.rejected[0].1), (0, 1));
    assert!(matches!(out.rejected[0].2, AmError::BadFrame(_)));
    // The bad slot was cleared: the bank cannot wedge, and a rescan is clean.
    assert!(rx
        .receive_burst(0, usize::MAX, out.drained_at)
        .unwrap()
        .is_empty());
}

#[test]
fn shard_drains_split_the_host_for_parallel_draining() {
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default().with_shards(4));
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    // Warm the shared caches first so the parallel phase is deterministic (with a
    // cold cache, racing shards could each decode the first message for the key).
    pump_injected_into(&mut rx, &mut tx, id, 0, 1);
    for bank in 0..4 {
        let target = rx.mailbox_target(bank, 0).unwrap();
        tx.send_message(
            SimTime::ZERO,
            id,
            InvocationMode::Injected,
            &ssum_args(4),
            &payload(4),
            &target,
        )
        .unwrap();
    }
    let now = SimTime::from_us(100);
    let drains = rx.shard_drains();
    assert_eq!(drains.len(), 4);
    // Genuinely parallel: each drain handle moves to its own OS thread.
    let counts: Vec<usize> = std::thread::scope(|s| {
        let handles: Vec<_> = drains
            .into_iter()
            .map(|mut d| s.spawn(move || d.receive_burst(usize::MAX, now).unwrap().len()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(counts, vec![1, 1, 1, 1]);
    assert_eq!(rx.stats().messages_received, 5);
    assert_eq!(rx.stats().injected_code_cache_misses, 1, "shared cache");
    assert_eq!(rx.stats().injected_code_cache_hits, 4);
    // The server-side effect happened for every message (shared address space).
    assert_eq!(rx.stats().executions, 5);
}

#[test]
fn receive_burst_quarantines_poisoned_slots() {
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    // Slot 0: a good frame. Slot 1: a raw put whose header declares a frame far
    // larger than the mailbox — invisible to the readiness scan, and without the
    // quarantine sweep it would occupy the slot forever.
    let t0 = rx.mailbox_target(0, 0).unwrap();
    tx.send_message(
        SimTime::ZERO,
        id,
        InvocationMode::Injected,
        &ssum_args(4),
        &payload(4),
        &t0,
    )
    .unwrap();
    let mut poison = Frame::local(1, 0, vec![0; 20], vec![0; 4]).encode();
    poison[8..12].copy_from_slice(&1_000_000u32.to_le_bytes());
    let t1 = rx.mailbox_target(0, 1).unwrap();
    tx.endpoint_mut()
        .put(SimTime::ZERO, &poison, &t1.region, t1.offset)
        .unwrap();

    let out = rx
        .receive_burst(0, usize::MAX, SimTime::from_us(100))
        .unwrap();
    assert_eq!(out.len(), 1, "the good frame is drained");
    assert_eq!(out.rejected.len(), 1, "the poisoned slot is quarantined");
    assert_eq!((out.rejected[0].0, out.rejected[0].1), (0, 1));
    assert!(matches!(out.rejected[0].2, AmError::BadFrame(_)));
    // The slot is reclaimed: nothing left to drain or quarantine, and a fresh
    // send into it works.
    assert!(rx
        .receive_burst(0, usize::MAX, out.drained_at)
        .unwrap()
        .is_empty());
    let send = tx
        .send_message(
            SimTime::ZERO,
            id,
            InvocationMode::Injected,
            &ssum_args(4),
            &payload(4),
            &t1,
        )
        .unwrap();
    let out = rx.receive_burst(0, usize::MAX, send.delivered()).unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out.frames[0].outcome.result, 10);
}

#[test]
fn shard_drain_rejects_foreign_banks() {
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default().with_shards(2));
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    // A frame sits in bank 1 (owned by shard 1).
    let target = rx.mailbox_target(1, 0).unwrap();
    let send = tx
        .send_message(
            SimTime::ZERO,
            id,
            InvocationMode::Injected,
            &ssum_args(4),
            &payload(4),
            &target,
        )
        .unwrap();
    let mut drains = rx.shard_drains();
    // Shard 0 must not be able to drain shard 1's bank (two threads could race
    // on the slot); shard 1 drains it fine.
    let err = drains[0]
        .receive(1, 0, Some(send.wire_bytes), send.delivered(), SimTime::ZERO)
        .unwrap_err();
    assert!(matches!(err, AmError::InvalidConfig(_)));
    let out = drains[1]
        .receive(1, 0, Some(send.wire_bytes), send.delivered(), SimTime::ZERO)
        .unwrap();
    assert_eq!(out.result, 10);
}

#[test]
fn shard_local_space_partitions_writable_state_per_shard() {
    let (mut rx, mut tx) = testbed(
        RuntimeConfig::paper_default()
            .with_shards(2)
            .with_shard_local_space(),
    );
    let id = rx.builtin_id(BuiltinJam::IndirectPut).unwrap();
    // The same key through two different banks (= two different shards): each
    // shard probes its own private table instance, so the returned addresses
    // live in disjoint per-shard ranges.
    let mut results = Vec::new();
    for bank in [0usize, 1] {
        let target = rx.mailbox_target(bank, 0).unwrap();
        let send = tx
            .send_message(
                SimTime::ZERO,
                id,
                InvocationMode::Injected,
                &indirect_put_args(42, 4, 4),
                &payload(4),
                &target,
            )
            .unwrap();
        let out = rx
            .receive(
                bank,
                0,
                Some(send.wire_bytes),
                send.delivered(),
                SimTime::ZERO,
            )
            .unwrap();
        results.push(out.result);
    }
    assert_ne!(
        results[0], results[1],
        "each shard claims a slot in its own table instance"
    );
    // Each shard's bump cursor moved; the canonical (exclusive) instance did not.
    for shard in 0..2 {
        let cursor = rx.read_shard_data(shard, "table.data", 0, 8).unwrap();
        assert_ne!(u64::from_le_bytes(cursor.try_into().unwrap()), 0);
    }
    let exclusive_cursor = rx.read_data("table.data", 0, 8).unwrap();
    assert_eq!(u64::from_le_bytes(exclusive_cursor.try_into().unwrap()), 0);
    // Re-putting the key through the same shard reuses that shard's slot.
    let target = rx.mailbox_target(0, 1).unwrap();
    let send = tx
        .send_message(
            SimTime::ZERO,
            id,
            InvocationMode::Injected,
            &indirect_put_args(42, 4, 4),
            &payload(4),
            &target,
        )
        .unwrap();
    let again = rx
        .receive(0, 1, Some(send.wire_bytes), send.delivered(), SimTime::ZERO)
        .unwrap();
    assert_eq!(again.result, results[0]);
}

#[test]
fn cross_shard_jam_falls_back_to_the_exclusive_space() {
    use twochains_linker::{JamDefinition, PackageBuilder, SymbolRef};
    // A jam that *declares* cross-shard writes: it appends to the process-wide
    // result array, so in shard-local mode it must run against the canonical
    // instance under the exclusive lock — from every shard.
    let mut asm = twochains_jamvm::Assembler::new();
    asm.load_imm(twochains_jamvm::Reg(0), 5)
        .call_extern(0, 1)
        .ret();
    let program = asm.finish().unwrap();
    let pkg = || {
        PackageBuilder::new("cross_pkg")
            .ried(crate::builtin::ried_array())
            .jam(
                JamDefinition::new("jam_cross_append", program.clone())
                    .with_got(vec![SymbolRef::func("array.append")])
                    .with_args_size(20)
                    .with_cross_shard_writes(),
            )
            .build()
            .unwrap()
    };
    let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut rx = TwoChainsHost::new(
        &fabric,
        b,
        RuntimeConfig::paper_default()
            .with_shards(2)
            .with_shard_local_space(),
    )
    .unwrap();
    rx.install_package(pkg()).unwrap();
    let mut tx = TwoChainsSender::new(fabric.endpoint(a, b).unwrap(), pkg());
    let id = rx.package().unwrap().id_of("jam_cross_append").unwrap();
    tx.set_remote_got(id, &rx.export_got(id).unwrap());
    for bank in [0usize, 1] {
        let target = rx.mailbox_target(bank, 0).unwrap();
        let send = tx
            .send_message(
                SimTime::ZERO,
                id,
                InvocationMode::Injected,
                &[0u8; 20],
                &[],
                &target,
            )
            .unwrap();
        rx.receive(
            bank,
            0,
            Some(send.wire_bytes),
            send.delivered(),
            SimTime::ZERO,
        )
        .unwrap();
    }
    // Both appends landed in the one canonical array, in order.
    let count = rx.read_data("array.base", 0, 8).unwrap();
    assert_eq!(u64::from_le_bytes(count.try_into().unwrap()), 2);
    // The per-shard instances stayed untouched.
    for shard in 0..2 {
        let local = rx.read_shard_data(shard, "array.base", 0, 8).unwrap();
        assert_eq!(u64::from_le_bytes(local.try_into().unwrap()), 0);
    }
}

#[test]
fn shard_local_rejects_writable_data_got_refs_without_declaration() {
    use twochains_linker::{JamDefinition, PackageBuilder, SymbolRef};
    // A GOT data slot on a writable export bakes in the canonical address,
    // which the lock-free shard-local path does not map: installing such a jam
    // without the cross-shard declaration must fail loudly at install time,
    // and succeed once declared (it then runs on the exclusive path).
    let mut asm = twochains_jamvm::Assembler::new();
    asm.ret();
    let program = asm.finish().unwrap();
    let pkg = |declared: bool| {
        let mut def = JamDefinition::new("jam_data_ref", program.clone())
            .with_got(vec![SymbolRef::data("table.data")]);
        if declared {
            def = def.with_cross_shard_writes();
        }
        PackageBuilder::new("data_ref_pkg")
            .ried(crate::builtin::ried_table())
            .jam(def)
            .build()
            .unwrap()
    };
    let (fabric, _, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut rx = TwoChainsHost::new(
        &fabric,
        b,
        RuntimeConfig::paper_default()
            .with_shards(2)
            .with_shard_local_space(),
    )
    .unwrap();
    let err = rx.install_package(pkg(false)).unwrap_err();
    assert!(
        matches!(&err, AmError::InvalidConfig(m) if m.contains("cross-shard")),
        "expected the install-time contract error, got {err:?}"
    );
    rx.install_package(pkg(true))
        .expect("declared cross-shard jam installs fine");
    // Exclusive mode never needed the declaration.
    let (fabric2, _, b2) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut rx2 = TwoChainsHost::new(&fabric2, b2, RuntimeConfig::paper_default()).unwrap();
    rx2.install_package(pkg(false)).unwrap();
}

#[test]
fn injected_writable_data_got_routes_to_the_exclusive_path() {
    // The runtime backstop behind the install-time contract check: an injected
    // frame for an element *outside* the installed package, carrying a GOT
    // data reference into a writable object's canonical range, must still
    // dispatch (on the exclusive path, where that address is mapped) instead
    // of faulting on the lock-free shard-local path.
    use twochains_jamvm::{encode_program, ExternRef};
    let (mut rx, mut tx) = testbed(
        RuntimeConfig::paper_default()
            .with_shards(2)
            .with_shard_local_space(),
    );
    // Recover the canonical address of the writable table heap by replaying
    // the deterministic namespace layout (same rieds, same load order, same
    // address cursor as the host's install).
    let mut ns = twochains_linker::LinkerNamespace::new();
    for ried in crate::builtin::benchmark_rieds() {
        ns.load_ried(&ried, true).unwrap();
    }
    let canonical = ns.data_addr("table.data").unwrap();

    let mut asm = twochains_jamvm::Assembler::new();
    asm.load_imm(twochains_jamvm::Reg(0), 0).ret();
    let code = encode_program(&asm.finish().unwrap());
    let got = GotImage::from_refs(vec![ExternRef::Data(canonical)]);
    let frame = Frame::injected(7, 999, got.to_bytes(), code, vec![0u8; 20], vec![]);
    let t = rx.mailbox_target(0, 0).unwrap();
    let send = tx.send(SimTime::ZERO, &frame, &t).unwrap();
    let out = rx
        .receive(
            0,
            0,
            Some(frame.wire_size()),
            send.delivered(),
            SimTime::ZERO,
        )
        .unwrap();
    assert_eq!(out.result, 0, "the frame dispatched and executed");
    assert!(out.exec.is_some());
}

#[test]
fn more_shards_than_cores_is_rejected() {
    let (fabric, _, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    // cluster2021 has 4 cores; 5 shards would alias two shards onto one
    // core's bus and invalidation inbox.
    let mut cfg = RuntimeConfig::paper_default().with_shards(5);
    cfg.banks = 5;
    let err = TwoChainsHost::new(&fabric, b, cfg).unwrap_err();
    assert!(matches!(&err, AmError::InvalidConfig(m) if m.contains("cores")));
}

#[test]
fn shard_local_and_exclusive_modes_agree_on_results() {
    // The space mode is a concurrency strategy, not a semantics change for a
    // single shard: the same send stream produces the same results and the
    // same modelled times in both modes.
    let run = |cfg: RuntimeConfig| {
        let (mut rx, mut tx) = testbed(cfg);
        let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
        let outs = pump_injected(&mut rx, &mut tx, id, 4);
        outs.iter()
            .map(|o| (o.result, o.handler_time))
            .collect::<Vec<_>>()
    };
    let exclusive = run(RuntimeConfig::paper_default());
    let shard_local = run(RuntimeConfig::paper_default().with_shard_local_space());
    assert_eq!(exclusive, shard_local);
}

#[test]
fn per_core_cache_stats_merge_into_the_global_view() {
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default().with_shards(2));
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    pump_injected_into(&mut rx, &mut tx, id, 0, 3);
    pump_injected_into(&mut rx, &mut tx, id, 1, 3);
    let s0 = rx.shard_cache_stats(0).unwrap();
    let s1 = rx.shard_cache_stats(1).unwrap();
    assert!(rx.shard_cache_stats(2).is_none());
    // Both shards executed warm messages on their own cores: each charged
    // private-cache traffic of its own.
    assert!(s0.l1_hits + s0.l2_hits > 0);
    assert!(s1.l1_hits + s1.l2_hits > 0);
    let global = rx.hierarchy_stats();
    assert_eq!(global.l1_hits, s0.l1_hits + s1.l1_hits);
    assert_eq!(global.l2_hits, s0.l2_hits + s1.l2_hits);
    // DMA delivered every frame: the invalidation contract reached both cores.
    assert!(s0.invalidations_applied > 0);
    assert!(s1.invalidations_applied > 0);
    rx.reset_stats();
    assert_eq!(rx.shard_cache_stats(0).unwrap(), Default::default());
}

#[test]
fn quarantine_and_rejection_counters_reach_the_merged_stats() {
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    // Slot 0: good. Slot 1: rejected at dispatch (garbage code). Slot 2: a
    // poisoned header quarantined by the scan.
    let t0 = rx.mailbox_target(0, 0).unwrap();
    tx.send_message(
        SimTime::ZERO,
        id,
        InvocationMode::Injected,
        &ssum_args(4),
        &payload(4),
        &t0,
    )
    .unwrap();
    let mut bad = tx
        .pack(id, InvocationMode::Injected, ssum_args(4), payload(4))
        .unwrap();
    for b in bad.code.iter_mut() {
        *b = 0xFF;
    }
    let t1 = rx.mailbox_target(0, 1).unwrap();
    tx.send(SimTime::ZERO, &bad, &t1).unwrap();
    let mut poison = Frame::local(1, 0, vec![0; 20], vec![0; 4]).encode();
    poison[8..12].copy_from_slice(&1_000_000u32.to_le_bytes());
    let t2 = rx.mailbox_target(0, 2).unwrap();
    tx.endpoint_mut()
        .put(SimTime::ZERO, &poison, &t2.region, t2.offset)
        .unwrap();

    let out = rx
        .receive_burst(0, usize::MAX, SimTime::from_us(100))
        .unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out.rejected.len(), 2);
    // The per-shard counters made it into the merged host view (they used to
    // be visible only in the per-burst outcome).
    assert_eq!(rx.stats().frames_rejected, 1);
    assert_eq!(rx.stats().poisoned_quarantined, 1);
    assert_eq!(rx.shard_stats(0).unwrap().poisoned_quarantined, 1);
}

#[test]
fn segmented_eviction_keeps_the_cache_bounded_and_counts_evictions() {
    let mut cfg = RuntimeConfig::paper_default();
    cfg.injection_cache_entries = 8;
    let (mut rx, mut tx) = testbed(cfg);
    let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
    let base = tx
        .pack(id, InvocationMode::Injected, ssum_args(4), payload(4))
        .unwrap();
    let target = rx.mailbox_target(0, 0).unwrap();
    // 12 distinct code bodies (trailing Nop padding changes the content hash but
    // not the behaviour) against a cache of 8: the old clear-on-full policy would
    // collapse the cache to ~1 entry at the cap; segmented LRU stays full and
    // evicts exactly the overflow.
    for i in 0..12u32 {
        let mut code = base.code.clone();
        let mut pad = vec![Instr::Nop; i as usize + 1];
        pad.push(Instr::Ret); // the verifier requires control flow to end at a Ret
        code.extend_from_slice(&encode_program(&pad));
        let frame = Frame::injected(
            1000 + i,
            id.0,
            base.got.clone(),
            code,
            ssum_args(4),
            payload(4),
        );
        let send = tx.send(SimTime::ZERO, &frame, &target).unwrap();
        let out = rx
            .receive(
                0,
                0,
                Some(frame.wire_size()),
                send.delivered(),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(out.result, 10);
    }
    assert_eq!(rx.stats().injected_code_cache_misses, 12);
    assert_eq!(
        rx.injected_cache_len(),
        8,
        "cache holds capacity instead of clearing on full"
    );
    assert_eq!(rx.stats().injected_code_cache_evictions, 4);
    // The GOT image was identical throughout: one parse, no GOT evictions.
    assert_eq!(rx.stats().got_cache_misses, 1);
    assert_eq!(rx.stats().got_cache_evictions, 0);
}

// --- Sender fleet -----------------------------------------------------------

/// Build a host plus a connected [`SenderFleet`](super::SenderFleet) with the
/// given shard/stream count over the standard two-host testbed.
fn fleet_testbed(shards: usize, window: usize) -> (TwoChainsHost, super::SenderFleet) {
    let cfg = RuntimeConfig::paper_default()
        .with_shards(shards)
        .with_sender_streams(shards);
    fleet_testbed_with(cfg, window)
}

fn fleet_testbed_with(
    mut cfg: RuntimeConfig,
    window: usize,
) -> (TwoChainsHost, super::SenderFleet) {
    cfg.frame_capacity = 4096;
    cfg.completion_window = window;
    let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut host = TwoChainsHost::new(&fabric, b, cfg).unwrap();
    host.install_package(benchmark_package().unwrap()).unwrap();
    let fleet =
        super::SenderFleet::connect(&fabric, a, &mut host, benchmark_package().unwrap()).unwrap();
    (host, fleet)
}

/// Fill every slot once and burst-drain every shard, returning the merged
/// receiver stats — the shared scaffold of the credit-flush tests below.
fn fill_and_drain_once(host: &mut TwoChainsHost, fleet: &mut super::SenderFleet) -> RuntimeStats {
    let horizons = fleet
        .fill_all(
            host.builtin_id(BuiltinJam::IndirectPut).unwrap(),
            InvocationMode::Injected,
            0,
            &fleet_payload,
        )
        .unwrap();
    for (shard, &start) in horizons.iter().enumerate() {
        let out = host.receive_burst(shard, usize::MAX, start).unwrap();
        assert!(out.rejected.is_empty());
    }
    host.stats()
}

#[test]
fn adaptive_credit_flushes_coalesce_tokens_into_row_spans() {
    let (mut host, mut fleet) = fleet_testbed(2, 64);
    let stats = fill_and_drain_once(&mut host, &mut fleet);
    let frames = host.config().total_mailboxes() as u64;
    // Token accounting: one credit and one wire byte per retired frame,
    // however the flushes batched them.
    assert_eq!(stats.credits_returned, frames);
    assert_eq!(stats.credit_put_bytes, frames);
    // The flush-shape counters tell the batching story: far fewer puts than
    // tokens, spans as wide as a whole bank row (each row fills during the
    // burst, and row-fill is an adaptive flush trigger).
    assert!(stats.credit_flushes > 0, "tokens must actually be posted");
    assert!(
        stats.credit_flushes < frames,
        "adaptive policy must batch tokens ({} flushes for {frames} credits)",
        stats.credit_flushes
    );
    assert!(
        stats.credit_flush_bytes >= frames,
        "spans cover every token"
    );
    let per_bank = host.config().mailboxes_per_bank as u64;
    assert_eq!(
        stats.credit_flush_max_span, per_bank,
        "a filled row flushes as one full-row span"
    );
    assert!(stats.credit_put_time > SimTime::ZERO, "posting is charged");
}

#[test]
fn per_frame_policy_reproduces_the_uncoalesced_wire_behaviour() {
    let cfg = RuntimeConfig::paper_default()
        .with_shards(2)
        .with_sender_streams(2)
        .with_per_frame_credits();
    let (mut host, mut fleet) = fleet_testbed_with(cfg, 64);
    let stats = fill_and_drain_once(&mut host, &mut fleet);
    let frames = host.config().total_mailboxes() as u64;
    // One flush of one 1-byte span per retired frame: the pre-coalescing
    // baseline, byte for byte.
    assert_eq!(stats.credits_returned, frames);
    assert_eq!(stats.credit_flushes, frames);
    assert_eq!(stats.credit_flush_bytes, frames);
    assert_eq!(stats.credit_flush_max_span, 1);
}

#[test]
fn lifetime_flush_totals_survive_stats_resets() {
    let (mut host, mut fleet) = fleet_testbed(2, 64);
    fill_and_drain_once(&mut host, &mut fleet);
    let before: Vec<_> = (0..2)
        .map(|s| host.credit_flush_lifetime(s).unwrap())
        .collect();
    for &(puts, bytes, max_span) in &before {
        assert!(puts > 0 && bytes > 0 && max_span > 0);
    }
    host.reset_stats();
    let zeroed = host.stats();
    assert_eq!(zeroed.credit_flushes, 0);
    assert_eq!(zeroed.credit_flush_bytes, 0);
    assert_eq!(zeroed.credit_flush_max_span, 0);
    // The engine's own totals are deliberately immune to the reset: zeroing
    // them mid-phase would desynchronise the token sequence bookkeeping.
    for (s, &b) in before.iter().enumerate() {
        assert_eq!(host.credit_flush_lifetime(s).unwrap(), b);
    }
}

/// The deterministic Indirect Put payload the fleet tests fill with.
fn fleet_payload(ctx: super::SlotCtx) -> (Vec<u8>, Vec<u8>) {
    let key = ctx
        .round
        .wrapping_mul(13)
        .wrapping_add((ctx.bank * 16 + ctx.slot) as u64)
        % 48;
    (indirect_put_args(key, 4, 4), payload(4))
}

#[test]
fn sender_handshake_partitions_banks_and_exports_gots() {
    let (host, _) = fleet_testbed(2, 64);
    let handshakes = host.sender_handshake(2).unwrap();
    assert_eq!(handshakes.len(), 2);
    let total: usize = handshakes.iter().map(|h| h.targets.len()).sum();
    assert_eq!(total, host.config().total_mailboxes());
    for hs in &handshakes {
        assert_eq!(hs.streams, 2);
        assert!(!hs.targets.is_empty());
        // Every target sits in a bank the stream owns, and the targets match
        // what mailbox_target() hands out slot for slot.
        for t in &hs.targets {
            assert_eq!(t.bank % 2, hs.stream);
            assert_eq!(host.mailbox_target(t.bank, t.slot).unwrap(), t.target);
        }
        // The handshake ships the receiver-resolved GOT image of every
        // installed element — identical to the one-at-a-time export_got path.
        assert_eq!(hs.gots.len(), 5, "every builtin jam exported");
        for (id, got) in &hs.gots {
            assert_eq!(host.export_got(*id).unwrap(), *got);
        }
    }
    // Degenerate stream counts are rejected with actionable errors.
    assert!(host.sender_handshake(0).is_err());
    assert!(host.sender_handshake(host.config().banks + 1).is_err());
}

#[test]
fn handshake_without_package_is_rejected() {
    let (fabric, _, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let host = TwoChainsHost::new(&fabric, b, RuntimeConfig::paper_default()).unwrap();
    assert!(matches!(
        host.sender_handshake(1),
        Err(AmError::InvalidConfig(_))
    ));
}

#[test]
fn fleet_fill_drains_to_the_same_results_as_a_single_sender() {
    // The fleet's sequential fill over 2 streams must be observationally
    // identical to one sender filling every slot with the same generator.
    let (mut fleet_host, mut fleet) = fleet_testbed(2, 64);
    let horizons = fleet
        .fill_all(
            fleet_host.builtin_id(BuiltinJam::IndirectPut).unwrap(),
            InvocationMode::Injected,
            0,
            &fleet_payload,
        )
        .unwrap();
    assert_eq!(horizons.len(), 2);
    let mut fleet_results = Vec::new();
    for (shard, &start) in horizons.iter().enumerate() {
        let out = fleet_host.receive_burst(shard, usize::MAX, start).unwrap();
        assert!(out.rejected.is_empty());
        fleet_results.extend(out.frames.iter().map(|f| f.outcome.result));
    }

    let mut cfg = RuntimeConfig::paper_default();
    cfg.frame_capacity = 4096;
    let (mut rx, mut tx) = testbed(cfg);
    let elem = rx.builtin_id(BuiltinJam::IndirectPut).unwrap();
    let mut single_results = Vec::new();
    for bank in 0..rx.config().banks {
        for slot in 0..rx.config().mailboxes_per_bank {
            let (args, usr) = fleet_payload(super::SlotCtx {
                stream: bank % 2,
                bank,
                slot,
                round: 0,
            });
            let target = rx.mailbox_target(bank, slot).unwrap();
            let sent = tx
                .send_message(
                    SimTime::ZERO,
                    elem,
                    InvocationMode::Injected,
                    &args,
                    &usr,
                    &target,
                )
                .unwrap();
            let out = rx
                .receive(
                    bank,
                    slot,
                    Some(sent.wire_bytes),
                    sent.delivered(),
                    SimTime::ZERO,
                )
                .unwrap();
            single_results.push(out.result);
        }
    }
    fleet_results.sort_unstable();
    single_results.sort_unstable();
    assert_eq!(fleet_results, single_results);

    // Per-lane counters and the merged fleet view line up: every lane sent its
    // own slots with its own template cache (one miss each).
    let merged = fleet.stats();
    assert_eq!(merged.messages_sent as usize, fleet_results.len());
    for stream in 0..2 {
        let lane = fleet.lane(stream).unwrap();
        assert_eq!(lane.stream_id(), stream);
        assert_eq!(lane.stats().messages_sent as usize, lane.slots());
        assert_eq!(lane.stats().template_misses, 1, "per-lane template cache");
    }
    assert_eq!(merged.template_misses, 2);
}

#[test]
fn fill_parallel_matches_sequential_fill_observationally() {
    let elem_of = |host: &TwoChainsHost| host.builtin_id(BuiltinJam::IndirectPut).unwrap();
    let (mut seq_host, mut seq_fleet) = fleet_testbed(2, 64);
    let (mut par_host, mut par_fleet) = fleet_testbed(2, 64);
    let seq_h = seq_fleet
        .fill_all(
            elem_of(&seq_host),
            InvocationMode::Injected,
            3,
            &fleet_payload,
        )
        .unwrap();
    let par_h = par_fleet
        .fill_parallel(
            elem_of(&par_host),
            InvocationMode::Injected,
            3,
            &fleet_payload,
        )
        .unwrap();
    assert_eq!(seq_h.len(), par_h.len());
    let drain = |host: &mut TwoChainsHost| {
        let mut results = Vec::new();
        for shard in 0..2 {
            let out = host
                .receive_burst(shard, usize::MAX, SimTime::ZERO)
                .unwrap();
            assert!(out.rejected.is_empty());
            results.extend(out.frames.iter().map(|f| f.outcome.result));
        }
        results.sort_unstable();
        results
    };
    assert_eq!(drain(&mut seq_host), drain(&mut par_host));
    // Sender counters agree too (the parallel schedule changes virtual
    // timing, never what was sent).
    let (a, b) = (seq_fleet.stats(), par_fleet.stats());
    assert_eq!(a.messages_sent, b.messages_sent);
    assert_eq!(a.bytes_sent, b.bytes_sent);
    assert_eq!(a.template_misses, b.template_misses);
}

#[test]
fn backpressure_pauses_only_the_saturated_stream() {
    // Window of 1: every send after a stream's first must harvest its own
    // completion queue. Drive lane 0 through three rounds while lane 1 sends
    // one round — lane 0 stalls repeatedly, lane 1 must never observe it.
    // Per-frame aggregation: the stall-per-send pattern is a property of
    // one tracked put per frame, which batching deliberately amortizes away.
    let cfg = RuntimeConfig::paper_default()
        .with_shards(2)
        .with_sender_streams(2)
        .with_per_frame_aggregation();
    let (host, mut fleet) = fleet_testbed_with(cfg, 1);
    let elem = host.builtin_id(BuiltinJam::IndirectPut).unwrap();
    let mut handles = fleet.handles();
    let (head, tail) = handles.split_at_mut(1);
    let lane0 = &mut head[0];
    let lane1 = &mut tail[0];
    for round in 0..3u64 {
        lane0
            .fill(elem, InvocationMode::Injected, round, &fleet_payload)
            .unwrap();
    }
    lane1
        .fill(elem, InvocationMode::Injected, 0, &fleet_payload)
        .unwrap();
    let slots0 = lane0.stats().messages_sent;
    assert_eq!(slots0 as usize, 3 * host.config().total_mailboxes() / 2);
    assert!(
        lane0.stats().sends_backpressured >= slots0 - 1,
        "window 1 stalls every follow-up send"
    );
    assert_eq!(
        lane1.stats().sends_backpressured,
        lane1.stats().messages_sent - 1,
        "lane 1 pays only for its own window, never lane 0's saturation"
    );
    assert!(lane0.stats().completions_harvested >= lane0.stats().sends_backpressured);
    drop(handles);
    assert_eq!(
        fleet.stats().sends_backpressured,
        slots0 - 1 + fleet.lane(1).unwrap().stats().messages_sent - 1
    );
}

#[test]
fn connect_installs_the_credit_path_only_for_the_closed_pairing() {
    let mut cfg = RuntimeConfig::paper_default()
        .with_shards(2)
        .with_sender_streams(2);
    cfg.frame_capacity = 4096;
    let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut host = TwoChainsHost::new(&fabric, b, cfg).unwrap();
    host.install_package(benchmark_package().unwrap()).unwrap();
    assert!(!host.credit_path_installed());
    // One stream over a two-shard host: no drain->lane credit route exists,
    // so the fleet connects without the credit path (phased schedules only).
    let single = super::SenderFleet::connect_streams(
        &fabric,
        a,
        &mut host,
        benchmark_package().unwrap(),
        1,
        64,
    )
    .unwrap();
    assert_eq!(single.lane_count(), 1);
    assert!(!host.credit_path_installed());
    drop(single);
    // The closed pairing wires it.
    let _fleet = super::SenderFleet::connect_streams(
        &fabric,
        a,
        &mut host,
        benchmark_package().unwrap(),
        2,
        64,
    )
    .unwrap();
    assert!(host.credit_path_installed());
}

#[test]
fn install_credit_returns_validates_geometry() {
    let mut cfg = RuntimeConfig::paper_default().with_shards(2);
    cfg.frame_capacity = 4096;
    let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut host = TwoChainsHost::new(&fabric, b, cfg).unwrap();
    host.install_package(benchmark_package().unwrap()).unwrap();
    let per_bank = host.config().mailboxes_per_bank;
    let region = fabric
        .host(a)
        .unwrap()
        .register(256, twochains_fabric::AccessFlags::rw())
        .unwrap();
    let hs = |stream: usize, streams: usize| super::CreditHandshake {
        stream,
        streams,
        per_bank,
        descriptor: region.descriptor(),
        nack: None,
    };
    // Wrong handshake count: the closed pairing needs one per shard.
    assert!(host
        .install_credit_returns(&fabric, vec![hs(0, 2)])
        .is_err());
    // Stream geometry that does not match the shard count.
    assert!(host
        .install_credit_returns(&fabric, vec![hs(0, 3), hs(1, 3)])
        .is_err());
    // Duplicate stream.
    assert!(host
        .install_credit_returns(&fabric, vec![hs(0, 2), hs(0, 2)])
        .is_err());
    // Mismatched mailbox geometry.
    let mut bad = hs(1, 2);
    bad.per_bank = per_bank + 1;
    assert!(host
        .install_credit_returns(&fabric, vec![hs(0, 2), bad])
        .is_err());
    // A region too small for the stream's bank rows.
    let tiny = fabric
        .host(a)
        .unwrap()
        .register(8, twochains_fabric::AccessFlags::rw())
        .unwrap();
    let mut small = hs(1, 2);
    small.descriptor = tiny.descriptor();
    assert!(host
        .install_credit_returns(&fabric, vec![hs(0, 2), small])
        .is_err());
    // Two streams over one region would clobber each other's token bytes.
    assert!(host
        .install_credit_returns(&fabric, vec![hs(0, 2), hs(1, 2)])
        .is_err());
    // A table the receiver cannot put into would only fail at drain time;
    // install must catch it up front.
    let ro = fabric
        .host(a)
        .unwrap()
        .register(256, twochains_fabric::AccessFlags::ro())
        .unwrap();
    let mut unwritable = hs(1, 2);
    unwritable.descriptor = ro.descriptor();
    assert!(host
        .install_credit_returns(&fabric, vec![hs(0, 2), unwritable])
        .is_err());
    // A well-formed pair — one disjoint writable region per stream — installs.
    let second = fabric
        .host(a)
        .unwrap()
        .register(256, twochains_fabric::AccessFlags::rw())
        .unwrap();
    let mut other = hs(1, 2);
    other.descriptor = second.descriptor();
    host.install_credit_returns(&fabric, vec![hs(0, 2), other])
        .unwrap();
    assert!(host.credit_path_installed());
}

#[test]
fn single_slot_receive_returns_the_credit_over_the_fabric() {
    let (mut host, mut fleet) = fleet_testbed(2, 64);
    let elem = host.builtin_id(BuiltinJam::IndirectPut).unwrap();
    let mut handles = fleet.handles();
    let sent = handles[0]
        .send_to(
            0,
            0,
            elem,
            InvocationMode::Injected,
            &indirect_put_args(3, 4, 4),
            &payload(4),
        )
        .unwrap();
    drop(handles);
    assert!(!fleet.lane(0).unwrap().credit_pending(0, 0).unwrap());
    host.receive(0, 0, Some(sent.wire_bytes), sent.delivered(), SimTime::ZERO)
        .unwrap();
    // The retire produced one one-byte credit put, charged in virtual time
    // and visible in the owning lane's sender-side table.
    let stats = host.stats();
    assert_eq!(stats.credits_returned, 1);
    assert_eq!(stats.credit_put_bytes, 1);
    assert!(stats.credit_put_time > SimTime::ZERO);
    assert!(fleet.lane(0).unwrap().credit_pending(0, 0).unwrap());
    assert!(!fleet.lane(1).unwrap().credit_pending(1, 0).unwrap());
}

#[test]
fn rejected_single_slot_receive_still_retires_and_credits() {
    // The single-frame case of the burst engine must retire a rejected frame
    // the same way the burst does: clear the slot, count it, return its
    // credit — otherwise a lane whose frame was rejected on the `receive`
    // path would spin forever on a token that never changes.
    let (mut host, mut fleet) = fleet_testbed(2, 64);
    let mut handles = fleet.handles();
    let sent = handles[0]
        .send_to(
            0,
            0,
            ElementId(9999),
            InvocationMode::Local,
            &[],
            &payload(4),
        )
        .unwrap();
    drop(handles);
    let err = host
        .receive(0, 0, Some(sent.wire_bytes), sent.delivered(), SimTime::ZERO)
        .unwrap_err();
    assert!(matches!(err, AmError::UnknownElement(9999)));
    let stats = host.stats();
    assert_eq!(stats.frames_rejected, 1);
    assert_eq!(stats.credits_returned, 1);
    assert!(fleet.lane(0).unwrap().credit_pending(0, 0).unwrap());
    // The slot polls empty again: the bank cannot wedge.
    assert!(host
        .banks()
        .mailbox(0, 0)
        .unwrap()
        .poll_variable()
        .unwrap()
        .is_none());
    // An empty poll, by contrast, retires nothing and credits nothing.
    assert!(matches!(
        host.receive(0, 1, None, SimTime::ZERO, SimTime::ZERO),
        Err(AmError::Empty)
    ));
    assert_eq!(host.stats().credits_returned, 1);
}

#[test]
fn drive_pipeline_rejects_a_fleet_whose_credit_tables_were_replaced() {
    // A second connect replaces the host's credit returns; driving the first
    // fleet would put every token into the second fleet's tables while the
    // first one's lanes spin forever — the identity check must refuse.
    let mut cfg = RuntimeConfig::paper_default()
        .with_shards(2)
        .with_sender_streams(2);
    cfg.frame_capacity = 4096;
    let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut host = TwoChainsHost::new(&fabric, b, cfg).unwrap();
    host.install_package(benchmark_package().unwrap()).unwrap();
    let mut stale =
        super::SenderFleet::connect(&fabric, a, &mut host, benchmark_package().unwrap()).unwrap();
    let mut fresh =
        super::SenderFleet::connect(&fabric, a, &mut host, benchmark_package().unwrap()).unwrap();
    let elem = host.builtin_id(BuiltinJam::IndirectPut).unwrap();
    let err = super::drive_pipeline(
        &mut host,
        &mut stale,
        elem,
        InvocationMode::Injected,
        1,
        &fleet_payload,
    )
    .unwrap_err();
    match err {
        AmError::InvalidConfig(msg) => assert!(msg.contains("another fleet"), "{msg}"),
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
    // The most recently connected fleet drives fine.
    let out = super::drive_pipeline(
        &mut host,
        &mut fresh,
        elem,
        InvocationMode::Injected,
        1,
        &fleet_payload,
    )
    .unwrap();
    assert_eq!(out.drained, host.config().total_mailboxes());
}

#[test]
fn drive_pipeline_requires_the_credit_path() {
    // Lanes match the shard count but the credit tables were never installed
    // (fleet connected against a different geometry): the pipeline must
    // refuse up front instead of spinning on tokens nobody will ever put.
    let mut cfg = RuntimeConfig::paper_default()
        .with_shards(1)
        .with_sender_streams(1);
    cfg.frame_capacity = 4096;
    let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut host = TwoChainsHost::new(&fabric, b, cfg.clone()).unwrap();
    host.install_package(benchmark_package().unwrap()).unwrap();
    let mut fleet =
        super::SenderFleet::connect(&fabric, a, &mut host, benchmark_package().unwrap()).unwrap();
    assert!(host.credit_path_installed());
    let mut fresh = TwoChainsHost::new(&fabric, b, cfg).unwrap();
    fresh.install_package(benchmark_package().unwrap()).unwrap();
    assert!(!fresh.credit_path_installed());
    let elem = fresh.builtin_id(BuiltinJam::IndirectPut).unwrap();
    let err = super::drive_pipeline(
        &mut fresh,
        &mut fleet,
        elem,
        InvocationMode::Injected,
        1,
        &fleet_payload,
    )
    .unwrap_err();
    match err {
        AmError::InvalidConfig(msg) => assert!(msg.contains("credit"), "{msg}"),
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}

#[test]
fn fleet_lanes_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<super::SenderLane>();
    assert_send::<super::FleetLane<'static>>();
    assert_send::<super::SenderFleet>();
    assert_send::<TwoChainsSender>();
}

#[test]
fn drive_pipeline_requires_one_lane_per_shard() {
    let mut cfg = RuntimeConfig::paper_default()
        .with_shards(2)
        .with_sender_streams(1);
    cfg.frame_capacity = 4096;
    let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut host = TwoChainsHost::new(&fabric, b, cfg).unwrap();
    host.install_package(benchmark_package().unwrap()).unwrap();
    let mut fleet =
        super::SenderFleet::connect(&fabric, a, &mut host, benchmark_package().unwrap()).unwrap();
    let elem = host.builtin_id(BuiltinJam::IndirectPut).unwrap();
    let err = super::drive_pipeline(
        &mut host,
        &mut fleet,
        elem,
        InvocationMode::Injected,
        1,
        &fleet_payload,
    )
    .unwrap_err();
    assert!(matches!(err, AmError::InvalidConfig(_)));
}

#[test]
fn builtin_id_reports_the_missing_name() {
    let (fabric, _, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let host = TwoChainsHost::new(&fabric, b, RuntimeConfig::paper_default()).unwrap();
    let err = host.builtin_id(BuiltinJam::IndirectPut).unwrap_err();
    match err {
        AmError::UnknownElementName(name) => {
            assert_eq!(name, BuiltinJam::IndirectPut.element_name())
        }
        other => panic!("expected UnknownElementName, got {other:?}"),
    }
    // Same contract on the sender side, through a package lacking the element.
    let (fabric2, a2, b2) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let tx = TwoChainsSender::new(
        fabric2.endpoint(a2, b2).unwrap(),
        twochains_linker::Package::default(),
    );
    assert!(matches!(
        tx.builtin_id(BuiltinJam::ServerSideSum),
        Err(AmError::UnknownElementName(_))
    ));
}

#[test]
fn send_message_tracked_applies_window_backpressure() {
    let (rx, mut tx) = testbed(RuntimeConfig::paper_default());
    let elem = rx.builtin_id(BuiltinJam::IndirectPut).unwrap();
    let target = rx.mailbox_target(0, 0).unwrap();
    let mut cq = twochains_fabric::CompletionQueue::new(2, SimTime::from_ns(5));
    let args = indirect_put_args(1, 4, 4);
    let first = tx
        .send_message_tracked(
            SimTime::ZERO,
            elem,
            InvocationMode::Injected,
            &args,
            &payload(4),
            &target,
            &mut cq,
        )
        .unwrap();
    tx.send_message_tracked(
        first.sender_free(),
        elem,
        InvocationMode::Injected,
        &args,
        &payload(4),
        &target,
        &mut cq,
    )
    .unwrap();
    assert_eq!(cq.outstanding(), 2);
    // Window full: the third tracked send is refused before any bytes move.
    let sent_before = tx.stats().messages_sent;
    let err = tx
        .send_message_tracked(
            SimTime::ZERO,
            elem,
            InvocationMode::Injected,
            &args,
            &payload(4),
            &target,
            &mut cq,
        )
        .unwrap_err();
    assert!(matches!(err, AmError::Fabric(_)), "{err}");
    assert_eq!(tx.stats().messages_sent, sent_before);
    // Harvesting reopens the window.
    cq.poll(SimTime::from_us(1_000));
    assert!(tx
        .send_message_tracked(
            SimTime::ZERO,
            elem,
            InvocationMode::Injected,
            &args,
            &payload(4),
            &target,
            &mut cq,
        )
        .is_ok());
}

#[test]
#[should_panic(expected = "sender lane thread panicked")]
fn drive_pipeline_propagates_a_payload_panic_instead_of_hanging() {
    // A panic in the payload generator unwinds a sender thread without ever
    // returning Err; the abort guard must still release the drain threads
    // (whose frame quota is now unreachable) so the panic propagates instead
    // of the scope blocking forever.
    let (mut host, mut fleet) = fleet_testbed(2, 64);
    let elem = host.builtin_id(BuiltinJam::IndirectPut).unwrap();
    let _ = super::drive_pipeline(
        &mut host,
        &mut fleet,
        elem,
        InvocationMode::Injected,
        2,
        &|ctx| {
            if ctx.stream == 1 && ctx.round == 1 {
                panic!("payload generator failure injection");
            }
            fleet_payload(ctx)
        },
    );
}

// ---------------------------------------------------------------------------
// Receiver-side function chains: the MessageSpec construction path, the chain
// executor's result threading, and the per-stage rejection semantics.
// ---------------------------------------------------------------------------

#[test]
fn chained_spec_threads_results_and_matches_sequential_sends() {
    use crate::builtin::graph_args;
    use twochains_jamvm::isa::hash64;

    let key = 0xC0FFEEu64;
    let v1 = hash64(key);
    let v2 = if v1.is_multiple_of(2) { v1 } else { 0 };

    // One frame carrying the whole lookup -> filter -> aggregate chain.
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
    let lookup = rx.builtin_id(BuiltinJam::GraphLookup).unwrap();
    let filter = rx.builtin_id(BuiltinJam::GraphFilter).unwrap();
    let agg = rx.builtin_id(BuiltinJam::GraphAggregate).unwrap();
    let target = rx.mailbox_target(0, 0).unwrap();
    let s = super::spec(lookup)
        .local()
        .args(graph_args(key))
        .then(filter)
        .then(agg);
    let sent = tx.send_spec(SimTime::ZERO, &s, &target).unwrap();
    let out = rx
        .receive(0, 0, Some(sent.wire_bytes), sent.delivered(), SimTime::ZERO)
        .unwrap();
    assert_eq!(out.result, v2, "chain result is the last stage's result");
    let st = rx.stats();
    assert_eq!(st.messages_received, 1);
    assert_eq!(st.executions, 3, "primary + two continuation stages");
    assert_eq!(st.chain_frames, 1);
    assert_eq!(st.chain_stages_executed, 2);

    // Three sequential messages, each carrying the previous result as ARGS —
    // must be result-equal and leave the identical accumulator state.
    let (mut rx2, mut tx2) = testbed(RuntimeConfig::paper_default());
    let target2 = rx2.mailbox_target(0, 0).unwrap();
    let mut carried = key;
    for elem in [lookup, filter, agg] {
        let s = super::spec(elem).local().args(graph_args(carried));
        let sent = tx2.send_spec(SimTime::ZERO, &s, &target2).unwrap();
        let out = rx2
            .receive(0, 0, Some(sent.wire_bytes), sent.delivered(), SimTime::ZERO)
            .unwrap();
        carried = out.result;
    }
    assert_eq!(carried, out.result, "sequential schedule is result-equal");
    let accum_chain = rx.read_data("graph.accum", 0, 16).unwrap();
    let accum_seq = rx2.read_data("graph.accum", 0, 16).unwrap();
    assert_eq!(accum_chain, accum_seq, "aggregate oracle states match");
    let st2 = rx2.stats();
    assert_eq!(st2.messages_received, 3, "three dispatches vs one");
    assert_eq!(st2.executions, 3);
    assert_eq!(st2.chain_frames, 0);
}

#[test]
fn zero_stage_chain_dispatches_like_an_unchained_send() {
    use crate::builtin::graph_args;
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
    let lookup = rx.builtin_id(BuiltinJam::GraphLookup).unwrap();
    let target = rx.mailbox_target(0, 0).unwrap();
    let s = super::spec(lookup).local().args(graph_args(3));
    assert!(!s.is_chained());
    let sent = tx.send_spec(SimTime::ZERO, &s, &target).unwrap();
    let out = rx
        .receive(0, 0, Some(sent.wire_bytes), sent.delivered(), SimTime::ZERO)
        .unwrap();
    assert_eq!(out.result, twochains_jamvm::isa::hash64(3));
    assert_eq!(rx.stats().chain_frames, 0);
    assert_eq!(rx.stats().chain_stages_executed, 0);
}

#[test]
fn failing_chain_stage_rejects_the_whole_frame_and_names_the_stage() {
    use crate::builtin::graph_args;
    let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
    let lookup = rx.builtin_id(BuiltinJam::GraphLookup).unwrap();
    let filter = rx.builtin_id(BuiltinJam::GraphFilter).unwrap();
    let target = rx.mailbox_target(0, 0).unwrap();
    // Stage 0 resolves, stage 1 names an element the receiver does not have.
    let s = super::spec(lookup)
        .local()
        .args(graph_args(9))
        .then(filter)
        .then(ElementId(0xDEAD));
    let sent = tx.send_spec(SimTime::ZERO, &s, &target).unwrap();
    let err = rx
        .receive(0, 0, Some(sent.wire_bytes), sent.delivered(), SimTime::ZERO)
        .unwrap_err();
    match err {
        AmError::ChainStageFailed { stage, reason } => {
            assert_eq!(stage, 1, "the second continuation stage broke the chain");
            assert!(
                reason.contains("57005"),
                "reason names the element: {reason}"
            );
        }
        other => panic!("expected ChainStageFailed, got {other:?}"),
    }
    // The frame retired as a whole: one rejection, the mailbox reusable.
    assert_eq!(rx.stats().frames_rejected, 1);
    assert_eq!(
        rx.stats().chain_frames,
        0,
        "a broken chain retires no frame"
    );
    let s_ok = super::spec(lookup).local().args(graph_args(9));
    let sent = tx.send_spec(SimTime::ZERO, &s_ok, &target).unwrap();
    assert!(rx
        .receive(0, 0, Some(sent.wire_bytes), sent.delivered(), SimTime::ZERO)
        .is_ok());
}

#[test]
fn send_spec_refuses_tracked_specs_and_overlong_chains() {
    let (rx, mut tx) = testbed(RuntimeConfig::paper_default());
    let lookup = rx.builtin_id(BuiltinJam::GraphLookup).unwrap();
    let target = rx.mailbox_target(0, 0).unwrap();
    let tracked = super::spec(lookup).local().tracked();
    assert!(matches!(
        tx.send_spec(SimTime::ZERO, &tracked, &target),
        Err(AmError::InvalidConfig(_))
    ));
    let mut overlong = super::spec(lookup).local();
    for _ in 0..crate::frame::CHAIN_MAX_STAGES + 1 {
        overlong = overlong.then(lookup);
    }
    assert!(matches!(
        tx.send_spec(SimTime::ZERO, &overlong, &target),
        Err(AmError::BadFrame(_))
    ));
}

#[test]
fn connect_fleet_lists_everything_missing_in_one_error() {
    // A host with streams != shards cannot export a session handshake; the
    // error names the mismatch (and the missing package) in one message.
    let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let cfg = RuntimeConfig::paper_default()
        .with_shards(2)
        .with_sender_streams(1);
    let mut host = TwoChainsHost::new(&fabric, b, cfg).unwrap();
    let err =
        super::SenderFleet::connect_fleet(&fabric, a, &mut host, benchmark_package().unwrap())
            .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("connect_fleet cannot wire the session"),
        "{msg}"
    );
    assert!(msg.contains("no package installed"), "{msg}");
    assert!(
        msg.contains("sender_streams (1) != num_shards (2)"),
        "{msg}"
    );

    // Fixing everything it listed makes the same call connect — fully wired.
    let cfg = RuntimeConfig::paper_default()
        .with_shards(2)
        .with_sender_streams(2);
    let mut host = TwoChainsHost::new(&fabric, b, cfg).unwrap();
    host.install_package(benchmark_package().unwrap()).unwrap();
    let fleet =
        super::SenderFleet::connect_fleet(&fabric, a, &mut host, benchmark_package().unwrap())
            .unwrap();
    assert_eq!(fleet.lane_count(), 2);
    assert!(
        host.credit_path_installed(),
        "connect_fleet always installs the credit path"
    );
}

#[test]
fn fleet_send_spec_delivers_chained_frames() {
    use crate::builtin::graph_args;
    use twochains_jamvm::isa::hash64;
    let (mut host, mut fleet) = fleet_testbed(2, 64);
    let lookup = host.builtin_id(BuiltinJam::GraphLookup).unwrap();
    let filter = host.builtin_id(BuiltinJam::GraphFilter).unwrap();
    let key = 11u64;
    let s = super::spec(lookup)
        .local()
        .args(graph_args(key))
        .then(filter);
    {
        let mut lanes = fleet.handles();
        // Bank 0 belongs to stream 0.
        lanes[0].send_spec(0, 0, &s).unwrap();
    }
    let out = host
        .receive(0, 0, None, SimTime::ZERO, SimTime::ZERO)
        .unwrap();
    let v1 = hash64(key);
    assert_eq!(out.result, if v1.is_multiple_of(2) { v1 } else { 0 });
    assert_eq!(host.stats().chain_frames, 1);
}
