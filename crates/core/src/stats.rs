//! Runtime counters.

use twochains_memsim::{CycleCounter, SimTime};

/// Counters accumulated by a Two-Chains host over its lifetime (or since the last
/// [`RuntimeStats::reset`]).
#[derive(Debug, Clone, Default)]
pub struct RuntimeStats {
    /// Active messages sent.
    pub messages_sent: u64,
    /// Bytes of frame data sent.
    pub bytes_sent: u64,
    /// Active messages received and dispatched.
    pub messages_received: u64,
    /// Jams executed (injected or local).
    pub executions: u64,
    /// Executions that used the Injected Function path.
    pub injected_executions: u64,
    /// Executions that used the Local Function path.
    pub local_executions: u64,
    /// Injected dispatches that found the frame's code in the decoded-program cache
    /// (no `decode_program`, no verify, no program clone).
    pub injected_code_cache_hits: u64,
    /// Injected dispatches that had to decode + verify the frame's code (first
    /// message for a given `(element, code-hash)` or after cache invalidation).
    pub injected_code_cache_misses: u64,
    /// Injected dispatches that found the message's GOT image already parsed (or,
    /// under the hardened policy, already re-resolved) in the GOT cache.
    pub got_cache_hits: u64,
    /// Injected dispatches that had to parse (or re-resolve) the GOT image.
    pub got_cache_misses: u64,
    /// Decoded-program cache entries evicted by the segmented-LRU policy (capacity
    /// pressure from an adversarial sender churning code content per message).
    pub injected_code_cache_evictions: u64,
    /// GOT cache entries (sender-image or locally re-resolved) evicted by the
    /// segmented-LRU policy.
    pub got_cache_evictions: u64,
    /// Sends that hit the sender's frame-template cache (pre-patched GOT + encoded
    /// code reused; no per-send GOT patch or code clone).
    pub template_hits: u64,
    /// Sends that built a frame template (first injected send of an element).
    pub template_misses: u64,
    /// Sends that found their stream's completion queue full and had to harvest
    /// completions before the put could be posted (per-stream back-pressure —
    /// counted by the sender lane that stalled, so a fleet-wide merge shows
    /// which fraction of the fleet's sends ran against the transmit window).
    pub sends_backpressured: u64,
    /// Completion-queue entries harvested by the sender side (each costs the
    /// per-entry software bookkeeping the completion model charges).
    pub completions_harvested: u64,
    /// Frames the dispatch engine rejected during a burst (malformed code,
    /// policy violation, ...); their slots were cleared so the bank cannot
    /// wedge.
    pub frames_rejected: u64,
    /// Poisoned slots quarantined by the burst scan (header magic present but
    /// an out-of-range declared length). Counted per shard and preserved by
    /// [`RuntimeStats::merge`], so the host-wide view shows how many one-put
    /// denial-of-service attempts the receiver absorbed.
    pub poisoned_quarantined: u64,
    /// Mailbox credits returned by the receiver with one-sided puts into the
    /// sender's credit table (§VI-A2) — one per retired frame (drained,
    /// dispatch-rejected or quarantined) once the credit path is installed.
    pub credits_returned: u64,
    /// Credit tokens carried by credit-return traffic — one per retired frame
    /// (drained, dispatch-rejected or quarantined) once the credit path is
    /// installed. Since the coalesced flush engine this counts *tokens*, not
    /// wire puts: the actual fabric traffic is `credit_flushes` puts moving
    /// `credit_flush_bytes` bytes (a flush span may include gap-fill bytes
    /// that idempotently rewrite unchanged tokens).
    pub credit_put_bytes: u64,
    /// Coalesced credit-return puts actually posted on the reverse fabric:
    /// one per dirty bank-row span flushed (row-fill, watermark, shard-idle
    /// or abort-time flush). Under the per-frame policy this equals
    /// `credits_returned`.
    pub credit_flushes: u64,
    /// Wire bytes the flush puts moved, gap-fill included — the truth about
    /// flow-control fabric traffic (`credit_put_bytes` counts tokens).
    pub credit_flush_bytes: u64,
    /// Largest single flush span in bytes. Merged with `max`, not `+`: the
    /// host-wide view answers "how big did one credit put ever get", and
    /// summing per-shard maxima would answer nothing.
    pub credit_flush_max_span: u64,
    /// Times a sender lane found no pending credit for any refillable slot and
    /// had to spin/park on its flag region (one count per stall episode, not
    /// per fruitless poll).
    pub credit_stall_events: u64,
    /// Extra slots a sender lane refilled on the same wakeup beyond the first
    /// — coalesced flushes deliver several tokens per put, and each wakeup
    /// consumes all of them instead of re-parking between slots.
    pub credit_refills_coalesced: u64,
    /// Frames re-put from the sender's wire cache after a NACK or a watchdog
    /// timeout (reliability layer; zero on a lossless fabric). Retransmits do
    /// not count as new messages — `messages_sent`/`bytes_sent` stay equal to
    /// the lossless run.
    pub frames_retransmitted: u64,
    /// Duplicate or stale frames the receiver silently retired instead of
    /// executing (idempotent replay suppression; zero on a lossless fabric).
    pub replays_suppressed: u64,
    /// NACK records the receiver posted into the sender's NACK table after
    /// detecting a sequence gap that outlived the scan-jumble horizon (zero on
    /// a lossless fabric).
    pub nacks_posted: u64,
    /// Chained frames dispatched: frames whose descriptor carried at least one
    /// continuation stage and whose chain ran to completion.
    pub chain_frames: u64,
    /// Continuation stages executed by the chain engine (the primary element
    /// counts in `executions` only; each completed continuation stage counts
    /// once here *and* once in `executions`/`local_executions`).
    pub chain_stages_executed: u64,
    /// Multi-frame batch containers posted on the forward data path — each is
    /// one NIC put covering `batched_frames / batch_puts` frames on average.
    /// Zero under [`AggregationPolicy::PerFrame`](crate::config::AggregationPolicy).
    pub batch_puts: u64,
    /// Frames that travelled inside batch containers (each also counts once in
    /// `messages_sent`, which stays the per-message truth under both policies).
    pub batched_frames: u64,
    /// Batch containers the receiver unbatched inside its burst scan — one
    /// mailbox readiness check and one parse prologue amortized over the
    /// container's inner frames.
    pub batches_received: u64,
    /// Inner frames retired out of received batch containers (each also counts
    /// once in `messages_received` and mints its own credit token).
    pub batch_frames_received: u64,
    /// Injected dispatches that found a valid resolved image (lowered IR) in
    /// the second-level injection cache and executed it directly — the warm
    /// path under [`ExecutionPolicy::Resolved`](crate::config::ExecutionPolicy).
    /// Every resolved hit also counts in `injected_code_cache_hits` (the
    /// resolved image subsumes the decoded program).
    pub resolved_cache_hits: u64,
    /// Injected dispatches under the resolved policy that had no valid resolved
    /// image (first message, GOT image changed, or cache invalidated) and paid
    /// the lowering before executing.
    pub resolved_cache_misses: u64,
    /// Fused superinstructions retired by the resolved executor (each retires
    /// two original instructions in one dispatch slot).
    pub superinstructions_executed: u64,
    /// Virtual CPU time the drain cores spent posting credit-return puts
    /// (the `sender_free` charge of each credit put; the wire/DMA side is
    /// charged inside the fabric model like any other put).
    pub credit_put_time: SimTime,
    /// Total virtual time the receiver spent waiting for signals.
    pub wait_time: SimTime,
    /// Total virtual time spent in handler execution.
    pub exec_time: SimTime,
    /// CPU-cycle accounting for the receiver core (the counter Figs. 13–14 read).
    pub cycles: CycleCounter,
}

impl RuntimeStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Zero everything.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Average bytes per sent message.
    pub fn avg_message_size(&self) -> f64 {
        if self.messages_sent == 0 {
            0.0
        } else {
            self.bytes_sent as f64 / self.messages_sent as f64
        }
    }

    /// Accumulate another counter set into this one. Used to aggregate per-shard
    /// receiver statistics into the host-wide view.
    pub fn merge(&mut self, other: &RuntimeStats) {
        // Exhaustive destructuring (no `..`): adding a field to RuntimeStats
        // without deciding how it aggregates must fail to compile, not silently
        // vanish from the host-wide view.
        let RuntimeStats {
            messages_sent,
            bytes_sent,
            messages_received,
            executions,
            injected_executions,
            local_executions,
            injected_code_cache_hits,
            injected_code_cache_misses,
            got_cache_hits,
            got_cache_misses,
            injected_code_cache_evictions,
            got_cache_evictions,
            template_hits,
            template_misses,
            sends_backpressured,
            completions_harvested,
            frames_rejected,
            poisoned_quarantined,
            credits_returned,
            credit_put_bytes,
            credit_flushes,
            credit_flush_bytes,
            credit_flush_max_span,
            credit_stall_events,
            credit_refills_coalesced,
            frames_retransmitted,
            replays_suppressed,
            nacks_posted,
            chain_frames,
            chain_stages_executed,
            batch_puts,
            batched_frames,
            batches_received,
            batch_frames_received,
            resolved_cache_hits,
            resolved_cache_misses,
            superinstructions_executed,
            credit_put_time,
            wait_time,
            exec_time,
            cycles,
        } = other;
        self.messages_sent += messages_sent;
        self.bytes_sent += bytes_sent;
        self.messages_received += messages_received;
        self.executions += executions;
        self.injected_executions += injected_executions;
        self.local_executions += local_executions;
        self.injected_code_cache_hits += injected_code_cache_hits;
        self.injected_code_cache_misses += injected_code_cache_misses;
        self.got_cache_hits += got_cache_hits;
        self.got_cache_misses += got_cache_misses;
        self.injected_code_cache_evictions += injected_code_cache_evictions;
        self.got_cache_evictions += got_cache_evictions;
        self.template_hits += template_hits;
        self.template_misses += template_misses;
        self.sends_backpressured += sends_backpressured;
        self.completions_harvested += completions_harvested;
        self.frames_rejected += frames_rejected;
        self.poisoned_quarantined += poisoned_quarantined;
        self.credits_returned += credits_returned;
        self.credit_put_bytes += credit_put_bytes;
        self.credit_flushes += credit_flushes;
        self.credit_flush_bytes += credit_flush_bytes;
        // Max, not sum: see the field docs — the aggregate answers "largest
        // single span any shard ever posted".
        self.credit_flush_max_span = self.credit_flush_max_span.max(*credit_flush_max_span);
        self.credit_stall_events += credit_stall_events;
        self.credit_refills_coalesced += credit_refills_coalesced;
        self.frames_retransmitted += frames_retransmitted;
        self.replays_suppressed += replays_suppressed;
        self.nacks_posted += nacks_posted;
        self.chain_frames += chain_frames;
        self.chain_stages_executed += chain_stages_executed;
        self.batch_puts += batch_puts;
        self.batched_frames += batched_frames;
        self.batches_received += batches_received;
        self.batch_frames_received += batch_frames_received;
        self.resolved_cache_hits += resolved_cache_hits;
        self.resolved_cache_misses += resolved_cache_misses;
        self.superinstructions_executed += superinstructions_executed;
        self.credit_put_time += *credit_put_time;
        self.wait_time += *wait_time;
        self.exec_time += *exec_time;
        self.cycles.merge(cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_and_reset() {
        let mut s = RuntimeStats::new();
        assert_eq!(s.avg_message_size(), 0.0);
        s.messages_sent = 4;
        s.bytes_sent = 400;
        assert_eq!(s.avg_message_size(), 100.0);
        s.cycles.add_wait(10);
        s.reset();
        assert_eq!(s.messages_sent, 0);
        assert_eq!(s.cycles.total(), 0);
    }

    /// A counter set with every field at a distinct nonzero value derived from
    /// `base`. Built as an exhaustive struct literal (no `..Default`), so a
    /// RuntimeStats field this test forgot to populate fails to compile.
    fn filled(base: u64) -> RuntimeStats {
        let mut cycles = CycleCounter::default();
        cycles.add_wait(base + 33);
        RuntimeStats {
            messages_sent: base + 1,
            bytes_sent: base + 2,
            messages_received: base + 3,
            executions: base + 4,
            injected_executions: base + 5,
            local_executions: base + 6,
            injected_code_cache_hits: base + 7,
            injected_code_cache_misses: base + 8,
            got_cache_hits: base + 9,
            got_cache_misses: base + 10,
            injected_code_cache_evictions: base + 11,
            got_cache_evictions: base + 12,
            template_hits: base + 13,
            template_misses: base + 14,
            sends_backpressured: base + 15,
            completions_harvested: base + 16,
            frames_rejected: base + 17,
            poisoned_quarantined: base + 18,
            credits_returned: base + 19,
            credit_put_bytes: base + 20,
            credit_flushes: base + 21,
            credit_flush_bytes: base + 22,
            credit_flush_max_span: base + 23,
            credit_stall_events: base + 24,
            credit_refills_coalesced: base + 25,
            frames_retransmitted: base + 26,
            replays_suppressed: base + 27,
            nacks_posted: base + 28,
            chain_frames: base + 29,
            chain_stages_executed: base + 30,
            batch_puts: base + 34,
            batched_frames: base + 35,
            batches_received: base + 36,
            batch_frames_received: base + 37,
            resolved_cache_hits: base + 38,
            resolved_cache_misses: base + 39,
            superinstructions_executed: base + 40,
            credit_put_time: SimTime::from_ns(base + 31),
            wait_time: SimTime::from_ns(base + 32),
            exec_time: SimTime::from_ns(base + 33),
            cycles,
        }
    }

    #[test]
    fn merge_sums_every_counter() {
        let mut a = filled(0);
        a.merge(&filled(100));
        // Exhaustive destructure of the merged view (no `..`): a field added
        // to RuntimeStats without an assertion here fails to compile, so a
        // counter can never silently vanish from the host-wide aggregate.
        let RuntimeStats {
            messages_sent,
            bytes_sent,
            messages_received,
            executions,
            injected_executions,
            local_executions,
            injected_code_cache_hits,
            injected_code_cache_misses,
            got_cache_hits,
            got_cache_misses,
            injected_code_cache_evictions,
            got_cache_evictions,
            template_hits,
            template_misses,
            sends_backpressured,
            completions_harvested,
            frames_rejected,
            poisoned_quarantined,
            credits_returned,
            credit_put_bytes,
            credit_flushes,
            credit_flush_bytes,
            credit_flush_max_span,
            credit_stall_events,
            credit_refills_coalesced,
            frames_retransmitted,
            replays_suppressed,
            nacks_posted,
            chain_frames,
            chain_stages_executed,
            batch_puts,
            batched_frames,
            batches_received,
            batch_frames_received,
            resolved_cache_hits,
            resolved_cache_misses,
            superinstructions_executed,
            credit_put_time,
            wait_time,
            exec_time,
            cycles,
        } = a;
        assert_eq!(messages_sent, 102);
        assert_eq!(bytes_sent, 104);
        assert_eq!(messages_received, 106);
        assert_eq!(executions, 108);
        assert_eq!(injected_executions, 110);
        assert_eq!(local_executions, 112);
        assert_eq!(injected_code_cache_hits, 114);
        assert_eq!(injected_code_cache_misses, 116);
        assert_eq!(got_cache_hits, 118);
        assert_eq!(got_cache_misses, 120);
        assert_eq!(injected_code_cache_evictions, 122);
        assert_eq!(got_cache_evictions, 124);
        assert_eq!(template_hits, 126);
        assert_eq!(template_misses, 128);
        assert_eq!(sends_backpressured, 130);
        assert_eq!(completions_harvested, 132);
        assert_eq!(frames_rejected, 134);
        assert_eq!(poisoned_quarantined, 136);
        assert_eq!(credits_returned, 138);
        assert_eq!(credit_put_bytes, 140);
        assert_eq!(credit_flushes, 142);
        assert_eq!(credit_flush_bytes, 144);
        // Max-merged, not summed: the largest span either side ever posted.
        assert_eq!(credit_flush_max_span, 123);
        assert_eq!(credit_stall_events, 148);
        assert_eq!(credit_refills_coalesced, 150);
        assert_eq!(frames_retransmitted, 152);
        assert_eq!(replays_suppressed, 154);
        assert_eq!(nacks_posted, 156);
        assert_eq!(chain_frames, 158);
        assert_eq!(chain_stages_executed, 160);
        assert_eq!(batch_puts, 168);
        assert_eq!(batched_frames, 170);
        assert_eq!(batches_received, 172);
        assert_eq!(batch_frames_received, 174);
        assert_eq!(resolved_cache_hits, 176);
        assert_eq!(resolved_cache_misses, 178);
        assert_eq!(superinstructions_executed, 180);
        assert_eq!(credit_put_time, SimTime::from_ns(162));
        assert_eq!(wait_time, SimTime::from_ns(164));
        assert_eq!(exec_time, SimTime::from_ns(166));
        assert_eq!(cycles.total(), 166);
    }
}
