//! Runtime counters.

use twochains_memsim::{CycleCounter, SimTime};

/// Counters accumulated by a Two-Chains host over its lifetime (or since the last
/// [`RuntimeStats::reset`]).
#[derive(Debug, Clone, Default)]
pub struct RuntimeStats {
    /// Active messages sent.
    pub messages_sent: u64,
    /// Bytes of frame data sent.
    pub bytes_sent: u64,
    /// Active messages received and dispatched.
    pub messages_received: u64,
    /// Jams executed (injected or local).
    pub executions: u64,
    /// Executions that used the Injected Function path.
    pub injected_executions: u64,
    /// Executions that used the Local Function path.
    pub local_executions: u64,
    /// Injected dispatches that found the frame's code in the decoded-program cache
    /// (no `decode_program`, no verify, no program clone).
    pub injected_code_cache_hits: u64,
    /// Injected dispatches that had to decode + verify the frame's code (first
    /// message for a given `(element, code-hash)` or after cache invalidation).
    pub injected_code_cache_misses: u64,
    /// Injected dispatches that found the message's GOT image already parsed (or,
    /// under the hardened policy, already re-resolved) in the GOT cache.
    pub got_cache_hits: u64,
    /// Injected dispatches that had to parse (or re-resolve) the GOT image.
    pub got_cache_misses: u64,
    /// Sends that hit the sender's frame-template cache (pre-patched GOT + encoded
    /// code reused; no per-send GOT patch or code clone).
    pub template_hits: u64,
    /// Sends that built a frame template (first injected send of an element).
    pub template_misses: u64,
    /// Total virtual time the receiver spent waiting for signals.
    pub wait_time: SimTime,
    /// Total virtual time spent in handler execution.
    pub exec_time: SimTime,
    /// CPU-cycle accounting for the receiver core (the counter Figs. 13–14 read).
    pub cycles: CycleCounter,
}

impl RuntimeStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Zero everything.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Average bytes per sent message.
    pub fn avg_message_size(&self) -> f64 {
        if self.messages_sent == 0 {
            0.0
        } else {
            self.bytes_sent as f64 / self.messages_sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_and_reset() {
        let mut s = RuntimeStats::new();
        assert_eq!(s.avg_message_size(), 0.0);
        s.messages_sent = 4;
        s.bytes_sent = 400;
        assert_eq!(s.avg_message_size(), 100.0);
        s.cycles.add_wait(10);
        s.reset();
        assert_eq!(s.messages_sent, 0);
        assert_eq!(s.cycles.total(), 0);
    }
}
