//! Runtime counters.

use twochains_memsim::{CycleCounter, SimTime};

/// Counters accumulated by a Two-Chains host over its lifetime (or since the last
/// [`RuntimeStats::reset`]).
#[derive(Debug, Clone, Default)]
pub struct RuntimeStats {
    /// Active messages sent.
    pub messages_sent: u64,
    /// Bytes of frame data sent.
    pub bytes_sent: u64,
    /// Active messages received and dispatched.
    pub messages_received: u64,
    /// Jams executed (injected or local).
    pub executions: u64,
    /// Executions that used the Injected Function path.
    pub injected_executions: u64,
    /// Executions that used the Local Function path.
    pub local_executions: u64,
    /// Injected dispatches that found the frame's code in the decoded-program cache
    /// (no `decode_program`, no verify, no program clone).
    pub injected_code_cache_hits: u64,
    /// Injected dispatches that had to decode + verify the frame's code (first
    /// message for a given `(element, code-hash)` or after cache invalidation).
    pub injected_code_cache_misses: u64,
    /// Injected dispatches that found the message's GOT image already parsed (or,
    /// under the hardened policy, already re-resolved) in the GOT cache.
    pub got_cache_hits: u64,
    /// Injected dispatches that had to parse (or re-resolve) the GOT image.
    pub got_cache_misses: u64,
    /// Decoded-program cache entries evicted by the segmented-LRU policy (capacity
    /// pressure from an adversarial sender churning code content per message).
    pub injected_code_cache_evictions: u64,
    /// GOT cache entries (sender-image or locally re-resolved) evicted by the
    /// segmented-LRU policy.
    pub got_cache_evictions: u64,
    /// Sends that hit the sender's frame-template cache (pre-patched GOT + encoded
    /// code reused; no per-send GOT patch or code clone).
    pub template_hits: u64,
    /// Sends that built a frame template (first injected send of an element).
    pub template_misses: u64,
    /// Sends that found their stream's completion queue full and had to harvest
    /// completions before the put could be posted (per-stream back-pressure —
    /// counted by the sender lane that stalled, so a fleet-wide merge shows
    /// which fraction of the fleet's sends ran against the transmit window).
    pub sends_backpressured: u64,
    /// Completion-queue entries harvested by the sender side (each costs the
    /// per-entry software bookkeeping the completion model charges).
    pub completions_harvested: u64,
    /// Frames the dispatch engine rejected during a burst (malformed code,
    /// policy violation, ...); their slots were cleared so the bank cannot
    /// wedge.
    pub frames_rejected: u64,
    /// Poisoned slots quarantined by the burst scan (header magic present but
    /// an out-of-range declared length). Counted per shard and preserved by
    /// [`RuntimeStats::merge`], so the host-wide view shows how many one-put
    /// denial-of-service attempts the receiver absorbed.
    pub poisoned_quarantined: u64,
    /// Mailbox credits returned by the receiver with one-sided puts into the
    /// sender's credit table (§VI-A2) — one per retired frame (drained,
    /// dispatch-rejected or quarantined) once the credit path is installed.
    pub credits_returned: u64,
    /// Payload bytes moved by credit-return puts (flow control measured as
    /// fabric traffic, not a host-side side channel).
    pub credit_put_bytes: u64,
    /// Times a sender lane found no pending credit for any refillable slot and
    /// had to spin/park on its flag region (one count per stall episode, not
    /// per fruitless poll).
    pub credit_stall_events: u64,
    /// Frames re-put from the sender's wire cache after a NACK or a watchdog
    /// timeout (reliability layer; zero on a lossless fabric). Retransmits do
    /// not count as new messages — `messages_sent`/`bytes_sent` stay equal to
    /// the lossless run.
    pub frames_retransmitted: u64,
    /// Duplicate or stale frames the receiver silently retired instead of
    /// executing (idempotent replay suppression; zero on a lossless fabric).
    pub replays_suppressed: u64,
    /// NACK records the receiver posted into the sender's NACK table after
    /// detecting a sequence gap that outlived the scan-jumble horizon (zero on
    /// a lossless fabric).
    pub nacks_posted: u64,
    /// Virtual CPU time the drain cores spent posting credit-return puts
    /// (the `sender_free` charge of each credit put; the wire/DMA side is
    /// charged inside the fabric model like any other put).
    pub credit_put_time: SimTime,
    /// Total virtual time the receiver spent waiting for signals.
    pub wait_time: SimTime,
    /// Total virtual time spent in handler execution.
    pub exec_time: SimTime,
    /// CPU-cycle accounting for the receiver core (the counter Figs. 13–14 read).
    pub cycles: CycleCounter,
}

impl RuntimeStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Zero everything.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Average bytes per sent message.
    pub fn avg_message_size(&self) -> f64 {
        if self.messages_sent == 0 {
            0.0
        } else {
            self.bytes_sent as f64 / self.messages_sent as f64
        }
    }

    /// Accumulate another counter set into this one. Used to aggregate per-shard
    /// receiver statistics into the host-wide view.
    pub fn merge(&mut self, other: &RuntimeStats) {
        // Exhaustive destructuring (no `..`): adding a field to RuntimeStats
        // without deciding how it aggregates must fail to compile, not silently
        // vanish from the host-wide view.
        let RuntimeStats {
            messages_sent,
            bytes_sent,
            messages_received,
            executions,
            injected_executions,
            local_executions,
            injected_code_cache_hits,
            injected_code_cache_misses,
            got_cache_hits,
            got_cache_misses,
            injected_code_cache_evictions,
            got_cache_evictions,
            template_hits,
            template_misses,
            sends_backpressured,
            completions_harvested,
            frames_rejected,
            poisoned_quarantined,
            credits_returned,
            credit_put_bytes,
            credit_stall_events,
            frames_retransmitted,
            replays_suppressed,
            nacks_posted,
            credit_put_time,
            wait_time,
            exec_time,
            cycles,
        } = other;
        self.messages_sent += messages_sent;
        self.bytes_sent += bytes_sent;
        self.messages_received += messages_received;
        self.executions += executions;
        self.injected_executions += injected_executions;
        self.local_executions += local_executions;
        self.injected_code_cache_hits += injected_code_cache_hits;
        self.injected_code_cache_misses += injected_code_cache_misses;
        self.got_cache_hits += got_cache_hits;
        self.got_cache_misses += got_cache_misses;
        self.injected_code_cache_evictions += injected_code_cache_evictions;
        self.got_cache_evictions += got_cache_evictions;
        self.template_hits += template_hits;
        self.template_misses += template_misses;
        self.sends_backpressured += sends_backpressured;
        self.completions_harvested += completions_harvested;
        self.frames_rejected += frames_rejected;
        self.poisoned_quarantined += poisoned_quarantined;
        self.credits_returned += credits_returned;
        self.credit_put_bytes += credit_put_bytes;
        self.credit_stall_events += credit_stall_events;
        self.frames_retransmitted += frames_retransmitted;
        self.replays_suppressed += replays_suppressed;
        self.nacks_posted += nacks_posted;
        self.credit_put_time += *credit_put_time;
        self.wait_time += *wait_time;
        self.exec_time += *exec_time;
        self.cycles.merge(cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_and_reset() {
        let mut s = RuntimeStats::new();
        assert_eq!(s.avg_message_size(), 0.0);
        s.messages_sent = 4;
        s.bytes_sent = 400;
        assert_eq!(s.avg_message_size(), 100.0);
        s.cycles.add_wait(10);
        s.reset();
        assert_eq!(s.messages_sent, 0);
        assert_eq!(s.cycles.total(), 0);
    }

    #[test]
    fn merge_sums_every_counter() {
        let mut a = RuntimeStats::new();
        a.messages_received = 3;
        a.injected_code_cache_hits = 2;
        a.injected_code_cache_evictions = 1;
        a.cycles.add_wait(5);
        a.poisoned_quarantined = 2;
        a.credits_returned = 2;
        a.credit_put_bytes = 2;
        a.credit_put_time = SimTime::from_ns(40);
        let mut b = RuntimeStats::new();
        b.messages_received = 4;
        b.got_cache_evictions = 7;
        b.sends_backpressured = 4;
        b.completions_harvested = 11;
        b.frames_rejected = 3;
        b.poisoned_quarantined = 5;
        b.credits_returned = 9;
        b.credit_put_bytes = 9;
        b.credit_stall_events = 6;
        b.frames_retransmitted = 8;
        b.replays_suppressed = 3;
        b.nacks_posted = 2;
        b.credit_put_time = SimTime::from_ns(5);
        b.cycles.add_work(9);
        a.merge(&b);
        assert_eq!(a.messages_received, 7);
        assert_eq!(a.injected_code_cache_hits, 2);
        assert_eq!(a.injected_code_cache_evictions, 1);
        assert_eq!(a.got_cache_evictions, 7);
        assert_eq!(a.sends_backpressured, 4);
        assert_eq!(a.completions_harvested, 11);
        // The quarantine and rejection counters survive the host-wide merge:
        // a per-shard count that merge() drops is invisible to operators.
        assert_eq!(a.frames_rejected, 3);
        assert_eq!(a.poisoned_quarantined, 7);
        // Same for the flow-control traffic counters: the whole point of the
        // one-sided credit path is that its cost is visible in the aggregate.
        assert_eq!(a.credits_returned, 11);
        assert_eq!(a.credit_put_bytes, 11);
        assert_eq!(a.credit_stall_events, 6);
        // The reliability-layer counters aggregate like any other: a dropped
        // fleet-wide retransmit count would hide exactly the incidents the
        // chaos tests exist to surface.
        assert_eq!(a.frames_retransmitted, 8);
        assert_eq!(a.replays_suppressed, 3);
        assert_eq!(a.nacks_posted, 2);
        assert_eq!(a.credit_put_time, SimTime::from_ns(45));
        assert_eq!(a.cycles.total(), 14);
    }
}
