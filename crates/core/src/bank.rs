//! Mailbox banks and sender-side flow control (§VI-A2).
//!
//! For the injection-rate benchmark the receiver exposes M banks of N mailboxes. The
//! sender keeps one credit flag per bank in its own registered memory: it may send up
//! to N messages into a bank, after which it must wait for the receiver to set that
//! bank's flag (with a one-sided put back to the sender) before reusing the bank.
//! This keeps flow control entirely outside the hot reactive-mailbox path, unlike the
//! UCX baseline whose per-message flow control Figs. 5–6 measure.

use std::sync::Arc;

use twochains_fabric::{MemoryRegion, RegionDescriptor};

use crate::error::{AmError, AmResult};
use crate::mailbox::ReactiveMailbox;

/// Which banks a receiver shard owns: bank `b` belongs to shard `shard` iff
/// `b % num_shards == shard`. This is the single definition of the deterministic
/// ownership map — the runtime's `receive`/`receive_burst`, the bank iteration
/// helper and the bench drain driver all route through it, so no two shards ever
/// poll (let alone drain) the same mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMask {
    /// The shard index (`< num_shards`).
    pub shard: usize,
    /// Total number of shards.
    pub num_shards: usize,
}

impl ShardMask {
    /// The mask selecting the banks shard `shard` of `num_shards` owns.
    pub fn new(shard: usize, num_shards: usize) -> Self {
        ShardMask {
            shard,
            num_shards: num_shards.max(1),
        }
    }

    /// The mask selecting every bank (the single-shard view).
    pub fn all() -> Self {
        Self::new(0, 1)
    }

    /// The shard that owns `bank` under a `num_shards`-way split — the one
    /// formula every core-side ownership check delegates to. (The fabric crate's
    /// `ShardedCompletions::route` mirrors it independently, since fabric sits
    /// below this crate; change both together or sender completion routing
    /// diverges from receiver ownership.)
    pub fn owner_of(bank: usize, num_shards: usize) -> usize {
        bank % num_shards.max(1)
    }

    /// Whether this mask owns `bank`.
    pub fn owns(&self, bank: usize) -> bool {
        Self::owner_of(bank, self.num_shards) == self.shard % self.num_shards
    }
}

/// The receiver-side bank structure: `banks × per_bank` mailboxes carved out of one
/// registered region.
#[derive(Debug, Clone)]
pub struct MailboxBank {
    mailboxes: Vec<ReactiveMailbox>,
    banks: usize,
    per_bank: usize,
}

impl MailboxBank {
    /// Carve `banks × per_bank` mailboxes of `capacity` bytes each out of `region`.
    pub fn new(
        region: Arc<MemoryRegion>,
        banks: usize,
        per_bank: usize,
        capacity: usize,
    ) -> AmResult<Self> {
        if banks == 0 || per_bank == 0 {
            return Err(AmError::InvalidConfig(
                "need at least one bank and one mailbox".into(),
            ));
        }
        // checked_mul: adversarial geometry must error instead of wrapping in release.
        let needed = banks
            .checked_mul(per_bank)
            .and_then(|n| n.checked_mul(capacity))
            .ok_or_else(|| {
                AmError::InvalidConfig(format!(
                    "bank geometry overflows: {banks} banks x {per_bank} mailboxes x {capacity} B"
                ))
            })?;
        if needed > region.len() {
            return Err(AmError::InvalidConfig(format!(
                "bank needs {needed} bytes but region has {}",
                region.len()
            )));
        }
        let mut mailboxes = Vec::with_capacity(banks * per_bank);
        for i in 0..banks * per_bank {
            mailboxes.push(ReactiveMailbox::new(
                Arc::clone(&region),
                i * capacity,
                capacity,
            )?);
        }
        Ok(MailboxBank {
            mailboxes,
            banks,
            per_bank,
        })
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Mailboxes per bank.
    pub fn per_bank(&self) -> usize {
        self.per_bank
    }

    /// Total number of mailboxes.
    pub fn total(&self) -> usize {
        self.mailboxes.len()
    }

    /// The mailbox at (`bank`, `slot`).
    pub fn mailbox(&self, bank: usize, slot: usize) -> AmResult<&ReactiveMailbox> {
        if bank >= self.banks || slot >= self.per_bank {
            return Err(AmError::InvalidConfig(format!(
                "no mailbox ({bank}, {slot})"
            )));
        }
        Ok(&self.mailboxes[bank * self.per_bank + slot])
    }

    /// Iterate over every mailbox with its (bank, slot) coordinates.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &ReactiveMailbox)> {
        self.mailboxes
            .iter()
            .enumerate()
            .map(move |(i, m)| (i / self.per_bank, i % self.per_bank, m))
    }

    /// One *non-mutating* scan over the banks `mask` owns, yielding every slot
    /// holding a complete frame as `(bank, slot, frame_len)` — the read-only
    /// readiness view used by monitoring and the bench driver's sanity checks.
    ///
    /// Readiness (and the frame length) comes from the variable-frame two-step
    /// protocol ([`ReactiveMailbox::poll_variable`]): the header magic is checked,
    /// the length read, and the signal byte confirmed. Slots that are empty, still
    /// being written, or whose header declares an out-of-range length are skipped
    /// and left untouched. The drain path itself uses
    /// [`MailboxBank::scan_burst`], which applies the same readiness test but
    /// additionally quarantines the malformed slots it walks past; keep the two
    /// in lockstep if the readiness protocol ever changes.
    pub fn iter_ready(&self, mask: ShardMask) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        self.iter().filter_map(move |(bank, slot, mailbox)| {
            if !mask.owns(bank) {
                return None;
            }
            match mailbox.poll_variable() {
                Ok(Some(frame_len)) => Some((bank, slot, frame_len)),
                Ok(None) | Err(_) => None,
            }
        })
    }

    /// The burst scan: one poll pass over the banks `mask` owns, partitioning the
    /// slots into up to `max_frames` *ready* frames (`(bank, slot, frame_len)`)
    /// and quarantined *poisoned* slots — slots whose header magic is set but
    /// whose declared length is out of range ([`ReactiveMailbox::poll_variable`]
    /// errors). A poisoned slot is invisible to [`MailboxBank::iter_ready`], so
    /// without quarantining it here a burst-only receiver would never reclaim it —
    /// a one-put denial of service per slot; its header magic is cleared (making
    /// the slot reusable) and it is reported as `(bank, slot, error)`. Each owned
    /// slot is polled exactly once per scan.
    #[allow(clippy::type_complexity)]
    pub fn scan_burst(
        &self,
        mask: ShardMask,
        max_frames: usize,
    ) -> (Vec<(usize, usize, usize)>, Vec<(usize, usize, AmError)>) {
        let mut ready = Vec::new();
        let mut poisoned = Vec::new();
        for (bank, slot, mailbox) in self.iter() {
            if !mask.owns(bank) {
                continue;
            }
            match mailbox.poll_variable() {
                Ok(Some(frame_len)) => {
                    if ready.len() < max_frames {
                        ready.push((bank, slot, frame_len));
                    }
                }
                Ok(None) => {}
                Err(err) => {
                    // Clearing a header-sized frame zeroes exactly the header
                    // magic byte, the gate every readiness poll checks first.
                    let _ = mailbox.clear(crate::frame::FRAME_HEADER_SIZE);
                    poisoned.push((bank, slot, err));
                }
            }
        }
        (ready, poisoned)
    }

    /// Quarantine every poisoned slot in the banks `mask` owns (the poisoned half
    /// of [`MailboxBank::scan_burst`]).
    pub fn drain_poisoned(&self, mask: ShardMask) -> Vec<(usize, usize, AmError)> {
        self.scan_burst(mask, 0).1
    }
}

/// Sender-side credit table (§VI-A2): flow control carried as real fabric
/// traffic into the sender's own registered memory.
///
/// The table holds one *row per owned bank*, each row a word-aligned run of
/// `per_bank` one-byte credit **tokens** — one per slot. The receiver returns
/// credits by writing next tokens with one-sided puts aimed at this region —
/// coalesced into one put per dirty row span, ending on a freshly minted
/// token (they contend for the NIC and are charged in virtual time like any
/// other put); the sending lane observes each slot with an acquire load of
/// its own byte and never blocks on a host-side channel. The contiguous,
/// word-aligned row is what makes the span flush a single transfer: slots
/// `first..=last` of a row are the byte range
/// `offset_of(row, first) .. offset_of(row, last) + 1`.
///
/// # Word layout
///
/// Rows are padded to 8-byte words so every bank's tokens occupy whole words
/// ([`BankFlags::row_stride`]); the token of (`row`, `slot`) lives at byte
/// `row * row_stride(per_bank) + slot`. A fleet lane owning banks
/// `{s, s+S, s+2S, ...}` maps bank `b` to row `b / S`.
///
/// # Token protocol
///
/// The k-th drain of a slot (k counted from 0 on the receiver) writes token
/// `(k % 255) + 1`. Adjacent tokens always differ and `0` is never written, so
/// *"token differs from the last one I consumed"* means exactly *"a credit
/// arrived since I last consumed one"*. The sender never writes the region —
/// the protocol is single-writer per byte, so a credit put can neither tear
/// nor race, and a span put that rewrites an interior slot's *unchanged*
/// token byte-identically cannot mint a credit (tokens are value-compared,
/// not edge-detected). The put's release publication pairs with the sender's acquire
/// load: a sender that observes the token also observes everything the
/// receiver did before issuing the credit (in particular the slot's mailbox
/// clear), which is the ordering the refill relies on.
#[derive(Debug, Clone)]
pub struct BankFlags {
    region: Arc<MemoryRegion>,
    banks: usize,
    per_bank: usize,
    /// Token last consumed per (row, slot); a credit is pending iff the
    /// region's current token differs.
    last_seen: Vec<u8>,
}

impl BankFlags {
    /// Bytes one bank's token row occupies (slot tokens padded up to whole
    /// 8-byte words).
    pub fn row_stride(per_bank: usize) -> usize {
        per_bank.div_ceil(8) * 8
    }

    /// Bytes a whole table of `banks` rows occupies.
    pub fn table_len(banks: usize, per_bank: usize) -> usize {
        banks * Self::row_stride(per_bank)
    }

    /// The token the k-th drain of a slot writes (`drains` counted from 0).
    /// Never 0 (the fresh-region value), and adjacent drains always differ.
    pub fn token_for(drains: u64) -> u8 {
        (drains % 255) as u8 + 1
    }

    /// Byte offset of (`row`, `slot`) in a table of `per_bank`-slot rows — the
    /// single layout definition shared by the sender-side reader
    /// ([`BankFlags::slot_offset`]) and the receiver-side credit put, so the
    /// two ends of the wire can never disagree about where a token lives.
    pub fn offset_of(row: usize, slot: usize, per_bank: usize) -> usize {
        row * Self::row_stride(per_bank) + slot
    }

    /// Create a credit table of `banks` rows × `per_bank` slot tokens over
    /// `region` (registered in the *sender's* address space). A zero-credit
    /// window cannot flow-control anything — it silently deadlocks a lane — so
    /// degenerate geometry is rejected at construction.
    pub fn new(region: Arc<MemoryRegion>, banks: usize, per_bank: usize) -> AmResult<Self> {
        if banks == 0 || per_bank == 0 {
            return Err(AmError::InvalidConfig(format!(
                "credit table needs at least one bank and one slot per bank \
                 ({banks} banks x {per_bank} slots is a zero-credit window)"
            )));
        }
        let needed = banks
            .checked_mul(Self::row_stride(per_bank))
            .ok_or_else(|| {
                AmError::InvalidConfig(format!(
                    "credit table geometry overflows: {banks} banks x {per_bank} slots"
                ))
            })?;
        if region.len() < needed {
            return Err(AmError::InvalidConfig(format!(
                "credit table needs {needed} bytes but region has {}",
                region.len()
            )));
        }
        let mut flags = BankFlags {
            region,
            banks,
            per_bank,
            last_seen: vec![0; banks * per_bank],
        };
        // Adopt whatever tokens are already present (all zero for a fresh
        // region) so construction never reports phantom credits.
        flags.sync()?;
        Ok(flags)
    }

    /// Descriptor the receiver aims its credit puts at.
    pub fn descriptor(&self) -> RegionDescriptor {
        self.region.descriptor()
    }

    /// Number of bank rows.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Slot tokens per bank row.
    pub fn per_bank(&self) -> usize {
        self.per_bank
    }

    /// Byte offset of (`row`, `slot`)'s token within the region — the target
    /// of the receiver's credit put.
    pub fn slot_offset(&self, row: usize, slot: usize) -> AmResult<usize> {
        if row >= self.banks || slot >= self.per_bank {
            return Err(AmError::InvalidConfig(format!(
                "no credit slot ({row}, {slot}) in a {}x{} table",
                self.banks, self.per_bank
            )));
        }
        Ok(Self::offset_of(row, slot, self.per_bank))
    }

    /// Simulated virtual address of (`row`, `slot`)'s token byte (what a
    /// sender core's poll of the table reads, for cache-cost charging).
    pub fn slot_addr(&self, row: usize, slot: usize) -> AmResult<u64> {
        Ok(self.region.addr_of(self.slot_offset(row, slot)?))
    }

    /// Whether a credit is pending for (`row`, `slot`) without consuming it.
    pub fn credit_pending(&self, row: usize, slot: usize) -> AmResult<bool> {
        let offset = self.slot_offset(row, slot)?;
        Ok(self.region.load_acquire_u8(offset)? != self.last_seen[row * self.per_bank + slot])
    }

    /// Consume one pending credit for (`row`, `slot`): an acquire load of the
    /// token byte, compared against the last token consumed. Returns whether a
    /// credit was there (and is now spent).
    pub fn try_acquire(&mut self, row: usize, slot: usize) -> AmResult<bool> {
        let offset = self.slot_offset(row, slot)?;
        let token = self.region.load_acquire_u8(offset)?;
        let seen = &mut self.last_seen[row * self.per_bank + slot];
        if token == *seen {
            return Ok(false);
        }
        *seen = token;
        Ok(true)
    }

    /// Snapshot every slot's current token as "already consumed", discarding
    /// stale credits. A pipeline run starts with this so credits earned by an
    /// earlier phased schedule (which never consumes any) cannot leak in as
    /// phantom refill permissions.
    pub fn sync(&mut self) -> AmResult<()> {
        for row in 0..self.banks {
            for slot in 0..self.per_bank {
                let offset = self.slot_offset(row, slot)?;
                self.last_seen[row * self.per_bank + slot] = self.region.load_acquire_u8(offset)?;
            }
        }
        Ok(())
    }
}

/// Sender-side NACK table: sequence-gap reports carried as real fabric traffic,
/// the same one-sided pattern as [`BankFlags`] (§VI-A2) applied to reliability.
///
/// The table holds one 8-byte row per bank row the receiving shard owns:
/// a `u32` missing sequence number (little endian) at bytes `[0, 4)`, a one-byte
/// token at byte 4, and 3 bytes of padding. The receiver reports a gap with a
/// single 5-byte put covering sn + token; the put publishes its *last* byte —
/// the token — with release ordering, so a sender that observes a token change
/// with an acquire load is guaranteed to read the matching sequence number.
/// Tokens follow the [`BankFlags::token_for`] protocol (never 0, adjacent
/// reports differ), and the region is single-writer per row, so a NACK can
/// neither tear nor race.
///
/// A row holds one report at a time: a second NACK posted before the sender
/// polled the first overwrites it. That is deliberate — NACKs are an
/// acceleration, the sender's timeout watchdog is the backstop that guarantees
/// progress — and it keeps the table a fixed 8 bytes per bank row.
#[derive(Debug, Clone)]
pub struct NackFlags {
    region: Arc<MemoryRegion>,
    rows: usize,
    /// Token last consumed per row; a report is pending iff the region's
    /// current token differs.
    last_seen: Vec<u8>,
}

impl NackFlags {
    /// Bytes one row occupies: u32 sn + token byte, padded to a word.
    pub const ROW_STRIDE: usize = 8;

    /// Bytes a whole table of `rows` rows occupies.
    pub fn table_len(rows: usize) -> usize {
        rows * Self::ROW_STRIDE
    }

    /// Byte offset of `row`'s record — shared by the sender-side reader and
    /// the receiver-side NACK put.
    pub fn row_offset(row: usize) -> usize {
        row * Self::ROW_STRIDE
    }

    /// The 5-byte wire record of one NACK: missing sn, then the token whose
    /// release publication makes the sn visible.
    pub fn record_for(missing_sn: u32, token: u8) -> [u8; 5] {
        let sn = missing_sn.to_le_bytes();
        [sn[0], sn[1], sn[2], sn[3], token]
    }

    /// Create a NACK table of `rows` rows over `region` (registered in the
    /// *sender's* address space).
    pub fn new(region: Arc<MemoryRegion>, rows: usize) -> AmResult<Self> {
        if rows == 0 {
            return Err(AmError::InvalidConfig(
                "NACK table needs at least one row".into(),
            ));
        }
        if region.len() < Self::table_len(rows) {
            return Err(AmError::InvalidConfig(format!(
                "NACK table needs {} bytes but region has {}",
                Self::table_len(rows),
                region.len()
            )));
        }
        let mut flags = NackFlags {
            region,
            rows,
            last_seen: vec![0; rows],
        };
        flags.sync()?;
        Ok(flags)
    }

    /// Descriptor the receiver aims its NACK puts at.
    pub fn descriptor(&self) -> RegionDescriptor {
        self.region.descriptor()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Simulated virtual address of `row`'s token byte (for cache-cost
    /// charging of the sender's poll).
    pub fn row_addr(&self, row: usize) -> AmResult<u64> {
        if row >= self.rows {
            return Err(AmError::InvalidConfig(format!(
                "no NACK row {row} in a {}-row table",
                self.rows
            )));
        }
        Ok(self.region.addr_of(Self::row_offset(row) + 4))
    }

    /// Poll `row` for a new report: an acquire load of the token byte; if it
    /// changed since the last consumed report, the row's missing sn is
    /// returned (and the report is spent).
    pub fn poll(&mut self, row: usize) -> AmResult<Option<u32>> {
        if row >= self.rows {
            return Err(AmError::InvalidConfig(format!(
                "no NACK row {row} in a {}-row table",
                self.rows
            )));
        }
        let offset = Self::row_offset(row);
        let token = self.region.load_acquire_u8(offset + 4)?;
        if token == self.last_seen[row] {
            return Ok(None);
        }
        self.last_seen[row] = token;
        Ok(Some(self.region.load_u32(offset)?))
    }

    /// Snapshot every row's current token as "already consumed", discarding
    /// stale reports (mirrors [`BankFlags::sync`]).
    pub fn sync(&mut self) -> AmResult<()> {
        for row in 0..self.rows {
            self.last_seen[row] = self.region.load_acquire_u8(Self::row_offset(row) + 4)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twochains_fabric::AccessFlags;

    fn region(len: usize) -> Arc<MemoryRegion> {
        MemoryRegion::new(0, 0x3000_0000, len, AccessFlags::rw(), 4).unwrap()
    }

    #[test]
    fn bank_layout() {
        let b = MailboxBank::new(region(4 * 2 * 2048), 4, 2, 2048).unwrap();
        assert_eq!(b.banks(), 4);
        assert_eq!(b.per_bank(), 2);
        assert_eq!(b.total(), 8);
        let m00 = b.mailbox(0, 0).unwrap().base_addr();
        let m01 = b.mailbox(0, 1).unwrap().base_addr();
        let m10 = b.mailbox(1, 0).unwrap().base_addr();
        assert_eq!(m01 - m00, 2048);
        assert_eq!(m10 - m00, 2 * 2048);
        assert!(b.mailbox(4, 0).is_err());
        assert!(b.mailbox(0, 2).is_err());
        assert_eq!(b.iter().count(), 8);
    }

    #[test]
    fn bank_construction_checks_capacity() {
        assert!(MailboxBank::new(region(1024), 4, 4, 2048).is_err());
        assert!(MailboxBank::new(region(1024), 0, 4, 64).is_err());
    }

    #[test]
    fn credit_tokens_roundtrip_through_the_table() {
        let r = region(64);
        let mut flags = BankFlags::new(Arc::clone(&r), 2, 3).unwrap();
        assert_eq!(flags.banks(), 2);
        assert_eq!(flags.per_bank(), 3);
        // Fresh table: nothing pending anywhere.
        for row in 0..2 {
            for slot in 0..3 {
                assert!(!flags.credit_pending(row, slot).unwrap());
                assert!(!flags.try_acquire(row, slot).unwrap());
            }
        }
        // Receiver credits (1, 2) — in the runtime this write is a one-sided
        // put into this region; here it is simulated directly.
        let offset = flags.slot_offset(1, 2).unwrap();
        r.store_release_u8(offset, BankFlags::token_for(0)).unwrap();
        assert!(flags.credit_pending(1, 2).unwrap());
        assert!(!flags.credit_pending(1, 1).unwrap(), "siblings unaffected");
        // Consuming spends it exactly once.
        assert!(flags.try_acquire(1, 2).unwrap());
        assert!(!flags.try_acquire(1, 2).unwrap());
        // The next drain's token differs from the last, so the next credit is
        // visible again.
        r.store_release_u8(offset, BankFlags::token_for(1)).unwrap();
        assert!(flags.try_acquire(1, 2).unwrap());
        // Out-of-range coordinates are rejected, not wrapped.
        assert!(flags.slot_offset(2, 0).is_err());
        assert!(flags.slot_offset(0, 3).is_err());
    }

    #[test]
    fn token_sequence_never_hits_zero_and_adjacent_tokens_differ() {
        let mut prev = 0u8;
        for k in 0..600u64 {
            let t = BankFlags::token_for(k);
            assert_ne!(t, 0, "0 is the fresh-region value, never a token");
            assert_ne!(t, prev, "adjacent drains must write distinct tokens");
            prev = t;
        }
    }

    /// Satellite contract for the reliability layer: a *duplicated* credit put
    /// (the same token byte landing twice, as a fault-injected fabric can make
    /// it) must not mint an extra credit or derail the token sequence.
    #[test]
    fn duplicated_credit_put_is_idempotent() {
        let r = region(64);
        let mut flags = BankFlags::new(Arc::clone(&r), 1, 2).unwrap();
        let offset = flags.slot_offset(0, 0).unwrap();

        // Drain k=0 returns its credit; the fabric replays the same 1-byte put.
        r.store_release_u8(offset, BankFlags::token_for(0)).unwrap();
        r.store_release_u8(offset, BankFlags::token_for(0)).unwrap();
        assert!(
            flags.try_acquire(0, 0).unwrap(),
            "the first copy is a credit"
        );
        assert!(
            !flags.try_acquire(0, 0).unwrap(),
            "the replayed copy must not mint a second credit"
        );

        // A replay arriving *after* the credit was consumed is equally inert.
        r.store_release_u8(offset, BankFlags::token_for(0)).unwrap();
        assert!(!flags.try_acquire(0, 0).unwrap());

        // The token sequence is not corrupted: the next drain's token (k=1)
        // still differs from the replayed k=0 token and is seen exactly once.
        assert_ne!(BankFlags::token_for(1), BankFlags::token_for(0));
        r.store_release_u8(offset, BankFlags::token_for(1)).unwrap();
        assert!(flags.try_acquire(0, 0).unwrap());
        assert!(!flags.try_acquire(0, 0).unwrap());
        // And the 255-cycle arithmetic is untouched by how often a token lands.
        for k in 2..520u64 {
            r.store_release_u8(offset, BankFlags::token_for(k)).unwrap();
            r.store_release_u8(offset, BankFlags::token_for(k)).unwrap();
            assert!(flags.try_acquire(0, 0).unwrap(), "drain {k}");
            assert!(!flags.try_acquire(0, 0).unwrap(), "drain {k} replay");
        }
    }

    #[test]
    fn nack_table_reports_roundtrip() {
        let r = region(64);
        let mut nacks = NackFlags::new(Arc::clone(&r), 2).unwrap();
        assert_eq!(nacks.rows(), 2);
        assert_eq!(NackFlags::table_len(2), 16);
        // Fresh table: nothing pending.
        assert_eq!(nacks.poll(0).unwrap(), None);
        assert_eq!(nacks.poll(1).unwrap(), None);

        // Receiver posts "sn 7 missing" into row 1 (in the runtime this is a
        // single 5-byte one-sided put whose last byte is the token).
        let rec = NackFlags::record_for(7, BankFlags::token_for(0));
        let off = NackFlags::row_offset(1);
        r.write(off, &rec).unwrap();
        r.store_release_u8(off + 4, rec[4]).unwrap();
        assert_eq!(nacks.poll(0).unwrap(), None, "siblings unaffected");
        assert_eq!(nacks.poll(1).unwrap(), Some(7));
        assert_eq!(nacks.poll(1).unwrap(), None, "a report is consumed once");

        // A duplicated NACK put (same token twice) is idempotent, like credits.
        r.write(off, &rec).unwrap();
        r.store_release_u8(off + 4, rec[4]).unwrap();
        assert_eq!(nacks.poll(1).unwrap(), None);

        // The next report (new token) is visible again.
        let rec = NackFlags::record_for(19, BankFlags::token_for(1));
        r.write(off, &rec).unwrap();
        r.store_release_u8(off + 4, rec[4]).unwrap();
        assert_eq!(nacks.poll(1).unwrap(), Some(19));

        // Geometry checks mirror BankFlags.
        assert!(nacks.poll(2).is_err());
        assert!(NackFlags::new(region(8), 2).is_err());
        assert!(NackFlags::new(region(64), 0).is_err());
        assert_eq!(nacks.row_addr(1).unwrap(), r.addr_of(12));
    }

    #[test]
    fn sync_discards_stale_credits() {
        let r = region(64);
        let mut flags = BankFlags::new(Arc::clone(&r), 1, 4).unwrap();
        let offset = flags.slot_offset(0, 1).unwrap();
        r.store_release_u8(offset, BankFlags::token_for(0)).unwrap();
        assert!(flags.credit_pending(0, 1).unwrap());
        flags.sync().unwrap();
        assert!(
            !flags.try_acquire(0, 1).unwrap(),
            "sync adopts the current token as already consumed"
        );
    }

    #[test]
    fn rows_are_word_aligned() {
        assert_eq!(BankFlags::row_stride(1), 8);
        assert_eq!(BankFlags::row_stride(8), 8);
        assert_eq!(BankFlags::row_stride(9), 16);
        assert_eq!(BankFlags::table_len(3, 16), 48);
        // 4 rows of 9 slots pad to 16-byte rows: 64 bytes fit, 32 do not.
        assert!(BankFlags::new(region(64), 4, 9).is_ok());
        assert!(matches!(
            BankFlags::new(region(32), 4, 9),
            Err(AmError::InvalidConfig(_))
        ));
        let flags = BankFlags::new(region(64), 4, 8).unwrap();
        assert_eq!(flags.slot_offset(3, 7).unwrap(), 31);
        assert_eq!(
            flags.slot_addr(1, 0).unwrap(),
            flags.descriptor().base_addr + 8
        );
    }

    #[test]
    fn zero_credit_windows_are_rejected_at_construction() {
        // A lane flow-controlled by an empty table would deadlock on its first
        // refill; both degenerate axes must fail loudly instead.
        assert!(matches!(
            BankFlags::new(region(64), 0, 4),
            Err(AmError::InvalidConfig(_))
        ));
        assert!(matches!(
            BankFlags::new(region(64), 4, 0),
            Err(AmError::InvalidConfig(_))
        ));
    }

    #[test]
    fn flag_region_must_cover_the_table() {
        assert!(BankFlags::new(region(8), 4, 2).is_err());
    }

    #[test]
    fn shard_mask_partitions_banks() {
        let masks: Vec<ShardMask> = (0..3).map(|s| ShardMask::new(s, 3)).collect();
        for bank in 0..12 {
            let owners = masks.iter().filter(|m| m.owns(bank)).count();
            assert_eq!(owners, 1, "bank {bank} must have exactly one owner");
            assert!(masks[bank % 3].owns(bank));
        }
        assert!(ShardMask::all().owns(7));
        // A zero shard count degrades to the all-banks view instead of dividing by
        // zero.
        assert!(ShardMask::new(0, 0).owns(5));
    }

    #[test]
    fn iter_ready_reports_only_complete_frames_in_owned_banks() {
        use crate::frame::{Frame, SIG_MAG};
        let r = MemoryRegion::new(0, 0x3000_0000, 4 * 2 * 2048, AccessFlags::rwx(), 4).unwrap();
        let b = MailboxBank::new(Arc::clone(&r), 4, 2, 2048).unwrap();
        assert_eq!(b.iter_ready(ShardMask::all()).count(), 0, "all empty");

        // Land complete frames in (0,0), (1,1) and (2,0) by writing the encoded
        // bytes and releasing the signal byte, as the simulated NIC does.
        let bytes = Frame::local(1, 0, vec![0; 20], vec![5; 32]).encode();
        for (bank, slot) in [(0usize, 0usize), (1, 1), (2, 0)] {
            let offset = (bank * 2 + slot) * 2048;
            r.write(offset, &bytes).unwrap();
            r.store_release_u8(offset + bytes.len() - 1, SIG_MAG)
                .unwrap();
        }
        let all: Vec<_> = b.iter_ready(ShardMask::all()).collect();
        assert_eq!(
            all,
            vec![
                (0, 0, bytes.len()),
                (1, 1, bytes.len()),
                (2, 0, bytes.len())
            ]
        );
        // A two-shard split partitions the ready set by bank parity.
        let shard0: Vec<_> = b.iter_ready(ShardMask::new(0, 2)).collect();
        let shard1: Vec<_> = b.iter_ready(ShardMask::new(1, 2)).collect();
        assert_eq!(shard0, vec![(0, 0, bytes.len()), (2, 0, bytes.len())]);
        assert_eq!(shard1, vec![(1, 1, bytes.len())]);
        // Draining a slot removes it from the next scan.
        b.mailbox(0, 0).unwrap().clear(bytes.len()).unwrap();
        assert_eq!(b.iter_ready(ShardMask::new(0, 2)).count(), 1);
    }

    #[test]
    fn iter_ready_skips_malformed_lengths() {
        use crate::frame::{Frame, HDR_MAG};
        let r = MemoryRegion::new(0, 0x3000_0000, 2 * 2048, AccessFlags::rwx(), 4).unwrap();
        let b = MailboxBank::new(Arc::clone(&r), 1, 2, 2048).unwrap();
        // Slot 0: header claims a frame far larger than the mailbox.
        let mut bytes = Frame::local(1, 0, vec![0; 20], vec![0; 4]).encode();
        bytes[8..12].copy_from_slice(&1_000_000u32.to_le_bytes());
        r.write(0, &bytes).unwrap();
        r.store_release_u8(crate::frame::FRAME_HEADER_SIZE - 1, HDR_MAG)
            .unwrap();
        assert_eq!(
            b.iter_ready(ShardMask::all()).count(),
            0,
            "a malformed slot must not stall or appear in the scan"
        );
        // The quarantine sweep reclaims it (and reports the reason); afterwards
        // the slot polls as empty instead of erroring forever.
        let poisoned = b.drain_poisoned(ShardMask::all());
        assert_eq!(poisoned.len(), 1);
        assert_eq!((poisoned[0].0, poisoned[0].1), (0, 0));
        assert!(matches!(poisoned[0].2, AmError::BadFrame(_)));
        assert!(b.mailbox(0, 0).unwrap().poll_variable().unwrap().is_none());
        assert!(b.drain_poisoned(ShardMask::all()).is_empty());
    }
}
