//! Mailbox banks and sender-side flow control (§VI-A2).
//!
//! For the injection-rate benchmark the receiver exposes M banks of N mailboxes. The
//! sender keeps one credit flag per bank in its own registered memory: it may send up
//! to N messages into a bank, after which it must wait for the receiver to set that
//! bank's flag (with a one-sided put back to the sender) before reusing the bank.
//! This keeps flow control entirely outside the hot reactive-mailbox path, unlike the
//! UCX baseline whose per-message flow control Figs. 5–6 measure.

use std::sync::Arc;

use twochains_fabric::{MemoryRegion, RegionDescriptor};

use crate::error::{AmError, AmResult};
use crate::mailbox::ReactiveMailbox;

/// Which banks a receiver shard owns: bank `b` belongs to shard `shard` iff
/// `b % num_shards == shard`. This is the single definition of the deterministic
/// ownership map — the runtime's `receive`/`receive_burst`, the bank iteration
/// helper and the bench drain driver all route through it, so no two shards ever
/// poll (let alone drain) the same mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMask {
    /// The shard index (`< num_shards`).
    pub shard: usize,
    /// Total number of shards.
    pub num_shards: usize,
}

impl ShardMask {
    /// The mask selecting the banks shard `shard` of `num_shards` owns.
    pub fn new(shard: usize, num_shards: usize) -> Self {
        ShardMask {
            shard,
            num_shards: num_shards.max(1),
        }
    }

    /// The mask selecting every bank (the single-shard view).
    pub fn all() -> Self {
        Self::new(0, 1)
    }

    /// The shard that owns `bank` under a `num_shards`-way split — the one
    /// formula every core-side ownership check delegates to. (The fabric crate's
    /// `ShardedCompletions::route` mirrors it independently, since fabric sits
    /// below this crate; change both together or sender completion routing
    /// diverges from receiver ownership.)
    pub fn owner_of(bank: usize, num_shards: usize) -> usize {
        bank % num_shards.max(1)
    }

    /// Whether this mask owns `bank`.
    pub fn owns(&self, bank: usize) -> bool {
        Self::owner_of(bank, self.num_shards) == self.shard % self.num_shards
    }
}

/// The receiver-side bank structure: `banks × per_bank` mailboxes carved out of one
/// registered region.
#[derive(Debug, Clone)]
pub struct MailboxBank {
    mailboxes: Vec<ReactiveMailbox>,
    banks: usize,
    per_bank: usize,
}

impl MailboxBank {
    /// Carve `banks × per_bank` mailboxes of `capacity` bytes each out of `region`.
    pub fn new(
        region: Arc<MemoryRegion>,
        banks: usize,
        per_bank: usize,
        capacity: usize,
    ) -> AmResult<Self> {
        if banks == 0 || per_bank == 0 {
            return Err(AmError::InvalidConfig(
                "need at least one bank and one mailbox".into(),
            ));
        }
        // checked_mul: adversarial geometry must error instead of wrapping in release.
        let needed = banks
            .checked_mul(per_bank)
            .and_then(|n| n.checked_mul(capacity))
            .ok_or_else(|| {
                AmError::InvalidConfig(format!(
                    "bank geometry overflows: {banks} banks x {per_bank} mailboxes x {capacity} B"
                ))
            })?;
        if needed > region.len() {
            return Err(AmError::InvalidConfig(format!(
                "bank needs {needed} bytes but region has {}",
                region.len()
            )));
        }
        let mut mailboxes = Vec::with_capacity(banks * per_bank);
        for i in 0..banks * per_bank {
            mailboxes.push(ReactiveMailbox::new(
                Arc::clone(&region),
                i * capacity,
                capacity,
            )?);
        }
        Ok(MailboxBank {
            mailboxes,
            banks,
            per_bank,
        })
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Mailboxes per bank.
    pub fn per_bank(&self) -> usize {
        self.per_bank
    }

    /// Total number of mailboxes.
    pub fn total(&self) -> usize {
        self.mailboxes.len()
    }

    /// The mailbox at (`bank`, `slot`).
    pub fn mailbox(&self, bank: usize, slot: usize) -> AmResult<&ReactiveMailbox> {
        if bank >= self.banks || slot >= self.per_bank {
            return Err(AmError::InvalidConfig(format!(
                "no mailbox ({bank}, {slot})"
            )));
        }
        Ok(&self.mailboxes[bank * self.per_bank + slot])
    }

    /// Iterate over every mailbox with its (bank, slot) coordinates.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &ReactiveMailbox)> {
        self.mailboxes
            .iter()
            .enumerate()
            .map(move |(i, m)| (i / self.per_bank, i % self.per_bank, m))
    }

    /// One *non-mutating* scan over the banks `mask` owns, yielding every slot
    /// holding a complete frame as `(bank, slot, frame_len)` — the read-only
    /// readiness view used by monitoring and the bench driver's sanity checks.
    ///
    /// Readiness (and the frame length) comes from the variable-frame two-step
    /// protocol ([`ReactiveMailbox::poll_variable`]): the header magic is checked,
    /// the length read, and the signal byte confirmed. Slots that are empty, still
    /// being written, or whose header declares an out-of-range length are skipped
    /// and left untouched. The drain path itself uses
    /// [`MailboxBank::scan_burst`], which applies the same readiness test but
    /// additionally quarantines the malformed slots it walks past; keep the two
    /// in lockstep if the readiness protocol ever changes.
    pub fn iter_ready(&self, mask: ShardMask) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        self.iter().filter_map(move |(bank, slot, mailbox)| {
            if !mask.owns(bank) {
                return None;
            }
            match mailbox.poll_variable() {
                Ok(Some(frame_len)) => Some((bank, slot, frame_len)),
                Ok(None) | Err(_) => None,
            }
        })
    }

    /// The burst scan: one poll pass over the banks `mask` owns, partitioning the
    /// slots into up to `max_frames` *ready* frames (`(bank, slot, frame_len)`)
    /// and quarantined *poisoned* slots — slots whose header magic is set but
    /// whose declared length is out of range ([`ReactiveMailbox::poll_variable`]
    /// errors). A poisoned slot is invisible to [`MailboxBank::iter_ready`], so
    /// without quarantining it here a burst-only receiver would never reclaim it —
    /// a one-put denial of service per slot; its header magic is cleared (making
    /// the slot reusable) and it is reported as `(bank, slot, error)`. Each owned
    /// slot is polled exactly once per scan.
    #[allow(clippy::type_complexity)]
    pub fn scan_burst(
        &self,
        mask: ShardMask,
        max_frames: usize,
    ) -> (Vec<(usize, usize, usize)>, Vec<(usize, usize, AmError)>) {
        let mut ready = Vec::new();
        let mut poisoned = Vec::new();
        for (bank, slot, mailbox) in self.iter() {
            if !mask.owns(bank) {
                continue;
            }
            match mailbox.poll_variable() {
                Ok(Some(frame_len)) => {
                    if ready.len() < max_frames {
                        ready.push((bank, slot, frame_len));
                    }
                }
                Ok(None) => {}
                Err(err) => {
                    // Clearing a header-sized frame zeroes exactly the header
                    // magic byte, the gate every readiness poll checks first.
                    let _ = mailbox.clear(crate::frame::FRAME_HEADER_SIZE);
                    poisoned.push((bank, slot, err));
                }
            }
        }
        (ready, poisoned)
    }

    /// Quarantine every poisoned slot in the banks `mask` owns (the poisoned half
    /// of [`MailboxBank::scan_burst`]).
    pub fn drain_poisoned(&self, mask: ShardMask) -> Vec<(usize, usize, AmError)> {
        self.scan_burst(mask, 0).1
    }
}

/// Sender-side per-bank credit flags, kept in the sender's own registered memory so
/// the receiver can set them with a one-sided put.
#[derive(Debug, Clone)]
pub struct BankFlags {
    region: Arc<MemoryRegion>,
    banks: usize,
    /// Messages sent into the current window of each bank.
    in_flight: Vec<usize>,
    per_bank: usize,
}

impl BankFlags {
    /// Create flags for `banks` banks of `per_bank` mailboxes, initially all credits
    /// available.
    pub fn new(region: Arc<MemoryRegion>, banks: usize, per_bank: usize) -> AmResult<Self> {
        if region.len() < banks {
            return Err(AmError::InvalidConfig(
                "flag region smaller than bank count".into(),
            ));
        }
        for b in 0..banks {
            region.store_release_u8(b, 1)?;
        }
        Ok(BankFlags {
            region,
            banks,
            in_flight: vec![0; banks],
            per_bank,
        })
    }

    /// Descriptor the receiver uses to set flags remotely.
    pub fn descriptor(&self) -> RegionDescriptor {
        self.region.descriptor()
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Whether the sender may send another message to `bank` right now.
    pub fn can_send(&self, bank: usize) -> AmResult<bool> {
        if bank >= self.banks {
            return Err(AmError::InvalidConfig(format!("no bank {bank}")));
        }
        if self.in_flight[bank] < self.per_bank {
            return Ok(true);
        }
        // Window exhausted: the credit flag must have been re-set by the receiver.
        Ok(self.region.load_acquire_u8(bank)? == 1)
    }

    /// Record a send into `bank`. When the window fills, the local credit flag is
    /// cleared; the receiver will set it again once it has drained the bank.
    pub fn record_send(&mut self, bank: usize) -> AmResult<()> {
        if !self.can_send(bank)? {
            return Err(AmError::BankFull { bank });
        }
        if self.in_flight[bank] == self.per_bank {
            // A fresh credit from the receiver opens a new window.
            self.in_flight[bank] = 0;
            self.region.store_release_u8(bank, 0)?;
        }
        self.in_flight[bank] += 1;
        if self.in_flight[bank] == self.per_bank {
            self.region.store_release_u8(bank, 0)?;
        }
        Ok(())
    }

    /// Byte offset of `bank`'s flag within the flag region (what the receiver targets
    /// with its credit put).
    pub fn flag_offset(&self, bank: usize) -> usize {
        bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twochains_fabric::AccessFlags;

    fn region(len: usize) -> Arc<MemoryRegion> {
        MemoryRegion::new(0, 0x3000_0000, len, AccessFlags::rw(), 4).unwrap()
    }

    #[test]
    fn bank_layout() {
        let b = MailboxBank::new(region(4 * 2 * 2048), 4, 2, 2048).unwrap();
        assert_eq!(b.banks(), 4);
        assert_eq!(b.per_bank(), 2);
        assert_eq!(b.total(), 8);
        let m00 = b.mailbox(0, 0).unwrap().base_addr();
        let m01 = b.mailbox(0, 1).unwrap().base_addr();
        let m10 = b.mailbox(1, 0).unwrap().base_addr();
        assert_eq!(m01 - m00, 2048);
        assert_eq!(m10 - m00, 2 * 2048);
        assert!(b.mailbox(4, 0).is_err());
        assert!(b.mailbox(0, 2).is_err());
        assert_eq!(b.iter().count(), 8);
    }

    #[test]
    fn bank_construction_checks_capacity() {
        assert!(MailboxBank::new(region(1024), 4, 4, 2048).is_err());
        assert!(MailboxBank::new(region(1024), 0, 4, 64).is_err());
    }

    #[test]
    fn flow_control_window() {
        let r = region(16);
        let mut flags = BankFlags::new(Arc::clone(&r), 2, 3).unwrap();
        assert!(flags.can_send(0).unwrap());
        for _ in 0..3 {
            flags.record_send(0).unwrap();
        }
        // Window exhausted and the receiver has not credited the bank yet.
        assert!(!flags.can_send(0).unwrap());
        assert!(matches!(
            flags.record_send(0),
            Err(AmError::BankFull { bank: 0 })
        ));
        // Other banks unaffected.
        assert!(flags.can_send(1).unwrap());
        // Receiver credits the bank (simulated here by a direct flag write, in the
        // runtime it is a one-sided put into this region).
        r.store_release_u8(flags.flag_offset(0), 1).unwrap();
        assert!(flags.can_send(0).unwrap());
        flags.record_send(0).unwrap();
        assert!(
            flags.can_send(0).unwrap(),
            "new window has credits remaining"
        );
    }

    #[test]
    fn flag_region_must_cover_banks() {
        assert!(BankFlags::new(region(1), 4, 2).is_err());
    }

    #[test]
    fn shard_mask_partitions_banks() {
        let masks: Vec<ShardMask> = (0..3).map(|s| ShardMask::new(s, 3)).collect();
        for bank in 0..12 {
            let owners = masks.iter().filter(|m| m.owns(bank)).count();
            assert_eq!(owners, 1, "bank {bank} must have exactly one owner");
            assert!(masks[bank % 3].owns(bank));
        }
        assert!(ShardMask::all().owns(7));
        // A zero shard count degrades to the all-banks view instead of dividing by
        // zero.
        assert!(ShardMask::new(0, 0).owns(5));
    }

    #[test]
    fn iter_ready_reports_only_complete_frames_in_owned_banks() {
        use crate::frame::{Frame, SIG_MAG};
        let r = MemoryRegion::new(0, 0x3000_0000, 4 * 2 * 2048, AccessFlags::rwx(), 4).unwrap();
        let b = MailboxBank::new(Arc::clone(&r), 4, 2, 2048).unwrap();
        assert_eq!(b.iter_ready(ShardMask::all()).count(), 0, "all empty");

        // Land complete frames in (0,0), (1,1) and (2,0) by writing the encoded
        // bytes and releasing the signal byte, as the simulated NIC does.
        let bytes = Frame::local(1, 0, vec![0; 20], vec![5; 32]).encode();
        for (bank, slot) in [(0usize, 0usize), (1, 1), (2, 0)] {
            let offset = (bank * 2 + slot) * 2048;
            r.write(offset, &bytes).unwrap();
            r.store_release_u8(offset + bytes.len() - 1, SIG_MAG)
                .unwrap();
        }
        let all: Vec<_> = b.iter_ready(ShardMask::all()).collect();
        assert_eq!(
            all,
            vec![
                (0, 0, bytes.len()),
                (1, 1, bytes.len()),
                (2, 0, bytes.len())
            ]
        );
        // A two-shard split partitions the ready set by bank parity.
        let shard0: Vec<_> = b.iter_ready(ShardMask::new(0, 2)).collect();
        let shard1: Vec<_> = b.iter_ready(ShardMask::new(1, 2)).collect();
        assert_eq!(shard0, vec![(0, 0, bytes.len()), (2, 0, bytes.len())]);
        assert_eq!(shard1, vec![(1, 1, bytes.len())]);
        // Draining a slot removes it from the next scan.
        b.mailbox(0, 0).unwrap().clear(bytes.len()).unwrap();
        assert_eq!(b.iter_ready(ShardMask::new(0, 2)).count(), 1);
    }

    #[test]
    fn iter_ready_skips_malformed_lengths() {
        use crate::frame::{Frame, HDR_MAG};
        let r = MemoryRegion::new(0, 0x3000_0000, 2 * 2048, AccessFlags::rwx(), 4).unwrap();
        let b = MailboxBank::new(Arc::clone(&r), 1, 2, 2048).unwrap();
        // Slot 0: header claims a frame far larger than the mailbox.
        let mut bytes = Frame::local(1, 0, vec![0; 20], vec![0; 4]).encode();
        bytes[8..12].copy_from_slice(&1_000_000u32.to_le_bytes());
        r.write(0, &bytes).unwrap();
        r.store_release_u8(crate::frame::FRAME_HEADER_SIZE - 1, HDR_MAG)
            .unwrap();
        assert_eq!(
            b.iter_ready(ShardMask::all()).count(),
            0,
            "a malformed slot must not stall or appear in the scan"
        );
        // The quarantine sweep reclaims it (and reports the reason); afterwards
        // the slot polls as empty instead of erroring forever.
        let poisoned = b.drain_poisoned(ShardMask::all());
        assert_eq!(poisoned.len(), 1);
        assert_eq!((poisoned[0].0, poisoned[0].1), (0, 0));
        assert!(matches!(poisoned[0].2, AmError::BadFrame(_)));
        assert!(b.mailbox(0, 0).unwrap().poll_variable().unwrap().is_none());
        assert!(b.drain_poisoned(ShardMask::all()).is_empty());
    }
}
