//! Mailbox banks and sender-side flow control (§VI-A2).
//!
//! For the injection-rate benchmark the receiver exposes M banks of N mailboxes. The
//! sender keeps one credit flag per bank in its own registered memory: it may send up
//! to N messages into a bank, after which it must wait for the receiver to set that
//! bank's flag (with a one-sided put back to the sender) before reusing the bank.
//! This keeps flow control entirely outside the hot reactive-mailbox path, unlike the
//! UCX baseline whose per-message flow control Figs. 5–6 measure.

use std::sync::Arc;

use twochains_fabric::{MemoryRegion, RegionDescriptor};

use crate::error::{AmError, AmResult};
use crate::mailbox::ReactiveMailbox;

/// The receiver-side bank structure: `banks × per_bank` mailboxes carved out of one
/// registered region.
#[derive(Debug, Clone)]
pub struct MailboxBank {
    mailboxes: Vec<ReactiveMailbox>,
    banks: usize,
    per_bank: usize,
}

impl MailboxBank {
    /// Carve `banks × per_bank` mailboxes of `capacity` bytes each out of `region`.
    pub fn new(
        region: Arc<MemoryRegion>,
        banks: usize,
        per_bank: usize,
        capacity: usize,
    ) -> AmResult<Self> {
        if banks == 0 || per_bank == 0 {
            return Err(AmError::InvalidConfig(
                "need at least one bank and one mailbox".into(),
            ));
        }
        // checked_mul: adversarial geometry must error instead of wrapping in release.
        let needed = banks
            .checked_mul(per_bank)
            .and_then(|n| n.checked_mul(capacity))
            .ok_or_else(|| {
                AmError::InvalidConfig(format!(
                    "bank geometry overflows: {banks} banks x {per_bank} mailboxes x {capacity} B"
                ))
            })?;
        if needed > region.len() {
            return Err(AmError::InvalidConfig(format!(
                "bank needs {needed} bytes but region has {}",
                region.len()
            )));
        }
        let mut mailboxes = Vec::with_capacity(banks * per_bank);
        for i in 0..banks * per_bank {
            mailboxes.push(ReactiveMailbox::new(
                Arc::clone(&region),
                i * capacity,
                capacity,
            )?);
        }
        Ok(MailboxBank {
            mailboxes,
            banks,
            per_bank,
        })
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Mailboxes per bank.
    pub fn per_bank(&self) -> usize {
        self.per_bank
    }

    /// Total number of mailboxes.
    pub fn total(&self) -> usize {
        self.mailboxes.len()
    }

    /// The mailbox at (`bank`, `slot`).
    pub fn mailbox(&self, bank: usize, slot: usize) -> AmResult<&ReactiveMailbox> {
        if bank >= self.banks || slot >= self.per_bank {
            return Err(AmError::InvalidConfig(format!(
                "no mailbox ({bank}, {slot})"
            )));
        }
        Ok(&self.mailboxes[bank * self.per_bank + slot])
    }

    /// Iterate over every mailbox with its (bank, slot) coordinates.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &ReactiveMailbox)> {
        self.mailboxes
            .iter()
            .enumerate()
            .map(move |(i, m)| (i / self.per_bank, i % self.per_bank, m))
    }
}

/// Sender-side per-bank credit flags, kept in the sender's own registered memory so
/// the receiver can set them with a one-sided put.
#[derive(Debug, Clone)]
pub struct BankFlags {
    region: Arc<MemoryRegion>,
    banks: usize,
    /// Messages sent into the current window of each bank.
    in_flight: Vec<usize>,
    per_bank: usize,
}

impl BankFlags {
    /// Create flags for `banks` banks of `per_bank` mailboxes, initially all credits
    /// available.
    pub fn new(region: Arc<MemoryRegion>, banks: usize, per_bank: usize) -> AmResult<Self> {
        if region.len() < banks {
            return Err(AmError::InvalidConfig(
                "flag region smaller than bank count".into(),
            ));
        }
        for b in 0..banks {
            region.store_release_u8(b, 1)?;
        }
        Ok(BankFlags {
            region,
            banks,
            in_flight: vec![0; banks],
            per_bank,
        })
    }

    /// Descriptor the receiver uses to set flags remotely.
    pub fn descriptor(&self) -> RegionDescriptor {
        self.region.descriptor()
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Whether the sender may send another message to `bank` right now.
    pub fn can_send(&self, bank: usize) -> AmResult<bool> {
        if bank >= self.banks {
            return Err(AmError::InvalidConfig(format!("no bank {bank}")));
        }
        if self.in_flight[bank] < self.per_bank {
            return Ok(true);
        }
        // Window exhausted: the credit flag must have been re-set by the receiver.
        Ok(self.region.load_acquire_u8(bank)? == 1)
    }

    /// Record a send into `bank`. When the window fills, the local credit flag is
    /// cleared; the receiver will set it again once it has drained the bank.
    pub fn record_send(&mut self, bank: usize) -> AmResult<()> {
        if !self.can_send(bank)? {
            return Err(AmError::BankFull { bank });
        }
        if self.in_flight[bank] == self.per_bank {
            // A fresh credit from the receiver opens a new window.
            self.in_flight[bank] = 0;
            self.region.store_release_u8(bank, 0)?;
        }
        self.in_flight[bank] += 1;
        if self.in_flight[bank] == self.per_bank {
            self.region.store_release_u8(bank, 0)?;
        }
        Ok(())
    }

    /// Byte offset of `bank`'s flag within the flag region (what the receiver targets
    /// with its credit put).
    pub fn flag_offset(&self, bank: usize) -> usize {
        bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twochains_fabric::AccessFlags;

    fn region(len: usize) -> Arc<MemoryRegion> {
        MemoryRegion::new(0, 0x3000_0000, len, AccessFlags::rw(), 4).unwrap()
    }

    #[test]
    fn bank_layout() {
        let b = MailboxBank::new(region(4 * 2 * 2048), 4, 2, 2048).unwrap();
        assert_eq!(b.banks(), 4);
        assert_eq!(b.per_bank(), 2);
        assert_eq!(b.total(), 8);
        let m00 = b.mailbox(0, 0).unwrap().base_addr();
        let m01 = b.mailbox(0, 1).unwrap().base_addr();
        let m10 = b.mailbox(1, 0).unwrap().base_addr();
        assert_eq!(m01 - m00, 2048);
        assert_eq!(m10 - m00, 2 * 2048);
        assert!(b.mailbox(4, 0).is_err());
        assert!(b.mailbox(0, 2).is_err());
        assert_eq!(b.iter().count(), 8);
    }

    #[test]
    fn bank_construction_checks_capacity() {
        assert!(MailboxBank::new(region(1024), 4, 4, 2048).is_err());
        assert!(MailboxBank::new(region(1024), 0, 4, 64).is_err());
    }

    #[test]
    fn flow_control_window() {
        let r = region(16);
        let mut flags = BankFlags::new(Arc::clone(&r), 2, 3).unwrap();
        assert!(flags.can_send(0).unwrap());
        for _ in 0..3 {
            flags.record_send(0).unwrap();
        }
        // Window exhausted and the receiver has not credited the bank yet.
        assert!(!flags.can_send(0).unwrap());
        assert!(matches!(
            flags.record_send(0),
            Err(AmError::BankFull { bank: 0 })
        ));
        // Other banks unaffected.
        assert!(flags.can_send(1).unwrap());
        // Receiver credits the bank (simulated here by a direct flag write, in the
        // runtime it is a one-sided put into this region).
        r.store_release_u8(flags.flag_offset(0), 1).unwrap();
        assert!(flags.can_send(0).unwrap());
        flags.record_send(0).unwrap();
        assert!(
            flags.can_send(0).unwrap(),
            "new window has credits remaining"
        );
    }

    #[test]
    fn flag_region_must_cover_banks() {
        assert!(BankFlags::new(region(1), 4, 2).is_err());
    }
}
