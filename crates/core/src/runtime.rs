//! The per-process Two-Chains runtime: host (receiver) side and sender side.
//!
//! A [`TwoChainsHost`] owns everything one process needs to participate: its fabric
//! host handle and registered mailbox region, its linker namespace with loaded rieds,
//! the persistent jam address space holding ried data objects, the Local Function
//! library built from the installed package, and the reactive mailbox banks.
//!
//! A [`TwoChainsSender`] is the initiator-side object: it packs frames (patching in
//! the GOT image the receiver exported during setup), pushes them with one one-sided
//! put, and tracks flow-control credits.
//!
//! All methods take and return virtual [`SimTime`]s so a benchmark harness can drive
//! both ends from a single thread deterministically; the same code paths can also be
//! driven by real threads (the examples do), in which case the virtual times are
//! simply accounting.
//!
//! # Fast-path architecture (zero-copy steady state)
//!
//! The send→receive hot path is allocation-free in steady state. Both sides keep
//! content-addressed caches so the per-message work degenerates to hashing, a lookup
//! and one memcpy:
//!
//! **Receiver.**
//! * *Injected-code cache* — keyed by `(elem_id, hash64_bytes(code))`. The first
//!   message for a key pays `decode_program` + `verify` (and their modelled cost);
//!   every later message hits a decoded `Arc<[Instr]>` and executes it directly.
//!   [`RuntimeStats::injected_code_cache_hits`]/`_misses` count the split.
//! * *GOT cache* — keyed by `(elem_id, hash64_bytes(got_bytes))` when the policy
//!   accepts sender GOT images, or by `elem_id` alone when the hardened policy
//!   re-resolves locally. Hits reuse an `Arc<GotImage>`; no per-message slot vector
//!   is built. [`RuntimeStats::got_cache_hits`]/`_misses` count the split.
//! * *Borrowed frame parsing* — arrived bytes land in a persistent scratch buffer
//!   ([`ReactiveMailbox::read_frame_into`]) and are parsed as a
//!   [`FrameView`](crate::frame::FrameView) whose sections borrow that buffer. Only
//!   ARGS and USR are copied out (the jam may mutate them); GOT and code bytes are
//!   hashed in place and never cloned.
//! * *Register-seeded entry* — the jam entry convention (`r0`=ARGS, `r1`=USR,
//!   `r2`=USR length) is passed through [`VmConfig::entry_regs`], so the cached
//!   program runs as-is instead of being re-materialised with a prologue per message.
//!
//! **Sender.**
//! * *Frame-template cache* — per element, the patched GOT image and encoded code
//!   are captured once as `Arc<[u8]>`; later sends memcpy them straight into the
//!   wire buffer. [`RuntimeStats::template_hits`]/`_misses` count the split.
//! * *Scratch encode buffer* — [`TwoChainsSender::send`] and
//!   [`TwoChainsSender::send_message`] encode into one reusable `Vec<u8>`
//!   ([`Frame::encode_into`]), so a steady-state send performs a single memcpy into
//!   the mailbox put and no heap allocation.
//!
//! **Invalidation.** All receiver caches are dropped on [`TwoChainsHost::install_package`]
//! and [`TwoChainsHost::load_ried`] (package reinstall / live update may rebind
//! symbols or change code), and can be dropped explicitly with
//! [`TwoChainsHost::invalidate_injection_caches`] (cold-path benchmarking). The
//! sender's template for an element is dropped when [`TwoChainsSender::set_remote_got`]
//! replaces that element's GOT image.

use std::collections::HashMap;
use std::sync::Arc;

use twochains_fabric::{
    AccessFlags, Endpoint, HostHandle, HostId, MemoryRegion, PutOutcome, SimFabric,
};
use twochains_jamvm::{
    decode_program, hash64_bytes, verify, AddressSpace, ExecStats, GotImage, Instr, Segment,
    SegmentKind, Vm, VmConfig,
};
use twochains_linker::{ElementId, LinkerNamespace, Package, Ried};
use twochains_memsim::cycles::WaitOutcome;
use twochains_memsim::{AccessKind, MemoryBus, MemoryStressor, SimTime};

use crate::bank::MailboxBank;
use crate::builtin::BuiltinJam;
use crate::config::{InvocationMode, RuntimeConfig};
use crate::error::{AmError, AmResult};
use crate::frame::{encode_wire_into, Frame, FrameView, FRAME_HEADER_SIZE};
use crate::mailbox::MailboxTarget;
use crate::stats::RuntimeStats;

/// Software cost models for the receiver's injected-dispatch path, in ns per byte.
///
/// The content hash is charged on every injected message — it is the cache-key
/// computation, streaming the arrived bytes at near line rate. Decode, verify and
/// GOT-image parsing are charged only on a cache miss; on a hit the receiver jumps
/// straight to the cached decoded program, which is the point of the fast path.
const HASH_NS_PER_BYTE: f64 = 0.01;
/// Bytecode decode cost on a cache miss (~2 GB/s: byte-at-a-time opcode dispatch
/// building the instruction vector).
const DECODE_NS_PER_BYTE: f64 = 0.6;
/// Verifier cost on a cache miss (~4 GB/s: register/branch/GOT-slot bound checks
/// over the decoded program).
const VERIFY_NS_PER_BYTE: f64 = 0.25;
/// GOT image parse cost on a GOT-cache miss.
const GOT_PARSE_NS_PER_BYTE: f64 = 0.05;

/// Upper bound on entries per injection cache. The keys are derived from
/// sender-controlled content, so an adversarial sender churning its code or GOT
/// image per message must not be able to grow receiver memory without bound;
/// reaching the cap clears the cache (amortised O(1), self-healing).
const MAX_INJECTION_CACHE_ENTRIES: usize = 1024;

/// A cached decoded injected program. The exact code bytes it was decoded from are
/// kept and compared on every hit: the 64-bit content hash in the key is not
/// collision-proof against an adversarial sender, so a hit is only a hit if the
/// bytes match (a mismatch re-decodes and replaces the entry).
#[derive(Debug, Clone)]
struct CachedProgram {
    code: Arc<[u8]>,
    program: Arc<[Instr]>,
    /// Smallest GOT slot count the program verifies against (highest `CallExtern`
    /// slot + 1). Hits are re-checked against the message's GOT size so a warm hit
    /// can never execute a program the cold verifier would reject.
    min_got_slots: usize,
}

/// A cached parsed sender GOT image, with the exact bytes it was parsed from
/// (compared on every hit, as for [`CachedProgram`]).
#[derive(Debug, Clone)]
struct CachedGot {
    bytes: Arc<[u8]>,
    image: Arc<GotImage>,
}

/// One entry of the Local Function library: the program as loaded from the package,
/// its GOT resolved against this process's namespace, and the address at which the
/// resident code lives (kept warm in the receiver's caches). Program and GOT are
/// reference-counted so dispatch shares them instead of deep-cloning per message.
#[derive(Debug, Clone)]
struct LocalEntry {
    program: Arc<[Instr]>,
    got: Arc<GotImage>,
    code_base: u64,
}

/// Outcome of processing one received active message.
#[derive(Debug, Clone)]
pub struct ReceiveOutcome {
    /// When the receiver observed the signal byte (wait included).
    pub detected_at: SimTime,
    /// When the handler finished (dispatch + execution included).
    pub handler_done: SimTime,
    /// The wait accounting (elapsed time and cycles burned).
    pub wait: WaitOutcome,
    /// Execution statistics (absent in the without-execution configuration).
    pub exec: Option<ExecStats>,
    /// The value the jam returned (0 when execution was skipped).
    pub result: u64,
    /// Receiver-side time excluding the wait (header read, dispatch, execution).
    pub handler_time: SimTime,
    /// The dispatch-only portion of `handler_time`: header read, security checks,
    /// cache probes and (on a miss) decode/verify — everything except the jam's own
    /// execution. This is the quantity the fast path shrinks.
    pub dispatch_time: SimTime,
}

/// Outcome of sending one active message.
#[derive(Debug, Clone, Copy)]
pub struct AmSendOutcome {
    /// Frame-packing cost on the sending CPU.
    pub pack_cost: SimTime,
    /// The underlying one-sided put timing.
    pub put: PutOutcome,
    /// Total bytes on the wire.
    pub wire_bytes: usize,
}

impl AmSendOutcome {
    /// When the message (including its signal byte) is visible at the receiver.
    pub fn delivered(&self) -> SimTime {
        self.put.delivered
    }

    /// When the sending CPU is free again.
    pub fn sender_free(&self) -> SimTime {
        self.pack_cost + self.put.sender_free
    }
}

/// The receiver-side (and library-owner) runtime for one process.
pub struct TwoChainsHost {
    handle: HostHandle,
    config: RuntimeConfig,
    namespace: LinkerNamespace,
    space: AddressSpace,
    package: Option<Package>,
    local_lib: HashMap<u32, LocalEntry>,
    /// Decoded injected programs, keyed by `(elem_id, hash64_bytes(code))`.
    injected_code_cache: HashMap<(u32, u64), CachedProgram>,
    /// Parsed sender GOT images, keyed by `(elem_id, hash64_bytes(got_bytes))`.
    sender_got_cache: HashMap<(u32, u64), CachedGot>,
    /// Locally re-resolved GOT images (hardened policy), keyed by `elem_id`.
    resolved_got_cache: HashMap<u32, Arc<GotImage>>,
    /// Persistent receive buffer: frames are read into it and parsed by borrow.
    recv_scratch: Vec<u8>,
    mailbox_region: Arc<MemoryRegion>,
    banks: MailboxBank,
    stats: RuntimeStats,
    local_code_cursor: u64,
}

impl std::fmt::Debug for TwoChainsHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TwoChainsHost")
            .field("host", &self.handle.id())
            .field("mailboxes", &self.banks.total())
            .field("local_lib", &self.local_lib.len())
            .field("injected_cache", &self.injected_code_cache.len())
            .finish()
    }
}

impl TwoChainsHost {
    /// Base simulated address at which Local Function library code is laid out.
    const LOCAL_CODE_BASE: u64 = 0x7000_0000;

    /// Create a host runtime on fabric host `id`.
    pub fn new(fabric: &SimFabric, id: HostId, config: RuntimeConfig) -> AmResult<Self> {
        config.validate().map_err(AmError::InvalidConfig)?;
        let handle = fabric.host(id)?;
        let flags = AccessFlags::rwx();
        let region_len = config
            .total_mailboxes()
            .checked_mul(config.frame_capacity)
            .ok_or_else(|| AmError::InvalidConfig("mailbox region size overflows".into()))?;
        let mailbox_region = handle.register(region_len, flags)?;
        let banks = MailboxBank::new(
            Arc::clone(&mailbox_region),
            config.banks,
            config.mailboxes_per_bank,
            config.frame_capacity,
        )?;
        Ok(TwoChainsHost {
            handle,
            config,
            namespace: LinkerNamespace::new(),
            space: AddressSpace::new(),
            package: None,
            local_lib: HashMap::new(),
            injected_code_cache: HashMap::new(),
            sender_got_cache: HashMap::new(),
            resolved_got_cache: HashMap::new(),
            recv_scratch: Vec::new(),
            mailbox_region,
            banks,
            stats: RuntimeStats::new(),
            local_code_cursor: Self::LOCAL_CODE_BASE,
        })
    }

    /// This host's fabric id.
    pub fn host_id(&self) -> HostId {
        self.handle.id()
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Mutable access to the configuration (wait mode, skip-execution, security) —
    /// used by benchmarks to flip knobs between runs.
    pub fn config_mut(&mut self) -> &mut RuntimeConfig {
        &mut self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// Reset statistics.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// The underlying fabric host handle (stashing/prefetcher/stressor toggles).
    pub fn fabric_host(&self) -> &HostHandle {
        &self.handle
    }

    /// Toggle LLC stashing for traffic arriving at this host.
    pub fn set_stashing(&self, enabled: bool) {
        self.handle.set_stashing(enabled);
    }

    /// Attach or remove a memory stressor (tail-latency experiments).
    pub fn set_stressor(&self, stressor: Option<MemoryStressor>) {
        self.handle.set_stressor(stressor);
    }

    /// Drop every cached decoded program and GOT image. Called automatically when a
    /// package is (re)installed or a ried is loaded (live update may rebind symbols
    /// or change code); exposed publicly so benchmarks can measure the cold path.
    pub fn invalidate_injection_caches(&mut self) {
        self.injected_code_cache.clear();
        self.sender_got_cache.clear();
        self.resolved_got_cache.clear();
    }

    /// Number of decoded programs currently cached (introspection for tests and
    /// benchmarks).
    pub fn injected_cache_len(&self) -> usize {
        self.injected_code_cache.len()
    }

    /// Load a ried into this process's namespace and map its data objects.
    ///
    /// Loading a ried is a live update: symbolic names may now resolve differently,
    /// so every cached GOT resolution (and, conservatively, cached programs) is
    /// invalidated. The next message per element repopulates the caches.
    pub fn load_ried(&mut self, ried: &Ried, replace: bool) -> AmResult<()> {
        self.namespace.load_ried(ried, replace)?;
        self.namespace.map_data_segments(&mut self.space)?;
        self.invalidate_injection_caches();
        Ok(())
    }

    /// Install a package: load its rieds, then build the Local Function library from
    /// its jams (resolving each jam's GOT against this process's namespace and
    /// keeping the resident code warm in the receiver's caches).
    ///
    /// Reinstalling invalidates the injection caches: element ids may now name
    /// different code, so cached decodes keyed by the old content must not survive.
    pub fn install_package(&mut self, package: Package) -> AmResult<()> {
        for (_, ried) in package.rieds() {
            self.namespace.load_ried(ried, true)?;
        }
        self.namespace.map_data_segments(&mut self.space)?;
        for (id, jam) in package.jams() {
            let program: Arc<[Instr]> = jam.program()?.into();
            let got = Arc::new(self.namespace.resolve_got(&jam.got)?);
            let code_len = jam.code_size();
            let code_base = self.local_code_cursor;
            self.local_code_cursor += (code_len.div_ceil(4096) * 4096) as u64 + 4096;
            // The Local Function library is resident: it has been executed before (or
            // at least loaded and touched), so keep it warm in the receiver's L2/LLC.
            self.handle
                .hierarchy()
                .lock()
                .warm_l2(self.config.receiver_core, code_base, code_len);
            self.local_lib.insert(
                id.0,
                LocalEntry {
                    program,
                    got,
                    code_base,
                },
            );
        }
        self.package = Some(package);
        self.invalidate_injection_caches();
        Ok(())
    }

    /// The installed package.
    pub fn package(&self) -> Option<&Package> {
        self.package.as_ref()
    }

    /// Element id of a builtin benchmark jam in the installed package.
    pub fn builtin_id(&self, jam: BuiltinJam) -> AmResult<ElementId> {
        self.package
            .as_ref()
            .and_then(|p| p.id_of(jam.element_name()))
            .ok_or(AmError::UnknownElement(u32::MAX))
    }

    /// The GOT image for `elem`, resolved against *this* process's namespace. A
    /// receiver exports this to senders during connection setup; senders embed it in
    /// Injected Function frames (the paper's "GOT redirect ... is set by the sender
    /// after an exchange with the receiver").
    pub fn export_got(&self, elem: ElementId) -> AmResult<GotImage> {
        let pkg = self
            .package
            .as_ref()
            .ok_or(AmError::UnknownElement(elem.0))?;
        let jam = pkg.jam(elem)?;
        Ok(self.namespace.resolve_got(&jam.got)?)
    }

    /// The mailbox target a sender should aim at for (`bank`, `slot`).
    pub fn mailbox_target(&self, bank: usize, slot: usize) -> AmResult<MailboxTarget> {
        Ok(self.banks.mailbox(bank, slot)?.target())
    }

    /// The receiver's mailbox banks.
    pub fn banks(&self) -> &MailboxBank {
        &self.banks
    }

    /// Read a ried-exported data object (for tests and examples that verify
    /// server-side effects, e.g. the Server-Side Sum result array).
    pub fn read_data(&self, symbol: &str, offset: usize, len: usize) -> AmResult<Vec<u8>> {
        let addr = self
            .namespace
            .data_addr(symbol)
            .ok_or_else(|| AmError::Link(format!("no data symbol {symbol}")))?;
        Ok(self
            .space
            .read(addr + offset as u64, len)
            .map_err(|e| AmError::Exec(e.to_string()))?
            .to_vec())
    }

    /// Process the message sitting in mailbox (`bank`, `slot`).
    ///
    /// * `arrival` — when the frame's signal byte became visible (from the sender's
    ///   [`AmSendOutcome::delivered`]).
    /// * `ready_since` — when the receiver thread started waiting on this mailbox.
    /// * `frame_len` — the fixed frame size, or `None` to use the variable-frame
    ///   two-step protocol.
    pub fn receive(
        &mut self,
        bank: usize,
        slot: usize,
        frame_len: Option<usize>,
        arrival: SimTime,
        ready_since: SimTime,
    ) -> AmResult<ReceiveOutcome> {
        // Take the scratch buffer out of `self` so the borrowed FrameView can coexist
        // with `&mut self` calls; it is restored (with its grown capacity) afterwards.
        let mut scratch = std::mem::take(&mut self.recv_scratch);
        let result =
            self.receive_with_scratch(bank, slot, frame_len, arrival, ready_since, &mut scratch);
        self.recv_scratch = scratch;
        result
    }

    fn receive_with_scratch(
        &mut self,
        bank: usize,
        slot: usize,
        frame_len: Option<usize>,
        arrival: SimTime,
        ready_since: SimTime,
        scratch: &mut Vec<u8>,
    ) -> AmResult<ReceiveOutcome> {
        let mailbox = self.banks.mailbox(bank, slot)?.clone();
        let core = self.config.receiver_core;

        // 1. Wait for the signal byte.
        let wait_dur = arrival.saturating_sub(ready_since);
        let wait = self.config.wait_model.wait(self.config.wait_mode, wait_dur);
        let mut jitter = SimTime::ZERO;
        {
            let hierarchy = self.handle.hierarchy();
            let mut h = hierarchy.lock();
            if h.stressed() {
                jitter = h.scheduler_jitter();
            }
        }
        let detected_at = ready_since + wait.elapsed + jitter;

        // Functional check + frame length discovery.
        let frame_len = match frame_len {
            Some(len) => {
                if !mailbox.poll_fixed(len)? {
                    return Err(AmError::Empty);
                }
                len
            }
            None => mailbox.poll_variable()?.ok_or(AmError::Empty)?,
        };
        mailbox.read_frame_into(frame_len, scratch)?;
        let frame = FrameView::parse(scratch)?;

        // 2. Read the header (charged against wherever the frame landed).
        let mut handler_time = SimTime::ZERO;
        {
            let hierarchy = self.handle.hierarchy();
            let mut h = hierarchy.lock();
            handler_time += h.access(
                core,
                mailbox.base_addr(),
                FRAME_HEADER_SIZE,
                AccessKind::Read,
            );
        }

        let mode = if frame.header.injected {
            InvocationMode::Injected
        } else {
            InvocationMode::Local
        };
        handler_time += SimTime::from_ns_f64(match mode {
            InvocationMode::Injected => self.config.injected_dispatch_ns,
            InvocationMode::Local => self.config.local_dispatch_ns,
        });

        let mut exec_stats = None;
        let mut result = 0u64;
        let mut exec_time = SimTime::ZERO;

        if !self.config.skip_execution {
            // 3. Security policy.
            if mode == InvocationMode::Injected
                && self.config.security.require_execute_permission
                && !self.mailbox_region.flags().remote_execute
            {
                return Err(AmError::PolicyViolation(
                    "mailbox region lacks remote-execute permission".into(),
                ));
            }

            // 4. Resolve the GOT and the program, through the injection caches for
            // Injected mode and by Arc-shared Local Function entries otherwise.
            let (program, got, code_base) = match mode {
                InvocationMode::Injected => {
                    let got = self.injected_got(&frame, mailbox.base_addr(), &mut handler_time)?;
                    let program = self.injected_program(
                        &frame,
                        got.len(),
                        mailbox.base_addr(),
                        &mut handler_time,
                    )?;
                    let code_base = mailbox.base_addr() + frame.code_offset() as u64;
                    (program, got, code_base)
                }
                InvocationMode::Local => {
                    let entry = self
                        .local_lib
                        .get(&frame.header.elem_id)
                        .ok_or(AmError::UnknownElement(frame.header.elem_id))?;
                    (
                        Arc::clone(&entry.program),
                        Arc::clone(&entry.got),
                        entry.code_base,
                    )
                }
            };

            // 5. Map the message's ARGS and USR sections at their mailbox addresses so
            // every access is charged against the lines the NIC delivered. These are
            // the only sections copied out of the receive buffer — the jam may write
            // to them (subject to policy), so they need their own backing store.
            let args_base = mailbox.base_addr() + frame.args_offset() as u64;
            let usr_base = mailbox.base_addr() + frame.usr_offset() as u64;
            let args_writable = !self.config.security.read_only_args;
            let usr_writable = !self.config.security.read_only_payload;
            self.space
                .map(Segment::new(
                    "msg.args",
                    args_base,
                    frame.args.to_vec(),
                    args_writable,
                    SegmentKind::Args,
                ))
                .map_err(|e| AmError::Exec(e.to_string()))?;
            self.space
                .map(Segment::new(
                    "msg.usr",
                    usr_base,
                    frame.usr.to_vec(),
                    usr_writable,
                    SegmentKind::Payload,
                ))
                .map_err(|e| AmError::Exec(e.to_string()))?;

            let vm_cfg = VmConfig {
                core,
                code_base,
                fuel: 50_000_000,
                freq_ghz: self.config.wait_model.core_freq_ghz,
                ipc: 2.0,
                extern_call_overhead: SimTime::from_ns(6),
                entry_regs: [args_base, usr_base, frame.usr.len() as u64],
            };
            let exec_result = {
                let hierarchy = self.handle.hierarchy();
                let mut guard = hierarchy.lock();
                Vm::execute(
                    &program,
                    &got,
                    self.namespace.externs(),
                    &mut self.space,
                    &mut *guard,
                    &vm_cfg,
                )
            };
            self.space.unmap("msg.args");
            self.space.unmap("msg.usr");
            let stats = exec_result?;
            exec_time = stats.total_time();
            handler_time += exec_time;
            result = stats.result;
            exec_stats = Some(stats);
            self.stats.executions += 1;
            match mode {
                InvocationMode::Injected => self.stats.injected_executions += 1,
                InvocationMode::Local => self.stats.local_executions += 1,
            }
        }

        // 6. Reset the mailbox for reuse.
        mailbox.clear(frame_len)?;

        let handler_done = detected_at + handler_time;
        self.stats.messages_received += 1;
        self.stats.wait_time += wait.elapsed;
        self.stats.exec_time += handler_time;
        self.stats.cycles.add_wait(wait.cycles);
        self.stats
            .cycles
            .add_work_time(handler_time, self.config.wait_model.core_freq_ghz);

        Ok(ReceiveOutcome {
            detected_at,
            handler_done,
            wait,
            exec: exec_stats,
            result,
            handler_time,
            dispatch_time: handler_time - exec_time,
        })
    }

    /// Resolve the GOT image of an injected frame, through the GOT caches.
    fn injected_got(
        &mut self,
        frame: &FrameView<'_>,
        mailbox_base: u64,
        handler_time: &mut SimTime,
    ) -> AmResult<Arc<GotImage>> {
        let elem_id = frame.header.elem_id;
        if self.config.security.accept_sender_got {
            // Hash (and, on a candidate hit, compare) the sender-provided image in
            // place; like the code hash this streams the arrived bytes, so it is
            // charged as a read of the section wherever the frame landed.
            *handler_time += SimTime::from_ns_f64(frame.got.len() as f64 * HASH_NS_PER_BYTE);
            {
                let core = self.config.receiver_core;
                let hierarchy = self.handle.hierarchy();
                let mut h = hierarchy.lock();
                *handler_time += h.access(
                    core,
                    mailbox_base + frame.got_offset() as u64,
                    frame.got.len().max(1),
                    AccessKind::Read,
                );
            }
            let key = (elem_id, hash64_bytes(frame.got));
            if let Some(cached) = self.sender_got_cache.get(&key) {
                if &*cached.bytes == frame.got {
                    self.stats.got_cache_hits += 1;
                    return Ok(Arc::clone(&cached.image));
                }
                // 64-bit hash collision with different bytes: re-parse and replace.
            }
            self.stats.got_cache_misses += 1;
            let image = Arc::new(
                GotImage::from_bytes(frame.got)
                    .ok_or_else(|| AmError::BadFrame("bad GOT image".into()))?,
            );
            *handler_time += SimTime::from_ns_f64(frame.got.len() as f64 * GOT_PARSE_NS_PER_BYTE);
            if self.sender_got_cache.len() >= MAX_INJECTION_CACHE_ENTRIES
                && !self.sender_got_cache.contains_key(&key)
            {
                self.sender_got_cache.clear();
            }
            self.sender_got_cache.insert(
                key,
                CachedGot {
                    bytes: frame.got.into(),
                    image: Arc::clone(&image),
                },
            );
            Ok(image)
        } else {
            // Hardened mode: ignore the sender's GOT, re-resolve locally. The cache
            // amortises the resolution *work* (building the slot vector), but the
            // policy's modelled per-message cost is charged on every message — the
            // hardening of §V is a per-message check, and the cost model must keep
            // saying so whether or not the host reuses the resolved image.
            if let Some(got) = self.resolved_got_cache.get(&elem_id) {
                self.stats.got_cache_hits += 1;
                *handler_time += self.config.security.per_message_overhead(got.len());
                return Ok(Arc::clone(got));
            }
            self.stats.got_cache_misses += 1;
            let pkg = self
                .package
                .as_ref()
                .ok_or(AmError::UnknownElement(elem_id))?;
            let jam = pkg.jam(ElementId(elem_id))?;
            *handler_time += self.config.security.per_message_overhead(jam.got.len());
            let got = Arc::new(self.namespace.resolve_got(&jam.got)?);
            self.resolved_got_cache.insert(elem_id, Arc::clone(&got));
            Ok(got)
        }
    }

    /// Resolve the decoded program of an injected frame, through the code cache.
    fn injected_program(
        &mut self,
        frame: &FrameView<'_>,
        got_slots: usize,
        mailbox_base: u64,
        handler_time: &mut SimTime,
    ) -> AmResult<Arc<[Instr]>> {
        let core = self.config.receiver_core;
        let code_base = mailbox_base + frame.code_offset() as u64;
        // Content hash over the arrived code: the cache-key computation. The hash
        // streams every code byte through the receiver core, so it is charged as a
        // full read of the section — these reads hit the LLC when the frame was
        // stashed and go to DRAM otherwise, which keeps the stash benefit visible on
        // the warm path too (and leaves the lines hot for the VM's fetches).
        *handler_time += SimTime::from_ns_f64(frame.code.len() as f64 * HASH_NS_PER_BYTE);
        {
            let hierarchy = self.handle.hierarchy();
            let mut h = hierarchy.lock();
            *handler_time += h.access(core, code_base, frame.code.len().max(1), AccessKind::Read);
        }
        let key = (frame.header.elem_id, hash64_bytes(frame.code));
        if let Some(cached) = self.injected_code_cache.get(&key) {
            if &*cached.code == frame.code {
                // Verification depends on the GOT size, which varies per message:
                // the cached program must still fit inside *this* message's GOT, or
                // a warm hit would execute a program the cold path rejects.
                if got_slots < cached.min_got_slots {
                    return Err(AmError::BadFrame(format!(
                        "cached program references GOT slot {} but the message GOT has only {} slots",
                        cached.min_got_slots - 1,
                        got_slots
                    )));
                }
                self.stats.injected_code_cache_hits += 1;
                return Ok(Arc::clone(&cached.program));
            }
            // 64-bit hash collision with different bytes: re-decode and replace.
        }
        self.stats.injected_code_cache_misses += 1;

        // Cold miss: the receiver walks the freshly arrived code (relocation check +
        // landing-pad setup), then decodes and verifies the bytecode before caching
        // the result. Together with the hash stream above, these reads are the
        // dominant term of the stash benefit for Injected Function messages
        // (Figs. 9–10).
        {
            let hierarchy = self.handle.hierarchy();
            let mut h = hierarchy.lock();
            *handler_time += h.access(core, code_base, frame.code.len().max(1), AccessKind::Fetch);
        }
        let program = decode_program(frame.code).map_err(|e| AmError::BadFrame(e.to_string()))?;
        verify(&program, got_slots).map_err(|e| AmError::BadFrame(e.to_string()))?;
        *handler_time += SimTime::from_ns_f64(
            frame.code.len() as f64 * (DECODE_NS_PER_BYTE + VERIFY_NS_PER_BYTE),
        );
        // The smallest GOT this program verifies against: later hits re-check it
        // against their own message's GOT size in O(1).
        let min_got_slots = program
            .iter()
            .filter_map(|i| match *i {
                Instr::CallExtern { slot, .. } => Some(slot as usize + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let program: Arc<[Instr]> = program.into();
        if self.injected_code_cache.len() >= MAX_INJECTION_CACHE_ENTRIES
            && !self.injected_code_cache.contains_key(&key)
        {
            self.injected_code_cache.clear();
        }
        self.injected_code_cache.insert(
            key,
            CachedProgram {
                code: frame.code.into(),
                program: Arc::clone(&program),
                min_got_slots,
            },
        );
        Ok(program)
    }
}

/// A sender-side cached frame template for one element: the receiver-patched GOT
/// image and the encoded code, captured once and memcpy'd into every later frame.
#[derive(Debug, Clone)]
struct FrameTemplate {
    got: Arc<[u8]>,
    code: Arc<[u8]>,
}

/// The sender-side runtime object.
pub struct TwoChainsSender {
    endpoint: Endpoint,
    package: Package,
    /// GOT images exported by the receiver, keyed by element id.
    remote_gots: HashMap<u32, Arc<[u8]>>,
    /// Per-element frame templates (pre-patched GOT + encoded code).
    templates: HashMap<u32, FrameTemplate>,
    /// Reusable wire-encode buffer; steady-state sends do not allocate.
    encode_buf: Vec<u8>,
    sn: u32,
    /// Per-byte frame packing cost (the message packing routines of §III-A).
    pack_ns_per_byte: f64,
    /// Fixed packing overhead.
    pack_fixed: SimTime,
    stats: RuntimeStats,
}

impl std::fmt::Debug for TwoChainsSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TwoChainsSender")
            .field("package", &self.package.name())
            .field("sn", &self.sn)
            .field("templates", &self.templates.len())
            .finish()
    }
}

impl TwoChainsSender {
    /// Create a sender over an existing endpoint, with the package it will inject from.
    pub fn new(endpoint: Endpoint, package: Package) -> Self {
        TwoChainsSender {
            endpoint,
            package,
            remote_gots: HashMap::new(),
            templates: HashMap::new(),
            encode_buf: Vec::new(),
            sn: 0,
            pack_ns_per_byte: 0.002,
            pack_fixed: SimTime::from_ns(35),
            stats: RuntimeStats::new(),
        }
    }

    /// Record the GOT image the receiver exported for `elem` (out-of-band exchange
    /// during setup). Replacing an element's GOT drops its frame template; the next
    /// send re-patches once and re-caches.
    pub fn set_remote_got(&mut self, elem: ElementId, got: &GotImage) {
        self.remote_gots.insert(elem.0, got.to_bytes().into());
        self.templates.remove(&elem.0);
    }

    /// Sender statistics.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// The underlying endpoint (for flushes and resets between benchmark phases).
    pub fn endpoint_mut(&mut self) -> &mut Endpoint {
        &mut self.endpoint
    }

    /// The frame template for `elem`, building (and counting) it on first use.
    fn template(&mut self, elem: ElementId) -> AmResult<&FrameTemplate> {
        if self.templates.contains_key(&elem.0) {
            self.stats.template_hits += 1;
        } else {
            self.stats.template_misses += 1;
            let jam = self.package.jam(elem)?;
            let got =
                self.remote_gots.get(&elem.0).cloned().ok_or_else(|| {
                    AmError::Link(format!("no remote GOT for element {}", elem.0))
                })?;
            let code: Arc<[u8]> = jam.text.clone().into();
            self.templates.insert(elem.0, FrameTemplate { got, code });
        }
        Ok(&self.templates[&elem.0])
    }

    /// Pack a frame for element `elem` with the given invocation mode, argument block
    /// and payload. Injected frames require the receiver's GOT image to have been set
    /// with [`TwoChainsSender::set_remote_got`].
    ///
    /// This materialises an owned [`Frame`] (useful for inspection and tests); the
    /// allocation-free path is [`TwoChainsSender::send_message`].
    pub fn pack(
        &mut self,
        elem: ElementId,
        mode: InvocationMode,
        args: Vec<u8>,
        usr: Vec<u8>,
    ) -> AmResult<Frame> {
        crate::frame::validate_section_lens(&[], &[], &args, &usr)?;
        self.sn = self.sn.wrapping_add(1);
        let sn = self.sn;
        let frame = match mode {
            InvocationMode::Local => Frame::local(sn, elem.0, args, usr),
            InvocationMode::Injected => {
                let tpl = self.template(elem)?;
                crate::frame::validate_section_lens(&tpl.got, &tpl.code, &args, &usr)?;
                Frame::injected(sn, elem.0, tpl.got.to_vec(), tpl.code.to_vec(), args, usr)
            }
        };
        Ok(frame)
    }

    /// Cost of packing `frame` on the sending CPU.
    pub fn pack_cost(&self, frame: &Frame) -> SimTime {
        self.pack_cost_for_len(frame.wire_size())
    }

    /// The §III-A packing cost model for a frame of `len` wire bytes — the single
    /// definition both [`TwoChainsSender::pack_cost`] and the send paths charge.
    fn pack_cost_for_len(&self, len: usize) -> SimTime {
        self.pack_fixed + SimTime::from_ns_f64(len as f64 * self.pack_ns_per_byte)
    }

    /// Send an already-packed frame: encode into the reusable scratch buffer and put.
    pub fn send(
        &mut self,
        now: SimTime,
        frame: &Frame,
        target: &MailboxTarget,
    ) -> AmResult<AmSendOutcome> {
        let mut buf = std::mem::take(&mut self.encode_buf);
        frame.encode_into(&mut buf);
        let result = self.put_frame(now, &buf, target);
        self.encode_buf = buf;
        result
    }

    /// The allocation-free send path: encode the frame for `elem` directly from the
    /// template cache (GOT + code memcpy'd from their `Arc`s) and the borrowed
    /// `args`/`usr` slices into the reusable scratch buffer, then put. Produces wire
    /// bytes identical to [`TwoChainsSender::pack`] + [`TwoChainsSender::send`].
    pub fn send_message(
        &mut self,
        now: SimTime,
        elem: ElementId,
        mode: InvocationMode,
        args: &[u8],
        usr: &[u8],
        target: &MailboxTarget,
    ) -> AmResult<AmSendOutcome> {
        crate::frame::validate_section_lens(&[], &[], args, usr)?;
        self.sn = self.sn.wrapping_add(1);
        let sn = self.sn;
        let mut buf = std::mem::take(&mut self.encode_buf);
        let encoded = match mode {
            InvocationMode::Local => {
                encode_wire_into(sn, elem.0, false, &[], &[], args, usr, &mut buf);
                Ok(())
            }
            InvocationMode::Injected => match self.template(elem) {
                Ok(tpl) => {
                    match crate::frame::validate_section_lens(&tpl.got, &tpl.code, args, usr) {
                        Ok(()) => {
                            encode_wire_into(
                                sn, elem.0, true, &tpl.got, &tpl.code, args, usr, &mut buf,
                            );
                            Ok(())
                        }
                        Err(e) => Err(e),
                    }
                }
                Err(e) => Err(e),
            },
        };
        let result = match encoded {
            Ok(()) => self.put_frame(now, &buf, target),
            Err(e) => Err(e),
        };
        self.encode_buf = buf;
        result
    }

    /// Common tail of both send paths: capacity check, pack-cost model, one put.
    fn put_frame(
        &mut self,
        now: SimTime,
        bytes: &[u8],
        target: &MailboxTarget,
    ) -> AmResult<AmSendOutcome> {
        if bytes.len() > target.capacity {
            return Err(AmError::FrameTooLarge {
                needed: bytes.len(),
                capacity: target.capacity,
            });
        }
        let pack_cost = self.pack_cost_for_len(bytes.len());
        let put = self
            .endpoint
            .put(now + pack_cost, bytes, &target.region, target.offset)?;
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes.len() as u64;
        Ok(AmSendOutcome {
            pack_cost,
            put,
            wire_bytes: bytes.len(),
        })
    }

    /// Element id helper for the builtin benchmark jams.
    pub fn builtin_id(&self, jam: BuiltinJam) -> AmResult<ElementId> {
        self.package
            .id_of(jam.element_name())
            .ok_or(AmError::UnknownElement(u32::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::{benchmark_package, indirect_put_args, ssum_args, BuiltinJam};
    use twochains_memsim::TestbedConfig;

    /// Build the standard two-host testbed with the benchmark package installed on
    /// both sides and the receiver's GOT images exported to the sender.
    fn testbed(cfg: RuntimeConfig) -> (TwoChainsHost, TwoChainsSender) {
        let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
        let mut receiver = TwoChainsHost::new(&fabric, b, cfg).unwrap();
        receiver
            .install_package(benchmark_package().unwrap())
            .unwrap();
        let ep = fabric.endpoint(a, b).unwrap();
        let mut sender = TwoChainsSender::new(ep, benchmark_package().unwrap());
        for jam in [BuiltinJam::ServerSideSum, BuiltinJam::IndirectPut] {
            let id = receiver.builtin_id(jam).unwrap();
            let got = receiver.export_got(id).unwrap();
            sender.set_remote_got(id, &got);
        }
        (receiver, sender)
    }

    fn payload(n_ints: usize) -> Vec<u8> {
        (0..n_ints as u32)
            .flat_map(|v| (v + 1).to_le_bytes())
            .collect()
    }

    #[test]
    fn injected_server_side_sum_end_to_end() {
        let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
        let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
        let frame = tx
            .pack(id, InvocationMode::Injected, ssum_args(8), payload(8))
            .unwrap();
        let target = rx.mailbox_target(0, 0).unwrap();
        let send = tx.send(SimTime::ZERO, &frame, &target).unwrap();
        let out = rx
            .receive(
                0,
                0,
                Some(frame.wire_size()),
                send.delivered(),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(out.result, (1..=8u64).sum::<u64>());
        assert!(out.handler_done > send.delivered());
        assert!(out.exec.is_some());
        // Server-side array holds the sum.
        let arr = rx.read_data("array.base", 8, 8).unwrap();
        assert_eq!(u64::from_le_bytes(arr.try_into().unwrap()), 36);
        assert_eq!(rx.stats().injected_executions, 1);
    }

    #[test]
    fn local_and_injected_produce_identical_results() {
        let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
        let id = rx.builtin_id(BuiltinJam::IndirectPut).unwrap();
        let target = rx.mailbox_target(0, 0).unwrap();
        let mut results = Vec::new();
        for mode in InvocationMode::ALL {
            let frame = tx
                .pack(id, mode, indirect_put_args(42, 16, 4), payload(16))
                .unwrap();
            let send = tx.send(SimTime::ZERO, &frame, &target).unwrap();
            let out = rx
                .receive(
                    0,
                    0,
                    Some(frame.wire_size()),
                    send.delivered(),
                    SimTime::ZERO,
                )
                .unwrap();
            results.push(out.result);
        }
        assert_eq!(
            results[0], results[1],
            "same key must land at the same offset"
        );
        assert_eq!(rx.stats().local_executions, 1);
        assert_eq!(rx.stats().injected_executions, 1);
    }

    #[test]
    fn injected_frames_are_larger_but_not_slower_for_big_payloads() {
        let (rx, mut tx) = testbed(RuntimeConfig::paper_default());
        let id = rx.builtin_id(BuiltinJam::IndirectPut).unwrap();
        let target = rx.mailbox_target(0, 0).unwrap();
        let local = tx
            .pack(
                id,
                InvocationMode::Local,
                indirect_put_args(1, 1, 4),
                payload(1),
            )
            .unwrap();
        let injected = tx
            .pack(
                id,
                InvocationMode::Injected,
                indirect_put_args(1, 1, 4),
                payload(1),
            )
            .unwrap();
        assert_eq!(local.wire_size(), 64);
        assert_eq!(injected.wire_size(), 1472);
        let _ = (&rx, &target);
    }

    #[test]
    fn without_execution_skips_the_handler() {
        let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default().without_execution());
        let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
        let frame = tx
            .pack(id, InvocationMode::Injected, ssum_args(4), payload(4))
            .unwrap();
        let target = rx.mailbox_target(0, 0).unwrap();
        let send = tx.send(SimTime::ZERO, &frame, &target).unwrap();
        let out = rx
            .receive(
                0,
                0,
                Some(frame.wire_size()),
                send.delivered(),
                SimTime::ZERO,
            )
            .unwrap();
        assert!(out.exec.is_none());
        assert_eq!(out.result, 0);
        assert_eq!(rx.stats().executions, 0);
        assert_eq!(rx.stats().messages_received, 1);
    }

    #[test]
    fn hardened_policy_reresolves_got_and_still_works() {
        let mut cfg = RuntimeConfig::paper_default();
        cfg.security = crate::security::SecurityPolicy::hardened();
        let (mut rx, mut tx) = testbed(cfg);
        let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
        // Corrupt the sender's notion of the GOT — the hardened receiver ignores it.
        tx.set_remote_got(id, &GotImage::with_slots(1));
        let frame = tx
            .pack(id, InvocationMode::Injected, ssum_args(4), payload(4))
            .unwrap();
        let target = rx.mailbox_target(0, 0).unwrap();
        let send = tx.send(SimTime::ZERO, &frame, &target).unwrap();
        let out = rx
            .receive(
                0,
                0,
                Some(frame.wire_size()),
                send.delivered(),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(out.result, 10);
    }

    #[test]
    fn unknown_local_element_is_rejected() {
        let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
        let frame = tx.pack(
            ElementId(999),
            InvocationMode::Local,
            ssum_args(1),
            payload(1),
        );
        // Packing a local frame for an unknown element succeeds (the id is opaque to
        // the sender) but the receiver rejects it.
        let frame = frame.unwrap();
        let target = rx.mailbox_target(0, 0).unwrap();
        let send = tx.send(SimTime::ZERO, &frame, &target).unwrap();
        let err = rx
            .receive(
                0,
                0,
                Some(frame.wire_size()),
                send.delivered(),
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, AmError::UnknownElement(999)));
    }

    #[test]
    fn empty_mailbox_reports_empty() {
        let (mut rx, _tx) = testbed(RuntimeConfig::paper_default());
        let err = rx
            .receive(0, 0, Some(64), SimTime::ZERO, SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, AmError::Empty);
        let err = rx
            .receive(0, 1, None, SimTime::ZERO, SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, AmError::Empty);
    }

    #[test]
    fn oversized_frame_rejected_at_send_time() {
        let mut cfg = RuntimeConfig::paper_default();
        cfg.frame_capacity = 2048;
        let (rx, mut tx) = testbed(cfg);
        let id = rx.builtin_id(BuiltinJam::IndirectPut).unwrap();
        let frame = tx
            .pack(
                id,
                InvocationMode::Injected,
                indirect_put_args(1, 4096, 4),
                payload(4096),
            )
            .unwrap();
        let target = rx.mailbox_target(0, 0).unwrap();
        assert!(matches!(
            tx.send(SimTime::ZERO, &frame, &target),
            Err(AmError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn injected_without_remote_got_fails_to_pack() {
        let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
        let mut rx = TwoChainsHost::new(&fabric, b, RuntimeConfig::paper_default()).unwrap();
        rx.install_package(benchmark_package().unwrap()).unwrap();
        // This sender never received the receiver's exported GOT images.
        let mut tx =
            TwoChainsSender::new(fabric.endpoint(a, b).unwrap(), benchmark_package().unwrap());
        let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
        let err = tx
            .pack(id, InvocationMode::Injected, ssum_args(1), payload(1))
            .unwrap_err();
        assert!(matches!(err, AmError::Link(_)));
        // Local frames need no GOT exchange.
        assert!(tx
            .pack(id, InvocationMode::Local, ssum_args(1), payload(1))
            .is_ok());
    }

    #[test]
    fn wfe_reduces_wait_cycles_but_not_results() {
        let (mut rx_poll, mut tx1) = testbed(RuntimeConfig::paper_default());
        let (mut rx_wfe, mut tx2) = testbed(RuntimeConfig::paper_default().with_wfe());
        let id = rx_poll.builtin_id(BuiltinJam::ServerSideSum).unwrap();
        for (rx, tx) in [(&mut rx_poll, &mut tx1), (&mut rx_wfe, &mut tx2)] {
            let frame = tx
                .pack(id, InvocationMode::Injected, ssum_args(8), payload(8))
                .unwrap();
            let target = rx.mailbox_target(0, 0).unwrap();
            let send = tx.send(SimTime::ZERO, &frame, &target).unwrap();
            let out = rx
                .receive(
                    0,
                    0,
                    Some(frame.wire_size()),
                    send.delivered(),
                    SimTime::ZERO,
                )
                .unwrap();
            assert_eq!(out.result, 36);
        }
        assert!(
            rx_wfe.stats().cycles.waiting() < rx_poll.stats().cycles.waiting() / 4,
            "WFE should burn far fewer wait cycles ({} vs {})",
            rx_wfe.stats().cycles.waiting(),
            rx_poll.stats().cycles.waiting()
        );
    }

    #[test]
    fn stashing_speeds_up_the_injected_handler() {
        let (mut rx_stash, mut tx1) = testbed(RuntimeConfig::paper_default());
        let (mut rx_nostash, mut tx2) = testbed(RuntimeConfig::paper_default());
        rx_nostash.set_stashing(false);
        let id = rx_stash.builtin_id(BuiltinJam::IndirectPut).unwrap();
        let mut handler_times = Vec::new();
        for (rx, tx) in [(&mut rx_stash, &mut tx1), (&mut rx_nostash, &mut tx2)] {
            let frame = tx
                .pack(
                    id,
                    InvocationMode::Injected,
                    indirect_put_args(7, 64, 4),
                    payload(64),
                )
                .unwrap();
            let target = rx.mailbox_target(0, 0).unwrap();
            let send = tx.send(SimTime::ZERO, &frame, &target).unwrap();
            let out = rx
                .receive(
                    0,
                    0,
                    Some(frame.wire_size()),
                    send.delivered(),
                    SimTime::ZERO,
                )
                .unwrap();
            handler_times.push(out.handler_time);
        }
        assert!(
            handler_times[0] < handler_times[1],
            "stashed handler ({}) should be faster than non-stashed ({})",
            handler_times[0],
            handler_times[1]
        );
    }

    // ---- fast-path cache behaviour -------------------------------------------------

    /// Drive `n` injected sends+receives of `elem` through the fast path.
    fn pump_injected(
        rx: &mut TwoChainsHost,
        tx: &mut TwoChainsSender,
        elem: ElementId,
        n: usize,
    ) -> Vec<ReceiveOutcome> {
        let target = rx.mailbox_target(0, 0).unwrap();
        let mut outs = Vec::with_capacity(n);
        for i in 0..n {
            let args = ssum_args(4);
            let usr = payload(4);
            let send = tx
                .send_message(
                    SimTime::ZERO,
                    elem,
                    InvocationMode::Injected,
                    &args,
                    &usr,
                    &target,
                )
                .unwrap();
            let out = rx
                .receive(0, 0, Some(send.wire_bytes), send.delivered(), SimTime::ZERO)
                .unwrap();
            assert_eq!(out.result, 10, "message {i} result");
            outs.push(out);
        }
        outs
    }

    #[test]
    fn steady_state_injected_dispatch_hits_all_caches() {
        let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
        let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
        let outs = pump_injected(&mut rx, &mut tx, id, 5);
        // Exactly one decode+verify and one GOT parse, ever: the acceptance criterion
        // "zero decode_program calls and zero program/GOT clones after the first
        // message for a given element".
        assert_eq!(rx.stats().injected_code_cache_misses, 1);
        assert_eq!(rx.stats().injected_code_cache_hits, 4);
        assert_eq!(rx.stats().got_cache_misses, 1);
        assert_eq!(rx.stats().got_cache_hits, 4);
        assert_eq!(rx.injected_cache_len(), 1);
        // Sender side: one template build, then pure memcpy sends.
        assert_eq!(tx.stats().template_misses, 1);
        assert_eq!(tx.stats().template_hits, 4);
        // The modelled dispatch cost drops once the caches are warm.
        assert!(
            outs[4].dispatch_time < outs[0].dispatch_time,
            "warm dispatch ({}) should be cheaper than cold ({})",
            outs[4].dispatch_time,
            outs[0].dispatch_time
        );
    }

    #[test]
    fn cache_invalidation_restores_the_cold_path() {
        let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
        let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
        pump_injected(&mut rx, &mut tx, id, 2);
        assert_eq!(rx.stats().injected_code_cache_misses, 1);
        rx.invalidate_injection_caches();
        assert_eq!(rx.injected_cache_len(), 0);
        pump_injected(&mut rx, &mut tx, id, 1);
        assert_eq!(
            rx.stats().injected_code_cache_misses,
            2,
            "post-invalidation miss"
        );
        // Package reinstall also invalidates (element ids may rebind).
        rx.install_package(benchmark_package().unwrap()).unwrap();
        assert_eq!(rx.injected_cache_len(), 0);
    }

    #[test]
    fn live_update_invalidates_caches() {
        use twochains_linker::RiedBuilder;
        let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
        let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
        pump_injected(&mut rx, &mut tx, id, 2);
        assert_eq!(rx.injected_cache_len(), 1);
        // Loading any ried is a live update: cached resolutions must not survive.
        rx.load_ried(&RiedBuilder::new("ried_noop").build(), true)
            .unwrap();
        assert_eq!(rx.injected_cache_len(), 0);
        pump_injected(&mut rx, &mut tx, id, 1);
        assert_eq!(rx.stats().injected_code_cache_misses, 2);
    }

    #[test]
    fn hardened_mode_caches_local_resolution() {
        let mut cfg = RuntimeConfig::paper_default();
        cfg.security = crate::security::SecurityPolicy::hardened();
        let (mut rx, mut tx) = testbed(cfg);
        let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
        pump_injected(&mut rx, &mut tx, id, 3);
        assert_eq!(rx.stats().got_cache_misses, 1, "one local re-resolution");
        assert_eq!(rx.stats().got_cache_hits, 2);
    }

    #[test]
    fn repeat_sends_are_byte_identical_without_repatching() {
        let (rx, mut tx) = testbed(RuntimeConfig::paper_default());
        let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
        let args = ssum_args(4);
        let usr = payload(4);
        // Two sends of the same element land in different mailboxes; capture both
        // wire images before receiving.
        let mut wires = Vec::new();
        for slot in 0..2 {
            let target = rx.mailbox_target(0, slot).unwrap();
            let send = tx
                .send_message(
                    SimTime::ZERO,
                    id,
                    InvocationMode::Injected,
                    &args,
                    &usr,
                    &target,
                )
                .unwrap();
            wires.push(
                rx.banks()
                    .mailbox(0, slot)
                    .unwrap()
                    .read_frame(send.wire_bytes)
                    .unwrap(),
            );
        }
        // Only one GOT patch / code capture happened for both sends.
        assert_eq!(tx.stats().template_misses, 1);
        assert_eq!(tx.stats().template_hits, 1);
        // The frames are byte-identical except the sequence number (header bytes 4..8
        // and its 3-byte trailer echo).
        let (a, b) = (&wires[0], &wires[1]);
        assert_eq!(a.len(), b.len());
        let len = a.len();
        for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
            let sn_bytes = (4..8).contains(&i) || (len - 4..len - 1).contains(&i);
            if sn_bytes {
                continue;
            }
            assert_eq!(
                x, y,
                "wire byte {i} differs between two sends of the same element"
            );
        }
    }

    #[test]
    fn send_message_matches_pack_plus_send() {
        let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
        let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
        let args = ssum_args(8);
        let usr = payload(8);
        // Fast path into slot 0.
        let t0 = rx.mailbox_target(0, 0).unwrap();
        let fast = tx
            .send_message(
                SimTime::ZERO,
                id,
                InvocationMode::Injected,
                &args,
                &usr,
                &t0,
            )
            .unwrap();
        // pack+send into slot 1.
        let t1 = rx.mailbox_target(0, 1).unwrap();
        let frame = tx
            .pack(id, InvocationMode::Injected, args.clone(), usr.clone())
            .unwrap();
        let slow = tx.send(SimTime::ZERO, &frame, &t1).unwrap();
        assert_eq!(fast.wire_bytes, slow.wire_bytes);
        assert_eq!(fast.pack_cost, slow.pack_cost, "identical pack-cost model");
        let out_fast = rx
            .receive(0, 0, Some(fast.wire_bytes), fast.delivered(), SimTime::ZERO)
            .unwrap();
        let out_slow = rx
            .receive(0, 1, Some(slow.wire_bytes), slow.delivered(), SimTime::ZERO)
            .unwrap();
        assert_eq!(out_fast.result, out_slow.result);
    }

    #[test]
    fn warm_hit_with_too_small_got_is_rejected_before_execution() {
        let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
        let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
        // Message 1: well-formed injected frame, populates the code cache.
        pump_injected(&mut rx, &mut tx, id, 1);
        // Message 2: same code, but an empty GOT image. The cold path would reject
        // this at verify time; a warm hit must reject it too, before executing.
        let good = tx
            .pack(id, InvocationMode::Injected, ssum_args(4), payload(4))
            .unwrap();
        let bad = Frame::injected(
            good.header.sn + 1,
            id.0,
            Vec::new(),
            good.code.clone(),
            ssum_args(4),
            payload(4),
        );
        let target = rx.mailbox_target(0, 0).unwrap();
        let send = tx.send(SimTime::ZERO, &bad, &target).unwrap();
        let executions_before = rx.stats().executions;
        let err = rx
            .receive(0, 0, Some(bad.wire_size()), send.delivered(), SimTime::ZERO)
            .unwrap_err();
        assert!(
            matches!(&err, AmError::BadFrame(m) if m.contains("GOT")),
            "expected a pre-execution GOT-size rejection, got {err:?}"
        );
        assert_eq!(
            rx.stats().executions,
            executions_before,
            "nothing must have executed"
        );
    }

    #[test]
    fn hardened_overhead_is_charged_on_every_message() {
        let mut cfg = RuntimeConfig::paper_default();
        cfg.security = crate::security::SecurityPolicy::hardened();
        let (mut rx, mut tx) = testbed(cfg);
        let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
        let outs = pump_injected(&mut rx, &mut tx, id, 3);
        // The resolution work is cached, but the policy's modelled per-message cost
        // must not be: warm hardened dispatch stays flat, and stays above what the
        // overhead-free model would charge.
        assert_eq!(
            outs[1].dispatch_time, outs[2].dispatch_time,
            "warm dispatch is steady"
        );
        let overhead = crate::security::SecurityPolicy::hardened().per_message_overhead(1);
        assert!(overhead > SimTime::ZERO);
        assert!(
            outs[2].dispatch_time > overhead,
            "warm hardened dispatch ({}) must include the per-message overhead ({overhead})",
            outs[2].dispatch_time
        );
    }

    #[test]
    fn oversized_args_rejected_at_the_sender() {
        let (rx, mut tx) = testbed(RuntimeConfig::paper_default());
        let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
        let target = rx.mailbox_target(0, 0).unwrap();
        // 70000 > u16::MAX: the args length does not fit its wire field. Both send
        // paths must error instead of emitting a self-inconsistent header.
        let big = vec![0u8; 70_000];
        let err = tx
            .pack(id, InvocationMode::Local, big.clone(), Vec::new())
            .unwrap_err();
        assert!(matches!(&err, AmError::BadFrame(m) if m.contains("ARGS")));
        let err = tx
            .send_message(SimTime::ZERO, id, InvocationMode::Local, &big, &[], &target)
            .unwrap_err();
        assert!(matches!(&err, AmError::BadFrame(m) if m.contains("ARGS")));
    }

    #[test]
    fn malformed_injected_code_is_rejected_not_cached() {
        let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
        let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
        let mut frame = tx
            .pack(id, InvocationMode::Injected, ssum_args(1), payload(1))
            .unwrap();
        // Truncate the code section to garbage of the declared length.
        for b in frame.code.iter_mut() {
            *b = 0xFF;
        }
        let target = rx.mailbox_target(0, 0).unwrap();
        let send = tx.send(SimTime::ZERO, &frame, &target).unwrap();
        let err = rx
            .receive(
                0,
                0,
                Some(frame.wire_size()),
                send.delivered(),
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, AmError::BadFrame(_)));
        assert_eq!(
            rx.injected_cache_len(),
            0,
            "garbage must not populate the cache"
        );
    }
}
