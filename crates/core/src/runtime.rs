//! The per-process Two-Chains runtime: host (receiver) side and sender side.
//!
//! A [`TwoChainsHost`] owns everything one process needs to participate: its fabric
//! host handle and registered mailbox region, its linker namespace with loaded rieds,
//! the persistent jam address space holding ried data objects, the Local Function
//! library built from the installed package, and the reactive mailbox banks.
//!
//! A [`TwoChainsSender`] is the initiator-side object: it packs frames (patching in
//! the GOT image the receiver exported during setup), pushes them with one one-sided
//! put, and tracks flow-control credits.
//!
//! All methods take and return virtual [`SimTime`]s so a benchmark harness can drive
//! both ends from a single thread deterministically; the same code paths can also be
//! driven by real threads (the examples do), in which case the virtual times are
//! simply accounting.

use std::collections::HashMap;
use std::sync::Arc;

use twochains_fabric::{AccessFlags, Endpoint, HostHandle, HostId, MemoryRegion, PutOutcome, SimFabric};
use twochains_jamvm::{
    decode_program, AddressSpace, ExecStats, GotImage, Instr, Segment, SegmentKind, Vm, VmConfig,
};
use twochains_linker::{ElementId, LinkerNamespace, Package, Ried};
use twochains_memsim::cycles::WaitOutcome;
use twochains_memsim::{AccessKind, MemoryBus, MemoryStressor, SimTime};

use crate::bank::MailboxBank;
use crate::builtin::BuiltinJam;
use crate::config::{InvocationMode, RuntimeConfig};
use crate::error::{AmError, AmResult};
use crate::frame::{Frame, FRAME_HEADER_SIZE};
use crate::mailbox::MailboxTarget;
use crate::stats::RuntimeStats;

/// One entry of the Local Function library: the program as loaded from the package,
/// its GOT resolved against this process's namespace, and the address at which the
/// resident code lives (kept warm in the receiver's caches).
#[derive(Debug, Clone)]
struct LocalEntry {
    program: Vec<Instr>,
    got: GotImage,
    code_base: u64,
    code_len: usize,
}

/// Outcome of processing one received active message.
#[derive(Debug, Clone)]
pub struct ReceiveOutcome {
    /// When the receiver observed the signal byte (wait included).
    pub detected_at: SimTime,
    /// When the handler finished (dispatch + execution included).
    pub handler_done: SimTime,
    /// The wait accounting (elapsed time and cycles burned).
    pub wait: WaitOutcome,
    /// Execution statistics (absent in the without-execution configuration).
    pub exec: Option<ExecStats>,
    /// The value the jam returned (0 when execution was skipped).
    pub result: u64,
    /// Receiver-side time excluding the wait (header read, dispatch, execution).
    pub handler_time: SimTime,
}

/// Outcome of sending one active message.
#[derive(Debug, Clone, Copy)]
pub struct AmSendOutcome {
    /// Frame-packing cost on the sending CPU.
    pub pack_cost: SimTime,
    /// The underlying one-sided put timing.
    pub put: PutOutcome,
    /// Total bytes on the wire.
    pub wire_bytes: usize,
}

impl AmSendOutcome {
    /// When the message (including its signal byte) is visible at the receiver.
    pub fn delivered(&self) -> SimTime {
        self.put.delivered
    }

    /// When the sending CPU is free again.
    pub fn sender_free(&self) -> SimTime {
        self.pack_cost + self.put.sender_free
    }
}

/// The receiver-side (and library-owner) runtime for one process.
pub struct TwoChainsHost {
    handle: HostHandle,
    config: RuntimeConfig,
    namespace: LinkerNamespace,
    space: AddressSpace,
    package: Option<Package>,
    local_lib: HashMap<u32, LocalEntry>,
    mailbox_region: Arc<MemoryRegion>,
    banks: MailboxBank,
    stats: RuntimeStats,
    local_code_cursor: u64,
}

impl std::fmt::Debug for TwoChainsHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TwoChainsHost")
            .field("host", &self.handle.id())
            .field("mailboxes", &self.banks.total())
            .field("local_lib", &self.local_lib.len())
            .finish()
    }
}

impl TwoChainsHost {
    /// Base simulated address at which Local Function library code is laid out.
    const LOCAL_CODE_BASE: u64 = 0x7000_0000;

    /// Create a host runtime on fabric host `id`.
    pub fn new(fabric: &SimFabric, id: HostId, config: RuntimeConfig) -> AmResult<Self> {
        config.validate().map_err(AmError::InvalidConfig)?;
        let handle = fabric.host(id)?;
        let flags = AccessFlags::rwx();
        let region_len = config.total_mailboxes() * config.frame_capacity;
        let mailbox_region = handle.register(region_len, flags)?;
        let banks = MailboxBank::new(
            Arc::clone(&mailbox_region),
            config.banks,
            config.mailboxes_per_bank,
            config.frame_capacity,
        )?;
        Ok(TwoChainsHost {
            handle,
            config,
            namespace: LinkerNamespace::new(),
            space: AddressSpace::new(),
            package: None,
            local_lib: HashMap::new(),
            mailbox_region,
            banks,
            stats: RuntimeStats::new(),
            local_code_cursor: Self::LOCAL_CODE_BASE,
        })
    }

    /// This host's fabric id.
    pub fn host_id(&self) -> HostId {
        self.handle.id()
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Mutable access to the configuration (wait mode, skip-execution, security) —
    /// used by benchmarks to flip knobs between runs.
    pub fn config_mut(&mut self) -> &mut RuntimeConfig {
        &mut self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// Reset statistics.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// The underlying fabric host handle (stashing/prefetcher/stressor toggles).
    pub fn fabric_host(&self) -> &HostHandle {
        &self.handle
    }

    /// Toggle LLC stashing for traffic arriving at this host.
    pub fn set_stashing(&self, enabled: bool) {
        self.handle.set_stashing(enabled);
    }

    /// Attach or remove a memory stressor (tail-latency experiments).
    pub fn set_stressor(&self, stressor: Option<MemoryStressor>) {
        self.handle.set_stressor(stressor);
    }

    /// Load a ried into this process's namespace and map its data objects.
    pub fn load_ried(&mut self, ried: &Ried, replace: bool) -> AmResult<()> {
        self.namespace.load_ried(ried, replace)?;
        self.namespace.map_data_segments(&mut self.space)?;
        Ok(())
    }

    /// Install a package: load its rieds, then build the Local Function library from
    /// its jams (resolving each jam's GOT against this process's namespace and
    /// keeping the resident code warm in the receiver's caches).
    pub fn install_package(&mut self, package: Package) -> AmResult<()> {
        for (_, ried) in package.rieds() {
            self.namespace.load_ried(ried, true)?;
        }
        self.namespace.map_data_segments(&mut self.space)?;
        for (id, jam) in package.jams() {
            let program = jam.program()?;
            let got = self.namespace.resolve_got(&jam.got)?;
            let code_len = jam.code_size();
            let code_base = self.local_code_cursor;
            self.local_code_cursor += ((code_len + 4095) / 4096 * 4096) as u64 + 4096;
            // The Local Function library is resident: it has been executed before (or
            // at least loaded and touched), so keep it warm in the receiver's L2/LLC.
            self.handle
                .hierarchy()
                .lock()
                .warm_l2(self.config.receiver_core, code_base, code_len);
            self.local_lib.insert(id.0, LocalEntry { program, got, code_base, code_len });
        }
        self.package = Some(package);
        Ok(())
    }

    /// The installed package.
    pub fn package(&self) -> Option<&Package> {
        self.package.as_ref()
    }

    /// Element id of a builtin benchmark jam in the installed package.
    pub fn builtin_id(&self, jam: BuiltinJam) -> AmResult<ElementId> {
        self.package
            .as_ref()
            .and_then(|p| p.id_of(jam.element_name()))
            .ok_or(AmError::UnknownElement(u32::MAX))
    }

    /// The GOT image for `elem`, resolved against *this* process's namespace. A
    /// receiver exports this to senders during connection setup; senders embed it in
    /// Injected Function frames (the paper's "GOT redirect ... is set by the sender
    /// after an exchange with the receiver").
    pub fn export_got(&self, elem: ElementId) -> AmResult<GotImage> {
        let pkg = self.package.as_ref().ok_or(AmError::UnknownElement(elem.0))?;
        let jam = pkg.jam(elem)?;
        Ok(self.namespace.resolve_got(&jam.got)?)
    }

    /// The mailbox target a sender should aim at for (`bank`, `slot`).
    pub fn mailbox_target(&self, bank: usize, slot: usize) -> AmResult<MailboxTarget> {
        Ok(self.banks.mailbox(bank, slot)?.target())
    }

    /// The receiver's mailbox banks.
    pub fn banks(&self) -> &MailboxBank {
        &self.banks
    }

    /// Read a ried-exported data object (for tests and examples that verify
    /// server-side effects, e.g. the Server-Side Sum result array).
    pub fn read_data(&self, symbol: &str, offset: usize, len: usize) -> AmResult<Vec<u8>> {
        let addr = self
            .namespace
            .data_addr(symbol)
            .ok_or_else(|| AmError::Link(format!("no data symbol {symbol}")))?;
        Ok(self
            .space
            .read(addr + offset as u64, len)
            .map_err(|e| AmError::Exec(e.to_string()))?
            .to_vec())
    }

    /// Process the message sitting in mailbox (`bank`, `slot`).
    ///
    /// * `arrival` — when the frame's signal byte became visible (from the sender's
    ///   [`AmSendOutcome::delivered`]).
    /// * `ready_since` — when the receiver thread started waiting on this mailbox.
    /// * `frame_len` — the fixed frame size, or `None` to use the variable-frame
    ///   two-step protocol.
    pub fn receive(
        &mut self,
        bank: usize,
        slot: usize,
        frame_len: Option<usize>,
        arrival: SimTime,
        ready_since: SimTime,
    ) -> AmResult<ReceiveOutcome> {
        let mailbox = self.banks.mailbox(bank, slot)?.clone();
        let core = self.config.receiver_core;

        // 1. Wait for the signal byte.
        let wait_dur = arrival.saturating_sub(ready_since);
        let wait = self.config.wait_model.wait(self.config.wait_mode, wait_dur);
        let mut jitter = SimTime::ZERO;
        {
            let hierarchy = self.handle.hierarchy();
            let mut h = hierarchy.lock();
            if h.stressed() {
                jitter = h.scheduler_jitter();
            }
        }
        let detected_at = ready_since + wait.elapsed + jitter;

        // Functional check + frame length discovery.
        let frame_len = match frame_len {
            Some(len) => {
                if !mailbox.poll_fixed(len)? {
                    return Err(AmError::Empty);
                }
                len
            }
            None => mailbox.poll_variable()?.ok_or(AmError::Empty)?,
        };
        let bytes = mailbox.read_frame(frame_len)?;
        let frame = Frame::decode(&bytes)?;

        // 2. Read the header (charged against wherever the frame landed).
        let mut handler_time = SimTime::ZERO;
        {
            let hierarchy = self.handle.hierarchy();
            let mut h = hierarchy.lock();
            handler_time += h.access(core, mailbox.base_addr(), FRAME_HEADER_SIZE, AccessKind::Read);
        }

        let mode = if frame.header.injected { InvocationMode::Injected } else { InvocationMode::Local };
        handler_time += SimTime::from_ns_f64(match mode {
            InvocationMode::Injected => self.config.injected_dispatch_ns,
            InvocationMode::Local => self.config.local_dispatch_ns,
        });

        let mut exec_stats = None;
        let mut result = 0u64;

        if !self.config.skip_execution {
            // 3. Security policy.
            if mode == InvocationMode::Injected
                && self.config.security.require_execute_permission
                && !self.mailbox_region.flags().remote_execute
            {
                return Err(AmError::PolicyViolation(
                    "mailbox region lacks remote-execute permission".into(),
                ));
            }

            // 4. Resolve the GOT and the program.
            let (program, got, code_base) = match mode {
                InvocationMode::Injected => {
                    let program = decode_program(&frame.code)
                        .map_err(|e| AmError::BadFrame(e.to_string()))?;
                    let got = if self.config.security.accept_sender_got {
                        GotImage::from_bytes(&frame.got)
                            .ok_or_else(|| AmError::BadFrame("bad GOT image".into()))?
                    } else {
                        // Hardened mode: ignore the sender's GOT, re-resolve locally.
                        let pkg =
                            self.package.as_ref().ok_or(AmError::UnknownElement(frame.header.elem_id))?;
                        let jam = pkg.jam(ElementId(frame.header.elem_id))?;
                        handler_time +=
                            self.config.security.per_message_overhead(jam.got.len());
                        self.namespace.resolve_got(&jam.got)?
                    };
                    let code_base = mailbox.base_addr() + frame.code_offset() as u64;
                    // The receiver walks the freshly arrived code and GOT image before
                    // jumping into it (relocation check + landing-pad setup). These
                    // reads hit the LLC when the frame was stashed and go to DRAM
                    // otherwise — the dominant term of the stash benefit for
                    // Injected Function messages (Figs. 9–10).
                    {
                        let hierarchy = self.handle.hierarchy();
                        let mut h = hierarchy.lock();
                        handler_time +=
                            h.access(core, code_base, frame.code.len().max(1), AccessKind::Fetch);
                        handler_time += h.access(
                            core,
                            mailbox.base_addr() + frame.got_offset() as u64,
                            frame.got.len().max(1),
                            AccessKind::Read,
                        );
                    }
                    handler_time += SimTime::from_ns_f64(frame.code.len() as f64 * 0.05);
                    (program, got, code_base)
                }
                InvocationMode::Local => {
                    let entry = self
                        .local_lib
                        .get(&frame.header.elem_id)
                        .ok_or(AmError::UnknownElement(frame.header.elem_id))?;
                    (entry.program.clone(), entry.got.clone(), entry.code_base)
                }
            };

            // 5. Map the message's ARGS and USR sections at their mailbox addresses so
            // every access is charged against the lines the NIC delivered.
            let args_base = mailbox.base_addr() + frame.args_offset() as u64;
            let usr_base = mailbox.base_addr() + frame.usr_offset() as u64;
            let args_writable = !self.config.security.read_only_args;
            let usr_writable = !self.config.security.read_only_payload;
            self.space
                .map(Segment::new("msg.args", args_base, frame.args.clone(), args_writable, SegmentKind::Args))
                .map_err(|e| AmError::Exec(e.to_string()))?;
            self.space
                .map(Segment::new("msg.usr", usr_base, frame.usr.clone(), usr_writable, SegmentKind::Payload))
                .map_err(|e| AmError::Exec(e.to_string()))?;

            let entry_program = with_entry_prologue(&program, args_base, usr_base, frame.usr.len());
            let vm_cfg = VmConfig {
                core,
                code_base,
                fuel: 50_000_000,
                freq_ghz: self.config.wait_model.core_freq_ghz,
                ipc: 2.0,
                extern_call_overhead: SimTime::from_ns(6),
            };
            let exec_result = {
                let hierarchy = self.handle.hierarchy();
                let mut guard = hierarchy.lock();
                Vm::execute(
                    &entry_program,
                    &got,
                    self.namespace.externs(),
                    &mut self.space,
                    &mut *guard,
                    &vm_cfg,
                )
            };
            self.space.unmap("msg.args");
            self.space.unmap("msg.usr");
            let stats = exec_result?;
            handler_time += stats.total_time();
            result = stats.result;
            exec_stats = Some(stats);
            self.stats.executions += 1;
            match mode {
                InvocationMode::Injected => self.stats.injected_executions += 1,
                InvocationMode::Local => self.stats.local_executions += 1,
            }
        }

        // 6. Reset the mailbox for reuse.
        mailbox.clear(frame_len)?;

        let handler_done = detected_at + handler_time;
        self.stats.messages_received += 1;
        self.stats.wait_time += wait.elapsed;
        self.stats.exec_time += handler_time;
        self.stats.cycles.add_wait(wait.cycles);
        self.stats.cycles.add_work_time(handler_time, self.config.wait_model.core_freq_ghz);

        Ok(ReceiveOutcome { detected_at, handler_done, wait, exec: exec_stats, result, handler_time })
    }
}

/// Prepend the entry-convention prologue (`r0` = ARGS, `r1` = USR, `r2` = USR length)
/// to a jam program, shifting branch targets accordingly.
fn with_entry_prologue(program: &[Instr], args_base: u64, usr_base: u64, usr_len: usize) -> Vec<Instr> {
    use twochains_jamvm::Reg;
    let mut out = Vec::with_capacity(program.len() + 3);
    out.push(Instr::LoadImm { dst: Reg(0), imm: args_base });
    out.push(Instr::LoadImm { dst: Reg(1), imm: usr_base });
    out.push(Instr::LoadImm { dst: Reg(2), imm: usr_len as u64 });
    for i in program {
        out.push(match *i {
            Instr::Jump { target } => Instr::Jump { target: target + 3 },
            Instr::Branch { cond, a, b, target } => Instr::Branch { cond, a, b, target: target + 3 },
            other => other,
        });
    }
    out
}

/// The sender-side runtime object.
pub struct TwoChainsSender {
    endpoint: Endpoint,
    package: Package,
    /// GOT images exported by the receiver, keyed by element id.
    remote_gots: HashMap<u32, Vec<u8>>,
    sn: u32,
    /// Per-byte frame packing cost (the message packing routines of §III-A).
    pack_ns_per_byte: f64,
    /// Fixed packing overhead.
    pack_fixed: SimTime,
    stats: RuntimeStats,
}

impl std::fmt::Debug for TwoChainsSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TwoChainsSender")
            .field("package", &self.package.name())
            .field("sn", &self.sn)
            .finish()
    }
}

impl TwoChainsSender {
    /// Create a sender over an existing endpoint, with the package it will inject from.
    pub fn new(endpoint: Endpoint, package: Package) -> Self {
        TwoChainsSender {
            endpoint,
            package,
            remote_gots: HashMap::new(),
            sn: 0,
            pack_ns_per_byte: 0.002,
            pack_fixed: SimTime::from_ns(35),
            stats: RuntimeStats::new(),
        }
    }

    /// Record the GOT image the receiver exported for `elem` (out-of-band exchange
    /// during setup).
    pub fn set_remote_got(&mut self, elem: ElementId, got: &GotImage) {
        self.remote_gots.insert(elem.0, got.to_bytes());
    }

    /// Sender statistics.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// The underlying endpoint (for flushes and resets between benchmark phases).
    pub fn endpoint_mut(&mut self) -> &mut Endpoint {
        &mut self.endpoint
    }

    /// Pack a frame for element `elem` with the given invocation mode, argument block
    /// and payload. Injected frames require the receiver's GOT image to have been set
    /// with [`TwoChainsSender::set_remote_got`].
    pub fn pack(
        &mut self,
        elem: ElementId,
        mode: InvocationMode,
        args: Vec<u8>,
        usr: Vec<u8>,
    ) -> AmResult<Frame> {
        self.sn = self.sn.wrapping_add(1);
        let frame = match mode {
            InvocationMode::Local => Frame::local(self.sn, elem.0, args, usr),
            InvocationMode::Injected => {
                let jam = self.package.jam(elem)?;
                let got = self
                    .remote_gots
                    .get(&elem.0)
                    .cloned()
                    .ok_or_else(|| AmError::Link(format!("no remote GOT for element {}", elem.0)))?;
                Frame::injected(self.sn, elem.0, got, jam.text.clone(), args, usr)
            }
        };
        Ok(frame)
    }

    /// Cost of packing `frame` on the sending CPU.
    pub fn pack_cost(&self, frame: &Frame) -> SimTime {
        self.pack_fixed + SimTime::from_ns_f64(frame.wire_size() as f64 * self.pack_ns_per_byte)
    }

    /// Pack-and-send convenience: returns both the frame and the send outcome.
    pub fn send(
        &mut self,
        now: SimTime,
        frame: &Frame,
        target: &MailboxTarget,
    ) -> AmResult<AmSendOutcome> {
        let bytes = frame.encode();
        if bytes.len() > target.capacity {
            return Err(AmError::FrameTooLarge { needed: bytes.len(), capacity: target.capacity });
        }
        let pack_cost = self.pack_cost(frame);
        let put = self.endpoint.put(now + pack_cost, &bytes, &target.region, target.offset)?;
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes.len() as u64;
        Ok(AmSendOutcome { pack_cost, put, wire_bytes: bytes.len() })
    }

    /// Element id helper for the builtin benchmark jams.
    pub fn builtin_id(&self, jam: BuiltinJam) -> AmResult<ElementId> {
        self.package.id_of(jam.element_name()).ok_or(AmError::UnknownElement(u32::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::{benchmark_package, indirect_put_args, ssum_args, BuiltinJam};
    use twochains_memsim::TestbedConfig;

    /// Build the standard two-host testbed with the benchmark package installed on
    /// both sides and the receiver's GOT images exported to the sender.
    fn testbed(cfg: RuntimeConfig) -> (TwoChainsHost, TwoChainsSender) {
        let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
        let mut receiver = TwoChainsHost::new(&fabric, b, cfg).unwrap();
        receiver.install_package(benchmark_package().unwrap()).unwrap();
        let ep = fabric.endpoint(a, b).unwrap();
        let mut sender = TwoChainsSender::new(ep, benchmark_package().unwrap());
        for jam in [BuiltinJam::ServerSideSum, BuiltinJam::IndirectPut] {
            let id = receiver.builtin_id(jam).unwrap();
            let got = receiver.export_got(id).unwrap();
            sender.set_remote_got(id, &got);
        }
        (receiver, sender)
    }

    fn payload(n_ints: usize) -> Vec<u8> {
        (0..n_ints as u32).flat_map(|v| (v + 1).to_le_bytes()).collect()
    }

    #[test]
    fn injected_server_side_sum_end_to_end() {
        let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
        let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
        let frame = tx
            .pack(id, InvocationMode::Injected, ssum_args(8), payload(8))
            .unwrap();
        let target = rx.mailbox_target(0, 0).unwrap();
        let send = tx.send(SimTime::ZERO, &frame, &target).unwrap();
        let out = rx
            .receive(0, 0, Some(frame.wire_size()), send.delivered(), SimTime::ZERO)
            .unwrap();
        assert_eq!(out.result, (1..=8u64).sum::<u64>());
        assert!(out.handler_done > send.delivered());
        assert!(out.exec.is_some());
        // Server-side array holds the sum.
        let arr = rx.read_data("array.base", 8, 8).unwrap();
        assert_eq!(u64::from_le_bytes(arr.try_into().unwrap()), 36);
        assert_eq!(rx.stats().injected_executions, 1);
    }

    #[test]
    fn local_and_injected_produce_identical_results() {
        let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
        let id = rx.builtin_id(BuiltinJam::IndirectPut).unwrap();
        let target = rx.mailbox_target(0, 0).unwrap();
        let mut results = Vec::new();
        for mode in InvocationMode::ALL {
            let frame = tx
                .pack(id, mode, indirect_put_args(42, 16, 4), payload(16))
                .unwrap();
            let send = tx.send(SimTime::ZERO, &frame, &target).unwrap();
            let out = rx
                .receive(0, 0, Some(frame.wire_size()), send.delivered(), SimTime::ZERO)
                .unwrap();
            results.push(out.result);
        }
        assert_eq!(results[0], results[1], "same key must land at the same offset");
        assert_eq!(rx.stats().local_executions, 1);
        assert_eq!(rx.stats().injected_executions, 1);
    }

    #[test]
    fn injected_frames_are_larger_but_not_slower_for_big_payloads() {
        let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
        let id = rx.builtin_id(BuiltinJam::IndirectPut).unwrap();
        let target = rx.mailbox_target(0, 0).unwrap();
        let local = tx.pack(id, InvocationMode::Local, indirect_put_args(1, 1, 4), payload(1)).unwrap();
        let injected =
            tx.pack(id, InvocationMode::Injected, indirect_put_args(1, 1, 4), payload(1)).unwrap();
        assert_eq!(local.wire_size(), 64);
        assert_eq!(injected.wire_size(), 1472);
        let _ = (&rx, &target);
    }

    #[test]
    fn without_execution_skips_the_handler() {
        let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default().without_execution());
        let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
        let frame = tx.pack(id, InvocationMode::Injected, ssum_args(4), payload(4)).unwrap();
        let target = rx.mailbox_target(0, 0).unwrap();
        let send = tx.send(SimTime::ZERO, &frame, &target).unwrap();
        let out = rx
            .receive(0, 0, Some(frame.wire_size()), send.delivered(), SimTime::ZERO)
            .unwrap();
        assert!(out.exec.is_none());
        assert_eq!(out.result, 0);
        assert_eq!(rx.stats().executions, 0);
        assert_eq!(rx.stats().messages_received, 1);
    }

    #[test]
    fn hardened_policy_reresolves_got_and_still_works() {
        let mut cfg = RuntimeConfig::paper_default();
        cfg.security = crate::security::SecurityPolicy::hardened();
        let (mut rx, mut tx) = testbed(cfg);
        let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
        // Corrupt the sender's notion of the GOT — the hardened receiver ignores it.
        tx.set_remote_got(id, &GotImage::with_slots(1));
        let frame = tx.pack(id, InvocationMode::Injected, ssum_args(4), payload(4)).unwrap();
        let target = rx.mailbox_target(0, 0).unwrap();
        let send = tx.send(SimTime::ZERO, &frame, &target).unwrap();
        let out = rx
            .receive(0, 0, Some(frame.wire_size()), send.delivered(), SimTime::ZERO)
            .unwrap();
        assert_eq!(out.result, 10);
    }

    #[test]
    fn unknown_local_element_is_rejected() {
        let (mut rx, mut tx) = testbed(RuntimeConfig::paper_default());
        let frame = tx.pack(ElementId(999), InvocationMode::Local, ssum_args(1), payload(1));
        // Packing a local frame for an unknown element succeeds (the id is opaque to
        // the sender) but the receiver rejects it.
        let frame = frame.unwrap();
        let target = rx.mailbox_target(0, 0).unwrap();
        let send = tx.send(SimTime::ZERO, &frame, &target).unwrap();
        let err = rx
            .receive(0, 0, Some(frame.wire_size()), send.delivered(), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, AmError::UnknownElement(999)));
    }

    #[test]
    fn empty_mailbox_reports_empty() {
        let (mut rx, _tx) = testbed(RuntimeConfig::paper_default());
        let err = rx.receive(0, 0, Some(64), SimTime::ZERO, SimTime::ZERO).unwrap_err();
        assert_eq!(err, AmError::Empty);
        let err = rx.receive(0, 1, None, SimTime::ZERO, SimTime::ZERO).unwrap_err();
        assert_eq!(err, AmError::Empty);
    }

    #[test]
    fn oversized_frame_rejected_at_send_time() {
        let mut cfg = RuntimeConfig::paper_default();
        cfg.frame_capacity = 2048;
        let (mut rx, mut tx) = testbed(cfg);
        let id = rx.builtin_id(BuiltinJam::IndirectPut).unwrap();
        let frame = tx
            .pack(id, InvocationMode::Injected, indirect_put_args(1, 4096, 4), payload(4096))
            .unwrap();
        let target = rx.mailbox_target(0, 0).unwrap();
        assert!(matches!(
            tx.send(SimTime::ZERO, &frame, &target),
            Err(AmError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn injected_without_remote_got_fails_to_pack() {
        let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
        let mut rx = TwoChainsHost::new(&fabric, b, RuntimeConfig::paper_default()).unwrap();
        rx.install_package(benchmark_package().unwrap()).unwrap();
        // This sender never received the receiver's exported GOT images.
        let mut tx = TwoChainsSender::new(fabric.endpoint(a, b).unwrap(), benchmark_package().unwrap());
        let id = rx.builtin_id(BuiltinJam::ServerSideSum).unwrap();
        let err = tx.pack(id, InvocationMode::Injected, ssum_args(1), payload(1)).unwrap_err();
        assert!(matches!(err, AmError::Link(_)));
        // Local frames need no GOT exchange.
        assert!(tx.pack(id, InvocationMode::Local, ssum_args(1), payload(1)).is_ok());
    }

    #[test]
    fn wfe_reduces_wait_cycles_but_not_results() {
        let (mut rx_poll, mut tx1) = testbed(RuntimeConfig::paper_default());
        let (mut rx_wfe, mut tx2) = testbed(RuntimeConfig::paper_default().with_wfe());
        let id = rx_poll.builtin_id(BuiltinJam::ServerSideSum).unwrap();
        for (rx, tx) in [(&mut rx_poll, &mut tx1), (&mut rx_wfe, &mut tx2)] {
            let frame = tx.pack(id, InvocationMode::Injected, ssum_args(8), payload(8)).unwrap();
            let target = rx.mailbox_target(0, 0).unwrap();
            let send = tx.send(SimTime::ZERO, &frame, &target).unwrap();
            let out = rx
                .receive(0, 0, Some(frame.wire_size()), send.delivered(), SimTime::ZERO)
                .unwrap();
            assert_eq!(out.result, 36);
        }
        assert!(
            rx_wfe.stats().cycles.waiting() < rx_poll.stats().cycles.waiting() / 4,
            "WFE should burn far fewer wait cycles ({} vs {})",
            rx_wfe.stats().cycles.waiting(),
            rx_poll.stats().cycles.waiting()
        );
    }

    #[test]
    fn stashing_speeds_up_the_injected_handler() {
        let (mut rx_stash, mut tx1) = testbed(RuntimeConfig::paper_default());
        let (mut rx_nostash, mut tx2) = testbed(RuntimeConfig::paper_default());
        rx_nostash.set_stashing(false);
        let id = rx_stash.builtin_id(BuiltinJam::IndirectPut).unwrap();
        let mut handler_times = Vec::new();
        for (rx, tx) in [(&mut rx_stash, &mut tx1), (&mut rx_nostash, &mut tx2)] {
            let frame = tx
                .pack(id, InvocationMode::Injected, indirect_put_args(7, 64, 4), payload(64))
                .unwrap();
            let target = rx.mailbox_target(0, 0).unwrap();
            let send = tx.send(SimTime::ZERO, &frame, &target).unwrap();
            let out = rx
                .receive(0, 0, Some(frame.wire_size()), send.delivered(), SimTime::ZERO)
                .unwrap();
            handler_times.push(out.handler_time);
        }
        assert!(
            handler_times[0] < handler_times[1],
            "stashed handler ({}) should be faster than non-stashed ({})",
            handler_times[0],
            handler_times[1]
        );
    }
}
