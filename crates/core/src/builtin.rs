//! The paper's benchmark package: *Server-Side Sum* and *Indirect Put* jams plus the
//! rieds they link against (§VI-B).
//!
//! Both jams are defined once and built by the toolchain into an injectable object
//! *and* registered in the Local Function library — "By providing both in the same
//! package from the same source, the same code could be ported between systems where
//! different types provide better performance."
//!
//! * **Server-Side Sum** loops over its payload accumulating a sum, then stores the
//!   result at the next spot in an array on the server (the `ried_array` ried).
//! * **Indirect Put** models indirected access to a server-resident structure: the
//!   client picks a key, the jam probes the server's hash table (`ried_table`) to
//!   obtain/assign an offset for that key, and copies the payload to the chosen
//!   location — steps (1)–(3) of Fig. 4.
//!
//! The shipped code footprints are padded to match the paper: the Indirect Put jam is
//! 1408 bytes on the wire (code + GOT image), the Server-Side Sum jam is 256 bytes —
//! which is why the Injected-vs-Local overhead converges around 64 integers for
//! Server-Side Sum but only around 1024 integers for Indirect Put (§VII-A).

use std::sync::Arc;

use twochains_jamvm::isa::{hash64, Width};
use twochains_jamvm::{Assembler, Reg};
use twochains_linker::{JamDefinition, Package, PackageBuilder, Ried, RiedBuilder, SymbolRef};

use crate::error::{AmError, AmResult};

/// Size of the fixed ARGS block both benchmark jams use (key, count, element size).
pub const ARGS_SIZE: usize = 20;
/// Bytes of code + GOT the Indirect Put jam ships (matches the paper).
pub const INDIRECT_PUT_SHIPPED_BYTES: usize = 1408;
/// Bytes of code + GOT the Server-Side Sum jam ships.
pub const SERVER_SIDE_SUM_SHIPPED_BYTES: usize = 256;
/// Bytes of code + GOT each graph-analytics stage jam ships. The stages are
/// deliberately tiny (one load, one extern call): the point of chaining them
/// is amortising the *dispatch*, not the code.
pub const GRAPH_STAGE_SHIPPED_BYTES: usize = 128;
/// Size of the ARGS block the graph stages use (one little-endian u64 operand).
pub const GRAPH_ARGS_SIZE: usize = 8;
/// Number of hash buckets in the benchmark table ried.
pub const TABLE_BUCKETS: usize = 4096;
/// Size of the table payload heap.
pub const TABLE_DATA_BYTES: usize = 1 << 20;
/// Size of the result array exported by `ried_array` (slots of 8 bytes).
pub const ARRAY_SLOTS: usize = 8192;

/// The benchmark jams: the paper's two (§VI-B) plus the three graph-analytics
/// stages the receiver-side chain benchmark strings together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuiltinJam {
    /// Sum the payload, append the result server-side.
    ServerSideSum,
    /// Hash-probe a key and copy the payload to the indirected location.
    IndirectPut,
    /// Graph chain stage 1: node key → derived node value (pure).
    GraphLookup,
    /// Graph chain stage 2: keep even node values, zero the rest (pure).
    GraphFilter,
    /// Graph chain stage 3: fold the value into the server-side accumulator
    /// (`graph.accum`), returning the contribution.
    GraphAggregate,
}

impl BuiltinJam {
    /// Package element name of this jam.
    pub fn element_name(self) -> &'static str {
        match self {
            BuiltinJam::ServerSideSum => "jam_server_side_sum",
            BuiltinJam::IndirectPut => "jam_indirect_put",
            BuiltinJam::GraphLookup => "jam_graph_lookup",
            BuiltinJam::GraphFilter => "jam_graph_filter",
            BuiltinJam::GraphAggregate => "jam_graph_aggregate",
        }
    }

    /// Bytes of code + GOT this jam adds to an Injected Function frame.
    pub fn shipped_code_bytes(self) -> usize {
        match self {
            BuiltinJam::ServerSideSum => SERVER_SIDE_SUM_SHIPPED_BYTES,
            BuiltinJam::IndirectPut => INDIRECT_PUT_SHIPPED_BYTES,
            BuiltinJam::GraphLookup | BuiltinJam::GraphFilter | BuiltinJam::GraphAggregate => {
                GRAPH_STAGE_SHIPPED_BYTES
            }
        }
    }

    /// Label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            BuiltinJam::ServerSideSum => "Server-Side Sum",
            BuiltinJam::IndirectPut => "Indirect Put",
            BuiltinJam::GraphLookup => "Graph Lookup",
            BuiltinJam::GraphFilter => "Graph Filter",
            BuiltinJam::GraphAggregate => "Graph Aggregate",
        }
    }
}

/// Build the ARGS block for Server-Side Sum: the integer count (the payload length is
/// carried by the frame itself).
pub fn ssum_args(count: u32) -> Vec<u8> {
    let mut args = vec![0u8; ARGS_SIZE];
    args[8..12].copy_from_slice(&count.to_le_bytes());
    args
}

/// Build the ARGS block for Indirect Put: client-chosen key, element count, element size.
pub fn indirect_put_args(key: u64, count: u32, elem_size: u32) -> Vec<u8> {
    let mut args = vec![0u8; ARGS_SIZE];
    args[0..8].copy_from_slice(&key.to_le_bytes());
    args[8..12].copy_from_slice(&count.to_le_bytes());
    args[12..16].copy_from_slice(&elem_size.to_le_bytes());
    args
}

/// Build the ARGS block for a graph chain stage: one little-endian u64 operand
/// (the node key for [`BuiltinJam::GraphLookup`]; for the later stages, the
/// value the previous stage produced — which is exactly what the chain
/// executor writes into the per-chain context cell, so a chained stage and a
/// standalone send of the same stage see bit-identical operands).
pub fn graph_args(operand: u64) -> Vec<u8> {
    operand.to_le_bytes().to_vec()
}

/// Server-Side Sum program. Entry convention: `r0` = ARGS base, `r1` = USR base,
/// `r2` = USR length in bytes. GOT slot 0 = `array.append`.
fn server_side_sum_program() -> Vec<twochains_jamvm::Instr> {
    let mut a = Assembler::new();
    a.mov(Reg(3), Reg(1)) // cursor
        .mov(Reg(4), Reg(2)) // remaining bytes
        .load_imm(Reg(5), 0) // accumulator
        .load_imm(Reg(6), 4)
        .jz(Reg(4), "done")
        .label("loop")
        .load(Width::B4, Reg(7), Reg(3), 0)
        .add(Reg(5), Reg(5), Reg(7))
        .add(Reg(3), Reg(3), Reg(6))
        .sub(Reg(4), Reg(4), Reg(6))
        .jnz(Reg(4), "loop")
        .label("done")
        .mov(Reg(0), Reg(5))
        .call_extern(0, 1)
        .mov(Reg(0), Reg(5))
        .ret();
    a.finish().expect("server-side sum assembles")
}

/// Indirect Put program. Entry convention as above. GOT slot 0 = `table.probe`.
fn indirect_put_program() -> Vec<twochains_jamvm::Instr> {
    let mut a = Assembler::new();
    a.mov(Reg(7), Reg(1)) // usr base
        .mov(Reg(8), Reg(2)) // usr len
        .load(Width::B8, Reg(3), Reg(0), 0) // key
        .load(Width::B4, Reg(4), Reg(0), 8) // count
        .load(Width::B4, Reg(5), Reg(0), 12) // elem size
        .mov(Reg(0), Reg(3))
        .mov(Reg(1), Reg(4))
        .mov(Reg(2), Reg(5))
        .call_extern(0, 3) // -> destination address
        .mov(Reg(9), Reg(0))
        .memcpy(Reg(9), Reg(7), Reg(8))
        .mov(Reg(0), Reg(9))
        .ret();
    a.finish().expect("indirect put assembles")
}

/// The shared program of every graph chain stage: load the 8-byte operand the
/// entry register `r0` points at (the ARGS block of a standalone send, or the
/// per-chain context cell of a chained dispatch), hand it to the stage's one
/// extern (GOT slot 0), return the extern's result. The load-from-`[r0]`
/// convention is what makes an N-stage chain result-equal to N sequential
/// messages carrying each other's results as ARGS.
fn graph_stage_program() -> Vec<twochains_jamvm::Instr> {
    let mut a = Assembler::new();
    a.load(Width::B8, Reg(0), Reg(0), 0).call_extern(0, 1).ret();
    a.finish().expect("graph stage assembles")
}

/// The `ried_graph` interface library: a 16-byte accumulator heap
/// (`graph.accum`: contribution count, running sum) plus the three stage
/// functions of the lookup→filter→aggregate chain. `graph.add` returns the
/// stage's *contribution*, not the running total, so per-message results are
/// independent of drain order; the heap itself is the aggregate oracle.
pub fn ried_graph() -> Ried {
    RiedBuilder::new("ried_graph")
        .export_heap("graph.accum", 16)
        .export_fn(
            "graph.node",
            Arc::new(|_ctx, args| {
                let key = *args.first().ok_or("graph.node needs one argument")?;
                Ok(hash64(key))
            }),
        )
        .export_fn(
            "graph.filter",
            Arc::new(|_ctx, args| {
                let v = *args.first().ok_or("graph.filter needs one argument")?;
                Ok(if v % 2 == 0 { v } else { 0 })
            }),
        )
        .export_fn(
            "graph.add",
            Arc::new(|ctx, args| {
                let v = *args.first().ok_or("graph.add needs one argument")?;
                let base = ctx
                    .space
                    .segment_meta("graph.accum")
                    .ok_or("graph.accum not mapped")?
                    .base;
                let count = ctx.read_u64(base)?;
                let sum = ctx.read_u64(base + 8)?;
                ctx.write_u64(base, count + 1)?;
                ctx.write_u64(base + 8, sum.wrapping_add(v))?;
                Ok(v)
            }),
        )
        .build()
}

/// The `ried_array` interface library: a result array plus the `array.append`
/// function Server-Side Sum calls.
pub fn ried_array() -> Ried {
    RiedBuilder::new("ried_array")
        .export_heap("array.base", 8 + ARRAY_SLOTS * 8)
        .export_fn(
            "array.append",
            Arc::new(|ctx, args| {
                let sum = *args.first().ok_or("array.append needs one argument")?;
                let base = ctx
                    .space
                    .segment_meta("array.base")
                    .ok_or("array.base not mapped")?
                    .base;
                let counter = ctx.read_u64(base)?;
                let slot = counter % ARRAY_SLOTS as u64;
                ctx.write_u64(base + 8 + slot * 8, sum)?;
                ctx.write_u64(base, counter + 1)?;
                Ok(slot)
            }),
        )
        .build()
}

/// The `ried_table` interface library: a hash-probed index over a payload heap plus
/// the `table.probe` function Indirect Put calls (Fig. 4's steps 1 and 2).
pub fn ried_table() -> Ried {
    RiedBuilder::new("ried_table")
        // bucket array: 16 bytes per bucket (key, offset+1)
        .export_heap("table.buckets", TABLE_BUCKETS * 16)
        // payload heap: first 8 bytes are the bump allocation cursor
        .export_heap("table.data", TABLE_DATA_BYTES)
        .export_fn(
            "table.probe",
            Arc::new(|ctx, args| {
                if args.len() < 3 {
                    return Err("table.probe needs (key, count, elem_size)".into());
                }
                let (key, count, elem_size) = (args[0], args[1], args[2]);
                let buckets_base = ctx
                    .space
                    .segment_meta("table.buckets")
                    .ok_or("table.buckets not mapped")?
                    .base;
                let data_seg = ctx
                    .space
                    .segment_meta("table.data")
                    .ok_or("table.data not mapped")?;
                let data_base = data_seg.base;
                let data_len = data_seg.len as u64;
                let bytes_needed = count.saturating_mul(elem_size).max(1);

                let mut idx = hash64(key) % TABLE_BUCKETS as u64;
                for _probe in 0..TABLE_BUCKETS {
                    let entry = buckets_base + idx * 16;
                    let stored_key = ctx.read_u64(entry)?;
                    let stored_off = ctx.read_u64(entry + 8)?;
                    if stored_off != 0 && stored_key == key {
                        // Existing key: the client controls the distribution, reuse
                        // the previously assigned offset.
                        return Ok(data_base + stored_off);
                    }
                    if stored_off == 0 {
                        // Empty bucket: allocate from the bump cursor.
                        let mut cursor = ctx.read_u64(data_base)?;
                        if cursor == 0 {
                            cursor = 16;
                        }
                        if cursor + bytes_needed > data_len {
                            // Wrap the bump allocator; the benchmark reuses the heap.
                            cursor = 16;
                        }
                        let offset = cursor;
                        ctx.write_u64(data_base, cursor + bytes_needed)?;
                        ctx.write_u64(entry, key)?;
                        ctx.write_u64(entry + 8, offset)?;
                        return Ok(data_base + offset);
                    }
                    idx = (idx + 1) % TABLE_BUCKETS as u64;
                }
                Err("hash table full".into())
            }),
        )
        .build()
}

/// The rieds of the benchmark package, in load order.
pub fn benchmark_rieds() -> Vec<Ried> {
    vec![ried_array(), ried_table(), ried_graph()]
}

/// Build the benchmark package (rieds + both jams, with the paper's shipped-code
/// footprints).
pub fn benchmark_package() -> AmResult<Package> {
    let ssum = JamDefinition::new(
        BuiltinJam::ServerSideSum.element_name(),
        server_side_sum_program(),
    )
    .with_got(vec![SymbolRef::func("array.append")])
    .with_args_size(ARGS_SIZE)
    .padded_to(SERVER_SIDE_SUM_SHIPPED_BYTES - 8);
    let iput = JamDefinition::new(
        BuiltinJam::IndirectPut.element_name(),
        indirect_put_program(),
    )
    .with_got(vec![SymbolRef::func("table.probe")])
    .with_args_size(ARGS_SIZE)
    .padded_to(INDIRECT_PUT_SHIPPED_BYTES - 8);
    let graph_stage = |jam: BuiltinJam, func: &str| {
        JamDefinition::new(jam.element_name(), graph_stage_program())
            .with_got(vec![SymbolRef::func(func)])
            .with_args_size(GRAPH_ARGS_SIZE)
            .padded_to(GRAPH_STAGE_SHIPPED_BYTES - 8)
    };
    PackageBuilder::new("twochains_benchmarks")
        .ried(ried_array())
        .ried(ried_table())
        .ried(ried_graph())
        .jam(ssum)
        .jam(iput)
        .jam(graph_stage(BuiltinJam::GraphLookup, "graph.node"))
        .jam(graph_stage(BuiltinJam::GraphFilter, "graph.filter"))
        .jam(graph_stage(BuiltinJam::GraphAggregate, "graph.add"))
        .build()
        .map_err(AmError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use twochains_jamvm::externs::ExternCtx;
    use twochains_jamvm::{AddressSpace, Segment, SegmentKind, Vm, VmConfig};
    use twochains_linker::LinkerNamespace;
    use twochains_memsim::hierarchy::FlatMemory;
    use twochains_memsim::SimTime;

    fn namespace_and_space() -> (LinkerNamespace, AddressSpace) {
        let mut ns = LinkerNamespace::new();
        for ried in benchmark_rieds() {
            ns.load_ried(&ried, false).unwrap();
        }
        let mut space = AddressSpace::new();
        ns.map_data_segments(&mut space).unwrap();
        (ns, space)
    }

    #[test]
    fn package_builds_with_paper_code_footprints() {
        let pkg = benchmark_package().unwrap();
        let iput = pkg
            .jam(pkg.id_of(BuiltinJam::IndirectPut.element_name()).unwrap())
            .unwrap();
        assert_eq!(
            iput.code_size() + iput.got_size(),
            INDIRECT_PUT_SHIPPED_BYTES
        );
        let ssum = pkg
            .jam(pkg.id_of(BuiltinJam::ServerSideSum.element_name()).unwrap())
            .unwrap();
        assert_eq!(
            ssum.code_size() + ssum.got_size(),
            SERVER_SIDE_SUM_SHIPPED_BYTES
        );
        for jam in [
            BuiltinJam::GraphLookup,
            BuiltinJam::GraphFilter,
            BuiltinJam::GraphAggregate,
        ] {
            let stage = pkg.jam(pkg.id_of(jam.element_name()).unwrap()).unwrap();
            assert_eq!(
                stage.code_size() + stage.got_size(),
                GRAPH_STAGE_SHIPPED_BYTES,
                "{}",
                jam.label()
            );
        }
        assert_eq!(pkg.rieds().count(), 3);
    }

    fn run_jam(
        jam: BuiltinJam,
        args: Vec<u8>,
        usr: Vec<u8>,
        ns: &LinkerNamespace,
        space: &mut AddressSpace,
    ) -> u64 {
        let pkg = benchmark_package().unwrap();
        let obj = pkg.jam(pkg.id_of(jam.element_name()).unwrap()).unwrap();
        let got = ns.resolve_got(&obj.got).unwrap();
        // Map the message sections at arbitrary mailbox-like addresses.
        let args_base = 0x9000_0000u64;
        let usr_base = 0x9000_1000u64;
        let usr_len = usr.len();
        space
            .map(Segment::new(
                "msg.args",
                args_base,
                args,
                false,
                SegmentKind::Args,
            ))
            .unwrap();
        space
            .map(Segment::new(
                "msg.usr",
                usr_base,
                usr,
                false,
                SegmentKind::Payload,
            ))
            .unwrap();
        let program = obj.program().unwrap();
        let mut bus = FlatMemory::free();
        // Entry convention: r0=args, r1=usr, r2=usr_len — seeded through the config
        // so the program runs as-is (no prologue, no branch-target rewrite).
        let cfg = VmConfig {
            entry_regs: [args_base, usr_base, usr_len as u64],
            ..VmConfig::default()
        };
        let stats = Vm::execute(&program, &got, ns.externs(), space, &mut bus, &cfg).unwrap();
        space.unmap("msg.args");
        space.unmap("msg.usr");
        stats.result
    }

    #[test]
    fn server_side_sum_accumulates_and_appends() {
        let (ns, mut space) = namespace_and_space();
        let payload: Vec<u8> = (1u32..=8).flat_map(|v| v.to_le_bytes()).collect();
        let r = run_jam(
            BuiltinJam::ServerSideSum,
            ssum_args(8),
            payload,
            &ns,
            &mut space,
        );
        assert_eq!(r, 36);
        // The result landed in the server-side array.
        let base = ns.data_addr("array.base").unwrap();
        let count = u64::from_le_bytes(space.read(base, 8).unwrap().try_into().unwrap());
        assert_eq!(count, 1);
        let slot0 = u64::from_le_bytes(space.read(base + 8, 8).unwrap().try_into().unwrap());
        assert_eq!(slot0, 36);
        // A second message appends at the next slot.
        let payload: Vec<u8> = (1u32..=4).flat_map(|v| v.to_le_bytes()).collect();
        run_jam(
            BuiltinJam::ServerSideSum,
            ssum_args(4),
            payload,
            &ns,
            &mut space,
        );
        let slot1 = u64::from_le_bytes(space.read(base + 16, 8).unwrap().try_into().unwrap());
        assert_eq!(slot1, 10);
    }

    #[test]
    fn indirect_put_stores_payload_at_hashed_location() {
        let (ns, mut space) = namespace_and_space();
        let payload: Vec<u8> = (0u32..16).flat_map(|v| (v * 3).to_le_bytes()).collect();
        let dst = run_jam(
            BuiltinJam::IndirectPut,
            indirect_put_args(0xFEED_BEEF, 16, 4),
            payload.clone(),
            &ns,
            &mut space,
        );
        // The returned destination address holds the payload.
        assert_eq!(space.read(dst, payload.len()).unwrap(), &payload[..]);
        // Re-putting the same key overwrites the same location (client-controlled
        // distribution); a different key lands elsewhere.
        let payload2: Vec<u8> = (0u32..16).flat_map(|v| (v * 7).to_le_bytes()).collect();
        let dst_same = run_jam(
            BuiltinJam::IndirectPut,
            indirect_put_args(0xFEED_BEEF, 16, 4),
            payload2.clone(),
            &ns,
            &mut space,
        );
        assert_eq!(dst_same, dst);
        assert_eq!(space.read(dst, payload2.len()).unwrap(), &payload2[..]);
        let dst_other = run_jam(
            BuiltinJam::IndirectPut,
            indirect_put_args(0x1234, 16, 4),
            payload.clone(),
            &ns,
            &mut space,
        );
        assert_ne!(dst_other, dst);
    }

    #[test]
    fn table_probe_handles_collisions_via_linear_probing() {
        let (ns, mut space) = namespace_and_space();
        // Find two keys that collide in the bucket array.
        let k1 = 1u64;
        let mut k2 = 2u64;
        while hash64(k2) % TABLE_BUCKETS as u64 != hash64(k1) % TABLE_BUCKETS as u64 {
            k2 += 1;
        }
        let mut bus = FlatMemory::free();
        let table = ried_table();
        let probe = &table
            .functions()
            .iter()
            .find(|(n, _)| n == "table.probe")
            .unwrap()
            .1;
        let mut ctx = ExternCtx {
            space: &mut space,
            bus: &mut bus,
            core: 0,
            elapsed: SimTime::ZERO,
        };
        let a = probe(&mut ctx, &[k1, 4, 4]).unwrap();
        let b = probe(&mut ctx, &[k2, 4, 4]).unwrap();
        assert_ne!(a, b, "colliding keys get distinct storage");
        let a_again = probe(&mut ctx, &[k1, 4, 4]).unwrap();
        assert_eq!(a, a_again);
        let _ = ns;
    }

    #[test]
    fn graph_stages_compose_like_a_chain() {
        let (ns, mut space) = namespace_and_space();
        let key = 0xACE5u64;
        // Each stage run standalone, feeding the previous stage's result in as
        // ARGS — the sequential schedule the chain executor must be
        // result-equal to.
        let v1 = run_jam(
            BuiltinJam::GraphLookup,
            graph_args(key),
            Vec::new(),
            &ns,
            &mut space,
        );
        assert_eq!(v1, hash64(key));
        let v2 = run_jam(
            BuiltinJam::GraphFilter,
            graph_args(v1),
            Vec::new(),
            &ns,
            &mut space,
        );
        assert_eq!(v2, if v1.is_multiple_of(2) { v1 } else { 0 });
        let v3 = run_jam(
            BuiltinJam::GraphAggregate,
            graph_args(v2),
            Vec::new(),
            &ns,
            &mut space,
        );
        // The aggregate returns its *contribution* (order-independent)...
        assert_eq!(v3, v2);
        // ...and the accumulator heap holds the running (count, sum) oracle.
        let base = ns.data_addr("graph.accum").unwrap();
        let count = u64::from_le_bytes(space.read(base, 8).unwrap().try_into().unwrap());
        let sum = u64::from_le_bytes(space.read(base + 8, 8).unwrap().try_into().unwrap());
        assert_eq!(count, 1);
        assert_eq!(sum, v2);
    }

    #[test]
    fn args_builders_layout() {
        let a = indirect_put_args(0xABCD, 7, 4);
        assert_eq!(a.len(), ARGS_SIZE);
        assert_eq!(u64::from_le_bytes(a[0..8].try_into().unwrap()), 0xABCD);
        assert_eq!(u32::from_le_bytes(a[8..12].try_into().unwrap()), 7);
        assert_eq!(u32::from_le_bytes(a[12..16].try_into().unwrap()), 4);
        let s = ssum_args(5);
        assert_eq!(u32::from_le_bytes(s[8..12].try_into().unwrap()), 5);
    }

    #[test]
    fn builtin_metadata() {
        assert_eq!(BuiltinJam::IndirectPut.shipped_code_bytes(), 1408);
        assert_eq!(BuiltinJam::ServerSideSum.shipped_code_bytes(), 256);
        assert_eq!(BuiltinJam::IndirectPut.label(), "Indirect Put");
        assert!(BuiltinJam::ServerSideSum
            .element_name()
            .contains("server_side_sum"));
    }
}
