//! Criterion bench for the Fig. 13/14 family: busy-polling vs WFE-assisted waiting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twochains::builtin::BuiltinJam;
use twochains::InvocationMode;
use twochains_bench::harness::{PingPong, TestbedOptions};

fn bench_spin_polling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_14_spin_polling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for &n in &[16usize, 512] {
        group.bench_with_input(BenchmarkId::new("polling", n), &n, |b, &n| {
            let mut pp = PingPong::new(TestbedOptions {
                warmup: 2,
                ..Default::default()
            });
            b.iter(|| {
                let r = pp.run(BuiltinJam::IndirectPut, InvocationMode::Injected, n, 5);
                r.receiver_cycles.total()
            });
        });
        group.bench_with_input(BenchmarkId::new("wfe", n), &n, |b, &n| {
            let mut pp = PingPong::new(
                TestbedOptions {
                    warmup: 2,
                    ..Default::default()
                }
                .wfe(),
            );
            b.iter(|| {
                let r = pp.run(BuiltinJam::IndirectPut, InvocationMode::Injected, n, 5);
                r.receiver_cycles.total()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spin_polling);
criterion_main!(benches);
