//! Criterion bench for the Fig. 11/12 family: tail latency on a fully loaded memory
//! system, stash vs non-stash.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twochains::builtin::BuiltinJam;
use twochains::InvocationMode;
use twochains_bench::harness::{PingPong, TestbedOptions};
use twochains_bench::percentile::summarize;

fn bench_tail_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_12_tail_latency");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for &n in &[16usize, 256] {
        group.bench_with_input(BenchmarkId::new("stash_loaded", n), &n, |b, &n| {
            let mut pp = PingPong::new(
                TestbedOptions {
                    warmup: 2,
                    ..Default::default()
                }
                .stressed(7),
            );
            b.iter(|| {
                let r = pp.run(BuiltinJam::IndirectPut, InvocationMode::Injected, n, 50);
                summarize(&r.latencies).p999_us
            });
        });
        group.bench_with_input(BenchmarkId::new("nonstash_loaded", n), &n, |b, &n| {
            let mut pp = PingPong::new(
                TestbedOptions {
                    warmup: 2,
                    ..Default::default()
                }
                .nonstash()
                .stressed(8),
            );
            b.iter(|| {
                let r = pp.run(BuiltinJam::IndirectPut, InvocationMode::Injected, n, 50);
                summarize(&r.latencies).p999_us
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tail_latency);
criterion_main!(benches);
