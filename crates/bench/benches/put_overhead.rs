//! Criterion bench for the Fig. 5/6 family: AM put (without execution) vs the UCX
//! data-put baseline, across message sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twochains::builtin::BuiltinJam;
use twochains::InvocationMode;
use twochains_bench::figures::SSUM_SIZES;
use twochains_bench::harness::{PingPong, TestbedOptions};
use twochains_fabric::{LinkModel, UcxPutBaseline};

fn bench_put_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_6_put_overhead");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let baseline = UcxPutBaseline::new(LinkModel::connectx6_back_to_back());
    for &size in &SSUM_SIZES[..4] {
        group.bench_with_input(BenchmarkId::new("ucx_data_put", size), &size, |b, &size| {
            b.iter(|| baseline.put_latency(size));
        });
        group.bench_with_input(
            BenchmarkId::new("am_put_no_exec", size),
            &size,
            |b, &size| {
                let mut pp = PingPong::new(
                    TestbedOptions {
                        warmup: 2,
                        ..Default::default()
                    }
                    .without_execution(),
                );
                let n = (size - 60) / 4;
                b.iter(|| {
                    pp.run(BuiltinJam::ServerSideSum, InvocationMode::Local, n, 3)
                        .median_us()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_put_overhead);
criterion_main!(benches);
