//! Criterion bench for the Fig. 9/10 family: LLC stashing enabled vs disabled for
//! Injected Function Indirect Put.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twochains::builtin::BuiltinJam;
use twochains::InvocationMode;
use twochains_bench::harness::{PingPong, TestbedOptions};

fn bench_cache_stashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_10_cache_stashing");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for &n in &[8usize, 256, 4096] {
        group.bench_with_input(BenchmarkId::new("stash", n), &n, |b, &n| {
            let mut pp = PingPong::new(TestbedOptions {
                warmup: 2,
                ..Default::default()
            });
            b.iter(|| {
                pp.run(BuiltinJam::IndirectPut, InvocationMode::Injected, n, 3)
                    .median_us()
            });
        });
        group.bench_with_input(BenchmarkId::new("nonstash", n), &n, |b, &n| {
            let mut pp = PingPong::new(
                TestbedOptions {
                    warmup: 2,
                    ..Default::default()
                }
                .nonstash(),
            );
            b.iter(|| {
                pp.run(BuiltinJam::IndirectPut, InvocationMode::Injected, n, 3)
                    .median_us()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache_stashing);
criterion_main!(benches);
