//! Criterion bench for the Fig. 7/8 family: Injected vs Local Function invocation of
//! the Indirect Put jam.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twochains::builtin::BuiltinJam;
use twochains::InvocationMode;
use twochains_bench::harness::{PingPong, TestbedOptions};

fn bench_invocation_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_8_invocation_modes");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for &n in &[1usize, 64, 1024] {
        for mode in InvocationMode::ALL {
            let label = match mode {
                InvocationMode::Local => "local",
                InvocationMode::Injected => "injected",
            };
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                let mut pp = PingPong::new(TestbedOptions { warmup: 2, ..Default::default() });
                b.iter(|| pp.run(BuiltinJam::IndirectPut, mode, n, 3).median_us());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_invocation_modes);
criterion_main!(benches);
