//! Criterion bench for the Fig. 7/8 family: Injected vs Local Function invocation of
//! the Indirect Put jam.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use twochains::builtin::BuiltinJam;
use twochains::InvocationMode;
use twochains_bench::harness::{PingPong, TestbedOptions};

/// Cold-vs-warm injected dispatch: the fast-path caches hit on every message in the
/// warm regime and are invalidated before every message in the cold regime.
fn bench_fastpath_cold_vs_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("fastpath_cold_vs_warm");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    // One benchmark runs both regimes (compare() measures cold and warm over the
    // same testbed); the per-regime modelled numbers live in BENCH_fastpath.json.
    let n = 20usize;
    group.bench_with_input(BenchmarkId::new("compare", n), &n, |b, &n| {
        b.iter(|| {
            let r = twochains_bench::fastpath::compare(n);
            (r.cold.dispatch_ns, r.warm.dispatch_ns)
        });
    });
    group.finish();
}

fn bench_invocation_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_8_invocation_modes");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for &n in &[1usize, 64, 1024] {
        for mode in InvocationMode::ALL {
            let label = match mode {
                InvocationMode::Local => "local",
                InvocationMode::Injected => "injected",
            };
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                let mut pp = PingPong::new(TestbedOptions {
                    warmup: 2,
                    ..Default::default()
                });
                b.iter(|| pp.run(BuiltinJam::IndirectPut, mode, n, 3).median_us());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_invocation_modes, bench_fastpath_cold_vs_warm);
criterion_main!(benches);
