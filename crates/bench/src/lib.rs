//! # twochains-bench
//!
//! The benchmark harness that regenerates every evaluation figure of the Two-Chains
//! paper (CLUSTER 2021, §VI–§VII):
//!
//! * the two benchmark *shapes* — ping-pong (half-round-trip latency) and injection
//!   rate (banked flow control) — in [`harness`];
//! * the shard-scaling burst-drain driver (modelled + multi-threaded) in
//!   [`burst`], whose rows extend `BENCH_fastpath.json`;
//! * percentile statistics, including the paper's *tail latency spread* (Eq. 1), in
//!   [`mod@percentile`];
//! * one reproduction routine per figure (5–14) in [`figures`], printed by the
//!   `figures` binary (`cargo run -p twochains-bench --bin figures -- all`);
//! * Criterion benches (one family per figure group) under `benches/`.
//!
//! All results are virtual-time measurements over the simulated testbed, so they are
//! deterministic and machine-independent; the *shape* of each figure (who wins, by
//! roughly what factor, where the crossover happens) is the reproduction target, not
//! the absolute microsecond values of the authors' hardware.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod burst;
pub mod fastpath;
pub mod figures;
pub mod gate;
pub mod harness;
pub mod percentile;

pub use burst::{sweep as burst_sweep, BurstRow};
pub use fastpath::{compare as fastpath_compare, FastpathReport};
pub use figures::{all_figures, figure_by_name, FigureData};
pub use harness::{InjectionRate, PingPong, RateResult, TestbedOptions};
pub use percentile::{median, percentile, summarize, tail_spread, LatencyStats};
