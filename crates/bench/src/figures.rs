//! One reproduction routine per evaluation figure (Figs. 5–14).
//!
//! Each routine sweeps the same x-axis the paper uses and prints the same series.
//! Iteration counts are kept modest so the whole set runs in minutes; they can be
//! scaled up without changing the shapes because the simulation is deterministic
//! (except for the seeded stressor used in the tail-latency figures).

use twochains::builtin::BuiltinJam;
use twochains::InvocationMode;
use twochains_fabric::{LinkModel, UcxPutBaseline};

use crate::harness::{InjectionRate, PingPong, TestbedOptions};
use crate::percentile::{median, summarize};

/// A reproduced figure: a title, column headers, and rows of formatted values.
#[derive(Debug, Clone)]
pub struct FigureData {
    /// Identifier, e.g. `"fig5"`.
    pub id: &'static str,
    /// Descriptive title matching the paper's caption.
    pub title: &'static str,
    /// Column headers.
    pub headers: Vec<&'static str>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl FigureData {
    /// Render the figure as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:>width$}", h, width = widths[i]))
            .collect();
        out.push_str(&header_line.join("  "));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }
}

/// Message sizes (bytes) swept by the Server-Side Sum figures (5, 6, 12, 14).
pub const SSUM_SIZES: [usize; 8] = [256, 512, 1024, 2048, 4096, 8192, 16384, 32768];
/// Put counts (integers) swept by the Indirect Put figures (7–11, 13).
pub const IPUT_COUNTS: [usize; 15] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384,
];

fn iters_for(n_ints: usize, base: usize) -> usize {
    (base * 16 / (n_ints.max(1))).clamp(12, base)
}

fn ints_for_frame(size: usize) -> usize {
    // Local frame = 60 + 4n bytes; pick n so the frame is `size` bytes.
    ((size.saturating_sub(60)) / 4).max(1)
}

/// Fig. 5: AM put (without execution) latency vs UCX data put.
pub fn fig5() -> FigureData {
    let baseline = UcxPutBaseline::new(LinkModel::connectx6_back_to_back());
    let mut pp = PingPong::new(TestbedOptions::default().without_execution());
    let mut rows = Vec::new();
    for &size in &SSUM_SIZES {
        let n = ints_for_frame(size);
        let am = pp.run(BuiltinJam::ServerSideSum, InvocationMode::Local, n, 40);
        let data_put_us = baseline.put_latency(size).as_us();
        let am_us = am.median_us();
        let reduction = (data_put_us - am_us) / data_put_us * 100.0;
        rows.push(vec![
            format!("{size}B"),
            format!("{data_put_us:.3}"),
            format!("{am_us:.3}"),
            format!("{reduction:+.1}%"),
        ]);
    }
    FigureData {
        id: "fig5",
        title: "Server-Side Sum: AM put without-execution latency overhead vs UCX data put",
        headers: vec!["size", "Data put (us)", "AM put (us)", "reduction"],
        rows,
    }
}

/// Fig. 6: AM put bandwidth vs UCX data put bandwidth.
pub fn fig6() -> FigureData {
    let baseline = UcxPutBaseline::new(LinkModel::connectx6_back_to_back());
    let mut ir = InjectionRate::new(TestbedOptions::default().without_execution());
    let mut rows = Vec::new();
    for &size in &SSUM_SIZES {
        let n = ints_for_frame(size);
        let am = ir.run(BuiltinJam::ServerSideSum, InvocationMode::Local, n, 300);
        let data_bw = baseline.bandwidth_mib_s(size);
        let am_bw = am.bandwidth_mib_s;
        let increase = (am_bw - data_bw) / data_bw * 100.0;
        rows.push(vec![
            format!("{size}B"),
            format!("{data_bw:.0}"),
            format!("{am_bw:.0}"),
            format!("{increase:+.0}%"),
        ]);
    }
    FigureData {
        id: "fig6",
        title: "Server-Side Sum: AM put without-execution bandwidth vs UCX data put (MiB/s)",
        headers: vec!["size", "Data put", "AM put", "increase"],
        rows,
    }
}

/// Fig. 7: Indirect Put latency, Injected vs Local invocation.
pub fn fig7() -> FigureData {
    let mut pp = PingPong::new(TestbedOptions::default());
    let mut rows = Vec::new();
    for &n in &IPUT_COUNTS {
        let iters = iters_for(n, 60);
        let local = pp.run(BuiltinJam::IndirectPut, InvocationMode::Local, n, iters);
        let injected = pp.run(BuiltinJam::IndirectPut, InvocationMode::Injected, n, iters);
        let l = local.median_us();
        let i = injected.median_us();
        let reduction = (l - i) / l * 100.0;
        rows.push(vec![
            n.to_string(),
            format!("{l:.3}"),
            format!("{i:.3}"),
            format!("{reduction:+.1}%"),
        ]);
    }
    FigureData {
        id: "fig7",
        title: "Indirect Put: latency, Injected vs Local function invocation",
        headers: vec!["ints", "Local (us)", "Injected (us)", "reduction"],
        rows,
    }
}

/// Fig. 8: Indirect Put message rate, Injected vs Local invocation.
pub fn fig8() -> FigureData {
    let mut ir = InjectionRate::new(TestbedOptions::default());
    let mut rows = Vec::new();
    for &n in &IPUT_COUNTS {
        let iters = iters_for(n, 240);
        let local = ir.run(BuiltinJam::IndirectPut, InvocationMode::Local, n, iters);
        let injected = ir.run(BuiltinJam::IndirectPut, InvocationMode::Injected, n, iters);
        let increase =
            (injected.messages_per_sec - local.messages_per_sec) / local.messages_per_sec * 100.0;
        rows.push(vec![
            n.to_string(),
            format!("{:.3e}", local.messages_per_sec),
            format!("{:.3e}", injected.messages_per_sec),
            format!("{increase:+.1}%"),
        ]);
    }
    FigureData {
        id: "fig8",
        title: "Indirect Put: message rate, Injected vs Local function invocation (msg/s)",
        headers: vec!["ints", "Local", "Injected", "increase"],
        rows,
    }
}

fn stash_sweep_latency(counts: &[usize]) -> Vec<(usize, f64, f64)> {
    let mut stash = PingPong::new(TestbedOptions::default());
    let mut nonstash = PingPong::new(TestbedOptions::default().nonstash());
    counts
        .iter()
        .map(|&n| {
            let iters = iters_for(n, 60);
            let s = stash.run(BuiltinJam::IndirectPut, InvocationMode::Injected, n, iters);
            let ns = nonstash.run(BuiltinJam::IndirectPut, InvocationMode::Injected, n, iters);
            (n, ns.median_us(), s.median_us())
        })
        .collect()
}

/// Fig. 9: Indirect Put latency with LLC stashing enabled vs disabled.
pub fn fig9() -> FigureData {
    let counts = &IPUT_COUNTS[..13]; // 1..=4096..8192 as in the paper's axis
    let rows = stash_sweep_latency(counts)
        .into_iter()
        .map(|(n, nonstash, stash)| {
            let reduction = (nonstash - stash) / nonstash * 100.0;
            vec![
                n.to_string(),
                format!("{nonstash:.3}"),
                format!("{stash:.3}"),
                format!("{reduction:+.1}%"),
            ]
        })
        .collect();
    FigureData {
        id: "fig9",
        title: "Indirect Put: latency reduction with LLC stashing (Stash vs Nonstash)",
        headers: vec!["ints", "Nonstash (us)", "Stash (us)", "reduction"],
        rows,
    }
}

/// Fig. 10: Indirect Put message rate with LLC stashing enabled vs disabled.
pub fn fig10() -> FigureData {
    let mut stash = InjectionRate::new(TestbedOptions::default());
    let mut nonstash = InjectionRate::new(TestbedOptions::default().nonstash());
    let mut rows = Vec::new();
    for &n in &IPUT_COUNTS[..13] {
        let iters = iters_for(n, 240);
        let s = stash.run(BuiltinJam::IndirectPut, InvocationMode::Injected, n, iters);
        let ns = nonstash.run(BuiltinJam::IndirectPut, InvocationMode::Injected, n, iters);
        let increase = (s.messages_per_sec - ns.messages_per_sec) / ns.messages_per_sec * 100.0;
        rows.push(vec![
            n.to_string(),
            format!("{:.3e}", ns.messages_per_sec),
            format!("{:.3e}", s.messages_per_sec),
            format!("{increase:+.0}%"),
        ]);
    }
    FigureData {
        id: "fig10",
        title: "Indirect Put: message rate increase with LLC stashing (Stash vs Nonstash)",
        headers: vec!["ints", "Nonstash (msg/s)", "Stash (msg/s)", "increase"],
        rows,
    }
}

fn tail_rows(jam: BuiltinJam, points: &[(String, usize)], samples: usize) -> Vec<Vec<String>> {
    let mut stash = PingPong::new(TestbedOptions::default().stressed(101));
    let mut nonstash = PingPong::new(TestbedOptions::default().nonstash().stressed(202));
    points
        .iter()
        .map(|(label, n)| {
            let s = stash.run(jam, InvocationMode::Injected, *n, samples);
            let ns = nonstash.run(jam, InvocationMode::Injected, *n, samples);
            let ss = summarize(&s.latencies);
            let nss = summarize(&ns.latencies);
            vec![
                label.clone(),
                format!("{:.2}", nss.median_us),
                format!("{:.2}", nss.p999_us),
                format!("{:.0}%", nss.spread * 100.0),
                format!("{:.2}", ss.median_us),
                format!("{:.2}", ss.p999_us),
                format!("{:.0}%", ss.spread * 100.0),
            ]
        })
        .collect()
}

/// Fig. 11: Indirect Put latency on a fully loaded system, Stash vs Nonstash
/// (median, 99.9th percentile, tail-latency spread).
pub fn fig11() -> FigureData {
    let points: Vec<(String, usize)> = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
        .iter()
        .map(|&n| (n.to_string(), n))
        .collect();
    FigureData {
        id: "fig11",
        title: "Indirect Put: latency on a fully loaded system (Stash vs Nonstash)",
        headers: vec![
            "ints",
            "Nonstash med (us)",
            "Nonstash tail (us)",
            "Nonstash spread",
            "Stash med (us)",
            "Stash tail (us)",
            "Stash spread",
        ],
        rows: tail_rows(BuiltinJam::IndirectPut, &points, 1500),
    }
}

/// Fig. 12: Server-Side Sum latency on a fully loaded system, Stash vs Nonstash.
pub fn fig12() -> FigureData {
    let points: Vec<(String, usize)> = [512usize, 1024, 2048, 4096, 8192, 16384, 32768]
        .iter()
        .map(|&size| (format!("{size}B"), ints_for_frame(size)))
        .collect();
    FigureData {
        id: "fig12",
        title: "Server-Side Sum: latency on a fully loaded system (Stash vs Nonstash)",
        headers: vec![
            "size",
            "Nonstash med (us)",
            "Nonstash tail (us)",
            "Nonstash spread",
            "Stash med (us)",
            "Stash tail (us)",
            "Stash spread",
        ],
        rows: tail_rows(BuiltinJam::ServerSideSum, &points, 1200),
    }
}

fn wfe_rows(jam: BuiltinJam, points: &[(String, usize)], iters: usize) -> Vec<Vec<String>> {
    let mut poll = PingPong::new(TestbedOptions::default());
    let mut wfe = PingPong::new(TestbedOptions::default().wfe());
    points
        .iter()
        .map(|(label, n)| {
            let p = poll.run(jam, InvocationMode::Injected, *n, iters);
            let w = wfe.run(jam, InvocationMode::Injected, *n, iters);
            let factor = p.receiver_cycles.total() as f64 / w.receiver_cycles.total().max(1) as f64;
            vec![
                label.clone(),
                format!("{:.3}", median(&p.latencies).as_us()),
                format!("{:.3}", median(&w.latencies).as_us()),
                format!("{:.3e}", p.receiver_cycles.total() as f64),
                format!("{:.3e}", w.receiver_cycles.total() as f64),
                format!("{factor:.2}x"),
            ]
        })
        .collect()
}

/// Fig. 13: Indirect Put latency and receiver CPU cycles, Polling vs WFE.
pub fn fig13() -> FigureData {
    let points: Vec<(String, usize)> = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
        .iter()
        .map(|&n| (n.to_string(), n))
        .collect();
    FigureData {
        id: "fig13",
        title: "Indirect Put: effect of WFE on latency and CPU cycle count",
        headers: vec![
            "ints",
            "Polling (us)",
            "WFE (us)",
            "Polling cycles",
            "WFE cycles",
            "cycle reduction",
        ],
        rows: wfe_rows(BuiltinJam::IndirectPut, &points, 400),
    }
}

/// Fig. 14: Server-Side Sum latency and receiver CPU cycles, Polling vs WFE.
pub fn fig14() -> FigureData {
    let points: Vec<(String, usize)> = [512usize, 1024, 2048, 4096, 8192, 16384, 32768]
        .iter()
        .map(|&size| (format!("{size}B"), ints_for_frame(size)))
        .collect();
    FigureData {
        id: "fig14",
        title: "Server-Side Sum: effect of WFE on latency and CPU cycle count",
        headers: vec![
            "size",
            "Polling (us)",
            "WFE (us)",
            "Polling cycles",
            "WFE cycles",
            "cycle reduction",
        ],
        rows: wfe_rows(BuiltinJam::ServerSideSum, &points, 300),
    }
}

/// Every figure in order.
pub fn all_figures() -> Vec<fn() -> FigureData> {
    vec![
        fig5, fig6, fig7, fig8, fig9, fig10, fig11, fig12, fig13, fig14,
    ]
}

/// Look a figure generator up by id (`"fig5"` … `"fig14"`).
pub fn figure_by_name(name: &str) -> Option<fn() -> FigureData> {
    Some(match name {
        "fig5" => fig5,
        "fig6" => fig6,
        "fig7" => fig7,
        "fig8" => fig8,
        "fig9" => fig9,
        "fig10" => fig10,
        "fig11" => fig11,
        "fig12" => fig12,
        "fig13" => fig13,
        "fig14" => fig14,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_lookup() {
        assert!(figure_by_name("fig5").is_some());
        assert!(figure_by_name("fig14").is_some());
        assert!(figure_by_name("fig99").is_none());
        assert_eq!(all_figures().len(), 10);
    }

    #[test]
    fn render_produces_a_table() {
        let f = FigureData {
            id: "figX",
            title: "test",
            headers: vec!["a", "b"],
            rows: vec![vec!["1".into(), "2.5".into()]],
        };
        let s = f.render();
        assert!(s.contains("figX"));
        assert!(s.contains("2.5"));
    }

    #[test]
    fn frame_size_helper_inverts_frame_math() {
        // 60 + 4n = size
        assert_eq!(ints_for_frame(64), 1);
        assert_eq!(ints_for_frame(256), 49);
        assert_eq!(ints_for_frame(32768), (32768 - 60) / 4);
    }
}
