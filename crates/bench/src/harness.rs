//! Benchmark shapes: ping-pong and injection rate (§VI-A).
//!
//! Both shapes drive two full [`TwoChainsHost`] runtimes over the simulated
//! back-to-back testbed from a single thread, using virtual time for all latency and
//! rate numbers. The functional work — packing, GOT patching, mailbox signalling,
//! jam execution, server-side table/array updates — happens for real.

use twochains::builtin::{benchmark_package, indirect_put_args, ssum_args, BuiltinJam};
use twochains::{ExecutionPolicy, InvocationMode, RuntimeConfig, TwoChainsHost, TwoChainsSender};
use twochains_fabric::SimFabric;
use twochains_memsim::{CycleCounter, MemoryStressor, SimTime, TestbedConfig, WaitMode};

/// Knobs a benchmark flips between runs.
#[derive(Debug, Clone)]
pub struct TestbedOptions {
    /// LLC stashing at the receiving host (the paper's Stash / Nonstash toggle).
    pub stashing: bool,
    /// Receiver wait mode (Polling / WFE).
    pub wait_mode: WaitMode,
    /// Skip function invocation (the without-execution configuration of Figs. 5–6).
    pub skip_execution: bool,
    /// Attach a fully loaded memory stressor with this seed (Figs. 11–12).
    pub stressor_seed: Option<u64>,
    /// Number of warm-up iterations before measurements start.
    pub warmup: usize,
    /// Execution policy for injected programs (Resolved by default; Interpret
    /// pins the per-message decode/interpret cost model for parity studies).
    pub execution_policy: ExecutionPolicy,
}

impl Default for TestbedOptions {
    fn default() -> Self {
        TestbedOptions {
            stashing: true,
            wait_mode: WaitMode::Polling,
            skip_execution: false,
            stressor_seed: None,
            warmup: 20,
            execution_policy: ExecutionPolicy::Resolved,
        }
    }
}

impl TestbedOptions {
    /// Disable LLC stashing.
    pub fn nonstash(mut self) -> Self {
        self.stashing = false;
        self
    }

    /// Use WFE-assisted waiting.
    pub fn wfe(mut self) -> Self {
        self.wait_mode = WaitMode::Wfe;
        self
    }

    /// Skip execution.
    pub fn without_execution(mut self) -> Self {
        self.skip_execution = true;
        self
    }

    /// Run on a fully loaded memory system.
    pub fn stressed(mut self, seed: u64) -> Self {
        self.stressor_seed = Some(seed);
        self
    }

    /// Interpret injected programs per message instead of executing the
    /// cached resolved image.
    pub fn interpreted(mut self) -> Self {
        self.execution_policy = ExecutionPolicy::Interpret;
        self
    }

    fn runtime_config(&self) -> RuntimeConfig {
        let mut cfg = RuntimeConfig::paper_default();
        cfg.wait_mode = self.wait_mode;
        cfg.skip_execution = self.skip_execution;
        cfg.execution_policy = self.execution_policy;
        cfg
    }
}

fn payload(n_ints: usize) -> Vec<u8> {
    (0..n_ints as u32)
        .flat_map(|v| v.wrapping_mul(2654435761).to_le_bytes())
        .collect()
}

fn args_for(jam: BuiltinJam, n_ints: usize, iteration: u64) -> Vec<u8> {
    match jam {
        BuiltinJam::ServerSideSum => ssum_args(n_ints as u32),
        // A small rotating key set: the client controls the distribution (Fig. 4) and
        // the benchmark reuses a handful of destination slots.
        BuiltinJam::IndirectPut => indirect_put_args(iteration % 64, n_ints as u32, 4),
        // The graph chain stages all take one 8-byte little-endian operand.
        BuiltinJam::GraphLookup | BuiltinJam::GraphFilter | BuiltinJam::GraphAggregate => {
            twochains::builtin::graph_args(iteration)
        }
    }
}

/// Result of one ping-pong sweep point.
#[derive(Debug, Clone)]
pub struct PingPongResult {
    /// Half-round-trip latencies, one per measured iteration.
    pub latencies: Vec<SimTime>,
    /// Receiver-side (host B) cycle counters over the full run, including warm-up —
    /// the counter Figs. 13–14 plot.
    pub receiver_cycles: CycleCounter,
    /// Frame size on the wire in bytes.
    pub frame_bytes: usize,
}

impl PingPongResult {
    /// Median half-round-trip latency in microseconds.
    pub fn median_us(&self) -> f64 {
        crate::percentile::median(&self.latencies).as_us()
    }
}

/// The ping-pong benchmark shape: one message bounces between the two hosts; each
/// side executes the active message on arrival (§VI-A1).
pub struct PingPong {
    host_a: TwoChainsHost,
    host_b: TwoChainsHost,
    sender_ab: TwoChainsSender,
    sender_ba: TwoChainsSender,
    opts: TestbedOptions,
}

impl PingPong {
    /// Build the two-host testbed with the benchmark package installed on both sides.
    pub fn new(opts: TestbedOptions) -> Self {
        let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
        let cfg = opts.runtime_config();
        let mut host_a = TwoChainsHost::new(&fabric, a, cfg.clone()).expect("host A");
        let mut host_b = TwoChainsHost::new(&fabric, b, cfg).expect("host B");
        host_a
            .install_package(benchmark_package().expect("package"))
            .expect("install A");
        host_b
            .install_package(benchmark_package().expect("package"))
            .expect("install B");
        host_a.set_stashing(opts.stashing);
        host_b.set_stashing(opts.stashing);
        if let Some(seed) = opts.stressor_seed {
            host_a.set_stressor(Some(MemoryStressor::fully_loaded(seed)));
            host_b.set_stressor(Some(MemoryStressor::fully_loaded(seed ^ 0x5a5a)));
        }
        let mut sender_ab = TwoChainsSender::new(
            fabric.endpoint(a, b).expect("ep ab"),
            benchmark_package().unwrap(),
        );
        let mut sender_ba = TwoChainsSender::new(
            fabric.endpoint(b, a).expect("ep ba"),
            benchmark_package().unwrap(),
        );
        for jam in [BuiltinJam::ServerSideSum, BuiltinJam::IndirectPut] {
            let id_b = host_b.builtin_id(jam).unwrap();
            sender_ab.set_remote_got(id_b, &host_b.export_got(id_b).unwrap());
            let id_a = host_a.builtin_id(jam).unwrap();
            sender_ba.set_remote_got(id_a, &host_a.export_got(id_a).unwrap());
        }
        PingPong {
            host_a,
            host_b,
            sender_ab,
            sender_ba,
            opts,
        }
    }

    /// Run `iters` measured ping-pongs of `jam` in `mode` with an `n_ints`-integer
    /// payload.
    pub fn run(
        &mut self,
        jam: BuiltinJam,
        mode: InvocationMode,
        n_ints: usize,
        iters: usize,
    ) -> PingPongResult {
        self.host_b.reset_stats();
        self.host_a.reset_stats();
        let elem = self.host_b.builtin_id(jam).unwrap();
        let usr = payload(n_ints);
        let target_b = self.host_b.mailbox_target(0, 0).unwrap();
        let target_a = self.host_a.mailbox_target(0, 0).unwrap();

        let mut latencies = Vec::with_capacity(iters);
        let mut clock_a = SimTime::ZERO;
        let mut a_ready = SimTime::ZERO;
        let mut b_ready = SimTime::ZERO;
        let mut frame_bytes = 0usize;

        for i in 0..(self.opts.warmup + iters) {
            let start = clock_a;
            // A -> B (ping)
            let frame = self
                .sender_ab
                .pack(elem, mode, args_for(jam, n_ints, i as u64), usr.clone())
                .expect("pack ping");
            frame_bytes = frame.wire_size();
            let sent = self
                .sender_ab
                .send(start, &frame, &target_b)
                .expect("send ping");
            let out_b = self
                .host_b
                .receive(0, 0, Some(frame.wire_size()), sent.delivered(), b_ready)
                .expect("receive ping");
            b_ready = out_b.handler_done;

            // B -> A (pong), carrying the same active message back.
            let pong = self
                .sender_ba
                .pack(elem, mode, args_for(jam, n_ints, i as u64), usr.clone())
                .expect("pack pong");
            let sent_back = self
                .sender_ba
                .send(out_b.handler_done, &pong, &target_a)
                .expect("send pong");
            let out_a = self
                .host_a
                .receive(
                    0,
                    0,
                    Some(pong.wire_size()),
                    sent_back.delivered(),
                    a_ready.max(sent.sender_free()),
                )
                .expect("receive pong");
            a_ready = out_a.handler_done;
            clock_a = out_a.handler_done;

            if i >= self.opts.warmup {
                // Half round trip, as the UCX perftest reports it.
                latencies.push((out_a.handler_done - start) / 2);
            }
        }

        PingPongResult {
            latencies,
            receiver_cycles: self.host_b.stats().cycles,
            frame_bytes,
        }
    }
}

/// Result of one injection-rate sweep point.
#[derive(Debug, Clone, Copy)]
pub struct RateResult {
    /// Sustained message rate in messages per second.
    pub messages_per_sec: f64,
    /// Sustained bandwidth in MiB/s (frame bytes × rate).
    pub bandwidth_mib_s: f64,
    /// Frame size on the wire.
    pub frame_bytes: usize,
}

/// The injection-rate benchmark shape (§VI-A2): the sender streams messages into the
/// receiver's mailbox banks as fast as flow control allows; the receiver drains them
/// with a single progress thread.
pub struct InjectionRate {
    host_b: TwoChainsHost,
    sender_ab: TwoChainsSender,
    opts: TestbedOptions,
}

impl InjectionRate {
    /// Build the testbed.
    pub fn new(opts: TestbedOptions) -> Self {
        let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
        let cfg = opts.runtime_config();
        let mut host_b = TwoChainsHost::new(&fabric, b, cfg).expect("host B");
        host_b
            .install_package(benchmark_package().expect("package"))
            .expect("install B");
        host_b.set_stashing(opts.stashing);
        if let Some(seed) = opts.stressor_seed {
            host_b.set_stressor(Some(MemoryStressor::fully_loaded(seed)));
        }
        let mut sender_ab = TwoChainsSender::new(
            fabric.endpoint(a, b).expect("ep"),
            benchmark_package().unwrap(),
        );
        for jam in [BuiltinJam::ServerSideSum, BuiltinJam::IndirectPut] {
            let id = host_b.builtin_id(jam).unwrap();
            sender_ab.set_remote_got(id, &host_b.export_got(id).unwrap());
        }
        InjectionRate {
            host_b,
            sender_ab,
            opts,
        }
    }

    /// Stream `iters` messages and report the sustained rate.
    pub fn run(
        &mut self,
        jam: BuiltinJam,
        mode: InvocationMode,
        n_ints: usize,
        iters: usize,
    ) -> RateResult {
        self.host_b.reset_stats();
        let elem = self.host_b.builtin_id(jam).unwrap();
        let usr = payload(n_ints);
        let banks = self.host_b.config().banks;
        let per_bank = self.host_b.config().mailboxes_per_bank;
        let total = banks * per_bank;

        let mut sender_clock = SimTime::ZERO;
        let mut receiver_ready = SimTime::ZERO;
        let mut first_send = SimTime::ZERO;
        let mut frame_bytes = 0usize;
        let measured = self.opts.warmup + iters;

        for i in 0..measured {
            let mbox = i % total;
            let (bank, slot) = (mbox / per_bank, mbox % per_bank);
            let target = self.host_b.mailbox_target(bank, slot).unwrap();
            let frame = self
                .sender_ab
                .pack(elem, mode, args_for(jam, n_ints, i as u64), usr.clone())
                .expect("pack");
            frame_bytes = frame.wire_size();
            let sent = self
                .sender_ab
                .send(sender_clock, &frame, &target)
                .expect("send");
            sender_clock = sent.sender_free();
            // The single receiver progress thread drains messages in order; draining
            // a mailbox frees its bank slot, which is the flow-control credit.
            let out = self
                .host_b
                .receive(
                    bank,
                    slot,
                    Some(frame.wire_size()),
                    sent.delivered(),
                    receiver_ready,
                )
                .expect("receive");
            receiver_ready = out.handler_done;
            if i == self.opts.warmup {
                first_send = sent.delivered();
            }
        }

        let elapsed = (receiver_ready - first_send).as_secs();
        let rate = iters as f64 / elapsed.max(1e-12);
        RateResult {
            messages_per_sec: rate,
            bandwidth_mib_s: rate * frame_bytes as f64 / (1024.0 * 1024.0),
            frame_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_latency_is_microsecond_scale_and_deterministic() {
        let mut pp = PingPong::new(TestbedOptions {
            warmup: 5,
            ..Default::default()
        });
        let r1 = pp.run(BuiltinJam::ServerSideSum, InvocationMode::Injected, 8, 20);
        assert_eq!(r1.latencies.len(), 20);
        let med = r1.median_us();
        assert!(
            med > 0.8 && med < 10.0,
            "median {med}us should be microsecond scale"
        );
        // Determinism: a fresh harness reproduces the same numbers.
        let mut pp2 = PingPong::new(TestbedOptions {
            warmup: 5,
            ..Default::default()
        });
        let r2 = pp2.run(BuiltinJam::ServerSideSum, InvocationMode::Injected, 8, 20);
        assert_eq!(r1.latencies, r2.latencies);
    }

    #[test]
    fn injected_is_slower_than_local_for_small_payloads() {
        let mut pp = PingPong::new(TestbedOptions {
            warmup: 3,
            ..Default::default()
        });
        let local = pp.run(BuiltinJam::IndirectPut, InvocationMode::Local, 1, 10);
        let injected = pp.run(BuiltinJam::IndirectPut, InvocationMode::Injected, 1, 10);
        assert_eq!(local.frame_bytes, 64);
        assert_eq!(injected.frame_bytes, 1472);
        assert!(injected.median_us() > local.median_us());
    }

    #[test]
    fn injection_rate_exceeds_latency_bound() {
        let mut ir = InjectionRate::new(TestbedOptions {
            warmup: 10,
            ..Default::default()
        });
        let r = ir.run(BuiltinJam::ServerSideSum, InvocationMode::Local, 16, 100);
        // Pipelined rate must beat 1/latency (which would be ~0.4-0.8 M msg/s).
        assert!(
            r.messages_per_sec > 200_000.0,
            "rate {}",
            r.messages_per_sec
        );
        assert!(r.bandwidth_mib_s > 1.0);
    }

    #[test]
    fn stashing_improves_injected_latency() {
        let mut stash = PingPong::new(TestbedOptions {
            warmup: 3,
            ..Default::default()
        });
        let mut nostash = PingPong::new(
            TestbedOptions {
                warmup: 3,
                ..Default::default()
            }
            .nonstash(),
        );
        let s = stash.run(BuiltinJam::IndirectPut, InvocationMode::Injected, 8, 10);
        let n = nostash.run(BuiltinJam::IndirectPut, InvocationMode::Injected, 8, 10);
        assert!(
            s.median_us() < n.median_us(),
            "stash {} should beat nonstash {}",
            s.median_us(),
            n.median_us()
        );
    }

    #[test]
    fn wfe_saves_cycles_without_hurting_latency_much() {
        let mut poll = PingPong::new(TestbedOptions {
            warmup: 3,
            ..Default::default()
        });
        let mut wfe = PingPong::new(
            TestbedOptions {
                warmup: 3,
                ..Default::default()
            }
            .wfe(),
        );
        let p = poll.run(BuiltinJam::IndirectPut, InvocationMode::Injected, 8, 15);
        let w = wfe.run(BuiltinJam::IndirectPut, InvocationMode::Injected, 8, 15);
        assert!(w.receiver_cycles.total() < p.receiver_cycles.total());
        let penalty = (w.median_us() - p.median_us()) / p.median_us();
        assert!(penalty < 0.05, "latency penalty {penalty} should be small");
    }
}
