//! The CI perf-regression gate: thresholds, report parsing and evaluation.
//!
//! The `perf_gate` binary diffs a freshly generated `BENCH_fastpath.json`
//! against the committed baseline thresholds (`perf_baseline.json` at the repo
//! root) and fails the build with a readable table when a metric regresses.
//! The logic lives here, in the library, so it is unit-tested like everything
//! else; the binary is a thin argv wrapper.
//!
//! No serde exists in this workspace, so both files are parsed with a small
//! scanner that understands exactly the flat shapes our own reports emit.

/// Baseline thresholds the fresh report is held against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateThresholds {
    /// Warm-over-cold modelled dispatch speedup must stay at least this.
    pub min_dispatch_speedup: f64,
    /// Warm 1-shard modelled dispatch must stay at or below this many ns
    /// (the "within 10% of the recorded baseline" bound, precomputed).
    pub max_warm_dispatch_ns: f64,
    /// Modelled 4-shard drain speedup over 1 shard must stay at least this.
    pub min_model_speedup_4shard: f64,
    /// Wall-clock 4-shard rate must be at least this multiple of the 1-shard
    /// wall rate — enforced only on a sufficiently parallel runner.
    pub min_wall_ratio_4shard: f64,
    /// The 4-shard *pipelined* wall rate (sender fleet filling concurrently
    /// with the shard drain) must be at least this multiple of the 4-shard
    /// fill-then-drain wall rate — enforced under the same parallelism guard
    /// (overlap cannot manifest when 8 threads time-slice one core).
    pub min_pipeline_ratio_4shard: f64,
    /// Minimum `host_parallelism` for the wall-ratio and pipeline-ratio
    /// checks to be enforced (below it the threads time-slice one core and
    /// the ratios are physically capped at ~1x, so the checks are reported
    /// but not enforced).
    pub wall_gate_min_parallelism: usize,
    /// The 4-shard modelled `model_credit_time_share` must stay at or below
    /// this — the coalesced-credit bar (flow control cost ~0.16 of drain
    /// virtual time per-frame; batching must keep it under this share).
    /// Deterministic modelled metric, enforced on any runner.
    pub max_credit_time_share_4shard: f64,
    /// The 4-shard pipelined run's sender `credit_stall_events` must stay at
    /// or below this: coalescing credits must not trade drain-core time for
    /// sender starvation. Stall counts are schedule-dependent, so this is
    /// enforced only on a sufficiently parallel runner (same guard as the
    /// wall checks).
    pub max_credit_stall_events: f64,
    /// A stage of the lookup → filter → aggregate chain must dispatch at
    /// least this many times cheaper on a chained frame than as its own
    /// message (`chain_amortization` in the report). Deterministic modelled
    /// metric, enforced on any runner.
    pub min_chain_amortization: f64,
    /// A chained stage's absolute dispatch share
    /// (`chain_per_stage_dispatch_ns`) must stay at or below this many ns —
    /// the companion bar to the amortization ratio, so the chained path must
    /// improve in absolute terms even as resolved execution shrinks the
    /// per-message baseline the ratio divides by. Deterministic modelled
    /// metric, enforced on any runner.
    pub max_chain_stage_dispatch_ns: f64,
    /// The warm regime's `warm_resolved_cache_hits` must be at least this:
    /// under the default `ExecutionPolicy::Resolved`, every warm dispatch
    /// must run the pre-lowered image. A report showing fewer hits than this
    /// means the resolved path silently fell back to per-message
    /// interpretation. Deterministic counter, enforced on any runner.
    pub min_resolved_cache_hits: f64,
    /// The 4-shard modelled run's forward data puts per injected frame
    /// (`model_puts_per_frame`) must stay at or below this — the
    /// frame-aggregation bar: the adaptive policy must keep at least four
    /// frames behind each NIC posting on average (per-frame wire behaviour
    /// is 1.0). Deterministic modelled metric, enforced on any runner.
    pub max_model_puts_per_frame_4shard: f64,
}

impl Default for GateThresholds {
    fn default() -> Self {
        GateThresholds {
            min_dispatch_speedup: 2.0,
            // 76.1 ns measured with resolved execution + 10% (1108 ns before
            // the pre-resolved image path; the issue's target was <= 750 ns).
            max_warm_dispatch_ns: 83.7,
            // Recalibrated from 3.5 when resolved execution landed: the
            // absolute 4-shard modelled drain rate rose 3.19 -> 17.8 M msg/s,
            // but the ratio against 1 shard compressed (3.92 -> 3.43) because
            // the resolved path shrank exactly the per-message execution work
            // that scaled linearly, leaving the fixed per-round fabric costs
            // a larger share. Same Amdahl adaptation as the chain bars.
            min_model_speedup_4shard: 3.2,
            min_wall_ratio_4shard: 2.0,
            min_pipeline_ratio_4shard: 1.3,
            wall_gate_min_parallelism: 4,
            max_credit_time_share_4shard: 0.08,
            // Measured 60 on the 4-shard 1024-message sweep; 2x headroom for
            // runner-to-runner scheduling noise, still an order of magnitude
            // below a starved-sender pathology (one stall per message = 1024).
            max_credit_stall_events: 128.0,
            // Recalibrated from 2.0 when resolved execution landed: the
            // per-message baseline lost its code-section reads (~2.3x
            // cheaper), while a chained continuation was already at the
            // Local-dispatch floor, so the achievable ratio compressed to
            // ~2.0; the absolute per-stage bar below keeps the chained path
            // itself honest.
            min_chain_amortization: 1.8,
            // 38.1 ns measured; generous headroom still far below the ~70 ns
            // pre-resolved per-stage share.
            max_chain_stage_dispatch_ns: 55.0,
            // The shipped report measures 1000 warm messages; 400 still
            // covers a halved sweep while catching a resolved path that
            // stopped hitting at all.
            min_resolved_cache_hits: 400.0,
            // The sweep's default containers pack 8 x ~1508-byte injected
            // frames (0.125 puts/frame); 0.25 leaves room for geometry
            // changes while still demanding 4x put amortization.
            max_model_puts_per_frame_4shard: 0.25,
        }
    }
}

impl GateThresholds {
    /// Parse thresholds from the committed baseline file. Unknown keys are
    /// ignored; missing keys keep their defaults.
    pub fn from_json(json: &str) -> Self {
        let mut t = GateThresholds::default();
        if let Some(v) = json_f64(json, "min_dispatch_speedup") {
            t.min_dispatch_speedup = v;
        }
        if let Some(v) = json_f64(json, "max_warm_dispatch_ns") {
            t.max_warm_dispatch_ns = v;
        }
        if let Some(v) = json_f64(json, "min_model_speedup_4shard") {
            t.min_model_speedup_4shard = v;
        }
        if let Some(v) = json_f64(json, "min_wall_ratio_4shard") {
            t.min_wall_ratio_4shard = v;
        }
        if let Some(v) = json_f64(json, "min_pipeline_ratio_4shard") {
            t.min_pipeline_ratio_4shard = v;
        }
        if let Some(v) = json_f64(json, "wall_gate_min_parallelism") {
            t.wall_gate_min_parallelism = v as usize;
        }
        if let Some(v) = json_f64(json, "max_credit_time_share_4shard") {
            t.max_credit_time_share_4shard = v;
        }
        if let Some(v) = json_f64(json, "max_credit_stall_events") {
            t.max_credit_stall_events = v;
        }
        if let Some(v) = json_f64(json, "min_chain_amortization") {
            t.min_chain_amortization = v;
        }
        if let Some(v) = json_f64(json, "max_chain_stage_dispatch_ns") {
            t.max_chain_stage_dispatch_ns = v;
        }
        if let Some(v) = json_f64(json, "min_resolved_cache_hits") {
            t.min_resolved_cache_hits = v;
        }
        if let Some(v) = json_f64(json, "max_model_puts_per_frame_4shard") {
            t.max_model_puts_per_frame_4shard = v;
        }
        t
    }
}

/// One evaluated metric.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCheck {
    /// Human-readable metric name.
    pub name: &'static str,
    /// Measured value from the fresh report.
    pub value: f64,
    /// The bound it is held against (rendered with `op`).
    pub threshold: f64,
    /// `">="` or `"<="`.
    pub op: &'static str,
    /// Whether the measured value satisfies the bound.
    pub pass: bool,
    /// Whether a failure of this check fails the build (the wall-ratio check
    /// is informational on an under-provisioned runner).
    pub enforced: bool,
    /// Extra context shown in the table (e.g. why a check is not enforced).
    pub note: String,
}

/// The gate verdict: every check, plus the overall pass/fail.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// All evaluated checks, in report order.
    pub checks: Vec<GateCheck>,
}

impl GateOutcome {
    /// True when no *enforced* check failed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.pass || !c.enforced)
    }

    /// Render the result as the table the CI log shows.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<34} {:>12} {:>4} {:>12}  {:<6} {}\n",
            "metric", "measured", "", "threshold", "status", "note"
        ));
        for c in &self.checks {
            let status = match (c.pass, c.enforced) {
                (true, _) => "PASS",
                (false, true) => "FAIL",
                (false, false) => "skip",
            };
            out.push_str(&format!(
                "{:<34} {:>12.2} {:>4} {:>12.2}  {:<6} {}\n",
                c.name, c.value, c.op, c.threshold, status, c.note
            ));
        }
        out
    }
}

/// One row of `burst_shard_rows` as the gate needs it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateBurstRow {
    /// Shard count of the row.
    pub shards: usize,
    /// Deterministic modelled speedup over the 1-shard row.
    pub model_speedup: f64,
    /// Wall-clock drain rate of the threaded measurement.
    pub wall_msgs_per_sec: f64,
    /// Wall rate of the phased fill-then-drain schedule (absent in reports
    /// generated before the sender fleet existed).
    pub fill_drain_wall_msgs_per_sec: Option<f64>,
    /// Wall rate of the overlapped fill/drain pipeline (absent in pre-fleet
    /// reports).
    pub pipelined_wall_msgs_per_sec: Option<f64>,
    /// One-sided credit-return puts issued during the pipelined run (absent
    /// in reports generated before flow control rode the fabric).
    pub pipe_credit_ops: Option<f64>,
    /// Virtual-time share the modelled drain cores spent posting credits
    /// (absent in pre-flow-control reports).
    pub model_credit_time_share: Option<f64>,
    /// Sender credit-stall episodes during the pipelined run (absent in
    /// reports generated before credit coalescing).
    pub pipe_credit_stall_events: Option<f64>,
    /// Forward data puts per injected frame in the modelled run (absent in
    /// reports generated before frame aggregation).
    pub model_puts_per_frame: Option<f64>,
}

/// Extract a numeric field `"key": <number>` from a flat JSON object.
pub fn json_f64(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = json[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One row of `burst_loss_rows` as the gate needs it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateLossRow {
    /// Injected total fault probability (`0.0` = no plan installed).
    pub loss_rate: f64,
    /// Completed messages per wall second under this fault rate.
    pub goodput_msgs_per_sec: f64,
    /// Frame retransmits the sender lanes issued.
    pub frames_retransmitted: f64,
    /// Puts the fabric dropped on the faulted link.
    pub frames_dropped: f64,
    /// Stale deliveries retired without re-execution.
    pub replays_suppressed: f64,
    /// Gap NACKs the receiver posted.
    pub nacks_posted: f64,
}

/// Extract the lossy-fabric rows from a fast-path report. Reports generated
/// before the reliability layer existed have no `burst_loss_rows` key and
/// yield an empty list — the loss checks are only evaluated when present.
pub fn parse_loss_rows(json: &str) -> Vec<GateLossRow> {
    let Some(start) = json.find("\"burst_loss_rows\":") else {
        return Vec::new();
    };
    json[start..]
        .split('{')
        .skip(1)
        .filter_map(|row| {
            Some(GateLossRow {
                loss_rate: json_f64(row, "loss_rate")?,
                goodput_msgs_per_sec: json_f64(row, "goodput_msgs_per_sec")?,
                frames_retransmitted: json_f64(row, "frames_retransmitted")?,
                frames_dropped: json_f64(row, "frames_dropped")?,
                replays_suppressed: json_f64(row, "replays_suppressed")?,
                nacks_posted: json_f64(row, "nacks_posted")?,
            })
        })
        .collect()
}

/// Extract the burst rows from a fast-path report.
pub fn parse_burst_rows(json: &str) -> Vec<GateBurstRow> {
    let Some(start) = json.find("\"burst_shard_rows\":") else {
        return Vec::new();
    };
    json[start..]
        .split('{')
        .skip(1)
        .filter_map(|row| {
            Some(GateBurstRow {
                shards: json_f64(row, "shards")? as usize,
                model_speedup: json_f64(row, "model_speedup")?,
                wall_msgs_per_sec: json_f64(row, "wall_msgs_per_sec")?,
                fill_drain_wall_msgs_per_sec: json_f64(row, "fill_drain_wall_msgs_per_sec"),
                pipelined_wall_msgs_per_sec: json_f64(row, "pipelined_wall_msgs_per_sec"),
                pipe_credit_ops: json_f64(row, "pipe_credit_ops"),
                model_credit_time_share: json_f64(row, "model_credit_time_share"),
                pipe_credit_stall_events: json_f64(row, "pipe_credit_stall_events"),
                model_puts_per_frame: json_f64(row, "model_puts_per_frame"),
            })
        })
        .collect()
}

/// Evaluate a fresh fast-path report against the thresholds.
pub fn evaluate(report_json: &str, t: &GateThresholds) -> Result<GateOutcome, String> {
    let dispatch_speedup =
        json_f64(report_json, "dispatch_speedup").ok_or("report is missing dispatch_speedup")?;
    let warm_dispatch_ns =
        json_f64(report_json, "warm_dispatch_ns").ok_or("report is missing warm_dispatch_ns")?;
    let parallelism = json_f64(report_json, "host_parallelism").unwrap_or(1.0) as usize;
    let rows = parse_burst_rows(report_json);
    let one = rows.iter().find(|r| r.shards == 1);
    let four = rows.iter().find(|r| r.shards == 4);

    // The chained-dispatch bar: a stage riding a chained frame must cost at
    // most half the dispatch of a stage shipped as its own message. The metric
    // is deterministic virtual time, so any runner enforces it; reports
    // predating receiver-side chains must be regenerated, not waved through.
    let chain_amortization = json_f64(report_json, "chain_amortization").ok_or(
        "report is missing chain_amortization (regenerate the report with the current fastpath)",
    )?;
    let chain_stage_ns = json_f64(report_json, "chain_per_stage_dispatch_ns").ok_or(
        "report is missing chain_per_stage_dispatch_ns (regenerate the report with the current fastpath)",
    )?;
    // The resolved-execution bar: a report predating the resolved image path
    // lacks the column and must be regenerated, never waved through — a
    // missing counter is indistinguishable from a path that stopped hitting.
    let resolved_hits = json_f64(report_json, "warm_resolved_cache_hits").ok_or(
        "report is missing warm_resolved_cache_hits (regenerate the report with the current fastpath)",
    )?;

    let mut checks = vec![
        GateCheck {
            name: "warm/cold dispatch speedup",
            value: dispatch_speedup,
            threshold: t.min_dispatch_speedup,
            op: ">=",
            pass: dispatch_speedup >= t.min_dispatch_speedup,
            enforced: true,
            note: String::new(),
        },
        GateCheck {
            name: "warm 1-shard dispatch (ns)",
            value: warm_dispatch_ns,
            threshold: t.max_warm_dispatch_ns,
            op: "<=",
            pass: warm_dispatch_ns <= t.max_warm_dispatch_ns,
            enforced: true,
            note: String::new(),
        },
        GateCheck {
            name: "chained per-stage amortization",
            value: chain_amortization,
            threshold: t.min_chain_amortization,
            op: ">=",
            pass: chain_amortization >= t.min_chain_amortization,
            enforced: true,
            note: "one frame parse per chain, not per stage".into(),
        },
        GateCheck {
            name: "chained per-stage dispatch (ns)",
            value: chain_stage_ns,
            threshold: t.max_chain_stage_dispatch_ns,
            op: "<=",
            pass: chain_stage_ns <= t.max_chain_stage_dispatch_ns,
            enforced: true,
            note: "absolute companion to the amortization ratio".into(),
        },
        GateCheck {
            name: "warm resolved-image cache hits",
            value: resolved_hits,
            threshold: t.min_resolved_cache_hits,
            op: ">=",
            pass: resolved_hits >= t.min_resolved_cache_hits,
            enforced: true,
            note: "resolved execution must never fall back to interpretation".into(),
        },
    ];

    match four {
        Some(four) => {
            checks.push(GateCheck {
                name: "4-shard modelled speedup",
                value: four.model_speedup,
                threshold: t.min_model_speedup_4shard,
                op: ">=",
                pass: four.model_speedup >= t.min_model_speedup_4shard,
                enforced: true,
                note: String::new(),
            });
            let one = one.ok_or("report has a 4-shard burst row but no 1-shard baseline")?;
            let wall_ratio = four.wall_msgs_per_sec / one.wall_msgs_per_sec.max(f64::EPSILON);
            let enforced = parallelism >= t.wall_gate_min_parallelism;
            checks.push(GateCheck {
                name: "4-shard wall rate / 1-shard",
                value: wall_ratio,
                threshold: t.min_wall_ratio_4shard,
                op: ">=",
                pass: wall_ratio >= t.min_wall_ratio_4shard,
                enforced,
                note: if enforced {
                    format!("host_parallelism={parallelism}")
                } else {
                    format!(
                        "informational: host_parallelism={parallelism} < {}",
                        t.wall_gate_min_parallelism
                    )
                },
            });
            // The sender-fleet bar: overlapped fill/drain must beat the phased
            // schedule. Same parallelism guard as the wall-ratio check (8
            // threads on one core cannot overlap in wall clock).
            let (phased, pipelined) = (
                four.fill_drain_wall_msgs_per_sec
                    .ok_or("4-shard burst row is missing fill_drain_wall_msgs_per_sec (regenerate the report with the current fastpath)")?,
                four.pipelined_wall_msgs_per_sec
                    .ok_or("4-shard burst row is missing pipelined_wall_msgs_per_sec (regenerate the report with the current fastpath)")?,
            );
            let pipeline_ratio = pipelined / phased.max(f64::EPSILON);
            checks.push(GateCheck {
                name: "4-shard pipelined / fill-then-drain",
                value: pipeline_ratio,
                threshold: t.min_pipeline_ratio_4shard,
                op: ">=",
                pass: pipeline_ratio >= t.min_pipeline_ratio_4shard,
                enforced,
                note: if enforced {
                    format!("host_parallelism={parallelism}")
                } else {
                    format!(
                        "informational: host_parallelism={parallelism} < {}",
                        t.wall_gate_min_parallelism
                    )
                },
            });
            // The §VI-A2 flow-control bar: the pipelined run must have
            // returned its mailbox credits as one-sided fabric puts. Zero ops
            // means flow control regressed to a host-side side channel that
            // charges nothing in virtual time — enforced regardless of
            // runner parallelism, because credits flow however the threads
            // are scheduled.
            let credit_ops = four.pipe_credit_ops.ok_or(
                "4-shard burst row is missing pipe_credit_ops (regenerate the report with the current fastpath)",
            )?;
            checks.push(GateCheck {
                name: "4-shard pipelined credit ops",
                value: credit_ops,
                threshold: 1.0,
                op: ">=",
                pass: credit_ops >= 1.0,
                enforced: true,
                note: "credit returns must ride the fabric".into(),
            });
            // The coalesced-credit bar: the modelled drain cores' virtual-time
            // share spent posting credit puts must stay batched down. The
            // metric is deterministic (virtual time, not wall clock), so it
            // is enforced on any runner.
            let credit_share = four.model_credit_time_share.ok_or(
                "4-shard burst row is missing model_credit_time_share (regenerate the report with the current fastpath)",
            )?;
            checks.push(GateCheck {
                name: "4-shard modelled credit share",
                value: credit_share,
                threshold: t.max_credit_time_share_4shard,
                op: "<=",
                pass: credit_share <= t.max_credit_time_share_4shard,
                enforced: true,
                note: "coalesced flow control stays off the drain hot path".into(),
            });
            // Coalescing must not starve the senders: the pipelined run's
            // stall episodes stay at or below the baseline. Stall counts
            // depend on how the OS schedules the lane/drain threads, so the
            // bar shares the wall checks' parallelism guard.
            let stalls = four.pipe_credit_stall_events.ok_or(
                "4-shard burst row is missing pipe_credit_stall_events (regenerate the report with the current fastpath)",
            )?;
            checks.push(GateCheck {
                name: "4-shard pipelined credit stalls",
                value: stalls,
                threshold: t.max_credit_stall_events,
                op: "<=",
                pass: stalls <= t.max_credit_stall_events,
                enforced,
                note: if enforced {
                    "batched credits must not starve the sender lanes".into()
                } else {
                    format!(
                        "informational: host_parallelism={parallelism} < {}",
                        t.wall_gate_min_parallelism
                    )
                },
            });
            // The frame-aggregation bar: the modelled run's forward puts per
            // injected frame must stay batched down. Deterministic modelled
            // metric, enforced on any runner; reports predating aggregation
            // must be regenerated, not waved through.
            let puts_per_frame = four.model_puts_per_frame.ok_or(
                "4-shard burst row is missing model_puts_per_frame (regenerate the report with the current fastpath)",
            )?;
            checks.push(GateCheck {
                name: "4-shard modelled puts per frame",
                value: puts_per_frame,
                threshold: t.max_model_puts_per_frame_4shard,
                op: "<=",
                pass: puts_per_frame <= t.max_model_puts_per_frame_4shard,
                enforced: true,
                note: "aggregation amortizes the NIC posting path".into(),
            });
        }
        None => {
            return Err("report has no 4-shard burst row (run fastpath with --shards 1,2,4)".into())
        }
    }

    // The 2-shard row anchors the scaling curve between the baseline and the
    // 4-shard bar; a sweep that silently dropped it must be regenerated, not
    // gated on a sparser curve.
    if !rows.iter().any(|r| r.shards == 2) {
        return Err("report has no 2-shard burst row (run fastpath with --shards 1,2,4)".into());
    }

    // Lossy-fabric bars, evaluated only when the report carries loss rows.
    // The 0.0 row proves the reliability layer is free on a pristine link:
    // with no FaultPlan installed, every one of its counters must be exactly
    // zero. Faulted rows must show the recovery actually covering the loss
    // (every drop consumes a delivery attempt; attempts beyond the first-time
    // sends are retransmits) while still completing the workload.
    for row in parse_loss_rows(report_json) {
        if row.loss_rate == 0.0 {
            let residue = row.frames_retransmitted
                + row.frames_dropped
                + row.replays_suppressed
                + row.nacks_posted;
            checks.push(GateCheck {
                name: "lossless sweep reliability residue",
                value: residue,
                threshold: 0.0,
                op: "<=",
                pass: residue <= 0.0,
                enforced: true,
                note: "no FaultPlan => retransmit/NACK/replay counters all zero".into(),
            });
        } else {
            // Statistical honesty first: a faulted row whose fault counters
            // are all zero ran below the fault plan's resolution (too few
            // puts for the rate), and the coverage check below would pass
            // vacuously at 0 >= 0. The sweep must be regenerated with enough
            // volume that the injected faults actually bite.
            checks.push(GateCheck {
                name: "lossy sweep observed drops",
                value: row.frames_dropped,
                threshold: 1.0,
                op: ">=",
                pass: row.frames_dropped >= 1.0,
                enforced: true,
                note: format!(
                    "loss_rate={}: a faulted row must actually drop frames",
                    row.loss_rate
                ),
            });
            checks.push(GateCheck {
                name: "lossy sweep gap NACKs",
                value: row.nacks_posted,
                threshold: 1.0,
                op: ">=",
                pass: row.nacks_posted >= 1.0,
                enforced: true,
                note: format!(
                    "loss_rate={}: dropped frames must surface as NACKs",
                    row.loss_rate
                ),
            });
            checks.push(GateCheck {
                name: "lossy sweep retransmit coverage",
                value: row.frames_retransmitted,
                threshold: row.frames_dropped,
                op: ">=",
                pass: row.frames_retransmitted >= row.frames_dropped,
                enforced: true,
                note: format!("loss_rate={}: retransmits must cover drops", row.loss_rate),
            });
            checks.push(GateCheck {
                name: "lossy sweep goodput (msg/s)",
                value: row.goodput_msgs_per_sec,
                threshold: 1.0,
                op: ">=",
                pass: row.goodput_msgs_per_sec >= 1.0,
                enforced: true,
                note: format!("loss_rate={}: the run must still complete", row.loss_rate),
            });
        }
    }

    Ok(GateOutcome { checks })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The fixture's 2-shard row: constant, so tests can delete it verbatim
    /// to exercise the missing-row error. The gate only checks its presence.
    const TWO_SHARD_ROW: &str = concat!(
        "    {\"shards\": 2, \"model_speedup\": 1.80, \"wall_msgs_per_sec\": 150000, ",
        "\"fill_drain_wall_msgs_per_sec\": 120000, \"pipelined_wall_msgs_per_sec\": 160000, ",
        "\"model_credit_time_share\": 0.0500, \"model_puts_per_frame\": 0.13, ",
        "\"pipe_credit_ops\": 256, \"pipe_credit_stall_events\": 3},\n"
    );

    #[allow(clippy::too_many_arguments)]
    fn report_full(
        dispatch_speedup: f64,
        warm_ns: f64,
        model4: f64,
        wall1: f64,
        wall4: f64,
        phased4: f64,
        pipe4: f64,
        par: usize,
    ) -> String {
        format!(
            concat!(
                "{{\n  \"warm_dispatch_ns\": {},\n  \"dispatch_speedup\": {},\n",
                "  \"warm_resolved_cache_hits\": 800,\n",
                "  \"chain_amortization\": 2.90,\n",
                "  \"chain_per_stage_dispatch_ns\": 38.0,\n",
                "  \"host_parallelism\": {},\n",
                "  \"burst_shard_rows\": [\n",
                "    {{\"shards\": 1, \"model_speedup\": 1.00, \"wall_msgs_per_sec\": {}, ",
                "\"fill_drain_wall_msgs_per_sec\": {}, \"pipelined_wall_msgs_per_sec\": {}, ",
                "\"model_credit_time_share\": 0.0500, \"model_puts_per_frame\": 0.13, ",
                "\"pipe_credit_ops\": 256, \"pipe_credit_stall_events\": 3}},\n",
                "{}",
                "    {{\"shards\": 4, \"model_speedup\": {}, \"wall_msgs_per_sec\": {}, ",
                "\"fill_drain_wall_msgs_per_sec\": {}, \"pipelined_wall_msgs_per_sec\": {}, ",
                "\"model_credit_time_share\": 0.0500, \"model_puts_per_frame\": 0.13, ",
                "\"pipe_credit_ops\": 256, \"pipe_credit_stall_events\": 3}}\n  ]\n}}\n"
            ),
            warm_ns,
            dispatch_speedup,
            par,
            wall1,
            wall1 * 0.8,
            wall1 * 0.9,
            TWO_SHARD_ROW,
            model4,
            wall4,
            phased4,
            pipe4
        )
    }

    fn report(
        dispatch_speedup: f64,
        warm_ns: f64,
        model4: f64,
        wall1: f64,
        wall4: f64,
        par: usize,
    ) -> String {
        // Healthy pipeline columns by default: phased a bit under the
        // drain-only rate, pipelined 1.5x the phased rate.
        report_full(
            dispatch_speedup,
            warm_ns,
            model4,
            wall1,
            wall4,
            wall4 * 0.8,
            wall4 * 0.8 * 1.5,
            par,
        )
    }

    #[test]
    fn healthy_report_passes() {
        let out = evaluate(
            &report(2.16, 76.1, 4.0, 100_000.0, 260_000.0, 4),
            &GateThresholds::default(),
        )
        .unwrap();
        assert!(out.passed(), "{}", out.table());
        assert_eq!(out.checks.len(), 12);
        assert!(out.checks.iter().all(|c| c.enforced));
    }

    #[test]
    fn puts_per_frame_regression_fails_on_any_runner() {
        // Aggregation falling apart shows up as the modelled put count
        // climbing back toward one per frame; the metric is deterministic,
        // so even a 1-core runner enforces it.
        let json = report(2.2, 76.0, 4.0, 1e5, 3e5, 1).replace(
            "\"model_puts_per_frame\": 0.13",
            "\"model_puts_per_frame\": 0.80",
        );
        let out = evaluate(&json, &GateThresholds::default()).unwrap();
        let puts = out
            .checks
            .iter()
            .find(|c| c.name.contains("puts per frame"))
            .unwrap();
        assert!(!puts.pass && puts.enforced);
        assert!(!out.passed());
    }

    #[test]
    fn reports_without_puts_per_frame_are_an_error_not_a_pass() {
        // A report predating frame aggregation lacks the column; the gate
        // must demand a regenerated report, not skip the new bar.
        let json =
            report(2.2, 76.0, 4.0, 1e5, 3e5, 4).replace("\"model_puts_per_frame\": 0.13, ", "");
        let err = evaluate(&json, &GateThresholds::default()).unwrap_err();
        assert!(err.contains("model_puts_per_frame"), "{err}");
        assert!(err.contains("regenerate"), "{err}");
    }

    #[test]
    fn missing_two_shard_row_is_an_error_not_a_pass() {
        // The sweep documents --shards 1,2,4; a report whose 2-shard row
        // silently vanished must be regenerated, not gated without it.
        let json = report(2.2, 76.0, 4.0, 1e5, 3e5, 4).replace(TWO_SHARD_ROW, "");
        let err = evaluate(&json, &GateThresholds::default()).unwrap_err();
        assert!(err.contains("2-shard"), "{err}");
        assert!(err.contains("1,2,4"), "{err}");
    }

    #[test]
    fn chain_amortization_regression_fails_on_any_runner() {
        // Chained dispatch collapsing to per-message cost (amortization ~1x)
        // means the chain executor regressed to re-parsing per stage.
        let json = report(2.2, 76.0, 4.0, 1e5, 3e5, 1).replace(
            "\"chain_amortization\": 2.90",
            "\"chain_amortization\": 1.10",
        );
        let out = evaluate(&json, &GateThresholds::default()).unwrap();
        let chain = out
            .checks
            .iter()
            .find(|c| c.name.contains("amortization"))
            .unwrap();
        assert!(!chain.pass && chain.enforced);
        assert!(!out.passed());
    }

    #[test]
    fn reports_without_chain_amortization_are_an_error_not_a_pass() {
        // A report predating receiver-side chains lacks the amortization
        // column; the gate must demand a regenerated report, not skip the bar.
        let json =
            report(2.2, 76.0, 4.0, 1e5, 3e5, 4).replace("  \"chain_amortization\": 2.90,\n", "");
        let err = evaluate(&json, &GateThresholds::default()).unwrap_err();
        assert!(err.contains("chain_amortization"), "{err}");
        assert!(err.contains("regenerate"), "{err}");
    }

    #[test]
    fn resolved_cache_hit_regression_fails_on_any_runner() {
        // The warm loop falling back to interpretation shows up as the
        // resolved-image hit counter collapsing; the counter is deterministic,
        // so even a 1-core runner enforces it.
        let json = report(2.2, 76.0, 4.0, 1e5, 3e5, 1).replace(
            "\"warm_resolved_cache_hits\": 800",
            "\"warm_resolved_cache_hits\": 0",
        );
        let out = evaluate(&json, &GateThresholds::default()).unwrap();
        let hits = out
            .checks
            .iter()
            .find(|c| c.name.contains("resolved-image"))
            .unwrap();
        assert!(!hits.pass && hits.enforced);
        assert!(!out.passed());
    }

    #[test]
    fn reports_without_resolved_hits_are_an_error_not_a_pass() {
        // A report predating resolved execution lacks the counter; the gate
        // must demand a regenerated report, not skip the new bar.
        let json = report(2.2, 76.0, 4.0, 1e5, 3e5, 4)
            .replace("  \"warm_resolved_cache_hits\": 800,\n", "");
        let err = evaluate(&json, &GateThresholds::default()).unwrap_err();
        assert!(err.contains("warm_resolved_cache_hits"), "{err}");
        assert!(err.contains("regenerate"), "{err}");
    }

    #[test]
    fn chain_stage_dispatch_regression_fails_on_any_runner() {
        // The absolute per-stage bar catches a uniform slowdown that the
        // amortization ratio (a quotient of two regressed numbers) hides.
        let json = report(2.2, 76.0, 4.0, 1e5, 3e5, 1).replace(
            "\"chain_per_stage_dispatch_ns\": 38.0",
            "\"chain_per_stage_dispatch_ns\": 120.0",
        );
        let out = evaluate(&json, &GateThresholds::default()).unwrap();
        let stage = out
            .checks
            .iter()
            .find(|c| c.name.contains("per-stage dispatch"))
            .unwrap();
        assert!(!stage.pass && stage.enforced);
        assert!(!out.passed());
    }

    #[test]
    fn vacuously_clean_faulted_loss_rows_fail_the_gate() {
        // A 5% row with zero drops and zero NACKs ran below the fault plan's
        // resolution; its retransmit coverage would pass vacuously at 0 >= 0.
        let json = format!(
            concat!(
                "{}",
                ",\n  \"burst_loss_rows\": [\n",
                "    {{\"loss_rate\": 0.0500, \"messages\": 128, ",
                "\"goodput_msgs_per_sec\": 200000, \"frames_sent\": 128, ",
                "\"frames_retransmitted\": 0, \"frames_dropped\": 0, ",
                "\"replays_suppressed\": 0, \"nacks_posted\": 0, ",
                "\"retransmit_overhead\": 0.0}}\n  ]\n}}\n"
            ),
            report(2.2, 76.0, 4.0, 1e5, 3e5, 4)
                .trim_end()
                .trim_end_matches("}")
        );
        let out = evaluate(&json, &GateThresholds::default()).unwrap();
        let drops = out
            .checks
            .iter()
            .find(|c| c.name.contains("observed drops"))
            .unwrap();
        assert!(!drops.pass && drops.enforced);
        let nacks = out
            .checks
            .iter()
            .find(|c| c.name.contains("gap NACKs"))
            .unwrap();
        assert!(!nacks.pass && nacks.enforced);
        assert!(!out.passed());
    }

    #[test]
    fn zero_credit_ops_fail_the_gate_on_any_runner() {
        // Flow control regressing to a host-side channel shows up as zero
        // credit puts; that must fail even where the wall checks are
        // informational (parallelism 1).
        let json = report(2.2, 76.0, 4.0, 1e5, 3e5, 1)
            .replace("\"pipe_credit_ops\": 256", "\"pipe_credit_ops\": 0");
        let out = evaluate(&json, &GateThresholds::default()).unwrap();
        let credit = out
            .checks
            .iter()
            .find(|c| c.name.contains("credit"))
            .unwrap();
        assert!(!credit.pass && credit.enforced);
        assert!(!out.passed());
    }

    #[test]
    fn each_regression_is_caught() {
        let t = GateThresholds::default();
        // Dispatch speedup collapse.
        assert!(!evaluate(&report(1.4, 76.0, 4.0, 1e5, 3e5, 4), &t)
            .unwrap()
            .passed());
        // Warm dispatch regression beyond the 10% band.
        assert!(!evaluate(&report(2.2, 95.0, 4.0, 1e5, 3e5, 4), &t)
            .unwrap()
            .passed());
        // Modelled scaling regression.
        assert!(!evaluate(&report(2.2, 76.0, 3.0, 1e5, 3e5, 4), &t)
            .unwrap()
            .passed());
        // Wall scaling regression on a 4-core runner.
        assert!(!evaluate(&report(2.2, 76.0, 4.0, 1e5, 1.2e5, 4), &t)
            .unwrap()
            .passed());
        // Pipeline regression: overlapped fill/drain slower than 1.3x phased.
        assert!(
            !evaluate(&report_full(2.2, 76.0, 4.0, 1e5, 3e5, 2.5e5, 2.6e5, 4), &t)
                .unwrap()
                .passed()
        );
    }

    #[test]
    fn pipeline_ratio_is_informational_on_a_small_runner() {
        let out = evaluate(
            &report_full(2.2, 76.0, 4.0, 1e5, 9e4, 8e4, 8.1e4, 1),
            &GateThresholds::default(),
        )
        .unwrap();
        let pipe = out
            .checks
            .iter()
            .find(|c| c.name.contains("pipelined"))
            .unwrap();
        assert!(!pipe.pass && !pipe.enforced);
        assert!(
            out.passed(),
            "unenforced pipeline check must not fail the gate"
        );
    }

    #[test]
    fn credit_share_regression_fails_on_any_runner() {
        // Coalescing falling apart shows up as the modelled credit share
        // climbing back toward the ~0.16 per-frame cost; the metric is
        // deterministic, so even a 1-core runner enforces it.
        let json = report(2.2, 76.0, 4.0, 1e5, 3e5, 1).replace(
            "\"model_credit_time_share\": 0.0500",
            "\"model_credit_time_share\": 0.1600",
        );
        let out = evaluate(&json, &GateThresholds::default()).unwrap();
        let share = out
            .checks
            .iter()
            .find(|c| c.name.contains("credit share"))
            .unwrap();
        assert!(!share.pass && share.enforced);
        assert!(!out.passed());
    }

    #[test]
    fn sender_stall_regression_fails_on_a_parallel_runner() {
        let json = report(2.2, 76.0, 4.0, 1e5, 3e5, 4).replace(
            "\"pipe_credit_stall_events\": 3}\n  ]",
            "\"pipe_credit_stall_events\": 5000}\n  ]",
        );
        let out = evaluate(&json, &GateThresholds::default()).unwrap();
        let stalls = out
            .checks
            .iter()
            .find(|c| c.name.contains("stalls"))
            .unwrap();
        assert!(!stalls.pass && stalls.enforced);
        assert!(!out.passed());
    }

    #[test]
    fn sender_stalls_are_informational_on_a_small_runner() {
        // Stall counts are schedule-dependent: a time-sliced runner parks
        // lanes constantly, so the bar reports but does not enforce there.
        let json = report(2.2, 76.0, 4.0, 1e5, 3e5, 1).replace(
            "\"pipe_credit_stall_events\": 3}\n  ]",
            "\"pipe_credit_stall_events\": 5000}\n  ]",
        );
        let out = evaluate(&json, &GateThresholds::default()).unwrap();
        let stalls = out
            .checks
            .iter()
            .find(|c| c.name.contains("stalls"))
            .unwrap();
        assert!(!stalls.pass && !stalls.enforced);
        assert!(
            out.passed(),
            "unenforced stall check must not fail the gate"
        );
    }

    #[test]
    fn reports_without_credit_share_are_an_error_not_a_pass() {
        // A report predating credit coalescing lacks the share column; the
        // gate must demand a regenerated report, not skip the new bar.
        let json = report(2.2, 76.0, 4.0, 1e5, 3e5, 4)
            .replace("\"model_credit_time_share\": 0.0500, ", "");
        let err = evaluate(&json, &GateThresholds::default()).unwrap_err();
        assert!(err.contains("model_credit_time_share"), "{err}");
        let json =
            report(2.2, 76.0, 4.0, 1e5, 3e5, 4).replace(", \"pipe_credit_stall_events\": 3", "");
        let err = evaluate(&json, &GateThresholds::default()).unwrap_err();
        assert!(err.contains("pipe_credit_stall_events"), "{err}");
    }

    #[test]
    fn pre_fleet_reports_are_an_error_not_a_pass() {
        // A report whose 4-shard row lacks the pipeline columns must fail
        // loudly (regenerate it), not silently skip the new bar.
        let json = concat!(
            "{\"warm_dispatch_ns\": 76.0, \"dispatch_speedup\": 2.2, ",
            "\"warm_resolved_cache_hits\": 800, ",
            "\"chain_amortization\": 2.9, \"chain_per_stage_dispatch_ns\": 38.0, ",
            "\"host_parallelism\": 4, \"burst_shard_rows\": [",
            "{\"shards\": 1, \"model_speedup\": 1.0, \"wall_msgs_per_sec\": 100000}, ",
            "{\"shards\": 4, \"model_speedup\": 4.0, \"wall_msgs_per_sec\": 300000}]}"
        );
        let err = evaluate(json, &GateThresholds::default()).unwrap_err();
        assert!(err.contains("fill_drain_wall_msgs_per_sec"), "{err}");
    }

    #[test]
    fn wall_ratio_is_informational_on_a_small_runner() {
        let out = evaluate(
            &report(2.2, 76.0, 4.0, 100_000.0, 90_000.0, 1),
            &GateThresholds::default(),
        )
        .unwrap();
        let wall = out.checks.iter().find(|c| c.name.contains("wall")).unwrap();
        assert!(!wall.pass && !wall.enforced);
        assert!(out.passed(), "unenforced wall check must not fail the gate");
        assert!(out.table().contains("skip"));
    }

    #[test]
    fn missing_rows_are_an_error_not_a_pass() {
        let json = "{\"warm_dispatch_ns\": 1100.0, \"dispatch_speedup\": 2.2, \"chain_amortization\": 2.9, \"burst_shard_rows\": []}";
        assert!(evaluate(json, &GateThresholds::default()).is_err());
    }

    #[test]
    fn thresholds_parse_from_baseline_json() {
        let t = GateThresholds::from_json(
            "{\"min_dispatch_speedup\": 2.5, \"max_warm_dispatch_ns\": 900, \"min_pipeline_ratio_4shard\": 1.5, \"wall_gate_min_parallelism\": 8, \"max_credit_time_share_4shard\": 0.07, \"max_credit_stall_events\": 48, \"min_chain_amortization\": 2.4, \"max_chain_stage_dispatch_ns\": 50, \"min_resolved_cache_hits\": 500, \"max_model_puts_per_frame_4shard\": 0.2}",
        );
        assert_eq!(t.min_dispatch_speedup, 2.5);
        assert_eq!(t.max_warm_dispatch_ns, 900.0);
        assert_eq!(t.min_pipeline_ratio_4shard, 1.5);
        assert_eq!(t.wall_gate_min_parallelism, 8);
        assert_eq!(t.max_credit_time_share_4shard, 0.07);
        assert_eq!(t.max_credit_stall_events, 48.0);
        assert_eq!(t.min_chain_amortization, 2.4);
        assert_eq!(t.max_chain_stage_dispatch_ns, 50.0);
        assert_eq!(t.min_resolved_cache_hits, 500.0);
        assert_eq!(t.max_model_puts_per_frame_4shard, 0.2);
        assert_eq!(
            t.min_model_speedup_4shard,
            GateThresholds::default().min_model_speedup_4shard,
            "missing keys keep defaults"
        );
    }

    #[test]
    fn real_report_shape_parses() {
        // The exact shape FastpathReport::to_json emits.
        let report = crate::fastpath::FastpathReport {
            messages: 10,
            frame_bytes: 1500,
            cold: crate::fastpath::RegimeResult {
                dispatch_ns: 2400.0,
                handler_ns: 2500.0,
                wall_ns: 20000.0,
            },
            warm: crate::fastpath::RegimeResult {
                dispatch_ns: 76.0,
                handler_ns: 176.0,
                wall_ns: 8000.0,
            },
            warm_code_cache_hits: 10,
            warm_code_cache_misses: 0,
            warm_got_cache_hits: 10,
            warm_template_hits: 10,
            warm_resolved_cache_hits: 500,
            warm_resolved_cache_misses: 0,
            superinstructions_executed: 20,
            chain_stages: 3,
            chain_sequential_dispatch_ns: 120.0,
            chain_per_stage_dispatch_ns: 40.0,
            chain_amortization: 2.9,
            burst: vec![
                crate::burst::BurstRow {
                    shards: 1,
                    messages: 64,
                    model_msgs_per_sec: 8e5,
                    model_speedup: 1.0,
                    wall_msgs_per_sec: 1.5e5,
                    fill_drain_wall_msgs_per_sec: 1.1e5,
                    pipelined_wall_msgs_per_sec: 1.2e5,
                    model_credit_ops: 64,
                    model_credit_bytes: 64,
                    model_credit_time_share: 0.04,
                    pipe_credit_ops: 64,
                    pipe_credit_bytes: 64,
                    pipe_credit_stall_events: 1,
                    batch_frames_per_put: 7.5,
                    model_puts_per_frame: 0.133,
                    model_posting_share_per_frame: 0.2,
                    model_posting_share_batched: 0.03,
                },
                crate::burst::BurstRow {
                    shards: 2,
                    messages: 64,
                    model_msgs_per_sec: 1.6e6,
                    model_speedup: 2.0,
                    wall_msgs_per_sec: 2.4e5,
                    fill_drain_wall_msgs_per_sec: 1.8e5,
                    pipelined_wall_msgs_per_sec: 2.6e5,
                    model_credit_ops: 64,
                    model_credit_bytes: 64,
                    model_credit_time_share: 0.04,
                    pipe_credit_ops: 64,
                    pipe_credit_bytes: 64,
                    pipe_credit_stall_events: 2,
                    batch_frames_per_put: 7.8,
                    model_puts_per_frame: 0.128,
                    model_posting_share_per_frame: 0.2,
                    model_posting_share_batched: 0.03,
                },
                crate::burst::BurstRow {
                    shards: 4,
                    messages: 64,
                    model_msgs_per_sec: 3.2e6,
                    model_speedup: 4.0,
                    wall_msgs_per_sec: 3.2e5,
                    fill_drain_wall_msgs_per_sec: 2.4e5,
                    pipelined_wall_msgs_per_sec: 3.6e5,
                    model_credit_ops: 64,
                    model_credit_bytes: 64,
                    model_credit_time_share: 0.04,
                    pipe_credit_ops: 64,
                    pipe_credit_bytes: 64,
                    pipe_credit_stall_events: 4,
                    batch_frames_per_put: 8.0,
                    model_puts_per_frame: 0.125,
                    model_posting_share_per_frame: 0.2,
                    model_posting_share_batched: 0.03,
                },
            ],
            loss: vec![
                crate::burst::LossRow {
                    loss_rate: 0.0,
                    messages: 128,
                    goodput_msgs_per_sec: 2e5,
                    frames_sent: 128,
                    frames_retransmitted: 0,
                    frames_dropped: 0,
                    replays_suppressed: 0,
                    nacks_posted: 0,
                    frames_rejected: 0,
                },
                crate::burst::LossRow {
                    loss_rate: 0.05,
                    messages: 128,
                    goodput_msgs_per_sec: 1.5e5,
                    frames_sent: 128,
                    frames_retransmitted: 6,
                    frames_dropped: 3,
                    replays_suppressed: 2,
                    nacks_posted: 3,
                    frames_rejected: 0,
                },
            ],
            host_parallelism: 4,
        };
        let json = report.to_json();
        let rows = parse_loss_rows(&json);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].loss_rate, 0.0);
        assert_eq!(rows[1].frames_retransmitted, 6.0);
        assert_eq!(rows[1].frames_dropped, 3.0);
        let out = evaluate(&json, &GateThresholds::default()).unwrap();
        assert!(out.passed(), "{}", out.table());
        // 12 base checks + 1 lossless residue + 4 per faulted row.
        assert_eq!(out.checks.len(), 17);
    }

    #[test]
    fn lossless_reliability_residue_fails_the_gate() {
        // Retransmits on a link with no FaultPlan mean the reliability layer
        // fired spuriously — the "pristine link pays nothing" contract broke.
        let json = format!(
            concat!(
                "{}",
                ",\n  \"burst_loss_rows\": [\n",
                "    {{\"loss_rate\": 0.0000, \"messages\": 128, ",
                "\"goodput_msgs_per_sec\": 200000, \"frames_sent\": 128, ",
                "\"frames_retransmitted\": 2, \"frames_dropped\": 0, ",
                "\"replays_suppressed\": 0, \"nacks_posted\": 0, ",
                "\"retransmit_overhead\": 0.0156}}\n  ]\n}}\n"
            ),
            report(2.2, 76.0, 4.0, 1e5, 3e5, 4)
                .trim_end()
                .trim_end_matches("}")
        );
        let out = evaluate(&json, &GateThresholds::default()).unwrap();
        let residue = out
            .checks
            .iter()
            .find(|c| c.name.contains("residue"))
            .unwrap();
        assert!(!residue.pass && residue.enforced);
        assert!(!out.passed());
    }

    #[test]
    fn uncovered_drops_fail_the_gate() {
        // A faulted row whose drops exceed its retransmits cannot have
        // completed honestly — recovery regressed.
        let json = format!(
            concat!(
                "{}",
                ",\n  \"burst_loss_rows\": [\n",
                "    {{\"loss_rate\": 0.0500, \"messages\": 128, ",
                "\"goodput_msgs_per_sec\": 150000, \"frames_sent\": 128, ",
                "\"frames_retransmitted\": 1, \"frames_dropped\": 5, ",
                "\"replays_suppressed\": 0, \"nacks_posted\": 2, ",
                "\"retransmit_overhead\": 0.0078}}\n  ]\n}}\n"
            ),
            report(2.2, 76.0, 4.0, 1e5, 3e5, 4)
                .trim_end()
                .trim_end_matches("}")
        );
        let out = evaluate(&json, &GateThresholds::default()).unwrap();
        let coverage = out
            .checks
            .iter()
            .find(|c| c.name.contains("retransmit coverage"))
            .unwrap();
        assert!(!coverage.pass && coverage.enforced);
        assert!(!out.passed());
    }

    #[test]
    fn reports_without_loss_rows_skip_the_loss_checks() {
        // Pre-reliability reports (and sweeps run without the loss pass) are
        // still gateable on their own metrics.
        let out = evaluate(
            &report(2.16, 76.1, 4.0, 100_000.0, 260_000.0, 4),
            &GateThresholds::default(),
        )
        .unwrap();
        assert!(out.checks.iter().all(|c| !c.name.contains("loss")));
        assert!(out.passed());
    }
}
