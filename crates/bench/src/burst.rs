//! Multi-shard burst-drain benchmark: how receive throughput scales with the
//! number of receiver shards.
//!
//! One sender streams frames into every mailbox of the receiver's banks (posting
//! each put's delivery into a per-shard [`ShardedCompletions`] queue — the same
//! `bank % num_shards` route the receiver's ownership map uses). The receiver
//! then drains with [`TwoChainsHost::receive_burst`], one burst per shard per
//! round, and the sweep reports two throughput views per shard count:
//!
//! * **Modelled** (deterministic): shards drain concurrently in virtual time, so a
//!   round costs the *maximum* per-shard drain time, not the sum. This is the
//!   simulated-testbed number the acceptance bar (4-shard ≥ 2× 1-shard) holds
//!   against, and it is reproducible run to run.
//! * **Wall**: the same drain executed with one OS thread per shard via
//!   [`TwoChainsHost::shard_drains`] + `std::thread::scope`, timing the host
//!   CPU. The sweep runs in [`SpaceMode::ShardLocal`](twochains::SpaceMode)
//!   over the per-core cache hierarchy, so the whole path — dispatch, simulated
//!   memory charging *and* jam execution — runs without a global lock; the only
//!   shared state is the striped L3/LLC/DRAM simulation and the injection
//!   caches. On a machine with at least as many cores as shards the wall rate
//!   scales with the shard count (the CI perf gate enforces ≥ 2x at 4 shards on
//!   a ≥ 4-core runner); on fewer cores the threads time-slice and the wall
//!   column is informational, which is why the report records
//!   `host_parallelism` next to it.

use std::time::Instant;

use twochains::builtin::{benchmark_package, indirect_put_args, BuiltinJam};
use twochains::{InvocationMode, RuntimeConfig, ShardMask, TwoChainsHost, TwoChainsSender};
use twochains_fabric::{ShardedCompletions, SimFabric};
use twochains_memsim::{SimTime, TestbedConfig};

/// One row of the shard-scaling sweep.
#[derive(Debug, Clone, Copy)]
pub struct BurstRow {
    /// Number of receiver shards (and drain threads in the wall measurement).
    pub shards: usize,
    /// Messages drained in the measured phase.
    pub messages: usize,
    /// Deterministic modelled throughput: messages / max-per-shard virtual drain
    /// time, summed over rounds.
    pub model_msgs_per_sec: f64,
    /// Modelled speedup relative to the sweep's first row (the 1-shard baseline).
    pub model_speedup: f64,
    /// Wall-clock throughput of the threaded drain (informational; machine- and
    /// load-dependent).
    pub wall_msgs_per_sec: f64,
}

/// Geometry used by the sweep: enough banks for the largest shard count, small
/// frames so the region stays modest.
fn sweep_config(shards: usize) -> RuntimeConfig {
    // Shard-local space mode: the drain threads execute without the global
    // address-space lock (the builtin jams are shard-local writers).
    let mut cfg = RuntimeConfig::paper_default()
        .with_shards(shards)
        .with_shard_local_space();
    cfg.banks = shards.max(4);
    cfg.mailboxes_per_bank = 16;
    cfg.frame_capacity = 4096;
    cfg
}

/// Number of hardware threads available to the wall measurement (recorded in
/// the report so the perf gate can tell real scaling headroom from a small CI
/// runner time-slicing the drain threads).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn build_testbed(shards: usize) -> (TwoChainsHost, TwoChainsSender) {
    let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut host = TwoChainsHost::new(&fabric, b, sweep_config(shards)).expect("host");
    host.install_package(benchmark_package().expect("package"))
        .expect("install");
    let mut sender = TwoChainsSender::new(
        fabric.endpoint(a, b).expect("ep"),
        benchmark_package().unwrap(),
    );
    let id = host.builtin_id(BuiltinJam::IndirectPut).unwrap();
    sender.set_remote_got(id, &host.export_got(id).unwrap());
    (host, sender)
}

/// Fill every mailbox with one injected Indirect Put frame, routing each put's
/// completion to the owning shard's queue. Returns the per-shard delivery
/// horizons (when a shard's last frame became visible).
fn fill_all(
    host: &TwoChainsHost,
    sender: &mut TwoChainsSender,
    completions: &mut ShardedCompletions,
    round: u64,
) -> Vec<SimTime> {
    let elem = host.builtin_id(BuiltinJam::IndirectPut).unwrap();
    let banks = host.config().banks;
    let per_bank = host.config().mailboxes_per_bank;
    let usr: Vec<u8> = (0..8u32).flat_map(|v| (v + 1).to_le_bytes()).collect();
    let mut clock = SimTime::ZERO;
    for bank in 0..banks {
        for slot in 0..per_bank {
            let key = round
                .wrapping_mul(7)
                .wrapping_add((bank * per_bank + slot) as u64)
                % 64;
            let args = indirect_put_args(key, 8, 4);
            let target = host.mailbox_target(bank, slot).unwrap();
            let sent = sender
                .send_message(clock, elem, InvocationMode::Injected, &args, &usr, &target)
                .expect("send");
            clock = sent.sender_free();
            completions
                .post_to_bank(bank, sent.delivered())
                .expect("completion queue sized for a full fill");
        }
    }
    // Every slot must now be visible to the burst scan — the same iter_ready the
    // drain uses, so the bench never re-derives (bank, slot) indexing itself.
    debug_assert_eq!(
        host.banks().iter_ready(ShardMask::all()).count(),
        banks * per_bank
    );
    (0..completions.shards())
        .map(|s| {
            // Harvest the shard's queue (far horizon: everything is in flight at
            // most microseconds) and take its latest delivery.
            let (done, _) = completions.poll_shard(s, SimTime::from_us(1_000_000));
            done.iter()
                .map(|c| c.ready_at)
                .fold(SimTime::ZERO, SimTime::max)
        })
        .collect()
}

/// Run `rounds` fill+drain cycles over `shards` shards, modelled (sequential,
/// deterministic). Returns (messages, total modelled drain time).
fn run_modelled(shards: usize, rounds: usize) -> (usize, SimTime) {
    let (mut host, mut sender) = build_testbed(shards);
    let total_slots = host.config().banks * host.config().mailboxes_per_bank;
    let mut completions = ShardedCompletions::new(shards, total_slots, SimTime::from_ns(55));
    // Prime: one full fill+drain populates the injection caches and the sender
    // template, so the measured regime is the warm fast path.
    fill_all(&host, &mut sender, &mut completions, u64::MAX);
    for shard in 0..shards {
        host.receive_burst(shard, usize::MAX, SimTime::ZERO)
            .expect("prime drain");
    }
    host.reset_stats();

    let mut total = SimTime::ZERO;
    for round in 0..rounds {
        let horizons = fill_all(&host, &mut sender, &mut completions, round as u64);
        // Shards drain concurrently in virtual time, each starting at its own
        // delivery horizon: the round costs the slowest shard's window.
        let mut round_cost = SimTime::ZERO;
        let mut drained = 0usize;
        for (shard, &start) in horizons.iter().enumerate() {
            let out = host.receive_burst(shard, usize::MAX, start).expect("drain");
            drained += out.len();
            round_cost = round_cost.max(out.drained_at - start);
        }
        assert_eq!(drained, total_slots, "every slot drained each round");
        total += round_cost;
    }
    (rounds * total_slots, total)
}

/// The same workload drained by one OS thread per shard; returns (messages,
/// wall-clock seconds) scaled from the *fastest* round. Taking the best round
/// rather than the sum makes the wall column robust to scheduler noise on
/// shared CI runners (a background burst that stalls one round should not read
/// as a throughput regression), while still requiring the drain itself to go
/// fast at least once — which it only can when the lock split actually works.
fn run_threaded(shards: usize, rounds: usize) -> (usize, f64) {
    let (mut host, mut sender) = build_testbed(shards);
    let total_slots = host.config().banks * host.config().mailboxes_per_bank;
    let mut completions = ShardedCompletions::new(shards, total_slots, SimTime::from_ns(55));
    fill_all(&host, &mut sender, &mut completions, u64::MAX);
    for shard in 0..shards {
        host.receive_burst(shard, usize::MAX, SimTime::ZERO)
            .expect("prime drain");
    }
    host.reset_stats();

    let mut best_round = f64::INFINITY;
    for round in 0..rounds {
        let horizons = fill_all(&host, &mut sender, &mut completions, round as u64);
        let start = Instant::now();
        std::thread::scope(|s| {
            let handles: Vec<_> = host
                .shard_drains()
                .into_iter()
                .map(|mut drain| {
                    let shard_start = horizons[drain.shard_id()];
                    s.spawn(move || {
                        drain
                            .receive_burst(usize::MAX, shard_start)
                            .expect("threaded drain")
                            .len()
                    })
                })
                .collect();
            let drained: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(drained, total_slots);
        });
        best_round = best_round.min(start.elapsed().as_secs_f64());
    }
    // Rate is computed from one (best) round's worth of messages and time.
    (total_slots, best_round)
}

/// Sweep the shard counts, draining at least `messages` frames per count (rounded
/// up to whole fill rounds). The first entry is the speedup baseline.
pub fn sweep(shard_counts: &[usize], messages: usize) -> Vec<BurstRow> {
    let mut rows: Vec<BurstRow> = Vec::with_capacity(shard_counts.len());
    for &shards in shard_counts {
        let slots = sweep_config(shards).total_mailboxes();
        let rounds = messages.div_ceil(slots).max(1);
        let (n_model, model_time) = run_modelled(shards, rounds);
        let (n_wall, wall_secs) = run_threaded(shards, rounds);
        let model_rate = n_model as f64 / model_time.as_secs().max(1e-12);
        let wall_rate = n_wall as f64 / wall_secs.max(1e-12);
        let baseline = rows.first().map(|r| r.model_msgs_per_sec);
        rows.push(BurstRow {
            shards,
            messages: n_model,
            model_msgs_per_sec: model_rate,
            model_speedup: model_rate / baseline.unwrap_or(model_rate),
            wall_msgs_per_sec: wall_rate,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_shards_at_least_double_one_shard_modelled_throughput() {
        let rows = sweep(&[1, 4], 128);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].shards, 1);
        assert!((rows[0].model_speedup - 1.0).abs() < 1e-9);
        // The acceptance bar for the sharded receiver: 4 shards drain the same
        // warm stream at >= 2x the single-shard modelled rate.
        assert!(
            rows[1].model_speedup >= 2.0,
            "4-shard modelled speedup {:.2} (rates {:.0} vs {:.0} msg/s) below 2x",
            rows[1].model_speedup,
            rows[1].model_msgs_per_sec,
            rows[0].model_msgs_per_sec
        );
    }

    #[test]
    fn modelled_rates_are_deterministic() {
        let a = sweep(&[2], 64);
        let b = sweep(&[2], 64);
        assert_eq!(a[0].messages, b[0].messages);
        assert_eq!(a[0].model_msgs_per_sec, b[0].model_msgs_per_sec);
    }
}
