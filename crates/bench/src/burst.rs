//! Multi-shard burst-drain benchmark: how receive throughput scales with the
//! number of receiver shards, and how much wall clock a pipelined sender fleet
//! buys over the phased fill-then-drain schedule.
//!
//! A [`SenderFleet`] (one `TwoChainsSender` per shard stream, each with its own
//! endpoint, template cache and per-stream completion window) streams injected
//! frames into the receiver's banks; the receiver drains with
//! [`TwoChainsHost::receive_burst`], one burst per shard per round. The sweep
//! reports four throughput views per shard count:
//!
//! * **Modelled** (deterministic): the fleet fills lane-by-lane on the driver
//!   thread, then shards drain concurrently in virtual time — a round costs the
//!   *maximum* per-shard drain time, not the sum. This is the simulated-testbed
//!   number the acceptance bar (4-shard ≥ 2× 1-shard) holds against, and it is
//!   reproducible run to run. Since the one-sided credit path (§VI-A2), the
//!   drain windows include the credit-return puts — one token per retired
//!   frame, coalesced into per-row span flushes by the adaptive policy — and
//!   each row reports that flow-control traffic (`model_credit_ops`/`_bytes`
//!   and the virtual-time share the drain cores spent posting credits).
//! * **Wall (drain-only)**: the drain executed with one OS thread per shard via
//!   [`TwoChainsHost::shard_drains`] + `std::thread::scope`, timing only the
//!   drain phase on the host CPU (the PR-3 lock-split metric; the CI perf gate
//!   enforces ≥ 2x at 4 shards on a ≥ 4-core runner).
//! * **Wall (fill-then-drain)**: one full round timed end to end with the send
//!   phase *serialized* on the driver thread before the threaded drain starts —
//!   the schedule every wall measurement used before the fleet existed.
//! * **Wall (pipelined)**: [`drive_pipeline`] — one sender thread per lane and
//!   one drain thread per shard running concurrently, with per-slot credits
//!   returned as one-sided puts into each lane's sender-side flag region, so
//!   fill and drain overlap in wall clock with no host-side channel anywhere.
//!   The row reports the pipelined run's credit traffic too
//!   (`pipe_credit_ops`/`_bytes` — the perf gate requires it nonzero — plus
//!   `pipe_credit_stall_events`, the sender-side stall episodes the gate
//!   bars against its baseline so coalescing can never starve the lanes). The
//!   perf gate holds 4-shard pipelined ≥ 1.3× fill-then-drain on a ≥ 4-core
//!   runner; on fewer cores all the wall columns are informational, which is
//!   why the report records `host_parallelism` next to them.
//!
//! The sweep runs in [`SpaceMode::ShardLocal`](twochains::SpaceMode) over the
//! per-core cache hierarchy, so the whole drain path — dispatch, simulated
//! memory charging *and* jam execution — runs without a global lock; the only
//! shared state is the striped L3/LLC/DRAM simulation and the injection caches.

use std::time::Instant;

use twochains::builtin::{benchmark_package, indirect_put_args, BuiltinJam};
use twochains::{
    drive_pipeline, AggregationPolicy, InvocationMode, RuntimeConfig, SenderFleet, ShardMask,
    SlotCtx, TwoChainsHost,
};
use twochains_fabric::{FaultPlan, LinkModel, SimFabric};
use twochains_linker::ElementId;
use twochains_memsim::{SimTime, TestbedConfig};

/// One row of the shard-scaling sweep.
#[derive(Debug, Clone, Copy)]
pub struct BurstRow {
    /// Number of receiver shards (= sender streams and drain threads).
    pub shards: usize,
    /// Messages drained in the measured phase.
    pub messages: usize,
    /// Deterministic modelled throughput: messages / max-per-shard virtual drain
    /// time, summed over rounds.
    pub model_msgs_per_sec: f64,
    /// Modelled speedup relative to the sweep's first row (the 1-shard baseline).
    pub model_speedup: f64,
    /// Wall-clock throughput of the threaded drain alone (fill excluded —
    /// the PR-3 lock-split metric; machine- and load-dependent).
    pub wall_msgs_per_sec: f64,
    /// Wall-clock throughput of a full round with the send phase serialized on
    /// the driver thread before the threaded drain (the pre-fleet schedule).
    pub fill_drain_wall_msgs_per_sec: f64,
    /// Wall-clock throughput of the overlapped fill/drain pipeline
    /// ([`drive_pipeline`]): sender and drain threads running concurrently
    /// with per-slot credit flow control.
    pub pipelined_wall_msgs_per_sec: f64,
    /// One-sided credit-return puts issued during the modelled run (§VI-A2:
    /// one per retired frame once the credit path is installed).
    pub model_credit_ops: u64,
    /// Payload bytes those modelled credit puts moved.
    pub model_credit_bytes: u64,
    /// Fraction of the drain cores' modelled busy time (wait + handler +
    /// credit posting) spent posting credit-return puts — the virtual-time
    /// share flow control costs now that it rides the fabric.
    pub model_credit_time_share: f64,
    /// Credit-return puts issued during one pipelined wall rep.
    pub pipe_credit_ops: u64,
    /// Payload bytes those pipelined credit puts moved.
    pub pipe_credit_bytes: u64,
    /// Sender-lane credit-stall episodes during one pipelined wall rep: how
    /// often a lane found no refillable slot and had to spin on its flag
    /// region. The perf gate bars this against the baseline so credit
    /// coalescing cannot trade drain-core time for sender starvation.
    pub pipe_credit_stall_events: u64,
    /// Average inner frames carried per forward data put in the modelled run
    /// under the default adaptive aggregation (1.0 when nothing batched).
    pub batch_frames_per_put: f64,
    /// Forward data puts per injected frame in the modelled run — the put
    /// amortization the aggregation tentpole buys (the perf gate bars this
    /// at 4 shards; 1.0 is the per-frame wire behaviour).
    pub model_puts_per_frame: f64,
    /// Modelled share of a round (fill span + drain window) the sender CPU
    /// spent on NIC posting (descriptor post + doorbell per put) with the
    /// pre-aggregation per-frame wire behaviour — the "before" view.
    pub model_posting_share_per_frame: f64,
    /// The same posting share under the default adaptive aggregation — the
    /// "after" view; batching N frames behind one put divides the
    /// size-independent posting term by N.
    pub model_posting_share_batched: f64,
}

/// Credit-return traffic observed by one measurement
/// (ops / bytes / virtual-time share).
#[derive(Debug, Clone, Copy, Default)]
struct CreditTraffic {
    ops: u64,
    bytes: u64,
    time_share: f64,
}

/// Read the credit counters out of a host's merged stats.
fn credit_traffic(host: &TwoChainsHost) -> CreditTraffic {
    let stats = host.stats();
    let busy = stats.wait_time + stats.exec_time + stats.credit_put_time;
    CreditTraffic {
        ops: stats.credits_returned,
        bytes: stats.credit_put_bytes,
        time_share: if busy.as_ns() > 0.0 {
            stats.credit_put_time.as_ns() / busy.as_ns()
        } else {
            0.0
        },
    }
}

impl BurstRow {
    /// Pipelined-over-phased wall speedup (the quantity the perf gate bars at
    /// 4 shards on a sufficiently parallel host).
    pub fn pipeline_ratio(&self) -> f64 {
        self.pipelined_wall_msgs_per_sec / self.fill_drain_wall_msgs_per_sec.max(f64::EPSILON)
    }
}

/// Geometry used by the sweep: enough banks for the largest shard count, small
/// frames so the region stays modest. One sender stream per shard, completion
/// window sized to a full fill so steady rounds never stall on the transmit
/// window (per-stream back-pressure is exercised by the dedicated tests
/// instead).
fn sweep_config(shards: usize) -> RuntimeConfig {
    // Shard-local space mode: the drain threads execute without the global
    // address-space lock (the builtin jams are shard-local writers).
    let mut cfg = RuntimeConfig::paper_default()
        .with_shards(shards)
        .with_shard_local_space()
        .with_sender_streams(shards);
    cfg.banks = shards.max(4);
    cfg.mailboxes_per_bank = 16;
    // A carrier mailbox must hold a full default container of the sweep's
    // ~1508-byte injected wire frames (40-byte envelope + 8 x (8 + 1508) =
    // 12104 bytes); 4 KiB would cap containers at two frames via the
    // capacity flush and mute the put amortization the sweep measures.
    cfg.frame_capacity = 16384;
    cfg.completion_window = cfg.total_mailboxes();
    cfg
}

/// Number of hardware threads available to the wall measurements (recorded in
/// the report so the perf gate can tell real scaling headroom from a small CI
/// runner time-slicing the threads).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The per-message payload generator: the same keyed Indirect Put stream the
/// fast-path benches use, derived deterministically from (bank, slot, round)
/// so every schedule — sequential, phased, pipelined — produces the identical
/// message multiset.
fn payload(ctx: SlotCtx, per_bank: usize) -> (Vec<u8>, Vec<u8>) {
    let key = ctx
        .round
        .wrapping_mul(7)
        .wrapping_add((ctx.bank * per_bank + ctx.slot) as u64)
        % 64;
    let args = indirect_put_args(key, 8, 4);
    let usr: Vec<u8> = (0..8u32).flat_map(|v| (v + 1).to_le_bytes()).collect();
    (args, usr)
}

fn build_testbed(shards: usize) -> (TwoChainsHost, SenderFleet, ElementId) {
    build_testbed_with(sweep_config(shards))
}

fn build_testbed_with(cfg: RuntimeConfig) -> (TwoChainsHost, SenderFleet, ElementId) {
    let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut host = TwoChainsHost::new(&fabric, b, cfg).expect("host");
    host.install_package(benchmark_package().expect("package"))
        .expect("install");
    // The fleet handshake replaces the hand-rolled endpoint + set_remote_got
    // wiring: per-stream mailbox targets and GOT images come from the host.
    let fleet =
        SenderFleet::connect_fleet(&fabric, a, &mut host, benchmark_package().expect("package"))
            .expect("fleet");
    let elem = host.builtin_id(BuiltinJam::IndirectPut).expect("builtin");
    (host, fleet, elem)
}

/// One warm-up fill+drain so the injection caches, sender templates and
/// simulated cache hierarchy are all in their steady state, then zero the
/// counters. Returns the warm-up delivery horizons — the per-lane virtual
/// clock edges measured rounds advance from.
fn prime(host: &mut TwoChainsHost, fleet: &mut SenderFleet, elem: ElementId) -> Vec<SimTime> {
    let per_bank = host.config().mailboxes_per_bank;
    let horizons = fleet
        .fill_all(elem, InvocationMode::Injected, u64::MAX, &|ctx| {
            payload(ctx, per_bank)
        })
        .expect("prime fill");
    for shard in 0..host.num_shards() {
        host.receive_burst(shard, usize::MAX, SimTime::ZERO)
            .expect("prime drain");
    }
    fleet.harvest_completions();
    host.reset_stats();
    fleet.reset_stats();
    horizons
}

/// Fill every mailbox once (round `round`), lane after lane on the driver
/// thread. Returns the per-stream delivery horizons.
fn fill_round(
    host: &TwoChainsHost,
    fleet: &mut SenderFleet,
    elem: ElementId,
    round: u64,
) -> Vec<SimTime> {
    let per_bank = host.config().mailboxes_per_bank;
    let horizons = fleet
        .fill_all(elem, InvocationMode::Injected, round, &|ctx| {
            payload(ctx, per_bank)
        })
        .expect("fill");
    // Every frame must now be visible to the burst scan — the same iter_ready
    // the drain uses, so the bench never re-derives (bank, slot) indexing.
    // Under the default adaptive aggregation only the *carrier* slot of each
    // container reads ready (the inner frames unbatch during the drain), so
    // the slot-exact census only holds for the per-frame wire behaviour;
    // full coverage is proven by the `drained == total_slots` assert every
    // measurement makes after its drain.
    if host.config().aggregation_policy == AggregationPolicy::PerFrame {
        debug_assert_eq!(
            host.banks().iter_ready(ShardMask::all()).count(),
            host.config().total_mailboxes()
        );
    } else {
        debug_assert!(host.banks().iter_ready(ShardMask::all()).count() > 0);
    }
    horizons
}

/// One policy's deterministic modelled measurement (see [`run_modelled`]).
#[derive(Debug, Clone, Copy)]
struct ModelRun {
    /// Messages drained across all measured rounds.
    messages: usize,
    /// Sum of per-round max-shard drain windows — the throughput denominator.
    drain_time: SimTime,
    /// Credit-return traffic charged inside those drain windows.
    credit: CreditTraffic,
    /// Forward data puts that carried the frames: standalone frames plus one
    /// per multi-frame container.
    puts: u64,
    /// Share of the modelled round time (per-lane fill spans + drain
    /// windows) the sender CPU spent on NIC posting — descriptor post +
    /// doorbell per forward put, size-independent, so this is exactly the
    /// term aggregation divides by the container occupancy.
    posting_share: f64,
}

/// Run `rounds` fill+drain cycles over `shards` shards, modelled (sequential,
/// deterministic), under the given aggregation policy. The drain windows
/// include the one-sided credit puts the burst engine issues per retired
/// frame, so flow control is charged in the modelled view too; the posting
/// share additionally prices the sender-side put stream so the sweep can
/// report the before/after of frame aggregation.
fn run_modelled(shards: usize, rounds: usize, policy: AggregationPolicy) -> ModelRun {
    let mut cfg = sweep_config(shards);
    if policy == AggregationPolicy::PerFrame {
        cfg = cfg.with_per_frame_aggregation();
    }
    let (mut host, mut fleet, elem) = build_testbed_with(cfg);
    let total_slots = host.config().total_mailboxes();
    let mut edges = prime(&mut host, &mut fleet, elem);

    let mut drain_time = SimTime::ZERO;
    let mut fill_time = SimTime::ZERO;
    for round in 0..rounds {
        let horizons = fill_round(&host, &mut fleet, elem, round as u64);
        // Lanes fill concurrently in virtual time, each on its own clock: the
        // round's fill span is the slowest lane's advance past the horizon it
        // ended the previous round on.
        let mut fill_span = SimTime::ZERO;
        for (lane, &horizon) in horizons.iter().enumerate() {
            fill_span = fill_span.max(horizon - edges[lane]);
        }
        fill_time += fill_span;
        // Shards drain concurrently in virtual time, each starting at its own
        // stream's delivery horizon: the round costs the slowest shard's window.
        let mut round_cost = SimTime::ZERO;
        let mut drained = 0usize;
        for (shard, &start) in horizons.iter().enumerate() {
            let out = host.receive_burst(shard, usize::MAX, start).expect("drain");
            drained += out.len();
            round_cost = round_cost.max(out.drained_at - start);
        }
        assert_eq!(drained, total_slots, "every slot drained each round");
        fleet.harvest_completions();
        drain_time += round_cost;
        edges = horizons;
    }
    let credit = credit_traffic(&host);
    assert_eq!(
        credit.ops as usize,
        rounds * total_slots,
        "one credit token per drained frame"
    );
    let sender = fleet.stats();
    assert_eq!(sender.messages_sent as usize, rounds * total_slots);
    if policy == AggregationPolicy::PerFrame {
        assert_eq!(sender.batch_puts, 0, "per-frame baseline must not batch");
    }
    // Forward data puts: every frame that went out standalone, plus one put
    // per multi-frame container.
    let puts = (sender.messages_sent - sender.batched_frames) + sender.batch_puts;
    // NIC posting is size-independent sender CPU per put (descriptor post +
    // doorbell) on the sweep's link model — the same LinkModel behind
    // `SimFabric::back_to_back`.
    let posting_ns = LinkModel::connectx6_back_to_back().put_timing(1).sender_cpu;
    let round_ns = (fill_time + drain_time).as_ns();
    ModelRun {
        messages: rounds * total_slots,
        drain_time,
        credit,
        puts,
        posting_share: posting_ns.as_ns() * puts as f64 / round_ns.max(1e-12),
    }
}

/// The drain-only wall measurement: fill on the driver thread (untimed), then
/// one OS thread per shard drains; returns (messages, wall-clock seconds)
/// scaled from the *fastest* round. Taking the best round rather than the sum
/// makes the wall column robust to scheduler noise on shared CI runners (a
/// background burst that stalls one round should not read as a throughput
/// regression), while still requiring the drain itself to go fast at least
/// once — which it only can when the lock split actually works.
fn run_threaded(shards: usize, rounds: usize) -> (usize, f64) {
    let (mut host, mut fleet, elem) = build_testbed(shards);
    let total_slots = host.config().total_mailboxes();
    prime(&mut host, &mut fleet, elem);

    let mut best_round = f64::INFINITY;
    for round in 0..rounds {
        let horizons = fill_round(&host, &mut fleet, elem, round as u64);
        let start = Instant::now();
        drain_threaded(&mut host, &horizons, total_slots);
        best_round = best_round.min(start.elapsed().as_secs_f64());
        fleet.harvest_completions();
    }
    // Rate is computed from one (best) round's worth of messages and time.
    (total_slots, best_round)
}

/// The phased fill-then-drain wall measurement: the whole round — serialized
/// single-threaded fill *plus* threaded drain — under one timer. This is the
/// schedule the pipelined mode is compared against.
fn run_fill_then_drain(shards: usize, rounds: usize) -> (usize, f64) {
    let (mut host, mut fleet, elem) = build_testbed(shards);
    let total_slots = host.config().total_mailboxes();
    prime(&mut host, &mut fleet, elem);

    let mut best_round = f64::INFINITY;
    for round in 0..rounds {
        let start = Instant::now();
        let horizons = fill_round(&host, &mut fleet, elem, round as u64);
        drain_threaded(&mut host, &horizons, total_slots);
        best_round = best_round.min(start.elapsed().as_secs_f64());
        fleet.harvest_completions();
    }
    (total_slots, best_round)
}

/// One threaded drain pass: every shard drains its banks on its own OS thread,
/// starting from its stream's delivery horizon.
fn drain_threaded(host: &mut TwoChainsHost, horizons: &[SimTime], total_slots: usize) {
    std::thread::scope(|s| {
        let handles: Vec<_> = host
            .shard_drains()
            .into_iter()
            .map(|mut drain| {
                let shard_start = horizons[drain.shard_id()];
                s.spawn(move || {
                    drain
                        .receive_burst(usize::MAX, shard_start)
                        .expect("threaded drain")
                        .len()
                })
            })
            .collect();
        let drained: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(drained, total_slots);
    });
}

/// The pipelined wall measurement: [`drive_pipeline`] runs sender and drain
/// threads concurrently for all `rounds`, with per-slot credits flowing back
/// from drain to fill. The whole run is timed as one unit (rounds lose their
/// phase boundaries under overlap) and repeated `reps` times; the best rep is
/// reported, mirroring the best-round policy of the phased measurements.
fn run_pipelined(shards: usize, rounds: usize, reps: usize) -> (usize, f64, CreditTraffic, u64) {
    let (mut host, mut fleet, elem) = build_testbed(shards);
    let total_slots = host.config().total_mailboxes();
    prime(&mut host, &mut fleet, elem);
    let per_bank = host.config().mailboxes_per_bank;

    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        // Per-rep counters (both sides), so the reported credit traffic and
        // stall episodes match one run's message count instead of
        // accumulating across reps.
        host.reset_stats();
        fleet.reset_stats();
        let start = Instant::now();
        let out = drive_pipeline(
            &mut host,
            &mut fleet,
            elem,
            InvocationMode::Injected,
            rounds,
            &|ctx| payload(ctx, per_bank),
        )
        .expect("pipeline");
        best = best.min(start.elapsed().as_secs_f64());
        assert_eq!(out.drained, rounds * total_slots);
        assert_eq!(out.rejected, 0);
        fleet.harvest_completions();
    }
    let credit = credit_traffic(&host);
    assert_eq!(
        credit.ops as usize,
        rounds * total_slots,
        "pipelined flow control returns one credit token per frame over the fabric"
    );
    let stalls = fleet.stats().credit_stall_events;
    (rounds * total_slots, best, credit, stalls)
}

/// One row of the lossy-fabric sweep: the pipelined engine driven over a link
/// with a seeded [`FaultPlan`], reporting goodput (completed messages per wall
/// second, recovery latency included) and the reliability layer's own
/// accounting — retransmits, suppressed replays and NACK posts next to the
/// faults the fabric actually injected.
#[derive(Debug, Clone, Copy)]
pub struct LossRow {
    /// Total fault probability of the plan (split evenly across
    /// drop/duplicate/reorder); `0.0` means no plan installed at all.
    pub loss_rate: f64,
    /// Messages completed in the measured rounds.
    pub messages: usize,
    /// Completed messages per wall-clock second under faults. This is
    /// *goodput*: only first-time completions count, while the elapsed time
    /// includes every NACK round-trip and watchdog backoff the recovery paid.
    pub goodput_msgs_per_sec: f64,
    /// First-time frame sends (retransmits excluded by design).
    pub frames_sent: u64,
    /// Byte-identical frame retransmits the sender lanes issued.
    pub frames_retransmitted: u64,
    /// Puts the fabric dropped on the faulted link during the measured rounds.
    pub frames_dropped: u64,
    /// Stale deliveries the receiver retired without re-executing.
    pub replays_suppressed: u64,
    /// Gap NACKs the receiver posted into the sender-side tables.
    pub nacks_posted: u64,
    /// Frames the receiver rejected during the measured rounds. Zero on a
    /// pristine link by construction; under a heavy mixed plan a delayed or
    /// duplicated put can land over a reused mailbox and corrupt the frame
    /// in flight (torn frame), which the receiver rejects and retires
    /// without recovery — a known reliability gap tracked in ROADMAP.
    pub frames_rejected: u64,
}

impl LossRow {
    /// Retransmitted frames as a fraction of first-time sends — the wire
    /// overhead the reliability layer paid for this loss rate.
    pub fn retransmit_overhead(&self) -> f64 {
        self.frames_retransmitted as f64 / (self.frames_sent as f64).max(1.0)
    }
}

/// Drive the 4-shard pipelined engine over links of increasing loss and report
/// goodput plus recovery accounting per rate. A rate of `0.0` installs no plan
/// at all, so that row doubles as the proof the reliability layer is free on a
/// pristine fabric (the perf gate holds its fault counters at exactly zero).
///
/// Both the warm-up and the measured rounds run through [`drive_pipeline`]:
/// the phased fill/drain prime has no retransmit machinery, so a dropped
/// prime frame would wedge its mailbox forever.
pub fn loss_sweep(loss_rates: &[f64], messages: usize) -> Vec<LossRow> {
    const SHARDS: usize = 4;
    let slots = sweep_config(SHARDS).total_mailboxes();
    let base_rounds = messages.div_ceil(slots).max(1);
    loss_rates
        .iter()
        .map(|&rate| {
            // Statistical starvation guard: a fault rolls once per *put*, the
            // mixed plan gives each fault class only `rate / 3`, and adaptive
            // aggregation packs ~8 frames behind every data put — so a
            // 1024-message round offers ~128 drop trials. At 1% that is an
            // expected 0.4 drops per round: a single-round row has a ~65%
            // chance of reporting zeroes for every recovery counter while
            // the fabric was genuinely faulted. Scale the measured rounds so
            // each faulted row expects several drops (and with them the
            // NACK-driven retransmits the gate demands be nonzero); the
            // pristine 0.0 row keeps the caller's message count.
            let rounds = if rate > 0.0 {
                let expected_drops_per_round = (slots as f64 / 8.0) * (rate / 3.0);
                base_rounds.max((8.0 / expected_drops_per_round).ceil() as usize)
            } else {
                base_rounds
            };
            let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
            let mut host = TwoChainsHost::new(&fabric, b, sweep_config(SHARDS)).expect("host");
            host.install_package(benchmark_package().expect("package"))
                .expect("install");
            // Before `connect`: endpoints capture the link's fault hook at
            // creation time.
            if rate > 0.0 {
                fabric
                    .install_fault_plan(a, b, FaultPlan::mixed(rate, (rate * 1e4) as u64 + 0x5EED))
                    .expect("plan");
            }
            let mut fleet = SenderFleet::connect_fleet(
                &fabric,
                a,
                &mut host,
                benchmark_package().expect("package"),
            )
            .expect("fleet");
            let elem = host.builtin_id(BuiltinJam::IndirectPut).expect("builtin");
            let per_bank = host.config().mailboxes_per_bank;

            let out = drive_pipeline(
                &mut host,
                &mut fleet,
                elem,
                InvocationMode::Injected,
                1,
                &|ctx| payload(ctx, per_bank),
            )
            .expect("lossy prime");
            // Same two-sided bound as the measured rounds below: a fault can
            // tear a prime frame, which then retires as a rejection (and may
            // additionally drain if the NACK recovery lands in time).
            assert!(out.drained <= slots);
            assert!(out.drained + out.rejected >= slots);
            host.reset_stats();
            fleet.reset_stats();
            let primed_drops = fabric.fault_counters(a, b).map_or(0, |s| s.dropped);

            let start = Instant::now();
            let out = drive_pipeline(
                &mut host,
                &mut fleet,
                elem,
                InvocationMode::Injected,
                rounds,
                &|ctx| payload(ctx, per_bank),
            )
            .expect("lossy pipeline");
            let secs = start.elapsed().as_secs_f64();
            // Every offered frame drains at most once, and none vanish:
            // a faulted run may tear the occasional frame (see
            // `LossRow::frames_rejected`), and a rejected frame that the
            // NACK-driven retransmit later redelivers retires twice — once
            // rejected, once drained — so the two counters bound the offer
            // from both sides instead of summing to it exactly.
            assert!(out.drained <= rounds * slots);
            assert!(out.drained + out.rejected >= rounds * slots);
            if rate == 0.0 {
                assert_eq!(out.drained, rounds * slots);
                assert_eq!(out.rejected, 0, "pristine link must not reject");
            }

            let sender = fleet.stats();
            let receiver = host.stats();
            LossRow {
                loss_rate: rate,
                messages: out.drained,
                goodput_msgs_per_sec: out.drained as f64 / secs.max(1e-12),
                frames_sent: sender.messages_sent,
                frames_retransmitted: sender.frames_retransmitted,
                frames_dropped: fabric.fault_counters(a, b).map_or(0, |s| s.dropped) - primed_drops,
                replays_suppressed: receiver.replays_suppressed,
                nacks_posted: receiver.nacks_posted,
                frames_rejected: out.rejected as u64,
            }
        })
        .collect()
}

/// Sweep the shard counts, draining at least `messages` frames per count (rounded
/// up to whole fill rounds). The first entry is the speedup baseline.
pub fn sweep(shard_counts: &[usize], messages: usize) -> Vec<BurstRow> {
    let mut rows: Vec<BurstRow> = Vec::with_capacity(shard_counts.len());
    for &shards in shard_counts {
        let slots = sweep_config(shards).total_mailboxes();
        let rounds = messages.div_ceil(slots).max(1);
        // Two modelled passes per shard count: the default adaptive
        // aggregation carries the row's rates, the per-frame pass supplies
        // the "before" posting share the batch columns are compared against.
        let model = run_modelled(shards, rounds, AggregationPolicy::Adaptive);
        let before = run_modelled(shards, rounds, AggregationPolicy::PerFrame);
        assert_eq!(model.messages, before.messages);
        let (n_wall, wall_secs) = run_threaded(shards, rounds);
        let (n_phased, phased_secs) = run_fill_then_drain(shards, rounds);
        let (n_pipe, pipe_secs, pipe_credit, pipe_stalls) = run_pipelined(shards, rounds, 2);
        let model_rate = model.messages as f64 / model.drain_time.as_secs().max(1e-12);
        let wall_rate = n_wall as f64 / wall_secs.max(1e-12);
        let phased_rate = n_phased as f64 / phased_secs.max(1e-12);
        let pipe_rate = n_pipe as f64 / pipe_secs.max(1e-12);
        let baseline = rows.first().map(|r| r.model_msgs_per_sec);
        rows.push(BurstRow {
            shards,
            messages: model.messages,
            model_msgs_per_sec: model_rate,
            model_speedup: model_rate / baseline.unwrap_or(model_rate),
            wall_msgs_per_sec: wall_rate,
            fill_drain_wall_msgs_per_sec: phased_rate,
            pipelined_wall_msgs_per_sec: pipe_rate,
            model_credit_ops: model.credit.ops,
            model_credit_bytes: model.credit.bytes,
            model_credit_time_share: model.credit.time_share,
            pipe_credit_ops: pipe_credit.ops,
            pipe_credit_bytes: pipe_credit.bytes,
            pipe_credit_stall_events: pipe_stalls,
            batch_frames_per_put: model.messages as f64 / model.puts.max(1) as f64,
            model_puts_per_frame: model.puts as f64 / model.messages.max(1) as f64,
            model_posting_share_per_frame: before.posting_share,
            model_posting_share_batched: model.posting_share,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_shards_at_least_double_one_shard_modelled_throughput() {
        let rows = sweep(&[1, 4], 128);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].shards, 1);
        assert!((rows[0].model_speedup - 1.0).abs() < 1e-9);
        // The acceptance bar for the sharded receiver: 4 shards drain the same
        // warm stream at >= 2x the single-shard modelled rate.
        assert!(
            rows[1].model_speedup >= 2.0,
            "4-shard modelled speedup {:.2} (rates {:.0} vs {:.0} msg/s) below 2x",
            rows[1].model_speedup,
            rows[1].model_msgs_per_sec,
            rows[0].model_msgs_per_sec
        );
    }

    #[test]
    fn modelled_rates_are_deterministic() {
        let a = sweep(&[2], 64);
        let b = sweep(&[2], 64);
        assert_eq!(a[0].messages, b[0].messages);
        assert_eq!(a[0].model_msgs_per_sec, b[0].model_msgs_per_sec);
    }

    #[test]
    fn pipelined_mode_drains_every_frame() {
        // The wall rates themselves are machine-dependent, but the pipelined
        // engine must always deliver the full message count with nothing
        // rejected, on any host.
        let (n, secs, credit, _stalls) = run_pipelined(2, 3, 1);
        assert_eq!(n, 3 * sweep_config(2).total_mailboxes());
        assert!(secs > 0.0);
        // Flow control rode the fabric: one credit token per drained frame
        // (one wire byte each, however the flushes spanned them), with a
        // nonzero virtual-time share on the drain cores.
        assert_eq!(credit.ops as usize, n);
        assert_eq!(credit.bytes, credit.ops);
        assert!(credit.time_share > 0.0 && credit.time_share < 1.0);
    }

    #[test]
    fn sweep_reports_credit_traffic_in_modelled_and_pipelined_rows() {
        let rows = sweep(&[2], 64);
        let row = rows[0];
        assert_eq!(row.model_credit_ops as usize, row.messages);
        assert_eq!(row.model_credit_bytes, row.model_credit_ops);
        assert!(row.model_credit_time_share > 0.0 && row.model_credit_time_share < 1.0);
        // Coalescing is the whole point of the adaptive policy: the modelled
        // (deterministic) credit share must sit well below the ~0.16 the
        // per-frame wire behaviour cost.
        assert!(
            row.model_credit_time_share <= 0.08,
            "coalesced credit share {:.4} above the 0.08 bar",
            row.model_credit_time_share
        );
        assert_eq!(row.pipe_credit_ops as usize, row.messages);
        assert_eq!(row.pipe_credit_bytes, row.pipe_credit_ops);
    }

    #[test]
    fn aggregation_amortizes_the_nic_posting_path() {
        let rows = sweep(&[4], 128);
        let row = rows[0];
        // The tentpole's acceptance bar: the default adaptive policy packs
        // enough frames behind each forward put that the modelled 4-shard
        // run posts at most a quarter put per frame (the perf gate enforces
        // the same number from the persisted report).
        assert!(
            row.batch_frames_per_put > 1.0,
            "adaptive sweep never batched (frames/put {:.2})",
            row.batch_frames_per_put
        );
        assert!(
            row.model_puts_per_frame <= 0.25,
            "modelled puts per frame {:.3} above the 0.25 bar",
            row.model_puts_per_frame
        );
        // And the posting share moves the right way: batching can only
        // shrink the size-independent post+doorbell term.
        assert!(row.model_posting_share_per_frame > 0.0 && row.model_posting_share_per_frame < 1.0);
        assert!(
            row.model_posting_share_batched < row.model_posting_share_per_frame,
            "batched posting share {:.4} not below per-frame {:.4}",
            row.model_posting_share_batched,
            row.model_posting_share_per_frame
        );
    }

    #[test]
    fn loss_sweep_reports_recovery_accounting() {
        // 0.05 is the highest shipped sweep rate; heavier plans (>= 0.1 over
        // thousands of frames) can currently surface a rare frame rejection
        // the recovery layer does not re-cover — tracked in ROADMAP.
        let rows = loss_sweep(&[0.0, 0.05], 64);
        assert_eq!(rows.len(), 2);
        let (clean, lossy) = (rows[0], rows[1]);
        // No plan => the reliability layer never fired, by construction.
        assert_eq!(clean.frames_retransmitted, 0);
        assert_eq!(clean.frames_dropped, 0);
        assert_eq!(clean.replays_suppressed, 0);
        assert_eq!(clean.nacks_posted, 0);
        assert!((clean.retransmit_overhead() - 0.0).abs() < 1e-12);
        // The faulted row scales its rounds until several drops are expected,
        // so it runs at least the clean row's workload.
        assert!(lossy.messages >= clean.messages);
        assert!(clean.goodput_msgs_per_sec > 0.0);
        assert!(lossy.goodput_msgs_per_sec > 0.0);
        // The starvation guard makes the faulted row's counters honest: a 10%
        // plan over the scaled run must actually drop frames, and lost frames
        // surface as gap NACKs. Zeroes here mean the sweep shrank back below
        // the fault plan's resolution.
        assert!(
            lossy.frames_dropped >= 1,
            "scaled faulted row must observe drops"
        );
        assert!(
            lossy.nacks_posted >= 1,
            "dropped frames must surface as gap NACKs"
        );
        // Torn-frame rejections depend on how delayed/duplicated puts land
        // against mailbox reuse, which shifts with host scheduling when the
        // whole workspace suite runs in parallel — so the bound is a per-cent
        // of offered load, not a fixed handful. Crossing it would mean the
        // recovery layer regressed, not that the fabric got unlucky.
        let rejection_budget = (lossy.messages / 100).max(4) as u64;
        assert!(
            lossy.frames_rejected <= rejection_budget,
            "excessive rejections under faults: {} > {}",
            lossy.frames_rejected,
            rejection_budget
        );
        // Every drop consumed one delivery attempt; attempts beyond
        // `frames_sent` are retransmits, so a completed run covers its drops.
        assert!(
            lossy.frames_retransmitted >= lossy.frames_dropped,
            "retransmits ({}) must cover drops ({})",
            lossy.frames_retransmitted,
            lossy.frames_dropped
        );
    }

    #[test]
    fn pipelined_beats_fill_then_drain_on_parallel_hosts() {
        // The acceptance bar for the sender fleet: with fill and drain
        // overlapped, a 4-shard round completes >= 1.3x faster than the
        // phased schedule that serializes the whole send phase first. The
        // *enforced* home of this bar is perf_gate (which downgrades to
        // informational on small runners); this unit test only asserts it
        // where all 8 threads (4 lanes + 4 drains) have real cores, so a
        // time-sliced CI box cannot flake the functional suite on a
        // wall-clock number.
        if host_parallelism() < 8 {
            eprintln!("skipping: host_parallelism < 8, the 8 pipeline threads would time-slice");
            return;
        }
        let rows = sweep(&[4], 256);
        assert!(
            rows[0].pipeline_ratio() >= 1.3,
            "pipelined {:.0} msg/s vs fill-then-drain {:.0} msg/s (ratio {:.2}) below 1.3x",
            rows[0].pipelined_wall_msgs_per_sec,
            rows[0].fill_drain_wall_msgs_per_sec,
            rows[0].pipeline_ratio()
        );
    }
}
