//! Regenerate the paper's evaluation figures.
//!
//! ```text
//! cargo run --release -p twochains-bench --bin figures -- all
//! cargo run --release -p twochains-bench --bin figures -- fig7 fig9
//! cargo run --release -p twochains-bench --bin figures -- --list
//! ```

use twochains_bench::figures::{all_figures, figure_by_name};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: figures [--list] [all | fig5 .. fig14]...");
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for id in [
            "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
        ] {
            println!("{id}");
        }
        return;
    }
    if args.iter().any(|a| a == "all") {
        for f in all_figures() {
            println!("{}", f().render());
        }
        return;
    }
    for name in &args {
        match figure_by_name(name) {
            Some(f) => println!("{}", f().render()),
            None => eprintln!("unknown figure: {name}"),
        }
    }
}
