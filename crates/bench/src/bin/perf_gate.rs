//! CI perf-regression gate: diff a freshly generated `BENCH_fastpath.json`
//! against the committed baseline thresholds and fail the build with a
//! readable table when a metric regresses.
//!
//! ```text
//! cargo run --release -p twochains-bench --bin perf_gate -- BENCH_fastpath.json perf_baseline.json
//! ```
//!
//! Exit status 0 when every enforced check passes, 1 on a regression, 2 on
//! usage / parse errors. The wall-rate scaling check is enforced only when the
//! report was produced on a runner with at least `wall_gate_min_parallelism`
//! hardware threads (recorded in the report as `host_parallelism`); on smaller
//! machines it is printed as informational, because N drain threads
//! time-slicing one core cannot scale in wall clock no matter how good the
//! code is.

use twochains_bench::gate::{evaluate, GateThresholds};

fn main() {
    let mut args = std::env::args().skip(1);
    let report_path = args.next().unwrap_or_else(|| "BENCH_fastpath.json".into());
    let baseline_path = args.next().unwrap_or_else(|| "perf_baseline.json".into());

    let report = match std::fs::read_to_string(&report_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("perf_gate: cannot read report {report_path}: {e}");
            std::process::exit(2);
        }
    };
    let thresholds = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => GateThresholds::from_json(&s),
        Err(e) => {
            eprintln!(
                "perf_gate: cannot read baseline {baseline_path} ({e}); using built-in defaults"
            );
            GateThresholds::default()
        }
    };

    match evaluate(&report, &thresholds) {
        Ok(outcome) => {
            println!("perf gate: {report_path} vs {baseline_path}");
            print!("{}", outcome.table());
            if outcome.passed() {
                println!("perf gate: OK");
            } else {
                println!("perf gate: REGRESSION — an enforced metric fell below its threshold");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("perf_gate: malformed report: {e}");
            std::process::exit(2);
        }
    }
}
