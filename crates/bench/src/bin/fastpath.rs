//! Emit the cold-vs-warm fast-path comparison (plus the shard-scaling burst
//! sweep) as `BENCH_fastpath.json`.
//!
//! ```text
//! cargo run --release -p twochains-bench --bin fastpath                 # 1000 messages, shards 1,2,4
//! cargo run --release -p twochains-bench --bin fastpath -- 200          # custom count
//! cargo run --release -p twochains-bench --bin fastpath -- 200 out.json
//! cargo run --release -p twochains-bench --bin fastpath -- 200 out.json --shards 1,4
//! ```

use twochains_bench::fastpath::compare_with_burst;

fn main() {
    let mut messages: usize = 1000;
    let mut out_path = "BENCH_fastpath.json".to_string();
    let mut shard_counts: Vec<usize> = vec![1, 2, 4];

    let mut args = std::env::args().skip(1);
    let mut positional = 0usize;
    while let Some(arg) = args.next() {
        let shard_list = if arg == "--shards" {
            Some(args.next().unwrap_or_default())
        } else {
            arg.strip_prefix("--shards=").map(str::to_string)
        };
        if let Some(list) = shard_list {
            shard_counts = list
                .split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect();
            if shard_counts.is_empty() {
                eprintln!("--shards needs a comma-separated list like 1,4");
                std::process::exit(2);
            }
        } else if arg.starts_with("--") {
            // A typo'd flag must not be silently swallowed as an output path.
            eprintln!("unknown option {arg}; usage: fastpath [messages] [out.json] [--shards 1,4]");
            std::process::exit(2);
        } else if positional == 0 {
            if let Ok(n) = arg.parse() {
                messages = n;
            }
            positional += 1;
        } else {
            out_path = arg;
            positional += 1;
        }
    }

    let report = compare_with_burst(messages, &shard_counts);
    let json = report.to_json();
    print!("{json}");
    eprintln!(
        "fastpath: cold {:.0} ns vs warm {:.0} ns dispatch ({:.2}x model, {:.2}x wall) over {} messages",
        report.cold.dispatch_ns,
        report.warm.dispatch_ns,
        report.dispatch_speedup(),
        report.wall_speedup(),
        report.messages,
    );
    for row in &report.burst {
        eprintln!(
            concat!(
                "burst: {} shard(s) drain {} msgs at {:.2} M msg/s modelled ({:.2}x), ",
                "{:.2} M msg/s wall drain-only; fill+drain {:.2} M msg/s phased vs ",
                "{:.2} M msg/s pipelined ({:.2}x overlap)"
            ),
            row.shards,
            row.messages,
            row.model_msgs_per_sec / 1e6,
            row.model_speedup,
            row.wall_msgs_per_sec / 1e6,
            row.fill_drain_wall_msgs_per_sec / 1e6,
            row.pipelined_wall_msgs_per_sec / 1e6,
            row.pipeline_ratio(),
        );
    }
    for row in &report.loss {
        eprintln!(
            concat!(
                "loss: rate {:.2} completes {} msgs at {:.2} M msg/s goodput; ",
                "{} dropped / {} retransmitted ({:.2}% overhead), ",
                "{} replays suppressed, {} NACKs posted"
            ),
            row.loss_rate,
            row.messages,
            row.goodput_msgs_per_sec / 1e6,
            row.frames_dropped,
            row.frames_retransmitted,
            row.retransmit_overhead() * 100.0,
            row.replays_suppressed,
            row.nacks_posted,
        );
    }
    if report.dispatch_speedup() < 2.0 {
        eprintln!("WARNING: warm path is less than 2x faster than cold — fast-path regression?");
    }
    // The 2x bar only means something against a 1-shard baseline (the sweep's
    // first row defines model_speedup's denominator).
    if report.burst.first().map(|r| r.shards) == Some(1) {
        if let Some(four) = report.burst.iter().find(|r| r.shards == 4) {
            if four.model_speedup < 2.0 {
                eprintln!(
                    "WARNING: 4-shard modelled speedup {:.2} below the 2x bar — sharding regression?",
                    four.model_speedup
                );
            }
        }
    }
    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("wrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
