//! Emit the cold-vs-warm fast-path comparison as `BENCH_fastpath.json`.
//!
//! ```text
//! cargo run --release -p twochains-bench --bin fastpath            # 1000 messages
//! cargo run --release -p twochains-bench --bin fastpath -- 200     # custom count
//! cargo run --release -p twochains-bench --bin fastpath -- 200 out.json
//! ```

use twochains_bench::fastpath::compare;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let messages: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(1000);
    let out_path = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "BENCH_fastpath.json".to_string());

    let report = compare(messages);
    let json = report.to_json();
    print!("{json}");
    eprintln!(
        "fastpath: cold {:.0} ns vs warm {:.0} ns dispatch ({:.2}x model, {:.2}x wall) over {} messages",
        report.cold.dispatch_ns,
        report.warm.dispatch_ns,
        report.dispatch_speedup(),
        report.wall_speedup(),
        report.messages,
    );
    if report.dispatch_speedup() < 2.0 {
        eprintln!("WARNING: warm path is less than 2x faster than cold — fast-path regression?");
    }
    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("wrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
