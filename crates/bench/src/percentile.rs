//! Percentile statistics and the paper's tail-latency-spread metric.

use twochains_memsim::SimTime;

/// Latency distribution summary used by the tail-latency figures (11–12).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Median (50th percentile, the paper's "typical" latency).
    pub median_us: f64,
    /// 99.9th percentile (the paper's "tail" latency).
    pub p999_us: f64,
    /// Mean.
    pub mean_us: f64,
    /// Tail latency spread, Eq. 1: `(tail - typical) / typical`.
    pub spread: f64,
    /// Number of samples.
    pub samples: usize,
}

/// Compute the `q`-quantile (0.0–1.0) of a set of samples (nearest-rank).
pub fn percentile(samples: &[SimTime], q: f64) -> SimTime {
    assert!(!samples.is_empty(), "percentile of empty sample set");
    let mut sorted: Vec<SimTime> = samples.to_vec();
    sorted.sort();
    // Nearest-rank: the smallest value such that at least q of the samples are <= it.
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Median latency.
pub fn median(samples: &[SimTime]) -> SimTime {
    percentile(samples, 0.5)
}

/// Tail latency spread (Eq. 1 of the paper): how much larger the tail is than the
/// median, as a fraction of the median.
pub fn tail_spread(samples: &[SimTime]) -> f64 {
    let med = median(samples).as_ns();
    if med == 0.0 {
        return 0.0;
    }
    (percentile(samples, 0.999).as_ns() - med) / med
}

/// Summarize a latency sample set.
pub fn summarize(samples: &[SimTime]) -> LatencyStats {
    let med = median(samples);
    let tail = percentile(samples, 0.999);
    let mean_ns = samples.iter().map(|t| t.as_ns()).sum::<f64>() / samples.len() as f64;
    LatencyStats {
        median_us: med.as_us(),
        p999_us: tail.as_us(),
        mean_us: mean_ns / 1000.0,
        spread: tail_spread(samples),
        samples: samples.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimTime {
        SimTime::from_us(v)
    }

    #[test]
    fn median_and_percentiles() {
        let samples: Vec<SimTime> = (1..=100).map(us).collect();
        assert_eq!(median(&samples), us(50));
        assert_eq!(percentile(&samples, 0.0), us(1));
        assert_eq!(percentile(&samples, 1.0), us(100));
        assert_eq!(percentile(&samples, 0.999), us(100));
    }

    #[test]
    fn spread_matches_equation_one() {
        // 990 samples at 1us, ten at 5us: tail = 5us, median = 1us, spread = 4.0
        let mut samples = vec![us(1); 990];
        samples.extend(vec![us(5); 10]);
        let s = tail_spread(&samples);
        assert!((s - 4.0).abs() < 0.01, "got {s}");
        let summary = summarize(&samples);
        assert!((summary.median_us - 1.0).abs() < 1e-9);
        assert!((summary.p999_us - 5.0).abs() < 1e-9);
        assert_eq!(summary.samples, 1000);
    }

    #[test]
    fn uniform_distribution_has_zero_spread() {
        let samples = vec![us(3); 50];
        assert_eq!(tail_spread(&samples), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_samples_panic() {
        median(&[]);
    }
}
