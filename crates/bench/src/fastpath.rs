//! Cold-vs-warm fast-path comparison for injected dispatch.
//!
//! The runtime's zero-copy fast path amortises decode + verify + GOT patching across
//! messages: the first injected message for an element pays the full cost and
//! populates the injected-code / GOT / frame-template caches; every later message
//! hashes the arrived bytes, hits the caches and jumps straight into the cached
//! `Arc<[Instr]>` program. This module measures both regimes over the same testbed
//! and emits the result as `BENCH_fastpath.json`, so the perf trajectory of the fast
//! path is tracked from PR to PR.
//!
//! * **Cold** — the receiver's injection caches are invalidated before every message
//!   (as after a package reinstall or live update), so each dispatch re-decodes,
//!   re-verifies and re-parses the GOT.
//! * **Warm** — the caches are primed once; each dispatch is a hash + lookup.
//!
//! "Dispatch" is [`twochains::ReceiveOutcome::dispatch_time`]: everything the receiver does
//! before the jam's own execution (header read, cache probes, decode/verify on a
//! miss). Both virtual (modelled) and wall-clock (host CPU) times are reported.

use std::time::Instant;

use twochains::builtin::{benchmark_package, graph_args, indirect_put_args, BuiltinJam};
use twochains::{spec, InvocationMode, RuntimeConfig, TwoChainsHost, TwoChainsSender};
use twochains_fabric::SimFabric;
use twochains_memsim::{SimTime, TestbedConfig};

use crate::harness::TestbedOptions;

/// One measured regime (cold or warm).
#[derive(Debug, Clone, Copy)]
pub struct RegimeResult {
    /// Mean modelled dispatch time per message, in ns.
    pub dispatch_ns: f64,
    /// Mean modelled handler time per message (dispatch + execution), in ns.
    pub handler_ns: f64,
    /// Mean wall-clock host time per message over the send+receive loop, in ns.
    pub wall_ns: f64,
}

/// The cold-vs-warm comparison emitted as `BENCH_fastpath.json`.
#[derive(Debug, Clone)]
pub struct FastpathReport {
    /// Messages measured per regime.
    pub messages: usize,
    /// Frame size on the wire (bytes).
    pub frame_bytes: usize,
    /// Cold-cache regime (invalidated before every message).
    pub cold: RegimeResult,
    /// Warm-cache regime (caches primed once).
    pub warm: RegimeResult,
    /// Receiver-side cache counters observed during the warm run.
    pub warm_code_cache_hits: u64,
    /// Decode+verify events during the warm run (the priming message only).
    pub warm_code_cache_misses: u64,
    /// GOT cache hits during the warm run.
    pub warm_got_cache_hits: u64,
    /// Sender template hits during the warm run.
    pub warm_template_hits: u64,
    /// Resolved-image cache hits during the warm run: dispatches that keyed
    /// the delivery digest straight to a pre-lowered image and never touched
    /// the shipped code section.
    pub warm_resolved_cache_hits: u64,
    /// Resolved-image cache misses during the warm run (lowering events).
    /// Zero in steady state: the priming message lowers once.
    pub warm_resolved_cache_misses: u64,
    /// Fused superinstructions retired by the resolved executor during the
    /// warm run. Zero under `ExecutionPolicy::Interpret`.
    pub superinstructions_executed: u64,
    /// Executions per chained frame in the chain regime (primary + continuation
    /// stages of the lookup → filter → aggregate graph chain).
    pub chain_stages: usize,
    /// Mean modelled dispatch per message when the same three stages travel as
    /// three separate warm injected messages (the chain regime's baseline), in
    /// ns.
    pub chain_sequential_dispatch_ns: f64,
    /// Mean modelled dispatch per *stage* of the chained frame: the whole
    /// frame's dispatch (parsed once, plus a table lookup and one context-cell
    /// write per continuation stage) divided by `chain_stages`, in ns.
    pub chain_per_stage_dispatch_ns: f64,
    /// `chain_sequential_dispatch_ns / chain_per_stage_dispatch_ns` — how many
    /// times cheaper a stage's share of dispatch is when it rides a chained
    /// frame instead of its own message. The perf gate holds this at >= 2x.
    pub chain_amortization: f64,
    /// Shard-scaling rows from the burst-drain sweep ([`crate::burst::sweep`]):
    /// modelled rate plus three wall views per shard count (drain-only,
    /// phased fill-then-drain, and the overlapped sender-fleet pipeline).
    /// Empty when the sweep was not run.
    pub burst: Vec<crate::burst::BurstRow>,
    /// Lossy-fabric rows from [`crate::burst::loss_sweep`]: goodput and
    /// retransmit overhead of the pipelined engine per injected fault rate
    /// (the `0.0` row proves the reliability layer costs nothing on a
    /// pristine link). Empty when the sweep was not run.
    pub loss: Vec<crate::burst::LossRow>,
    /// Hardware threads available to the wall-clock measurements. The perf
    /// gate only enforces the wall-rate scaling bar when this is at least the
    /// largest swept shard count (on a 1-core runner, N drain threads
    /// time-slice and the wall column cannot scale).
    pub host_parallelism: usize,
}

impl FastpathReport {
    /// Modelled dispatch speedup of the warm path over the cold path.
    pub fn dispatch_speedup(&self) -> f64 {
        self.cold.dispatch_ns / self.warm.dispatch_ns.max(f64::EPSILON)
    }

    /// Wall-clock speedup of the warm path over the cold path.
    pub fn wall_speedup(&self) -> f64 {
        self.cold.wall_ns / self.warm.wall_ns.max(f64::EPSILON)
    }

    /// Serialize as a stable, hand-rolled JSON object (no serde in this workspace).
    pub fn to_json(&self) -> String {
        let burst_rows = self
            .burst
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        "    {{\"shards\": {}, \"messages\": {}, ",
                        "\"model_msgs_per_sec\": {:.0}, \"model_speedup\": {:.2}, ",
                        "\"wall_msgs_per_sec\": {:.0}, ",
                        "\"fill_drain_wall_msgs_per_sec\": {:.0}, ",
                        "\"pipelined_wall_msgs_per_sec\": {:.0}, ",
                        "\"model_credit_ops\": {}, \"model_credit_bytes\": {}, ",
                        "\"model_credit_time_share\": {:.4}, ",
                        "\"pipe_credit_ops\": {}, \"pipe_credit_bytes\": {}, ",
                        "\"pipe_credit_stall_events\": {}, ",
                        "\"batch_frames_per_put\": {:.2}, ",
                        "\"model_puts_per_frame\": {:.4}, ",
                        "\"model_posting_share_per_frame\": {:.4}, ",
                        "\"model_posting_share_batched\": {:.4}}}"
                    ),
                    r.shards,
                    r.messages,
                    r.model_msgs_per_sec,
                    r.model_speedup,
                    r.wall_msgs_per_sec,
                    r.fill_drain_wall_msgs_per_sec,
                    r.pipelined_wall_msgs_per_sec,
                    r.model_credit_ops,
                    r.model_credit_bytes,
                    r.model_credit_time_share,
                    r.pipe_credit_ops,
                    r.pipe_credit_bytes,
                    r.pipe_credit_stall_events,
                    r.batch_frames_per_put,
                    r.model_puts_per_frame,
                    r.model_posting_share_per_frame,
                    r.model_posting_share_batched,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let burst_json = if burst_rows.is_empty() {
            "[]".to_string()
        } else {
            format!("[\n{burst_rows}\n  ]")
        };
        let loss_rows = self
            .loss
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        "    {{\"loss_rate\": {:.4}, \"messages\": {}, ",
                        "\"goodput_msgs_per_sec\": {:.0}, ",
                        "\"frames_sent\": {}, \"frames_retransmitted\": {}, ",
                        "\"frames_dropped\": {}, \"replays_suppressed\": {}, ",
                        "\"nacks_posted\": {}, \"frames_rejected\": {}, ",
                        "\"retransmit_overhead\": {:.4}}}"
                    ),
                    r.loss_rate,
                    r.messages,
                    r.goodput_msgs_per_sec,
                    r.frames_sent,
                    r.frames_retransmitted,
                    r.frames_dropped,
                    r.replays_suppressed,
                    r.nacks_posted,
                    r.frames_rejected,
                    r.retransmit_overhead(),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let loss_json = if loss_rows.is_empty() {
            "[]".to_string()
        } else {
            format!("[\n{loss_rows}\n  ]")
        };
        format!(
            concat!(
                "{{\n",
                "  \"benchmark\": \"fastpath_injected_dispatch\",\n",
                "  \"jam\": \"indirect_put\",\n",
                "  \"messages\": {},\n",
                "  \"frame_bytes\": {},\n",
                "  \"cold_dispatch_ns\": {:.1},\n",
                "  \"warm_dispatch_ns\": {:.1},\n",
                "  \"dispatch_speedup\": {:.2},\n",
                "  \"cold_handler_ns\": {:.1},\n",
                "  \"warm_handler_ns\": {:.1},\n",
                "  \"cold_wall_ns\": {:.1},\n",
                "  \"warm_wall_ns\": {:.1},\n",
                "  \"wall_speedup\": {:.2},\n",
                "  \"warm_code_cache_hits\": {},\n",
                "  \"warm_code_cache_misses\": {},\n",
                "  \"warm_got_cache_hits\": {},\n",
                "  \"warm_template_hits\": {},\n",
                "  \"warm_resolved_cache_hits\": {},\n",
                "  \"warm_resolved_cache_misses\": {},\n",
                "  \"superinstructions_executed\": {},\n",
                "  \"chain_stages\": {},\n",
                "  \"chain_sequential_dispatch_ns\": {:.1},\n",
                "  \"chain_per_stage_dispatch_ns\": {:.1},\n",
                "  \"chain_amortization\": {:.2},\n",
                "  \"host_parallelism\": {},\n",
                "  \"burst_shard_rows\": {},\n",
                "  \"burst_loss_rows\": {}\n",
                "}}\n",
            ),
            self.messages,
            self.frame_bytes,
            self.cold.dispatch_ns,
            self.warm.dispatch_ns,
            self.dispatch_speedup(),
            self.cold.handler_ns,
            self.warm.handler_ns,
            self.cold.wall_ns,
            self.warm.wall_ns,
            self.wall_speedup(),
            self.warm_code_cache_hits,
            self.warm_code_cache_misses,
            self.warm_got_cache_hits,
            self.warm_template_hits,
            self.warm_resolved_cache_hits,
            self.warm_resolved_cache_misses,
            self.superinstructions_executed,
            self.chain_stages,
            self.chain_sequential_dispatch_ns,
            self.chain_per_stage_dispatch_ns,
            self.chain_amortization,
            self.host_parallelism,
            burst_json,
            loss_json,
        )
    }
}

fn build_testbed(opts: &TestbedOptions) -> (TwoChainsHost, TwoChainsSender) {
    let (fabric, a, b) = SimFabric::back_to_back(TestbedConfig::cluster2021());
    let mut cfg = RuntimeConfig::paper_default();
    cfg.wait_mode = opts.wait_mode;
    cfg.skip_execution = opts.skip_execution;
    let mut host = TwoChainsHost::new(&fabric, b, cfg).expect("host");
    host.install_package(benchmark_package().expect("package"))
        .expect("install");
    host.set_stashing(opts.stashing);
    let mut sender = TwoChainsSender::new(
        fabric.endpoint(a, b).expect("ep"),
        benchmark_package().unwrap(),
    );
    let id = host.builtin_id(BuiltinJam::IndirectPut).unwrap();
    sender.set_remote_got(id, &host.export_got(id).unwrap());
    (host, sender)
}

/// Drive `messages` injected sends+receives; `cold` invalidates the receiver's
/// injection caches before every receive. Returns the regime result plus the frame
/// size.
fn run_regime(
    messages: usize,
    n_ints: usize,
    cold: bool,
) -> (RegimeResult, usize, TwoChainsHost, TwoChainsSender) {
    let opts = TestbedOptions::default();
    let (mut host, mut sender) = build_testbed(&opts);
    let elem = host.builtin_id(BuiltinJam::IndirectPut).unwrap();
    let target = host.mailbox_target(0, 0).unwrap();
    let args = indirect_put_args(7, n_ints as u32, 4);
    let usr: Vec<u8> = (0..n_ints as u32)
        .flat_map(|v| (v + 1).to_le_bytes())
        .collect();

    let msg = spec(elem)
        .mode(InvocationMode::Injected)
        .args(args)
        .usr(usr);

    // Prime: one message through the full path (populates caches in the warm regime,
    // and warms the simulated cache hierarchy identically in both regimes).
    let sent = sender
        .send_spec(SimTime::ZERO, &msg, &target)
        .expect("prime send");
    let frame_bytes = sent.wire_bytes;
    host.receive(0, 0, Some(frame_bytes), sent.delivered(), SimTime::ZERO)
        .expect("prime receive");
    host.reset_stats();

    let mut dispatch = SimTime::ZERO;
    let mut handler = SimTime::ZERO;
    let start = Instant::now();
    for _ in 0..messages {
        if cold {
            host.invalidate_injection_caches();
        }
        let sent = sender
            .send_spec(SimTime::ZERO, &msg, &target)
            .expect("send");
        let out = host
            .receive(0, 0, Some(frame_bytes), sent.delivered(), SimTime::ZERO)
            .expect("receive");
        dispatch += out.dispatch_time;
        handler += out.handler_time;
    }
    let wall = start.elapsed();
    let result = RegimeResult {
        dispatch_ns: dispatch.as_ns() / messages as f64,
        handler_ns: handler.as_ns() / messages as f64,
        wall_ns: wall.as_nanos() as f64 / messages as f64,
    };
    (result, frame_bytes, host, sender)
}

/// Stages per chained frame in the chain regime: the graph chain's primary
/// lookup plus the filter and aggregate continuations.
pub const CHAIN_REGIME_STAGES: usize = 3;

/// Measure dispatch amortization of receiver-side chains: the
/// lookup → filter → aggregate graph pipeline as one chained frame per item
/// versus the same three stages as three separate warm injected messages
/// (each carrying the previous result back out as its 8-byte operand). Both
/// schedules execute the identical stage sequence on the identical operands;
/// the chained frame pays frame parse + code/GOT hashing + cache probes once,
/// then a Local-library table lookup and one 8-byte context write per
/// continuation stage. Returns
/// `(sequential_dispatch_ns_per_message, chained_dispatch_ns_per_stage)`.
fn run_chain_regime(messages: usize) -> (f64, f64) {
    let opts = TestbedOptions::default();
    let (mut host, mut sender) = build_testbed(&opts);
    let lookup = host.builtin_id(BuiltinJam::GraphLookup).unwrap();
    let filter = host.builtin_id(BuiltinJam::GraphFilter).unwrap();
    let agg = host.builtin_id(BuiltinJam::GraphAggregate).unwrap();
    for elem in [lookup, filter, agg] {
        sender.set_remote_got(elem, &host.export_got(elem).unwrap());
    }
    let target = host.mailbox_target(0, 0).unwrap();

    // Prime both shapes once (warms the injection caches for every stage
    // element and the chained frame's own code image), then measure from
    // clean counters — both regimes below run fully warm.
    let chained = |key: u64| {
        spec(lookup)
            .mode(InvocationMode::Injected)
            .args(graph_args(key))
            .then(filter)
            .then(agg)
    };
    for elem in [lookup, filter, agg] {
        let msg = spec(elem)
            .mode(InvocationMode::Injected)
            .args(graph_args(0));
        let sent = sender
            .send_spec(SimTime::ZERO, &msg, &target)
            .expect("prime send");
        host.receive(0, 0, Some(sent.wire_bytes), sent.delivered(), SimTime::ZERO)
            .expect("prime receive");
    }
    host.reset_stats();

    // Sequential baseline: three warm injected messages per item, each
    // stage's result carried back as the next stage's operand.
    let mut seq_dispatch = SimTime::ZERO;
    for item in 0..messages {
        let mut carried = item as u64;
        for elem in [lookup, filter, agg] {
            let msg = spec(elem)
                .mode(InvocationMode::Injected)
                .args(graph_args(carried));
            let sent = sender
                .send_spec(SimTime::ZERO, &msg, &target)
                .expect("seq send");
            let out = host
                .receive(0, 0, Some(sent.wire_bytes), sent.delivered(), SimTime::ZERO)
                .expect("seq receive");
            seq_dispatch += out.dispatch_time;
            carried = out.result;
        }
    }

    // Chained schedule: one injected frame per item carries all three stages.
    let mut chain_dispatch = SimTime::ZERO;
    for item in 0..messages {
        let sent = sender
            .send_spec(SimTime::ZERO, &chained(item as u64), &target)
            .expect("chain send");
        let out = host
            .receive(0, 0, Some(sent.wire_bytes), sent.delivered(), SimTime::ZERO)
            .expect("chain receive");
        chain_dispatch += out.dispatch_time;
    }

    let seq_per_message = seq_dispatch.as_ns() / (messages * CHAIN_REGIME_STAGES) as f64;
    let chain_per_stage = chain_dispatch.as_ns() / (messages * CHAIN_REGIME_STAGES) as f64;
    (seq_per_message, chain_per_stage)
}

/// Run the cold-vs-warm comparison over `messages` injected Indirect Put messages
/// per regime (the paper's flagship injected jam: 1408 B of shipped code + GOT, the
/// exact §VII-A configuration), plus the chained-dispatch amortization regime.
pub fn compare(messages: usize) -> FastpathReport {
    // At least one message per regime: zero would divide the per-message means by
    // zero and leak NaN into the JSON report.
    let messages = messages.max(1);
    let n_ints = 8;
    let (cold, frame_bytes, _, _) = run_regime(messages, n_ints, true);
    let (warm, _, host, sender) = run_regime(messages, n_ints, false);
    let (chain_seq_ns, chain_stage_ns) = run_chain_regime(messages);
    FastpathReport {
        messages,
        frame_bytes,
        cold,
        warm,
        warm_code_cache_hits: host.stats().injected_code_cache_hits,
        warm_code_cache_misses: host.stats().injected_code_cache_misses,
        warm_got_cache_hits: host.stats().got_cache_hits,
        warm_template_hits: sender.stats().template_hits,
        warm_resolved_cache_hits: host.stats().resolved_cache_hits,
        warm_resolved_cache_misses: host.stats().resolved_cache_misses,
        superinstructions_executed: host.stats().superinstructions_executed,
        chain_stages: CHAIN_REGIME_STAGES,
        chain_sequential_dispatch_ns: chain_seq_ns,
        chain_per_stage_dispatch_ns: chain_stage_ns,
        chain_amortization: chain_seq_ns / chain_stage_ns.max(f64::EPSILON),
        burst: Vec::new(),
        loss: Vec::new(),
        host_parallelism: crate::burst::host_parallelism(),
    }
}

/// Fault rates the loss sweep reports by default: the pristine baseline plus
/// the 1% and 5% mixed drop/duplicate/reorder schedules.
pub const DEFAULT_LOSS_RATES: [f64; 3] = [0.0, 0.01, 0.05];

/// [`compare`] plus the shard-scaling burst-drain sweep over `shard_counts`
/// (at least `messages` drained per count) and the lossy-fabric goodput sweep
/// over [`DEFAULT_LOSS_RATES`].
pub fn compare_with_burst(messages: usize, shard_counts: &[usize]) -> FastpathReport {
    let mut report = compare(messages);
    report.burst = crate::burst::sweep(shard_counts, messages);
    report.loss = crate::burst::loss_sweep(&DEFAULT_LOSS_RATES, messages);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_dispatch_is_at_least_twice_as_fast_as_cold() {
        let report = compare(50);
        // The acceptance bar for the zero-copy fast path: steady-state injected
        // dispatch at least 2x faster than the decode-every-message cold path.
        assert!(
            report.dispatch_speedup() >= 2.0,
            "warm dispatch {}ns must be >=2x faster than cold {}ns (speedup {:.2})",
            report.warm.dispatch_ns,
            report.cold.dispatch_ns,
            report.dispatch_speedup()
        );
        // Steady state performs zero decodes: every measured message hit the caches.
        assert_eq!(report.warm_code_cache_misses, 0);
        assert_eq!(report.warm_code_cache_hits, 50);
        assert_eq!(report.warm_got_cache_hits, 50);
        assert_eq!(report.warm_template_hits, 50);
        // Under the default resolved policy, every warm dispatch must run the
        // pre-lowered image — never fall back to per-message interpretation.
        assert_eq!(report.warm_resolved_cache_misses, 0);
        assert_eq!(report.warm_resolved_cache_hits, 50);
        assert!(
            report.superinstructions_executed > 0,
            "Indirect Put's mov pairs must fuse on the resolved path"
        );
    }

    #[test]
    fn chained_dispatch_amortizes_across_stages() {
        let report = compare(50);
        // The acceptance bar for receiver-side chains: a stage's share of
        // dispatch on a chained frame is markedly cheaper than giving that
        // stage its own message, because the frame parse + mailbox wait are
        // paid once for the whole lookup -> filter -> aggregate pipeline.
        // Resolved execution compressed this ratio: the per-message baseline
        // lost its code-section reads (the numerator shrank ~2.3x) while a
        // continuation was already at the Local-dispatch floor, so the old
        // >=2.0 bar is recalibrated to >=1.8 alongside an absolute bound on
        // the per-stage cost itself.
        assert_eq!(report.chain_stages, CHAIN_REGIME_STAGES);
        assert!(
            report.chain_amortization >= 1.8,
            "chained per-stage dispatch {}ns must be >=1.8x cheaper than one \
             message per stage ({}ns/msg): amortization {:.2}",
            report.chain_per_stage_dispatch_ns,
            report.chain_sequential_dispatch_ns,
            report.chain_amortization
        );
        // The resolved path must improve the chained stages too: the pre-PR
        // per-stage share was ~70 ns.
        assert!(
            report.chain_per_stage_dispatch_ns <= 55.0,
            "chained per-stage dispatch {}ns regressed past 55 ns",
            report.chain_per_stage_dispatch_ns
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = compare(5);
        let json = report.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"dispatch_speedup\""));
        assert!(json.contains("\"warm_code_cache_misses\": 0"));
        assert!(json.contains("\"burst_shard_rows\": []"));
        assert!(json.contains("\"burst_loss_rows\": []"));
        assert!(json.contains("\"host_parallelism\": "));
        assert!(json.contains("\"chain_stages\": 3"));
        assert!(json.contains("\"chain_amortization\": "));
        assert!(json.contains("\"warm_resolved_cache_misses\": 0"));
        assert_eq!(json.matches(':').count(), 26);
    }

    #[test]
    fn json_includes_loss_rows_when_swept() {
        let mut report = compare(2);
        report.loss = vec![
            crate::burst::LossRow {
                loss_rate: 0.0,
                messages: 128,
                goodput_msgs_per_sec: 200_000.0,
                frames_sent: 128,
                frames_retransmitted: 0,
                frames_dropped: 0,
                replays_suppressed: 0,
                nacks_posted: 0,
                frames_rejected: 0,
            },
            crate::burst::LossRow {
                loss_rate: 0.05,
                messages: 128,
                goodput_msgs_per_sec: 150_000.0,
                frames_sent: 128,
                frames_retransmitted: 6,
                frames_dropped: 3,
                replays_suppressed: 2,
                nacks_posted: 3,
                frames_rejected: 0,
            },
        ];
        let json = report.to_json();
        assert!(json.contains("\"burst_loss_rows\": [\n"));
        assert!(json.contains("{\"loss_rate\": 0.0000, \"messages\": 128,"));
        assert!(json.contains("\"goodput_msgs_per_sec\": 150000"));
        assert!(json.contains("\"frames_retransmitted\": 6"));
        assert!(json.contains("\"frames_dropped\": 3"));
        // 6 retransmits over 128 sends.
        assert!(json.contains("\"retransmit_overhead\": 0.0469"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn json_includes_burst_rows_when_swept() {
        let mut report = compare(2);
        report.burst = vec![
            crate::burst::BurstRow {
                shards: 1,
                messages: 64,
                model_msgs_per_sec: 1_000_000.0,
                model_speedup: 1.0,
                wall_msgs_per_sec: 50_000.0,
                fill_drain_wall_msgs_per_sec: 40_000.0,
                pipelined_wall_msgs_per_sec: 44_000.0,
                model_credit_ops: 64,
                model_credit_bytes: 64,
                model_credit_time_share: 0.05,
                pipe_credit_ops: 64,
                pipe_credit_bytes: 64,
                pipe_credit_stall_events: 2,
                batch_frames_per_put: 7.53,
                model_puts_per_frame: 0.1328,
                model_posting_share_per_frame: 0.21,
                model_posting_share_batched: 0.03,
            },
            crate::burst::BurstRow {
                shards: 4,
                messages: 64,
                model_msgs_per_sec: 4_000_000.0,
                model_speedup: 4.0,
                wall_msgs_per_sec: 120_000.0,
                fill_drain_wall_msgs_per_sec: 90_000.0,
                pipelined_wall_msgs_per_sec: 150_000.0,
                model_credit_ops: 64,
                model_credit_bytes: 64,
                model_credit_time_share: 0.05,
                pipe_credit_ops: 64,
                pipe_credit_bytes: 64,
                pipe_credit_stall_events: 0,
                batch_frames_per_put: 8.0,
                model_puts_per_frame: 0.125,
                model_posting_share_per_frame: 0.21,
                model_posting_share_batched: 0.03,
            },
        ];
        let json = report.to_json();
        assert!(json.contains("\"burst_shard_rows\": [\n"));
        assert!(json.contains("{\"shards\": 1, \"messages\": 64,"));
        assert!(json.contains("\"model_speedup\": 4.00"));
        assert!(json.contains("\"fill_drain_wall_msgs_per_sec\": 90000"));
        assert!(json.contains("\"pipelined_wall_msgs_per_sec\": 150000"));
        assert!(json.contains("\"model_credit_time_share\": 0.0500"));
        assert!(json.contains("\"pipe_credit_ops\": 64"));
        assert!(json.contains("\"pipe_credit_stall_events\": 2"));
        assert!(json.contains("\"batch_frames_per_put\": 8.00"));
        assert!(json.contains("\"model_puts_per_frame\": 0.1250"));
        assert!(json.contains("\"model_posting_share_per_frame\": 0.2100"));
        assert!(json.contains("\"model_posting_share_batched\": 0.0300"));
        assert!(json.ends_with("}\n"));
    }
}
