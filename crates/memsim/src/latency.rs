//! DRAM timing and bandwidth-contention model.
//!
//! A single access to an idle DDR4-2666 system costs roughly the configured base
//! latency. Under load two additional effects matter, and both are central to the
//! paper's tail-latency experiments (Figs. 11–12):
//!
//! 1. **Bandwidth contention** — the useful bandwidth left for the benchmark shrinks
//!    when background traffic (the `stress-ng` stand-in) occupies the channel, so
//!    per-line transfer time stretches.
//! 2. **Queueing jitter** — requests occasionally arrive behind a burst of stressor
//!    requests and observe a much larger, heavy-tailed delay. This is what makes the
//!    non-stashed runs "erratic" in the paper's words, while stashed traffic (which
//!    bypasses DRAM on the critical path) stays tight.

use crate::clock::SimTime;
use crate::config::{DramConfig, CACHE_LINE};
use crate::stress::MemoryStressor;

/// DRAM access model: base latency plus contention-dependent transfer and queueing.
#[derive(Debug, Clone)]
pub struct DramModel {
    base_latency: SimTime,
    cfg: DramConfig,
    /// Cached per-line transfer time at the currently effective bandwidth.
    line_transfer: SimTime,
    accesses: u64,
}

impl DramModel {
    /// Build the model from a base (idle) latency and channel configuration.
    pub fn new(base_latency: SimTime, cfg: DramConfig) -> Self {
        let mut m = DramModel {
            base_latency,
            cfg,
            line_transfer: SimTime::ZERO,
            accesses: 0,
        };
        m.recompute();
        m
    }

    fn recompute(&mut self) {
        let effective =
            (self.cfg.bandwidth_gib_s * (1.0 - self.cfg.background_utilization)).max(0.5);
        // bytes per nanosecond at `effective` GiB/s
        let bytes_per_ns = effective * 1.073_741_824; // GiB/s -> bytes/ns
        let ns = CACHE_LINE as f64 / bytes_per_ns;
        self.line_transfer = SimTime::from_ns_f64(ns);
    }

    /// Update the share of bandwidth consumed by background traffic (0.0–0.95).
    pub fn set_background_utilization(&mut self, util: f64) {
        self.cfg.background_utilization = util.clamp(0.0, 0.95);
        self.recompute();
    }

    /// The currently effective background utilization.
    pub fn background_utilization(&self) -> f64 {
        self.cfg.background_utilization
    }

    /// Latency of fetching one cache line from DRAM. `stressor` (if any) contributes
    /// heavy-tailed queueing jitter on top of the deterministic component.
    pub fn line_access(&mut self, stressor: Option<&mut MemoryStressor>) -> SimTime {
        self.accesses += 1;
        let mut t = self.base_latency + self.line_transfer;
        if let Some(s) = stressor {
            t += s.queueing_delay();
        }
        t
    }

    /// Latency of a line write-back. Write-backs are posted and mostly off the
    /// critical path; we charge a fraction of a full access.
    pub fn writeback(&mut self) -> SimTime {
        self.accesses += 1;
        self.line_transfer
    }

    /// Number of line accesses (reads + write-backs) charged so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Base (idle, uncontended) latency.
    pub fn base_latency(&self) -> SimTime {
        self.base_latency
    }

    /// Per-line transfer time at the currently effective bandwidth.
    pub fn line_transfer(&self) -> SimTime {
        self.line_transfer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DramModel {
        DramModel::new(
            SimTime::from_ns(95),
            DramConfig {
                bandwidth_gib_s: 19.0,
                background_utilization: 0.0,
            },
        )
    }

    #[test]
    fn idle_access_is_base_plus_transfer() {
        let mut m = model();
        let t = m.line_access(None);
        assert!(t > SimTime::from_ns(95));
        assert!(t < SimTime::from_ns(110));
        assert_eq!(m.accesses(), 1);
    }

    #[test]
    fn contention_stretches_transfer_time() {
        let mut m = model();
        let idle = m.line_access(None);
        m.set_background_utilization(0.8);
        let loaded = m.line_access(None);
        assert!(loaded > idle, "loaded {loaded} should exceed idle {idle}");
        // 5x less bandwidth -> transfer component roughly 5x larger.
        assert!(m.line_transfer() > SimTime::from_ns(10));
    }

    #[test]
    fn utilization_is_clamped() {
        let mut m = model();
        m.set_background_utilization(2.0);
        assert!(m.background_utilization() <= 0.95);
        m.set_background_utilization(-1.0);
        assert_eq!(m.background_utilization(), 0.0);
    }

    #[test]
    fn stressor_adds_jitter() {
        let mut m = model();
        let mut s = MemoryStressor::new(42, 1.0);
        let mut saw_extra = false;
        for _ in 0..200 {
            let with = m.line_access(Some(&mut s));
            if with > m.base_latency() + m.line_transfer() {
                saw_extra = true;
            }
        }
        assert!(
            saw_extra,
            "stressor should add queueing delay at least sometimes"
        );
    }

    #[test]
    fn writeback_cheaper_than_read() {
        let mut m = model();
        assert!(m.writeback() < m.line_access(None));
    }
}
