//! Generic set-associative cache with true-LRU replacement.
//!
//! The cache tracks *tags only*; data contents live in the real process memory that
//! the runtime operates on. That is all the timing model needs: whether a line is
//! present at a level, whether it is dirty, and which line a fill evicts.

use crate::config::CacheLevelConfig;

/// What kind of access is being performed. Instruction fetches are distinguished from
/// data reads only for statistics; the paper's platform stashes both code and data
/// into the same LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data load.
    Read,
    /// Data store.
    Write,
    /// Instruction fetch (the injected function code path).
    Fetch,
}

impl AccessKind {
    /// True for accesses that mark the line dirty.
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// Result of a lookup+fill operation on one level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillOutcome {
    /// Whether the line was already present (hit).
    pub hit: bool,
    /// If a fill evicted a dirty victim, its line address (unit: line index, i.e.
    /// byte address / line size).
    pub dirty_victim: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU timestamp: larger = more recently used.
    stamp: u64,
}

impl Way {
    const fn empty() -> Self {
        Way {
            tag: 0,
            valid: false,
            dirty: false,
            stamp: 0,
        }
    }
}

/// Per-level hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
    /// Number of dirty evictions (write-backs generated).
    pub writebacks: u64,
    /// Number of lines installed through the stash port rather than demand fills.
    pub stashed_lines: u64,
}

impl CacheStats {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in \[0,1\]; 0 if no accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A set-associative, write-back, write-allocate cache model (tags only).
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheLevelConfig,
    sets: usize,
    ways_per_set: usize,
    line_shift: u32,
    ways: Vec<Way>,
    tick: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Build an empty cache with the given geometry.
    pub fn new(cfg: CacheLevelConfig) -> Self {
        let sets = cfg.sets();
        let ways_per_set = cfg.ways;
        assert!(
            cfg.line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        SetAssocCache {
            cfg,
            sets,
            ways_per_set,
            line_shift: cfg.line_size.trailing_zeros(),
            ways: vec![Way::empty(); sets * ways_per_set],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> CacheLevelConfig {
        self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset statistics without touching cache contents (used between benchmark
    /// warm-up and measurement phases).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Drop all lines and statistics.
    pub fn clear(&mut self) {
        for w in &mut self.ways {
            *w = Way::empty();
        }
        self.tick = 0;
        self.stats = CacheStats::default();
    }

    #[inline]
    fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line as usize) % self.sets
    }

    #[inline]
    fn set_slice(&mut self, set: usize) -> &mut [Way] {
        let start = set * self.ways_per_set;
        &mut self.ways[start..start + self.ways_per_set]
    }

    /// Probe for the line containing `addr` without changing LRU state or stats.
    pub fn contains(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        let start = set * self.ways_per_set;
        self.ways[start..start + self.ways_per_set]
            .iter()
            .any(|w| w.valid && w.tag == line)
    }

    /// Access the line containing `addr`. On a miss the line is filled (allocate on
    /// read and write); the outcome reports whether a dirty victim was evicted so the
    /// caller can charge a write-back.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> FillOutcome {
        let line = self.line_of(addr);
        self.access_line(line, kind)
    }

    /// Access by pre-computed line index (byte address / line size).
    pub fn access_line(&mut self, line: u64, kind: AccessKind) -> FillOutcome {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        let ways = self.set_slice(set);

        // Hit path.
        if let Some(w) = ways.iter_mut().find(|w| w.valid && w.tag == line) {
            w.stamp = tick;
            if kind.is_write() {
                w.dirty = true;
            }
            self.stats.hits += 1;
            return FillOutcome {
                hit: true,
                dirty_victim: None,
            };
        }

        // Miss: fill, choosing an invalid way first, otherwise the LRU victim.
        let victim_idx = {
            if let Some((i, _)) = ways.iter().enumerate().find(|(_, w)| !w.valid) {
                i
            } else {
                ways.iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.stamp)
                    .map(|(i, _)| i)
                    .expect("set has at least one way")
            }
        };
        let victim = ways[victim_idx];
        let dirty_victim = if victim.valid && victim.dirty {
            Some(victim.tag)
        } else {
            None
        };
        ways[victim_idx] = Way {
            tag: line,
            valid: true,
            dirty: kind.is_write(),
            stamp: tick,
        };
        self.stats.misses += 1;
        if dirty_victim.is_some() {
            self.stats.writebacks += 1;
        }
        FillOutcome {
            hit: false,
            dirty_victim,
        }
    }

    /// Install a line without it being a demand access — the *stash port*. The line is
    /// installed clean-from-the-core's-perspective but marked dirty, because stashed
    /// data arrived from the device and has not been written back to DRAM yet (the
    /// paper notes stashed traffic is "eventually written back to the main memory").
    ///
    /// Returns the dirty victim line if one had to be evicted.
    pub fn stash_line(&mut self, line: u64) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        let ways = self.set_slice(set);
        if let Some(w) = ways.iter_mut().find(|w| w.valid && w.tag == line) {
            // Device overwrote a line we already track: refresh it.
            w.stamp = tick;
            w.dirty = true;
            self.stats.stashed_lines += 1;
            return None;
        }
        let victim_idx = if let Some((i, _)) = ways.iter().enumerate().find(|(_, w)| !w.valid) {
            i
        } else {
            ways.iter()
                .enumerate()
                .min_by_key(|(_, w)| w.stamp)
                .map(|(i, _)| i)
                .unwrap()
        };
        let victim = ways[victim_idx];
        let dirty_victim = if victim.valid && victim.dirty {
            Some(victim.tag)
        } else {
            None
        };
        ways[victim_idx] = Way {
            tag: line,
            valid: true,
            dirty: true,
            stamp: tick,
        };
        self.stats.stashed_lines += 1;
        if dirty_victim.is_some() {
            self.stats.writebacks += 1;
        }
        dirty_victim
    }

    /// Invalidate the line containing `addr` if present; returns true if it was dirty.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        let ways = self.set_slice(set);
        if let Some(w) = ways.iter_mut().find(|w| w.valid && w.tag == line) {
            let was_dirty = w.dirty;
            *w = Way::empty();
            was_dirty
        } else {
            false
        }
    }

    /// Number of valid lines currently resident (for tests and introspection).
    pub fn resident_lines(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> usize {
        self.cfg.line_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheLevelConfig;

    fn small_cache() -> SetAssocCache {
        // 4 sets x 2 ways x 64B lines = 512B
        SetAssocCache::new(CacheLevelConfig::new(512, 2, 64))
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = small_cache();
        assert!(!c.access(0x1000, AccessKind::Read).hit);
        assert!(c.access(0x1000, AccessKind::Read).hit);
        assert!(
            c.access(0x103F, AccessKind::Read).hit,
            "same line, different byte"
        );
        assert!(!c.access(0x1040, AccessKind::Read).hit, "next line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small_cache();
        // Three lines mapping to the same set (set count = 4, so stride of 4 lines).
        let a = 0u64;
        let b = 4 * 64u64;
        let d = 8 * 64u64;
        c.access(a, AccessKind::Read);
        c.access(b, AccessKind::Read);
        // Touch `a` so `b` becomes LRU.
        c.access(a, AccessKind::Read);
        c.access(d, AccessKind::Read); // evicts b
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn dirty_eviction_reports_victim() {
        let mut c = small_cache();
        let a = 0u64;
        let b = 4 * 64u64;
        let d = 8 * 64u64;
        c.access(a, AccessKind::Write);
        c.access(b, AccessKind::Read);
        let out = c.access(d, AccessKind::Read); // evicts a (dirty)
        assert_eq!(out.dirty_victim, Some(0));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn stash_installs_dirty_lines() {
        let mut c = small_cache();
        assert_eq!(c.stash_line(7), None);
        assert!(c.contains(7 * 64));
        assert_eq!(c.stats().stashed_lines, 1);
        // A later demand read of a stashed line is a hit.
        assert!(c.access(7 * 64, AccessKind::Read).hit);
        // Evicting it produces a write-back because stashed lines are dirty.
        let set_stride = 4u64;
        c.stash_line(7 + set_stride);
        let victim = c.stash_line(7 + 2 * set_stride);
        assert_eq!(victim, Some(7));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small_cache();
        c.access(0x80, AccessKind::Write);
        assert!(c.contains(0x80));
        assert!(c.invalidate(0x80), "dirty line invalidation reports dirty");
        assert!(!c.contains(0x80));
        assert!(!c.invalidate(0x80), "second invalidation is a no-op");
    }

    #[test]
    fn stats_reset_keeps_contents() {
        let mut c = small_cache();
        c.access(0, AccessKind::Read);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.contains(0));
        c.clear();
        assert!(!c.contains(0));
    }

    #[test]
    fn hit_rate_math() {
        let mut c = small_cache();
        c.access(0, AccessKind::Read);
        c.access(0, AccessKind::Read);
        c.access(0, AccessKind::Read);
        c.access(64, AccessKind::Read);
        let s = c.stats();
        assert_eq!(s.accesses(), 4);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_bound_respected() {
        let mut c = small_cache(); // 8 lines total
        for i in 0..32u64 {
            c.access(i * 64, AccessKind::Read);
        }
        assert!(c.resident_lines() <= 8);
        assert_eq!(c.resident_lines(), 8);
    }
}
