//! Memory-system stress model.
//!
//! The paper's tail-latency experiments (§VII-C) run
//! `taskset -c 0-3 stress-ng --class vm --all 1` next to the benchmark so the paging
//! and memory subsystems are saturated, and then compare the 50th and 99.9th
//! percentile active-message latencies with and without LLC stashing.
//!
//! [`MemoryStressor`] reproduces the *effect* of that workload on the memory system:
//!
//! * it occupies a configurable share of DRAM bandwidth (fed into
//!   [`crate::latency::DramModel::set_background_utilization`]), and
//! * it injects heavy-tailed queueing delays into individual DRAM accesses: most
//!   requests see a modest extra delay, a small fraction lands behind a stressor burst
//!   and sees a very large one. This is what produces the erratic non-stash tail in
//!   Figs. 11–12 while LLC hits stay insulated.
//!
//! The random source is a seeded [`rand::rngs::StdRng`], so every benchmark run is
//! reproducible bit-for-bit.

use crate::clock::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Background memory stress generator (the `stress-ng --class vm` stand-in).
#[derive(Debug, Clone)]
pub struct MemoryStressor {
    rng: StdRng,
    /// Intensity in [0, 1]: 0 = idle system, 1 = the paper's fully-loaded system.
    intensity: f64,
    /// Counters for introspection/tests.
    samples: u64,
    bursts: u64,
}

impl MemoryStressor {
    /// Create a stressor with a deterministic seed and the given intensity (clamped
    /// to [0, 1]).
    pub fn new(seed: u64, intensity: f64) -> Self {
        MemoryStressor {
            rng: StdRng::seed_from_u64(seed),
            intensity: intensity.clamp(0.0, 1.0),
            samples: 0,
            bursts: 0,
        }
    }

    /// A stressor representing the paper's fully loaded system.
    pub fn fully_loaded(seed: u64) -> Self {
        Self::new(seed, 1.0)
    }

    /// The configured intensity.
    pub fn intensity(&self) -> f64 {
        self.intensity
    }

    /// The share of DRAM bandwidth the stressor occupies; feed this into
    /// [`crate::latency::DramModel::set_background_utilization`].
    pub fn bandwidth_share(&self) -> f64 {
        // stress-ng vm class workers comfortably saturate ~70% of a small server's
        // memory bandwidth; scale linearly with intensity.
        0.70 * self.intensity
    }

    /// Sample the extra queueing delay a single DRAM access observes.
    ///
    /// The distribution is a two-component mixture:
    /// * with high probability, a uniform "bank/row conflict" delay of up to ~60 ns
    ///   scaled by intensity;
    /// * with probability `0.002 * intensity` (about one access in 500 on the loaded
    ///   system), a "burst collision" of 1–12 µs representing the access queuing
    ///   behind a stressor page sweep or a reclaim stall.
    pub fn queueing_delay(&mut self) -> SimTime {
        if self.intensity <= 0.0 {
            return SimTime::ZERO;
        }
        self.samples += 1;
        let burst_p = 0.002 * self.intensity;
        if self.rng.gen::<f64>() < burst_p {
            self.bursts += 1;
            let us = self.rng.gen_range(1.0..12.0) * self.intensity;
            SimTime::from_us_f64(us)
        } else {
            let ns = self.rng.gen_range(0.0..60.0) * self.intensity;
            SimTime::from_ns_f64(ns)
        }
    }

    /// Extra jitter applied to software-visible wake-ups (scheduler noise, TLB
    /// shootdowns, etc.) while the machine is loaded. Much smaller than DRAM bursts
    /// and applied once per message rather than per line.
    pub fn scheduler_jitter(&mut self) -> SimTime {
        if self.intensity <= 0.0 {
            return SimTime::ZERO;
        }
        let ns = self.rng.gen_range(0.0..150.0) * self.intensity;
        SimTime::from_ns_f64(ns)
    }

    /// Number of delay samples drawn so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Number of heavy-tail burst events drawn so far.
    pub fn bursts(&self) -> u64 {
        self.bursts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_intensity_is_free() {
        let mut s = MemoryStressor::new(1, 0.0);
        for _ in 0..100 {
            assert_eq!(s.queueing_delay(), SimTime::ZERO);
            assert_eq!(s.scheduler_jitter(), SimTime::ZERO);
        }
        assert_eq!(s.samples(), 0);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = MemoryStressor::new(7, 1.0);
        let mut b = MemoryStressor::new(7, 1.0);
        let sa: Vec<_> = (0..50).map(|_| a.queueing_delay()).collect();
        let sb: Vec<_> = (0..50).map(|_| b.queueing_delay()).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = MemoryStressor::new(7, 1.0);
        let mut b = MemoryStressor::new(8, 1.0);
        let sa: Vec<_> = (0..50).map(|_| a.queueing_delay()).collect();
        let sb: Vec<_> = (0..50).map(|_| b.queueing_delay()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn heavy_tail_appears_over_many_samples() {
        let mut s = MemoryStressor::fully_loaded(3);
        let mut max = SimTime::ZERO;
        for _ in 0..20_000 {
            max = max.max(s.queueing_delay());
        }
        assert!(s.bursts() > 0, "expected at least one burst in 20k samples");
        assert!(
            max >= SimTime::from_us(1),
            "heavy tail should reach microseconds, got {max}"
        );
    }

    #[test]
    fn common_case_is_small() {
        let mut s = MemoryStressor::fully_loaded(3);
        let mut small = 0;
        let n = 10_000;
        for _ in 0..n {
            if s.queueing_delay() < SimTime::from_ns(100) {
                small += 1;
            }
        }
        assert!(
            small as f64 / n as f64 > 0.95,
            "common case should stay under 100ns"
        );
    }

    #[test]
    fn bandwidth_share_scales_with_intensity() {
        assert_eq!(MemoryStressor::new(0, 0.0).bandwidth_share(), 0.0);
        let full = MemoryStressor::fully_loaded(0).bandwidth_share();
        let half = MemoryStressor::new(0, 0.5).bandwidth_share();
        assert!(full > half && half > 0.0);
        assert!(full <= 0.95);
    }

    #[test]
    fn intensity_is_clamped() {
        assert_eq!(MemoryStressor::new(0, 9.0).intensity(), 1.0);
        assert_eq!(MemoryStressor::new(0, -2.0).intensity(), 0.0);
    }
}
