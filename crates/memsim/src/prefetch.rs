//! Hardware stride prefetcher model.
//!
//! The paper's servers expose firmware/kernel controls to toggle the CPU prefetching
//! mechanisms, and the evaluation leans on the prefetcher to explain why the
//! stash/non-stash latency gap narrows at large message sizes: "once the message size
//! is large enough to trigger the prefetcher to start pulling the message data on
//! arrival, the difference in latency for messages going to DRAM versus LLC starts
//! narrowing, as prefetches are issued ahead enough to mask the larger DRAM access
//! latency" (§VII-B).
//!
//! [`StridePrefetcher`] is a classic per-stream, next-N-lines prefetcher: it observes
//! demand misses, detects unit-stride streams after a configurable training
//! threshold, and then keeps `degree` lines of lookahead warm. The hierarchy asks it
//! two questions: *did a prefetch already cover this line?* and *which lines should
//! be prefetched next?*

use crate::config::PrefetchConfig;
use std::collections::VecDeque;

/// A single detected access stream.
#[derive(Debug, Clone, Copy)]
struct Stream {
    /// Last line observed for this stream.
    last_line: u64,
    /// Detected stride in lines (only +1/-1 unit strides are trained; larger strides
    /// are tracked but never trigger, matching conservative real prefetchers).
    stride: i64,
    /// Consecutive confirmations of the stride.
    confidence: usize,
    /// Furthest line already issued as a prefetch for this stream.
    issued_until: u64,
}

/// Per-core stride prefetcher.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    cfg: PrefetchConfig,
    streams: VecDeque<Stream>,
    issued: u64,
    useful: u64,
}

impl StridePrefetcher {
    /// Build a prefetcher from configuration; if `cfg.enabled` is false the
    /// prefetcher never issues anything.
    pub fn new(cfg: PrefetchConfig) -> Self {
        StridePrefetcher {
            cfg,
            streams: VecDeque::new(),
            issued: 0,
            useful: 0,
        }
    }

    /// Whether the prefetcher is enabled at all.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Total prefetches issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Prefetches that were later hit by a demand access (usefulness accounting is
    /// done by the hierarchy calling [`StridePrefetcher::record_useful`]).
    pub fn useful(&self) -> u64 {
        self.useful
    }

    /// Record that a demand access hit a line that was brought in by a prefetch.
    pub fn record_useful(&mut self) {
        self.useful += 1;
    }

    /// Observe a demand access to `line` (line index, not byte address) that missed
    /// in the private caches. Returns the list of lines that should be prefetched as
    /// a consequence (possibly empty).
    pub fn observe_miss(&mut self, line: u64) -> Vec<u64> {
        if !self.cfg.enabled {
            return Vec::new();
        }

        // Find a stream whose next expected line matches (within a small window).
        let mut matched: Option<usize> = None;
        for (i, s) in self.streams.iter().enumerate() {
            let delta = line as i64 - s.last_line as i64;
            if delta != 0 && delta.abs() <= 4 {
                matched = Some(i);
                let _ = delta;
                break;
            }
        }

        match matched {
            Some(i) => {
                let mut s = self.streams[i];
                let delta = line as i64 - s.last_line as i64;
                if delta == s.stride {
                    s.confidence += 1;
                } else {
                    s.stride = delta;
                    s.confidence = 1;
                }
                s.last_line = line;
                let mut out = Vec::new();
                if s.confidence >= self.cfg.train_threshold && s.stride.abs() == 1 {
                    // Trained: keep `degree` lines of lookahead issued.
                    let dir = s.stride.signum();
                    let mut next =
                        if s.issued_until == 0 || s.confidence == self.cfg.train_threshold {
                            line
                        } else {
                            s.issued_until
                        };
                    for _ in 0..self.cfg.degree {
                        let candidate = (next as i64 + dir) as u64;
                        out.push(candidate);
                        next = candidate;
                    }
                    s.issued_until = next;
                    self.issued += out.len() as u64;
                }
                self.streams[i] = s;
                out
            }
            None => {
                // New stream.
                if self.streams.len() >= self.cfg.streams {
                    self.streams.pop_front();
                }
                self.streams.push_back(Stream {
                    last_line: line,
                    stride: 0,
                    confidence: 0,
                    issued_until: 0,
                });
                Vec::new()
            }
        }
    }

    /// Forget all trained streams (e.g. between benchmark iterations that should not
    /// benefit from each other's training).
    pub fn reset(&mut self) {
        self.streams.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(enabled: bool) -> PrefetchConfig {
        PrefetchConfig {
            enabled,
            train_threshold: 2,
            degree: 4,
            streams: 4,
        }
    }

    #[test]
    fn disabled_prefetcher_never_issues() {
        let mut p = StridePrefetcher::new(cfg(false));
        for i in 0..64 {
            assert!(p.observe_miss(i).is_empty());
        }
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn sequential_stream_trains_and_issues() {
        let mut p = StridePrefetcher::new(cfg(true));
        let mut issued = Vec::new();
        for i in 100..120u64 {
            issued.extend(p.observe_miss(i));
        }
        assert!(
            p.issued() > 0,
            "sequential misses must train the prefetcher"
        );
        // Issued lines should be ahead of the access stream.
        assert!(issued.iter().all(|&l| l > 100));
        assert!(
            issued.iter().any(|&l| l >= 110),
            "lookahead should run ahead of demand"
        );
    }

    #[test]
    fn random_accesses_do_not_train() {
        let mut p = StridePrefetcher::new(cfg(true));
        // Widely scattered lines never form a unit-stride stream.
        for &l in &[10u64, 5000, 23, 9000, 77, 40000, 123, 60000] {
            assert!(p.observe_miss(l).is_empty());
        }
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn short_streams_below_threshold_do_not_issue() {
        let mut p = StridePrefetcher::new(PrefetchConfig {
            enabled: true,
            train_threshold: 4,
            degree: 4,
            streams: 4,
        });
        let mut total = 0;
        for i in 0..4u64 {
            total += p.observe_miss(i).len();
        }
        assert_eq!(
            total, 0,
            "threshold 4 needs more confirmations than 4 misses provide"
        );
    }

    #[test]
    fn descending_streams_train_too() {
        let mut p = StridePrefetcher::new(cfg(true));
        let mut issued = Vec::new();
        for i in (0..20u64).rev().map(|i| i + 1000) {
            issued.extend(p.observe_miss(i));
        }
        assert!(!issued.is_empty());
        assert!(issued.iter().all(|&l| l < 1020));
    }

    #[test]
    fn stream_table_capacity_is_bounded() {
        let mut p = StridePrefetcher::new(cfg(true));
        // Open more streams than the table can hold; should not panic or grow unboundedly.
        for base in 0..100u64 {
            p.observe_miss(base * 10_000);
        }
        assert!(p.streams.len() <= 4);
    }

    #[test]
    fn usefulness_counter() {
        let mut p = StridePrefetcher::new(cfg(true));
        p.record_useful();
        p.record_useful();
        assert_eq!(p.useful(), 2);
    }

    #[test]
    fn reset_clears_training() {
        let mut p = StridePrefetcher::new(cfg(true));
        for i in 0..10u64 {
            p.observe_miss(i);
        }
        p.reset();
        // After reset the next miss opens a brand new stream and issues nothing.
        assert!(p.observe_miss(11).is_empty());
    }
}
