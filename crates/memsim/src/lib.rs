//! # twochains-memsim
//!
//! Cache-hierarchy and cycle-accounting simulator used as the hardware substrate for
//! the Two-Chains reproduction.
//!
//! The paper's evaluation platform is a pair of Arm servers with a 4-core superscalar
//! CPU (1 MiB private L2 per core, 1 MiB L3 per 2-core cluster, 8 MiB shared LLC),
//! DDR4-2666 main memory, a 2.6 GHz core clock and a 1.6 GHz on-chip interconnect.
//! Crucially the platform supports *LLC stashing*: traffic arriving from the
//! ConnectX-6 HCA through the PCIe root complex can be written directly into the last
//! level cache instead of DRAM, and the hardware prefetchers can be toggled from user
//! space (custom Linux 5.4 kernel).
//!
//! None of that hardware is available here, so this crate models it:
//!
//! * [`config::TestbedConfig`] — the machine description, with the paper's testbed as
//!   the default ([`config::TestbedConfig::cluster2021`]).
//! * [`cache::SetAssocCache`] — a generic set-associative LRU cache.
//! * [`hierarchy::CacheHierarchy`] — L2 → L3 → LLC → DRAM lookup, write-back, the
//!   *stash port* used by the simulated NIC, and hit/miss statistics.
//! * [`prefetch::StridePrefetcher`] — a trainable stride prefetcher that hides DRAM
//!   latency on long sequential footprints (this is what narrows the stash/non-stash
//!   gap at large message sizes in Figs. 9–10 of the paper).
//! * [`stress::MemoryStressor`] — an at-capacity memory system model standing in for
//!   `stress-ng --class vm --all 1` in the tail-latency experiments (Figs. 11–12).
//! * [`cycles`] — core/interconnect clock domains and the Polling-vs-WFE cycle
//!   accounting used by Figs. 13–14.
//! * [`clock::SimClock`] / [`clock::SimTime`] — the virtual-time base used everywhere.
//!
//! All benchmark numbers produced by the workspace are *virtual time* computed from
//! these models; the functional code paths (linking, GOT patching, message packing,
//! execution) run for real on top of them.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod clock;
pub mod config;
pub mod cycles;
pub mod hierarchy;
pub mod latency;
pub mod prefetch;
pub mod sharded;
pub mod stress;

pub use cache::{AccessKind, SetAssocCache};
pub use clock::{SimClock, SimTime};
pub use config::{
    CacheGeometry, CacheLevelConfig, DramConfig, LatencyConfig, PrefetchConfig, TestbedConfig,
};
pub use cycles::{CycleCounter, WaitMode, WaitOutcome};
pub use hierarchy::{CacheHierarchy, HierarchyStats, MemoryBus};
pub use latency::DramModel;
pub use prefetch::StridePrefetcher;
pub use sharded::{CoreBus, CoreCacheStats, SharedHierarchy};
pub use stress::MemoryStressor;
