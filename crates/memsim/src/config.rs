//! Machine / testbed description.
//!
//! [`TestbedConfig`] collects every tunable of the simulated platform in one place.
//! The default configuration, [`TestbedConfig::cluster2021`], reproduces the paper's
//! evaluation testbed (§VI-C): a 4-core Arm server with 1 MiB private L2 per core,
//! 1 MiB L3 shared per 2-core cluster, an 8 MiB shared LLC, DDR4-2666 DRAM, a 2.6 GHz
//! core clock and a 1.6 GHz interconnect clock, an LLC-stashing-capable PCIe root
//! complex, and toggleable hardware prefetchers.

use crate::clock::SimTime;

/// Cache line size used throughout the simulator (bytes).
pub const CACHE_LINE: usize = 64;

/// Geometry of a single cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLevelConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity (number of ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_size: usize,
}

impl CacheLevelConfig {
    /// Create a level description. Panics if the geometry is inconsistent
    /// (capacity not divisible into whole sets of `ways` lines).
    pub fn new(capacity: usize, ways: usize, line_size: usize) -> Self {
        assert!(
            capacity > 0 && ways > 0 && line_size > 0,
            "cache geometry must be non-zero"
        );
        assert!(
            capacity.is_multiple_of(ways * line_size),
            "capacity {} not divisible by ways*line {}",
            capacity,
            ways * line_size
        );
        CacheLevelConfig {
            capacity,
            ways,
            line_size,
        }
    }

    /// Number of sets in this cache.
    pub fn sets(&self) -> usize {
        self.capacity / (self.ways * self.line_size)
    }

    /// Total number of lines this cache can hold.
    pub fn lines(&self) -> usize {
        self.capacity / self.line_size
    }
}

/// Full cache hierarchy geometry: private L1/L2 per core, L3 per cluster, shared LLC.
///
/// The paper's evaluation reasons mostly about L2/L3/LLC/DRAM; the small private L1
/// mainly shifts constants for re-touched lines, but it matters for the sharded
/// hierarchy: L1 and L2 are the *per-core private* levels that the per-shard
/// [`crate::sharded::CoreBus`] owns without a lock, while L3/LLC/DRAM are the
/// *shared* levels reached through lock striping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Private first-level cache, one per core (the innermost private level).
    pub l1: CacheLevelConfig,
    /// Private second-level cache, one per core.
    pub l2: CacheLevelConfig,
    /// Cluster-shared third-level cache, one per `cores_per_cluster` cores.
    pub l3: CacheLevelConfig,
    /// Chip-wide shared last level cache (the stash target).
    pub llc: CacheLevelConfig,
    /// Number of cores sharing one L3 slice.
    pub cores_per_cluster: usize,
    /// Number of cores in the package.
    pub num_cores: usize,
}

/// Latencies charged for hits at each level and for control overheads.
///
/// Values are typical for a modern Arm server part at the paper's clock rates; they
/// are inputs to the model, not measurements, and can be overridden per experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyConfig {
    /// L1 hit latency (also the lookup charge paid on an L1 miss).
    pub l1_hit: SimTime,
    /// L2 hit latency.
    pub l2_hit: SimTime,
    /// L3 (cluster cache) hit latency.
    pub l3_hit: SimTime,
    /// LLC hit latency (includes the interconnect hop).
    pub llc_hit: SimTime,
    /// DRAM access latency on an idle memory system (row-buffer mix averaged).
    pub dram: SimTime,
    /// Additional cost for a dirty-line write-back that must happen on eviction.
    pub writeback: SimTime,
    /// Cost of installing a stashed line into the LLC (paid by the DMA engine, not the core).
    pub stash_install: SimTime,
}

/// DRAM device/channel parameters used by the contention model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Peak sustainable bandwidth of the memory system in GiB/s.
    /// DDR4-2666 single channel peaks at ~21.3 GB/s; the paper's small servers are
    /// modelled with one loaded channel's worth of realistic sustained bandwidth.
    pub bandwidth_gib_s: f64,
    /// Fraction of peak bandwidth consumed by background traffic when the
    /// memory stressor is active (0.0 = idle machine).
    pub background_utilization: f64,
}

/// Hardware prefetcher parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Master enable (the paper's firmware/kernel toggle).
    pub enabled: bool,
    /// Number of consecutive-line misses required before the stream is trained.
    pub train_threshold: usize,
    /// Number of lines fetched ahead once trained.
    pub degree: usize,
    /// Maximum number of concurrently tracked streams.
    pub streams: usize,
}

/// Complete description of the simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct TestbedConfig {
    /// Core clock frequency in GHz.
    pub core_freq_ghz: f64,
    /// On-chip interconnect (mesh/CMN) clock frequency in GHz.
    pub interconnect_freq_ghz: f64,
    /// Cache geometry.
    pub caches: CacheGeometry,
    /// Latency table.
    pub latency: LatencyConfig,
    /// DRAM / memory-system parameters.
    pub dram: DramConfig,
    /// Prefetcher parameters.
    pub prefetch: PrefetchConfig,
    /// Whether the PCIe root complex stashes inbound DMA traffic into the LLC.
    pub llc_stashing: bool,
    /// Main memory capacity in bytes (16 GiB on the paper's servers). Only used for
    /// sanity checks on simulated address ranges.
    pub dram_capacity: usize,
}

impl TestbedConfig {
    /// The paper's evaluation platform (§VI-C), with stashing and prefetching enabled.
    pub fn cluster2021() -> Self {
        TestbedConfig {
            core_freq_ghz: 2.6,
            interconnect_freq_ghz: 1.6,
            caches: CacheGeometry {
                l1: CacheLevelConfig::new(64 << 10, 4, CACHE_LINE),
                l2: CacheLevelConfig::new(1 << 20, 8, CACHE_LINE),
                l3: CacheLevelConfig::new(1 << 20, 16, CACHE_LINE),
                llc: CacheLevelConfig::new(8 << 20, 16, CACHE_LINE),
                cores_per_cluster: 2,
                num_cores: 4,
            },
            latency: LatencyConfig {
                l1_hit: SimTime::from_ns(1),
                l2_hit: SimTime::from_ns(4),
                l3_hit: SimTime::from_ns(12),
                llc_hit: SimTime::from_ns(30),
                dram: SimTime::from_ns(95),
                writeback: SimTime::from_ns(8),
                stash_install: SimTime::from_ns(6),
            },
            dram: DramConfig {
                bandwidth_gib_s: 19.0,
                background_utilization: 0.0,
            },
            prefetch: PrefetchConfig {
                enabled: true,
                train_threshold: 3,
                degree: 8,
                streams: 16,
            },
            llc_stashing: true,
            dram_capacity: 16 << 30,
        }
    }

    /// The same platform with LLC stashing disabled (the paper's "Nonstash" runs).
    pub fn cluster2021_nonstash() -> Self {
        let mut c = Self::cluster2021();
        c.llc_stashing = false;
        c
    }

    /// The same platform with the hardware prefetcher disabled.
    pub fn cluster2021_no_prefetch() -> Self {
        let mut c = Self::cluster2021();
        c.prefetch.enabled = false;
        c
    }

    /// A deliberately tiny machine used by unit and property tests: small caches make
    /// evictions and write-backs easy to trigger without touching megabytes of state.
    pub fn tiny_for_tests() -> Self {
        TestbedConfig {
            core_freq_ghz: 1.0,
            interconnect_freq_ghz: 1.0,
            caches: CacheGeometry {
                l1: CacheLevelConfig::new(1024, 2, CACHE_LINE),
                l2: CacheLevelConfig::new(4 * 1024, 2, CACHE_LINE),
                l3: CacheLevelConfig::new(8 * 1024, 2, CACHE_LINE),
                llc: CacheLevelConfig::new(16 * 1024, 4, CACHE_LINE),
                cores_per_cluster: 2,
                num_cores: 4,
            },
            latency: LatencyConfig {
                l1_hit: SimTime::from_ns(1),
                l2_hit: SimTime::from_ns(2),
                l3_hit: SimTime::from_ns(6),
                llc_hit: SimTime::from_ns(20),
                dram: SimTime::from_ns(100),
                writeback: SimTime::from_ns(5),
                stash_install: SimTime::from_ns(3),
            },
            dram: DramConfig {
                bandwidth_gib_s: 10.0,
                background_utilization: 0.0,
            },
            prefetch: PrefetchConfig {
                enabled: false,
                train_threshold: 2,
                degree: 4,
                streams: 4,
            },
            llc_stashing: true,
            dram_capacity: 1 << 30,
        }
    }

    /// Duration of one core clock cycle.
    pub fn core_cycle(&self) -> SimTime {
        SimTime::from_cycles(1, self.core_freq_ghz)
    }

    /// Duration of one interconnect clock cycle.
    pub fn interconnect_cycle(&self) -> SimTime {
        SimTime::from_cycles(1, self.interconnect_freq_ghz)
    }

    /// Which cluster a core belongs to.
    pub fn cluster_of(&self, core: usize) -> usize {
        core / self.caches.cores_per_cluster
    }

    /// Number of L3 cluster slices on the chip.
    pub fn num_clusters(&self) -> usize {
        self.caches
            .num_cores
            .div_ceil(self.caches.cores_per_cluster)
    }
}

impl Default for TestbedConfig {
    fn default() -> Self {
        Self::cluster2021()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_geometry_matches_section_vi_c() {
        let c = TestbedConfig::cluster2021();
        assert_eq!(c.caches.l1.capacity, 64 << 10);
        assert_eq!(c.caches.l2.capacity, 1 << 20);
        assert_eq!(c.caches.l3.capacity, 1 << 20);
        assert_eq!(c.caches.llc.capacity, 8 << 20);
        assert_eq!(c.caches.num_cores, 4);
        assert_eq!(c.caches.cores_per_cluster, 2);
        assert_eq!(c.core_freq_ghz, 2.6);
        assert_eq!(c.interconnect_freq_ghz, 1.6);
        assert!(c.llc_stashing);
        assert!(c.prefetch.enabled);
        assert_eq!(c.dram_capacity, 16 << 30);
    }

    #[test]
    fn level_config_derives_sets_and_lines() {
        let l = CacheLevelConfig::new(8 << 20, 16, 64);
        assert_eq!(l.lines(), (8 << 20) / 64);
        assert_eq!(l.sets(), (8 << 20) / (16 * 64));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_geometry_is_rejected() {
        let _ = CacheLevelConfig::new(1000, 3, 64);
    }

    #[test]
    fn variant_configs_flip_single_knobs() {
        assert!(!TestbedConfig::cluster2021_nonstash().llc_stashing);
        assert!(!TestbedConfig::cluster2021_no_prefetch().prefetch.enabled);
        // and they leave everything else alone
        assert_eq!(
            TestbedConfig::cluster2021_nonstash().caches,
            TestbedConfig::cluster2021().caches
        );
    }

    #[test]
    fn cluster_mapping() {
        let c = TestbedConfig::cluster2021();
        assert_eq!(c.cluster_of(0), 0);
        assert_eq!(c.cluster_of(1), 0);
        assert_eq!(c.cluster_of(2), 1);
        assert_eq!(c.cluster_of(3), 1);
        assert_eq!(c.num_clusters(), 2);
    }

    #[test]
    fn cycle_durations_follow_clock_domains() {
        let c = TestbedConfig::cluster2021();
        assert!(c.core_cycle() < c.interconnect_cycle());
        assert!((c.core_cycle().as_ns() - 1.0 / 2.6).abs() < 1e-3);
    }
}
